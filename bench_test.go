package cqms

// This file is the benchmark harness promised in DESIGN.md: one benchmark (or
// small group of benchmarks) per experiment E1–E9. The paper is a vision
// paper without measured tables, so each benchmark regenerates the evidence
// behind one of its qualitative claims (interactive meta-querying, negligible
// profiling overhead, context-aware completion, cheap incremental mining,
// bounded maintenance scans, ...). cmd/cqms-bench prints the corresponding
// quality metrics (precision/recall, accuracy) for EXPERIMENTS.md; the
// benchmarks here measure cost.
//
// Run with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/maintenance"
	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/profiler"
	"repro/internal/recommend"
	"repro/internal/server"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wal"
	"repro/internal/workload"
)

// fixture is the shared benchmark workload: a populated scientific database
// and a replayed multi-user exploratory trace.
type fixture struct {
	sys     *CQMS
	eng     *engine.Engine
	store   *storage.Store
	trace   *workload.Trace
	mining  *miner.Result
	records []*storage.QueryRecord
}

var (
	fixtureOnce sync.Once
	shared      *fixture
)

// benchFixture builds (once) a CQMS with ~1,200 logged queries from 20 users.
func benchFixture(b *testing.B) *fixture {
	b.Helper()
	fixtureOnce.Do(func() {
		eng := engine.New()
		if err := workload.Populate(eng, 2000, 1); err != nil {
			panic(fmt.Sprintf("bench fixture: %v", err))
		}
		sys := NewWithEngine(eng, DefaultConfig())
		cfg := workload.DefaultConfig()
		cfg.Users = 20
		cfg.SessionsPerUser = 10
		trace := workload.Generate(cfg)
		prof := profiler.New(eng, sys.Store(), profiler.DefaultConfig())
		if _, err := workload.Replay(trace, prof); err != nil {
			panic(fmt.Sprintf("bench fixture replay: %v", err))
		}
		mining := sys.RunMiner()
		shared = &fixture{
			sys:     sys,
			eng:     eng,
			store:   sys.Store(),
			trace:   trace,
			mining:  mining,
			records: sys.Store().Snapshot().Records(Admin),
		}
	})
	return shared
}

// ---------------------------------------------------------------------------
// E1 — Figure 1: query-by-feature meta-queries
// ---------------------------------------------------------------------------

// figure1MetaQuery is the meta-query of Figure 1 adapted to the synthetic
// trace ("find all queries that correlate water salinity with water
// temperature data").
const figure1MetaQuery = `SELECT Q.qid, Q.qText
	FROM Queries Q, DataSources D1, DataSources D2
	WHERE Q.qid = D1.qid AND Q.qid = D2.qid
	AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`

func BenchmarkE1QueryByFeature(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, matches, err := f.sys.MetaQuery(context.Background(), Admin, figure1MetaQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(matches) == 0 {
			b.Fatal("meta-query found nothing")
		}
	}
}

// BenchmarkE1RawTextScan is the ablation baseline of DESIGN.md choice 1:
// answering the same information need by substring scan over raw query text.
func BenchmarkE1RawTextScan(b *testing.B) {
	f := benchFixture(b)
	exec := metaquery.New(f.store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := exec.Substring(context.Background(), Admin, "WaterSalinity")
		if err != nil {
			b.Fatal(err)
		}
		bm, err := exec.Substring(context.Background(), Admin, "WaterTemp")
		if err != nil {
			b.Fatal(err)
		}
		if len(a) == 0 || len(bm) == 0 {
			b.Fatal("substring scan found nothing")
		}
	}
}

func BenchmarkE1AutoMetaQuery(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches, err := f.sys.SearchByPartialQuery(context.Background(), Admin, "SELECT FROM WaterSalinity, WaterTemp")
		if err != nil {
			b.Fatal(err)
		}
		if len(matches) == 0 {
			b.Fatal("auto meta-query found nothing")
		}
	}
}

// ---------------------------------------------------------------------------
// E2 — Figure 2: session detection and rendering
// ---------------------------------------------------------------------------

func BenchmarkE2SessionDetection(b *testing.B) {
	f := benchFixture(b)
	det := session.NewDetector(session.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sessions := det.Detect(f.records, 0)
		if len(sessions) == 0 {
			b.Fatal("no sessions detected")
		}
	}
}

func BenchmarkE2SessionRender(b *testing.B) {
	f := benchFixture(b)
	det := session.NewDetector(session.DefaultConfig())
	sessions := det.Detect(f.records, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := session.Render(&sessions[i%len(sessions)]); out == "" {
			b.Fatal("empty rendering")
		}
	}
}

// ---------------------------------------------------------------------------
// E3 — Figure 3: assisted interaction
// ---------------------------------------------------------------------------

func BenchmarkE3Completion(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := f.sys.SuggestTables(context.Background(), Admin, "SELECT * FROM WaterSalinity", 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

// BenchmarkE3CompletionPopularityOnly is the context-aware vs popularity-only
// ablation (DESIGN.md choice 2).
func BenchmarkE3CompletionPopularityOnly(b *testing.B) {
	f := benchFixture(b)
	cfg := recommend.DefaultConfig()
	cfg.ContextAware = false
	rec := recommend.New(f.store, metaquery.New(f.store), cfg)
	rec.UpdateMining(f.mining)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := rec.SuggestTables(context.Background(), Admin, "SELECT * FROM WaterSalinity", 5)
		if len(got) == 0 {
			b.Fatal("no suggestions")
		}
	}
}

// completionBenchStore builds a store with n logged queries drawn from a
// small vocabulary of tables, attributes, predicates and joins (constants
// varied so the predicate space is realistic), with the incremental stats
// tracker attached.
func completionBenchStore(b *testing.B, n int) (*storage.Store, *stats.Tracker) {
	b.Helper()
	var vocab []*storage.QueryRecord
	for i := 0; i < 10; i++ {
		for _, text := range []string{
			fmt.Sprintf("SELECT temp FROM WaterTemp WHERE temp < %d", 10+i),
			fmt.Sprintf("SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp > %d", i),
			fmt.Sprintf("SELECT WaterSalinity.salinity FROM WaterSalinity WHERE WaterSalinity.depth < %d", i*5),
			fmt.Sprintf("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < %d", 12+i),
		} {
			rec, err := storage.NewRecordFromSQL(text)
			if err != nil {
				b.Fatal(err)
			}
			rec.User = fmt.Sprintf("user%d", i%7)
			rec.Visibility = storage.Visibility(i % 3)
			vocab = append(vocab, rec)
		}
	}
	store := storage.NewStore()
	tracker := stats.Attach(store)
	for i := 0; i < n; i++ {
		store.Put(vocab[i%len(vocab)].Clone())
	}
	return store, tracker
}

// BenchmarkE3CompletionIncremental measures steady-state per-keystroke
// completion cost (columns + predicates + joins) against the incremental
// stats counters at 1k vs 50k-record logs. The per-suggestion cost must stay
// flat (within noise) as the log grows — that is the point of taking the
// full-log scans out of the recommendation hot path.
func BenchmarkE3CompletionIncremental(b *testing.B) {
	for _, n := range []int{1_000, 50_000} {
		b.Run(fmt.Sprintf("log=%d", n), func(b *testing.B) {
			store, tracker := completionBenchStore(b, n)
			rec := recommend.New(store, metaquery.New(store), recommend.DefaultConfig())
			rec.UseStats(tracker)
			const partial = "SELECT * FROM WaterSalinity, WaterTemp WHERE "
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cols := rec.SuggestColumns(ctx, Admin, partial, 5)
				preds := rec.SuggestPredicates(ctx, Admin, partial, 5)
				joins := rec.SuggestJoins(ctx, Admin, partial, 5)
				if len(cols) == 0 || len(preds) == 0 || len(joins) == 0 {
					b.Fatal("missing suggestions")
				}
			}
		})
	}
}

// BenchmarkE3CompletionScanBaseline is the same workload on the scan paths
// (no tracker): per-suggestion cost grows with the log, which is what the
// incremental counters eliminate.
func BenchmarkE3CompletionScanBaseline(b *testing.B) {
	for _, n := range []int{1_000, 50_000} {
		b.Run(fmt.Sprintf("log=%d", n), func(b *testing.B) {
			store, _ := completionBenchStore(b, n)
			rec := recommend.New(store, metaquery.New(store), recommend.DefaultConfig())
			const partial = "SELECT * FROM WaterSalinity, WaterTemp WHERE "
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cols := rec.SuggestColumns(ctx, Admin, partial, 5)
				preds := rec.SuggestPredicates(ctx, Admin, partial, 5)
				joins := rec.SuggestJoins(ctx, Admin, partial, 5)
				if len(cols) == 0 || len(preds) == 0 || len(joins) == 0 {
					b.Fatal("missing suggestions")
				}
			}
		})
	}
}

func BenchmarkE3SimilarQueries(b *testing.B) {
	f := benchFixture(b)
	probe := "SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := f.sys.SimilarQueries(context.Background(), Admin, probe, 5)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no similar queries")
		}
	}
}

func BenchmarkE3Corrections(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := f.sys.Corrections(context.Background(), Admin, "SELECT tmep FROM WaterTemps WHERE tmep < 18")
		if err != nil {
			b.Fatal(err)
		}
		if len(got) == 0 {
			b.Fatal("no corrections")
		}
	}
}

// ---------------------------------------------------------------------------
// E4 — profiling overhead and meta-query latency
// ---------------------------------------------------------------------------

const e4Query = "SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp WHERE temp < 18 GROUP BY lake ORDER BY avg_temp DESC"

// BenchmarkE4BaselineExecute measures plain DBMS execution without the CQMS.
func BenchmarkE4BaselineExecute(b *testing.B) {
	f := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.sys.ExecuteUnprofiled(e4Query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4ProfilerSubmit measures the same query through the profiler
// (execution + feature extraction + logging + sampling). The difference to
// the baseline is the CQMS overhead that §2.1 requires to be small.
func BenchmarkE4ProfilerSubmit(b *testing.B) {
	f := benchFixture(b)
	store := storage.NewStore()
	prof := profiler.New(f.eng, store, profiler.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.Submit(profiler.Submission{User: "bench", SQL: e4Query}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4ProfilerLoggingOnly isolates the CQMS-side cost (parse, feature
// extraction, logging) without query execution, which is the overhead a real
// DBMS deployment would add to its own execution time.
func BenchmarkE4ProfilerLoggingOnly(b *testing.B) {
	b.ReportAllocs()
	store := storage.NewStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := storage.NewRecordFromSQL(e4Query)
		if err != nil {
			b.Fatal(err)
		}
		rec.User = "bench"
		store.Put(rec)
	}
}

func BenchmarkE4MetaQueryLatency(b *testing.B) {
	f := benchFixture(b)
	exec := metaquery.New(f.store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches, err := exec.Keyword(context.Background(), Admin, "salinity")
		if err != nil {
			b.Fatal(err)
		}
		if len(matches) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkE4KNNLatency(b *testing.B) {
	f := benchFixture(b)
	exec := metaquery.New(f.store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches, err := exec.KNN(context.Background(), Admin, e4Query, 10)
		if err != nil {
			b.Fatal(err)
		}
		if len(matches) == 0 {
			b.Fatal("no neighbours")
		}
	}
}

// ---------------------------------------------------------------------------
// E5 — adaptive output sampling
// ---------------------------------------------------------------------------

func benchSamplePolicy(b *testing.B, policy profiler.SamplePolicy) {
	f := benchFixture(b)
	store := storage.NewStore()
	cfg := profiler.DefaultConfig()
	cfg.Sample = policy
	prof := profiler.New(f.eng, store, cfg)
	// A cheap query with a large result: the adaptive policy stores only a
	// handful of rows, the fixed policy stores FixedRows.
	const wide = "SELECT * FROM Observations"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prof.Submit(profiler.Submission{User: "bench", SQL: wide}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5OutputSamplingAdaptive(b *testing.B) {
	benchSamplePolicy(b, profiler.DefaultSamplePolicy())
}

func BenchmarkE5OutputSamplingFixed(b *testing.B) {
	benchSamplePolicy(b, profiler.SamplePolicy{Adaptive: false, FixedRows: 500})
}

// ---------------------------------------------------------------------------
// E6 — association-rule mining: batch vs incremental
// ---------------------------------------------------------------------------

func BenchmarkE6AssociationMiningBatch(b *testing.B) {
	f := benchFixture(b)
	transactions := make([][]string, 0, len(f.records))
	for _, r := range f.records {
		transactions = append(transactions, r.Features)
	}
	cfg := miner.DefaultAssocConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules := miner.MineAssociationRules(transactions, cfg)
		if len(rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkE6IncrementalMiningAdd measures the per-query cost of keeping the
// rule counts up to date as the log grows — the operation that must stay
// cheap for the CQMS to mine continuously (§4.3).
func BenchmarkE6IncrementalMiningAdd(b *testing.B) {
	f := benchFixture(b)
	transactions := make([][]string, 0, len(f.records))
	for _, r := range f.records {
		transactions = append(transactions, r.Features)
	}
	inc := miner.NewIncrementalMiner(miner.DefaultAssocConfig(), 200)
	for _, t := range transactions {
		inc.Add(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Add(transactions[i%len(transactions)])
	}
}

func BenchmarkE6IncrementalMiningRules(b *testing.B) {
	f := benchFixture(b)
	inc := miner.NewIncrementalMiner(miner.DefaultAssocConfig(), 200)
	for _, r := range f.records {
		inc.Add(r.Features)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rules := inc.Rules(); len(rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

// ---------------------------------------------------------------------------
// E7 — clustering and similarity-measure ablation
// ---------------------------------------------------------------------------

func BenchmarkE7ClusteringKMedoids(b *testing.B) {
	f := benchFixture(b)
	records := f.records
	if len(records) > 400 {
		records = records[:400]
	}
	cfg := miner.DefaultClusterConfig(25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := miner.KMedoids(records, cfg)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkE7ClusteringAgglomerative(b *testing.B) {
	f := benchFixture(b)
	records := f.records
	if len(records) > 200 {
		records = records[:200]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := miner.AgglomerativeClusters(records, miner.MeasureFeatures, 0.1, 25)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

func benchSimilarityMeasure(b *testing.B, m miner.Measure) {
	f := benchFixture(b)
	records := f.records
	if len(records) > 300 {
		records = records[:300]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mat := miner.PairwiseMatrix(m, records); len(mat) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkE7SimilarityText(b *testing.B)     { benchSimilarityMeasure(b, miner.MeasureText) }
func BenchmarkE7SimilarityFeatures(b *testing.B) { benchSimilarityMeasure(b, miner.MeasureFeatures) }
func BenchmarkE7SimilarityTemplate(b *testing.B) { benchSimilarityMeasure(b, miner.MeasureTemplate) }
func BenchmarkE7SimilarityOutput(b *testing.B)   { benchSimilarityMeasure(b, miner.MeasureOutput) }

// ---------------------------------------------------------------------------
// E8 — maintenance scans and statistics refresh
// ---------------------------------------------------------------------------

func BenchmarkE8MaintenanceScan(b *testing.B) {
	f := benchFixture(b)
	cfg := maintenance.DefaultConfig()
	cfg.RefreshStaleStats = false
	m := maintenance.New(f.eng, f.store, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := m.Scan()
		if err != nil {
			b.Fatal(err)
		}
		if report.Checked == 0 {
			b.Fatal("scan checked nothing")
		}
	}
}

func BenchmarkE8StatsRefresh(b *testing.B) {
	f := benchFixture(b)
	m := maintenance.New(f.eng, f.store, maintenance.DefaultConfig())
	ids := f.store.All(Admin)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Flag a small batch as stale each iteration.
		for j := 0; j < 10; j++ {
			_ = f.store.MarkStatsStale(ids[(i*10+j)%len(ids)].ID, true)
		}
		b.StartTimer()
		if _, err := m.RefreshStats(10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E9 — query-by-data
// ---------------------------------------------------------------------------

func BenchmarkE9QueryByData(b *testing.B) {
	f := benchFixture(b)
	exec := metaquery.New(f.store)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The paper's example: output includes Lake Washington but not Lake
		// Union.
		_, _ = exec.ByData(context.Background(), Admin, []string{"Lake Washington"}, []string{"Lake Union"})
	}
}

// ---------------------------------------------------------------------------
// End-to-end: a full mining pass over the whole log (the background job).
// ---------------------------------------------------------------------------

func BenchmarkFullMiningPass(b *testing.B) {
	f := benchFixture(b)
	m := miner.New(miner.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := m.Run(f.store)
		if res.TransactionCount == 0 {
			b.Fatal("mined nothing")
		}
	}
}

// ---------------------------------------------------------------------------
// Storage concurrency — the sharded store's scaling claims
// ---------------------------------------------------------------------------

// runConcurrent splits b.N iterations across g goroutines and waits for all
// of them, so ns/op reflects wall-clock time per operation under g-way
// concurrency: if read throughput scales with cores, ns/op drops as g grows
// instead of staying flat.
func runConcurrent(b *testing.B, g int, fn func()) {
	b.Helper()
	var wg sync.WaitGroup
	per := b.N / g
	extra := b.N % g
	for w := 0; w < g; w++ {
		n := per
		if w < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				fn()
			}
		}(n)
	}
	wg.Wait()
}

// BenchmarkConcurrentMetaQuery measures keyword meta-query throughput over
// the full log at increasing goroutine counts. With the sharded, zero-clone
// snapshot store the per-query cost should fall as goroutines are added;
// under the old single-mutex deep-clone store it stayed flat (every reader
// serialised on the same lock while copying every record).
func BenchmarkConcurrentMetaQuery(b *testing.B) {
	f := benchFixture(b)
	exec := metaquery.New(f.store)
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			runConcurrent(b, g, func() {
				if matches, err := exec.Keyword(context.Background(), Admin, "salinity"); err != nil || len(matches) == 0 {
					b.Error("no matches")
				}
			})
		})
	}
}

// BenchmarkConcurrentSnapshotScan isolates the storage layer: a full
// access-controlled scan of the log per operation, no similarity scoring on
// top.
func BenchmarkConcurrentSnapshotScan(b *testing.B) {
	f := benchFixture(b)
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			runConcurrent(b, g, func() {
				n := 0
				f.store.Snapshot().Scan(Admin, func(*storage.QueryRecord) bool {
					n++
					return true
				})
				if n == 0 {
					b.Error("empty scan")
				}
			})
		})
	}
}

// BenchmarkPutUnderReadLoad measures write latency while 1/4/8 reader
// goroutines continuously scan the store — the paper's concurrent workload of
// background mining and interactive meta-querying running against live
// profiler traffic.
func BenchmarkPutUnderReadLoad(b *testing.B) {
	f := benchFixture(b)
	for _, readers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			store := storage.NewStore()
			for _, rec := range f.records {
				store.Put(rec.Clone())
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						store.Snapshot().Scan(Admin, func(*storage.QueryRecord) bool { return true })
					}
				}()
			}
			recs := walBenchRecords(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Put(recs[i%len(recs)].Clone())
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// ---------------------------------------------------------------------------
// WAL — durable query-log append throughput and recovery time
// ---------------------------------------------------------------------------

// walBenchRecords returns a handful of parsed records to cycle through, so
// appended mutations look like the real profiler output.
func walBenchRecords(b *testing.B) []*storage.QueryRecord {
	b.Helper()
	queries := []string{
		"SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15",
		"SELECT WaterSalinity.lake, AVG(WaterSalinity.salinity) FROM WaterSalinity GROUP BY WaterSalinity.lake",
		"SELECT Observations.id FROM Observations, Stations WHERE Observations.station = Stations.id",
		"SELECT Stations.name FROM Stations ORDER BY Stations.name",
	}
	recs := make([]*storage.QueryRecord, 0, len(queries))
	for i, q := range queries {
		rec, err := storage.NewRecordFromSQL(q)
		if err != nil {
			b.Fatal(err)
		}
		rec.User = fmt.Sprintf("bench%d", i)
		rec.Stats = storage.RuntimeStats{ExecTime: time.Millisecond, ResultRows: 42}
		recs = append(recs, rec)
	}
	return recs
}

// BenchmarkWALAppend measures the per-mutation cost of durable logging — the
// overhead a durable deployment adds to Store.Put — under each fsync policy.
func BenchmarkWALAppend(b *testing.B) {
	for _, policy := range []string{"off", "interval", "always"} {
		b.Run("sync="+policy, func(b *testing.B) {
			store := storage.NewStore()
			cfg := wal.DefaultConfig(b.TempDir())
			cfg.SyncPolicy = policy
			mgr, _, err := wal.Open(store, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			recs := walBenchRecords(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				store.Put(recs[i%len(recs)].Clone())
			}
			b.StopTimer()
			if err := mgr.Err(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkOpenLoopIngest measures raw ingest throughput with concurrent
// submitters hammering a durable store under SyncAlways — the paper's
// "profiler logs every query as a side effect of normal use" firehose. With
// one fsync per record inside the commit lock, throughput is flat (or worse)
// as submitters are added; with group commit the concurrent submitters share
// fsyncs and throughput scales.
func BenchmarkOpenLoopIngest(b *testing.B) {
	for _, submitters := range []int{1, 8} {
		b.Run(fmt.Sprintf("submitters=%d", submitters), func(b *testing.B) {
			store := storage.NewStore()
			cfg := wal.DefaultConfig(b.TempDir())
			cfg.SyncPolicy = "always"
			mgr, _, err := wal.Open(store, cfg)
			if err != nil {
				b.Fatal(err)
			}
			recs := walBenchRecords(b)
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			runConcurrent(b, submitters, func() {
				i := int(next.Add(1))
				store.Put(recs[i%len(recs)].Clone())
			})
			b.StopTimer()
			if err := mgr.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// walRecoveryDirs builds (once) two data directories holding ~100k logged
// mutations: one as a pure WAL, one compacted into a snapshot. Recovery from
// each is what the benchmarks below measure.
const walRecoveryRecords = 100_000

var (
	walRecoveryOnce    sync.Once
	walRecoveryWALDir  string
	walRecoverySnapDir string
	walRecoveryErr     error
)

// TestMain removes the shared WAL-recovery directories after the run; they
// cannot be b.TempDir() (cleaned when one benchmark returns) and would
// otherwise pile up in the system temp dir.
func TestMain(m *testing.M) {
	code := m.Run()
	for _, dir := range []string{walRecoveryWALDir, walRecoverySnapDir, ckptSidecarDir, ckptPlainDir} {
		if dir != "" {
			os.RemoveAll(dir)
		}
	}
	os.Exit(code)
}

func walRecoverySetup(b *testing.B) (walDir, snapDir string) {
	b.Helper()
	walRecoveryOnce.Do(func() {
		recs := walBenchRecords(b)
		build := func(dir string, compact bool) error {
			store := storage.NewStore()
			cfg := wal.DefaultConfig(dir)
			cfg.SyncPolicy = "off"
			mgr, _, err := wal.Open(store, cfg)
			if err != nil {
				return err
			}
			for i := 0; i < walRecoveryRecords; i++ {
				id := store.Put(recs[i%len(recs)].Clone())
				if i%100 == 0 {
					if err := store.Annotate(id, Admin, storage.Annotation{Author: "bench", Text: "note"}); err != nil {
						return err
					}
				}
			}
			if compact {
				if _, _, _, err := mgr.Compact(); err != nil {
					return err
				}
			}
			return mgr.Close()
		}
		// Not b.TempDir(): these directories are shared across benchmark
		// functions, and b.TempDir is removed when its benchmark returns.
		if walRecoveryWALDir, walRecoveryErr = os.MkdirTemp("", "cqms-wal-bench-"); walRecoveryErr != nil {
			return
		}
		if walRecoverySnapDir, walRecoveryErr = os.MkdirTemp("", "cqms-wal-bench-"); walRecoveryErr != nil {
			return
		}
		if err := build(walRecoveryWALDir, false); err != nil {
			walRecoveryErr = err
			return
		}
		walRecoveryErr = build(walRecoverySnapDir, true)
	})
	if walRecoveryErr != nil {
		b.Fatal(walRecoveryErr)
	}
	return walRecoveryWALDir, walRecoverySnapDir
}

func benchWALRecovery(b *testing.B, dir string) {
	cfg := wal.DefaultConfig(dir)
	cfg.SyncPolicy = "off"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := storage.NewStore()
		mgr, info, err := wal.Open(store, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if info.Queries != walRecoveryRecords {
			b.Fatalf("recovered %d queries, want %d", info.Queries, walRecoveryRecords)
		}
		if err := mgr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALRecoveryReplay rebuilds a ~100k-query store by replaying the
// raw WAL — the worst-case restart.
func BenchmarkWALRecoveryReplay(b *testing.B) {
	walDir, _ := walRecoverySetup(b)
	benchWALRecovery(b, walDir)
}

// BenchmarkWALRecoverySnapshot rebuilds the same store from a compacted
// snapshot — the restart path the background snapshotter keeps cheap.
func BenchmarkWALRecoverySnapshot(b *testing.B) {
	_, snapDir := walRecoverySetup(b)
	benchWALRecovery(b, snapDir)
}

// ---------------------------------------------------------------------------
// Derived-state checkpoint recovery: restoring stats counters, the miner
// feed and the live session windows from WAL snapshot sidecars versus
// rebuilding all three from a full scan of the restored store.
// ---------------------------------------------------------------------------

// ckptRecoveryRecords sizes the checkpoint-recovery log. The ISSUE's
// acceptance bar is a >=50k-record log.
const ckptRecoveryRecords = 50_000

var (
	ckptRecoveryOnce sync.Once
	ckptSidecarDir   string // snapshot carries derived-state sidecars
	ckptPlainDir     string // snapshot written by a bare store: no sidecars
	ckptRecoveryErr  error
)

// ckptAttachSubscribers wires the full derived-state subscriber set the core
// attaches: stats tracker, miner feed and live session detector.
func ckptAttachSubscribers(store *storage.Store) {
	stats.Attach(store)
	feed := miner.NewFeed(miner.DefaultConfig().Assoc, 200)
	feed.Attach(store)
	session.AttachLive(store, session.DefaultConfig())
}

// ckptRecoverySetup builds (once) two equal 50k-record data directories,
// both fully compacted into one snapshot, differing only in whether the
// snapshot carries derived-state sidecar checkpoints.
func ckptRecoverySetup(b *testing.B) (sidecarDir, plainDir string) {
	b.Helper()
	ckptRecoveryOnce.Do(func() {
		// A few hundred distinct parsed records give the counters realistic
		// key diversity without paying 50k SQL parses per directory.
		variants := make([]*storage.QueryRecord, 0, 200)
		for i := 0; i < 200; i++ {
			var text string
			switch i % 4 {
			case 0:
				text = fmt.Sprintf("SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < %d", i%37)
			case 1:
				text = fmt.Sprintf("SELECT WaterSalinity.lake FROM WaterSalinity WHERE WaterSalinity.salinity > %d", i%23)
			case 2:
				text = "SELECT Observations.id FROM Observations, Stations WHERE Observations.station = Stations.id"
			default:
				text = fmt.Sprintf("SELECT Stations.name FROM Stations WHERE Stations.id = %d", i)
			}
			rec, err := storage.NewRecordFromSQL(text)
			if err != nil {
				ckptRecoveryErr = err
				return
			}
			variants = append(variants, rec)
		}
		build := func(dir string, withSubscribers bool) error {
			store := storage.NewStore()
			if withSubscribers {
				ckptAttachSubscribers(store)
			}
			cfg := wal.DefaultConfig(dir)
			cfg.SyncPolicy = "off"
			mgr, _, err := wal.Open(store, cfg)
			if err != nil {
				return err
			}
			// 40 users in round-robin, ~20min between one user's consecutive
			// queries (soft gap: similarity decides) and an occasional 2h jump
			// (hard boundary), so the log segments into many real sessions.
			base := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
			clock := base
			for i := 0; i < ckptRecoveryRecords; i++ {
				clock = clock.Add(30 * time.Second)
				if i%4096 == 4095 {
					clock = clock.Add(2 * time.Hour)
				}
				rec := variants[i%len(variants)].Clone()
				rec.User = fmt.Sprintf("user%02d", i%40)
				rec.IssuedAt = clock
				store.Put(rec)
			}
			if _, _, _, err := mgr.Compact(); err != nil {
				return err
			}
			return mgr.Close()
		}
		if ckptSidecarDir, ckptRecoveryErr = os.MkdirTemp("", "cqms-ckpt-bench-"); ckptRecoveryErr != nil {
			return
		}
		if ckptPlainDir, ckptRecoveryErr = os.MkdirTemp("", "cqms-ckpt-bench-"); ckptRecoveryErr != nil {
			return
		}
		if err := build(ckptSidecarDir, true); err != nil {
			ckptRecoveryErr = err
			return
		}
		ckptRecoveryErr = build(ckptPlainDir, false)
	})
	if ckptRecoveryErr != nil {
		b.Fatal(ckptRecoveryErr)
	}
	return ckptSidecarDir, ckptPlainDir
}

func benchCheckpointRecovery(b *testing.B, dir string, wantRestored int) {
	cfg := wal.DefaultConfig(dir)
	cfg.SyncPolicy = "off"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := storage.NewStore()
		ckptAttachSubscribers(store)
		mgr, info, err := wal.Open(store, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if info.Queries != ckptRecoveryRecords {
			b.Fatalf("recovered %d queries, want %d", info.Queries, ckptRecoveryRecords)
		}
		if len(info.CheckpointRestored) != wantRestored {
			b.Fatalf("restored %v / rebuilt %v, want %d checkpoint restores",
				info.CheckpointRestored, info.CheckpointRebuilt, wantRestored)
		}
		if err := mgr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoveryWithCheckpoint restarts a durable 50k-query CQMS store
// whose snapshot carries derived-state checkpoints: stats counters, miner
// feed and session windows all restore from sidecars instead of rescanning.
func BenchmarkRecoveryWithCheckpoint(b *testing.B) {
	sidecarDir, _ := ckptRecoverySetup(b)
	benchCheckpointRecovery(b, sidecarDir, 3)
}

// BenchmarkRecoveryRebuild is the fallback baseline: the same log compacted
// without sidecars (a legacy snapshot), so every derived-state subscriber
// rebuilds from a full scan — including the session detector's re-sort,
// similarity and structural-diff work.
func BenchmarkRecoveryRebuild(b *testing.B) {
	_, plainDir := ckptRecoverySetup(b)
	benchCheckpointRecovery(b, plainDir, 0)
}

// ---------------------------------------------------------------------------
// Replica catch-up: a follower applying a streamed WAL tail through the
// replication path (CRC frame decode → mutation decode → store.Apply with
// every derived-state subscriber attached).
// ---------------------------------------------------------------------------

var (
	replicaTailOnce sync.Once
	replicaTail     []byte // ckptRecoveryRecords records as streamed CRC frames
	replicaTailErr  error
)

// replicaTailSetup builds (once) a 50k-record WAL and serialises its full
// tail exactly as GET /v1/replication/wal would stream it.
func replicaTailSetup(b *testing.B) []byte {
	b.Helper()
	replicaTailOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cqms-replica-bench-")
		if err != nil {
			replicaTailErr = err
			return
		}
		store := storage.NewStore()
		cfg := wal.DefaultConfig(dir)
		cfg.SyncPolicy = "off"
		mgr, _, err := wal.Open(store, cfg)
		if err != nil {
			replicaTailErr = err
			return
		}
		rec, err := storage.NewRecordFromSQL("SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15")
		if err != nil {
			replicaTailErr = err
			return
		}
		clock := time.Date(2026, 1, 5, 9, 0, 0, 0, time.UTC)
		for i := 0; i < ckptRecoveryRecords; i++ {
			clock = clock.Add(30 * time.Second)
			r := rec.Clone()
			r.User = fmt.Sprintf("user%02d", i%40)
			r.IssuedAt = clock
			store.Put(r)
		}
		var buf bytes.Buffer
		if _, _, err := mgr.ReadTail(0, 1<<40, &buf); err != nil {
			replicaTailErr = err
			return
		}
		replicaTail = buf.Bytes()
		replicaTailErr = mgr.Close()
	})
	if replicaTailErr != nil {
		b.Fatal(replicaTailErr)
	}
	return replicaTail
}

// BenchmarkReplicaCatchUp measures a follower replaying a 50k-record WAL
// tail from scratch: the cost of bringing a fresh read replica level with
// the primary, derived state included.
func BenchmarkReplicaCatchUp(b *testing.B) {
	tail := replicaTailSetup(b)
	b.SetBytes(int64(len(tail)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := storage.NewStore()
		ckptAttachSubscribers(store)
		err := wal.ReadFrames(bytes.NewReader(tail), func(seq uint64, payload []byte) error {
			m, err := storage.DecodeMutation(payload)
			if err != nil {
				return err
			}
			return store.Apply(m)
		})
		if err != nil {
			b.Fatal(err)
		}
		if got := store.Count(); got != ckptRecoveryRecords {
			b.Fatalf("replayed %d records, want %d", got, ckptRecoveryRecords)
		}
	}
}

// Guard: the fixture must look like the workload DESIGN.md describes.
func TestBenchFixtureShape(t *testing.T) {
	f := benchFixture(&testing.B{})
	if f.store.Count() < 500 {
		t.Errorf("fixture has only %d queries", f.store.Count())
	}
	if len(f.trace.Users) != 20 {
		t.Errorf("fixture users = %d", len(f.trace.Users))
	}
	if f.mining == nil || len(f.mining.Rules) == 0 {
		t.Errorf("fixture mining result empty")
	}
	if f.eng.Catalog().Version() == 0 {
		t.Errorf("engine catalog empty")
	}
	elapsed := time.Duration(0)
	for _, rec := range f.records {
		elapsed += rec.Stats.ExecTime
	}
	if elapsed == 0 {
		t.Errorf("no runtime statistics recorded")
	}
}

// ---------------------------------------------------------------------------
// HTTP serving path — the v1 API end to end (router, middleware, principal
// headers, JSON codec, pagination) over the shared fixture.
// ---------------------------------------------------------------------------

// httpFixture starts an httptest server over the shared benchfixture CQMS.
func httpFixture(b *testing.B) (*httptest.Server, *client.Client) {
	b.Helper()
	f := benchFixture(b)
	ts := httptest.NewServer(server.New(f.sys).Handler())
	b.Cleanup(ts.Close)
	return ts, client.New(ts.URL, client.WithUser("bench"), client.WithAdmin())
}

// BenchmarkHTTPSearchKeyword measures one keyword-search round trip over the
// v1 API: request decode, header principal, ctx-aware scan, pagination and
// response encode.
func BenchmarkHTTPSearchKeyword(b *testing.B) {
	ts, c := httpFixture(b)
	_ = ts
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matches, err := c.SearchKeyword(ctx, "salinity").All()
		if err != nil {
			b.Fatal(err)
		}
		if len(matches) == 0 {
			b.Fatal("no matches over HTTP")
		}
	}
}

// BenchmarkHTTPSubmitSingle vs BenchmarkHTTPSubmitBatch shows what the batch
// endpoint buys: one round trip and one commit-lock acquisition per
// batchSize queries instead of per query. ns/op is per query in both.
const httpBatchSize = 50

func BenchmarkHTTPSubmitSingle(b *testing.B) {
	ts, c := httpFixture(b)
	_ = ts
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Submit(ctx, "SELECT Stations.name FROM Stations ORDER BY Stations.name")
		if err != nil {
			b.Fatal(err)
		}
		if resp.QueryID == 0 {
			b.Fatal("no query id")
		}
	}
}

func BenchmarkHTTPSubmitBatch(b *testing.B) {
	ts, c := httpFixture(b)
	_ = ts
	ctx := context.Background()
	queries := make([]server.SubmitParams, httpBatchSize)
	for i := range queries {
		queries[i] = server.SubmitParams{SQL: "SELECT Stations.name FROM Stations ORDER BY Stations.name"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; submitted += httpBatchSize {
		resp, err := c.SubmitBatch(ctx, queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range resp.Results {
			if res.Error != nil {
				b.Fatalf("batch item failed: %v", res.Error)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Telemetry layer — the instrumentation itself must be cheap enough to sit
// on every commit and every request.
// ---------------------------------------------------------------------------

// BenchmarkTelemetryCounterHotPath measures one counter increment — the cost
// added to every instrumented event. It must stay low-single-digit ns and
// zero-alloc; the CI benchgate holds the allocation count at zero.
func BenchmarkTelemetryCounterHotPath(b *testing.B) {
	reg := telemetry.NewRegistry()
	ctr := reg.Counter("bench_events_total", "benchmark counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr.Inc()
	}
	if ctr.Value() != uint64(b.N) {
		b.Fatalf("count = %d, want %d", ctr.Value(), b.N)
	}
}

// BenchmarkHTTPSubmitBatchInstrumented is BenchmarkHTTPSubmitBatch's shape
// with the full telemetry stack engaged end to end (HTTP middleware,
// per-route series, store mutation counters, commit-lock hold and bus
// callback timing): the delta between the two is the total instrumentation
// overhead of the hottest write path. ns/op is per query.
func BenchmarkHTTPSubmitBatchInstrumented(b *testing.B) {
	ts, c := httpFixture(b)
	_ = ts
	ctx := context.Background()
	queries := make([]server.SubmitParams, httpBatchSize)
	for i := range queries {
		queries[i] = server.SubmitParams{SQL: "SELECT Stations.name FROM Stations ORDER BY Stations.name"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for submitted := 0; submitted < b.N; submitted += httpBatchSize {
		resp, err := c.SubmitBatch(ctx, queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, res := range resp.Results {
			if res.Error != nil {
				b.Fatalf("batch item failed: %v", res.Error)
			}
		}
	}
}
