// Command cqms-bench runs the experiment harness of DESIGN.md (E1–E9) and
// prints, for every experiment, the paper's qualitative claim next to the
// values measured on the synthetic workload. Its output is what
// EXPERIMENTS.md records.
//
// Usage:
//
//	cqms-bench -rows 1000 -users 20 -sessions 10
//	cqms-bench -only E3,E4
//	cqms-bench -json > results.jsonl
//
// With -json each experiment is emitted as one JSON object per line, so the
// perf/quality trajectory can be tracked across PRs by machines instead of
// prose.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		rows     = flag.Int("rows", 1000, "rows per measurement table")
		users    = flag.Int("users", 20, "synthetic users")
		sessions = flag.Int("sessions", 10, "sessions per user")
		seed     = flag.Int64("seed", 42, "workload seed")
		only     = flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
		asJSON   = flag.Bool("json", false, "emit one JSON object per experiment instead of text")
	)
	flag.Parse()

	opts := experiments.Options{
		RowsPerTable:    *rows,
		Users:           *users,
		SessionsPerUser: *sessions,
		Seed:            *seed,
	}
	if !*asJSON {
		fmt.Printf("CQMS experiment harness — rows/table=%d users=%d sessions/user=%d seed=%d\n",
			opts.RowsPerTable, opts.Users, opts.SessionsPerUser, opts.Seed)
	}

	start := time.Now()
	env, err := experiments.NewEnv(opts)
	if err != nil {
		log.Fatalf("building experiment environment: %v", err)
	}
	if !*asJSON {
		fmt.Printf("environment ready in %s: %d logged queries from %d users\n\n",
			time.Since(start).Round(time.Millisecond), env.Sys.Store().Count(), len(env.Trace.Users))
	}

	results, err := experiments.RunAll(env)
	if err != nil {
		log.Fatalf("running experiments: %v", err)
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	enc := json.NewEncoder(os.Stdout)
	for _, res := range results {
		if len(wanted) > 0 && !wanted[res.ID] {
			continue
		}
		if *asJSON {
			if err := enc.Encode(res); err != nil {
				log.Fatalf("encoding result %s: %v", res.ID, err)
			}
			continue
		}
		fmt.Println(res.Format())
	}
	if !*asJSON {
		fmt.Printf("total harness time: %s\n", time.Since(start).Round(time.Millisecond))
	}
}
