// Command cqms-benchgate is the CI perf-regression gate: it parses `go test
// -bench` output into a machine-readable BENCH_<sha>.json and fails when any
// benchmark regressed beyond a ratio against a committed baseline — on time
// (ns/op) and, when the run used -benchmem, on allocation count (allocs/op).
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchmem -count 3 . | tee bench.out
//	cqms-benchgate -in bench.out -out BENCH_$(git rev-parse --short HEAD).json \
//	    -baseline BENCH_BASELINE.json -max-ratio 2.0 -max-alloc-ratio 2.0
//
// With -count > 1 the best (minimum) value per benchmark and metric is kept,
// which filters scheduler noise on shared CI runners; the 2x default ratios
// leave headroom for machine-class differences between the baseline host and
// the runner. Allocation counts are far more stable than wall time, but the
// shared ratio keeps one mental model for both gates. Regenerate the baseline
// (-in ... -out BENCH_BASELINE.json, no -baseline) whenever a PR
// intentionally changes the performance envelope.
//
// With -slo it instead gates an open-loop load-harness report (the JSON
// written by `cqms-workload -openloop -json`) against absolute service-level
// floors — minimum achieved throughput and maximum p99 latency — so CI can
// assert "the server sustains N req/s at p99 ≤ M ms", not just relative
// microbenchmark ratios:
//
//	cqms-benchgate -slo report.json -slo-min-qps 150 -slo-max-p99-ms 250
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/workload/openloop"
)

// Result is one benchmark's best observed cost. AllocsPerOp is a pointer so
// that a measured zero (an allocation-free path, worth gating) is distinct
// from a run without -benchmem (nothing to gate).
type Result struct {
	NsPerOp     float64  `json:"nsPerOp"`
	AllocsPerOp *float64 `json:"allocsPerOp,omitempty"`
	Runs        int      `json:"runs"`
}

// Report is the BENCH_<sha>.json artifact.
type Report struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkHTTPSubmitBatch-8   	     100	    123456 ns/op	  2048 B/op	  12 allocs/op
//
// Sub-benchmark names (slashes, key=value) pass through; the trailing
// -GOMAXPROCS suffix is stripped so runs from differently sized machines
// aggregate under one name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

var allocsField = regexp.MustCompile(`([0-9.]+) allocs/op`)

// parseBench aggregates benchmark lines, keeping the minimum ns/op per name.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", sc.Text(), err)
		}
		res := out[name]
		res.Runs++
		if res.Runs == 1 || ns < res.NsPerOp {
			res.NsPerOp = ns
		}
		// Each metric keeps its own minimum: the fastest run is not always
		// the leanest one, and the gate wants the best observed cost per axis.
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			if a, err := strconv.ParseFloat(am[1], 64); err == nil {
				if res.AllocsPerOp == nil || a < *res.AllocsPerOp {
					res.AllocsPerOp = &a
				}
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// regression is one gate violation on one metric (ns/op or allocs/op).
type regression struct {
	name              string
	metric            string
	baseline, current float64
	ratio             float64
}

// gate compares current results against the baseline on both time and
// allocation budgets. A benchmark present in the baseline but absent from the
// run fails the gate too — silently dropping a benchmark from CI must not
// pass as a perf win; the same applies to dropping -benchmem when the
// baseline carries an allocation budget. A zero-alloc baseline is a hard
// budget: any allocation at all fails it, since no ratio can express
// "regressed from nothing".
func gate(current, baseline map[string]Result, maxRatio, maxAllocRatio float64) (regressions []regression, missing []string) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if base.NsPerOp > 0 && cur.NsPerOp > maxRatio*base.NsPerOp {
			regressions = append(regressions, regression{
				name: name, metric: "ns/op", baseline: base.NsPerOp, current: cur.NsPerOp,
				ratio: cur.NsPerOp / base.NsPerOp,
			})
		}
		if base.AllocsPerOp == nil {
			continue
		}
		b := *base.AllocsPerOp
		switch {
		case cur.AllocsPerOp == nil:
			missing = append(missing, name+" allocs/op (baseline has an alloc budget; run with -benchmem)")
		case b == 0 && *cur.AllocsPerOp > 0:
			regressions = append(regressions, regression{
				name: name, metric: "allocs/op", baseline: 0, current: *cur.AllocsPerOp,
				ratio: math.Inf(1),
			})
		case b > 0 && *cur.AllocsPerOp > maxAllocRatio*b:
			regressions = append(regressions, regression{
				name: name, metric: "allocs/op", baseline: b, current: *cur.AllocsPerOp,
				ratio: *cur.AllocsPerOp / b,
			})
		}
	}
	return regressions, missing
}

// gateSLO applies absolute floors to an open-loop harness report. The report
// may be a single object or an array (a rate sweep); a sweep passes when its
// LAST entry meets the SLO, matching a sweep ordered from low to high rates.
func gateSLO(path string, slo openloop.SLO) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep openloop.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		var reps []openloop.Report
		if err2 := json.Unmarshal(data, &reps); err2 != nil || len(reps) == 0 {
			return fmt.Errorf("parsing SLO report %s: %w", path, err)
		}
		rep = reps[len(reps)-1]
	}
	fmt.Print(rep.Format())
	violations := rep.CheckSLO(slo)
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "GATE: %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO gate failed: %d violation(s)", len(violations))
	}
	fmt.Printf("SLO gate passed: %.1f qps at p99 %.1fms (floors: ≥%.1f qps, ≤%.1fms)\n",
		rep.AchievedQPS, rep.Overall.P99Ms, slo.MinQPS, slo.MaxP99Ms)
	return nil
}

func run() error {
	var (
		in            = flag.String("in", "-", "benchmark output to parse (file, or - for stdin)")
		out           = flag.String("out", "", "write the parsed results as JSON to this file")
		baseline      = flag.String("baseline", "", "baseline JSON to gate against (omit to only record)")
		maxRatio      = flag.Float64("max-ratio", 2.0, "fail when ns/op exceeds ratio × baseline")
		maxAllocRatio = flag.Float64("max-alloc-ratio", 2.0, "fail when allocs/op exceeds ratio × baseline (a 0-alloc baseline fails on any allocation)")

		sloIn       = flag.String("slo", "", "open-loop harness report JSON to gate against absolute SLO floors (disables the benchmark gate)")
		sloMinQPS   = flag.Float64("slo-min-qps", 0, "fail when achieved throughput is below this floor")
		sloMaxP99   = flag.Float64("slo-max-p99-ms", 0, "fail when overall p99 latency exceeds this bound in ms")
		sloMaxFails = flag.Float64("slo-max-failure-rate", 0.01, "fail when the request failure rate exceeds this fraction")
	)
	flag.Parse()

	if *sloIn != "" {
		return gateSLO(*sloIn, openloop.SLO{
			MinQPS:         *sloMinQPS,
			MaxP99Ms:       *sloMaxP99,
			MaxFailureRate: *sloMaxFails,
		})
	}

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found in %s", *in)
	}
	report := Report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Benchmarks: results}
	if *out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmark results to %s\n", len(results), *out)
	}
	if *baseline == "" {
		return nil
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	var baseReport Report
	if err := json.Unmarshal(baseData, &baseReport); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", *baseline, err)
	}
	regressions, missing := gate(results, baseReport.Benchmarks, *maxRatio, *maxAllocRatio)
	for name, res := range results {
		allocs := ""
		if res.AllocsPerOp != nil {
			allocs = fmt.Sprintf("  %6.0f allocs/op", *res.AllocsPerOp)
		}
		if base, ok := baseReport.Benchmarks[name]; ok && base.NsPerOp > 0 {
			fmt.Printf("%-50s %14.0f ns/op  baseline %14.0f  ratio %.2fx%s\n",
				name, res.NsPerOp, base.NsPerOp, res.NsPerOp/base.NsPerOp, allocs)
		} else {
			fmt.Printf("%-50s %14.0f ns/op  (no baseline — add on next regen)%s\n", name, res.NsPerOp, allocs)
		}
	}
	failed := false
	for _, m := range missing {
		fmt.Fprintf(os.Stderr, "GATE: benchmark %s is in the baseline but was not run\n", m)
		failed = true
	}
	for _, r := range regressions {
		limit := *maxRatio
		if r.metric == "allocs/op" {
			limit = *maxAllocRatio
		}
		fmt.Fprintf(os.Stderr, "GATE: %s regressed %.2fx (%.0f -> %.0f %s, limit %.1fx)\n",
			r.name, r.ratio, r.baseline, r.current, r.metric, limit)
		failed = true
	}
	if failed {
		return fmt.Errorf("perf gate failed: %d regression(s), %d missing benchmark(s)", len(regressions), len(missing))
	}
	fmt.Printf("perf gate passed: %d benchmarks within %.1fx of baseline\n", len(results), *maxRatio)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cqms-benchgate:", err)
		os.Exit(1)
	}
}
