package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE3CompletionIncremental-8   	   20000	     55000 ns/op	 12000 B/op	 150 allocs/op
BenchmarkE3CompletionIncremental-8   	   21000	     52000 ns/op	 12000 B/op	 149 allocs/op
BenchmarkConcurrentMetaQuery/readers=4-8 	    5000	    230000 ns/op
BenchmarkHTTPSubmitBatch 	     300	   4100000 ns/op	 90000 B/op	 800 allocs/op
BenchmarkRecoveryWithCheckpoint 	       2	1021374038 ns/op	201628820 B/op	 2122579 allocs/op
PASS
ok  	repro	17.497s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(results), results)
	}
	// -count aggregation keeps the minimum and counts the runs.
	inc := results["E3CompletionIncremental"]
	if inc.NsPerOp != 52000 || inc.Runs != 2 {
		t.Errorf("E3CompletionIncremental = %+v, want min 52000 over 2 runs", inc)
	}
	if inc.AllocsPerOp != 149 {
		t.Errorf("AllocsPerOp = %v, want 149", inc.AllocsPerOp)
	}
	// Sub-benchmark names survive; the -GOMAXPROCS suffix is stripped.
	if _, ok := results["ConcurrentMetaQuery/readers=4"]; !ok {
		t.Errorf("sub-benchmark name mangled: %+v", results)
	}
	// Lines without a -procs suffix parse too.
	if results["HTTPSubmitBatch"].NsPerOp != 4100000 {
		t.Errorf("HTTPSubmitBatch = %+v", results["HTTPSubmitBatch"])
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]Result{
		"Fast":    {NsPerOp: 1000},
		"Slow":    {NsPerOp: 1_000_000},
		"Dropped": {NsPerOp: 500},
	}
	current := map[string]Result{
		"Fast": {NsPerOp: 1900},      // 1.9x: within the 2x gate
		"Slow": {NsPerOp: 2_100_000}, // 2.1x: regression
		"New":  {NsPerOp: 42},        // not gated
	}
	regressions, missing := gate(current, baseline, 2.0)
	if len(regressions) != 1 || regressions[0].name != "Slow" {
		t.Fatalf("regressions = %+v, want only Slow", regressions)
	}
	if regressions[0].ratio < 2.09 || regressions[0].ratio > 2.11 {
		t.Errorf("ratio = %v, want ~2.1", regressions[0].ratio)
	}
	if len(missing) != 1 || missing[0] != "Dropped" {
		t.Fatalf("missing = %v, want [Dropped]", missing)
	}
	if r, m := gate(current, baseline, 3.0); len(r) != 0 || len(m) != 1 {
		t.Errorf("3x gate: regressions=%v missing=%v", r, m)
	}
}
