package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE3CompletionIncremental-8   	   20000	     55000 ns/op	 12000 B/op	 150 allocs/op
BenchmarkE3CompletionIncremental-8   	   21000	     52000 ns/op	 12000 B/op	 149 allocs/op
BenchmarkConcurrentMetaQuery/readers=4-8 	    5000	    230000 ns/op
BenchmarkHTTPSubmitBatch 	     300	   4100000 ns/op	 90000 B/op	 800 allocs/op
BenchmarkRecoveryWithCheckpoint 	       2	1021374038 ns/op	201628820 B/op	 2122579 allocs/op
PASS
ok  	repro	17.497s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(results), results)
	}
	// -count aggregation keeps the minimum and counts the runs.
	inc := results["E3CompletionIncremental"]
	if inc.NsPerOp != 52000 || inc.Runs != 2 {
		t.Errorf("E3CompletionIncremental = %+v, want min 52000 over 2 runs", inc)
	}
	if inc.AllocsPerOp == nil || *inc.AllocsPerOp != 149 {
		t.Errorf("AllocsPerOp = %v, want 149", inc.AllocsPerOp)
	}
	// No -benchmem fields → no alloc budget, not a measured zero.
	if cmq := results["ConcurrentMetaQuery/readers=4"]; cmq.AllocsPerOp != nil {
		t.Errorf("AllocsPerOp = %v, want nil for a run without -benchmem", *cmq.AllocsPerOp)
	}
	// Sub-benchmark names survive; the -GOMAXPROCS suffix is stripped.
	if _, ok := results["ConcurrentMetaQuery/readers=4"]; !ok {
		t.Errorf("sub-benchmark name mangled: %+v", results)
	}
	// Lines without a -procs suffix parse too.
	if results["HTTPSubmitBatch"].NsPerOp != 4100000 {
		t.Errorf("HTTPSubmitBatch = %+v", results["HTTPSubmitBatch"])
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]Result{
		"Fast":    {NsPerOp: 1000},
		"Slow":    {NsPerOp: 1_000_000},
		"Dropped": {NsPerOp: 500},
	}
	current := map[string]Result{
		"Fast": {NsPerOp: 1900},      // 1.9x: within the 2x gate
		"Slow": {NsPerOp: 2_100_000}, // 2.1x: regression
		"New":  {NsPerOp: 42},        // not gated
	}
	regressions, missing := gate(current, baseline, 2.0, 2.0)
	if len(regressions) != 1 || regressions[0].name != "Slow" {
		t.Fatalf("regressions = %+v, want only Slow", regressions)
	}
	if regressions[0].ratio < 2.09 || regressions[0].ratio > 2.11 {
		t.Errorf("ratio = %v, want ~2.1", regressions[0].ratio)
	}
	if len(missing) != 1 || missing[0] != "Dropped" {
		t.Fatalf("missing = %v, want [Dropped]", missing)
	}
	if r, m := gate(current, baseline, 3.0, 3.0); len(r) != 0 || len(m) != 1 {
		t.Errorf("3x gate: regressions=%v missing=%v", r, m)
	}
}

func allocs(n float64) *float64 { return &n }

// TestGateAllocs drives the allocation budget through synthetic benchmark
// output end to end: parse the baseline run, parse the current run, gate.
func TestGateAllocs(t *testing.T) {
	baseRun := `
BenchmarkLogAppend-8      	 1000000	      1300 ns/op	     475 B/op	       0 allocs/op
BenchmarkWALAppend/sync=always-8 	    9000	    160000 ns/op	    1600 B/op	      18 allocs/op
BenchmarkIngest-8         	   30000	     36000 ns/op	    1650 B/op	      18 allocs/op
BenchmarkUntracked-8      	    5000	    230000 ns/op
PASS
`
	curRun := `
BenchmarkLogAppend-8      	 1000000	      1250 ns/op	     480 B/op	       1 allocs/op
BenchmarkWALAppend/sync=always-8 	    9000	    158000 ns/op	    5000 B/op	      40 allocs/op
BenchmarkIngest-8         	   30000	     35000 ns/op	    1700 B/op	      20 allocs/op
BenchmarkUntracked-8      	    5000	    231000 ns/op
PASS
`
	baseline, err := parseBench(strings.NewReader(baseRun))
	if err != nil {
		t.Fatal(err)
	}
	current, err := parseBench(strings.NewReader(curRun))
	if err != nil {
		t.Fatal(err)
	}
	regressions, missing := gate(current, baseline, 2.0, 2.0)
	if len(missing) != 0 {
		t.Fatalf("missing = %v, want none", missing)
	}
	// Every ns/op is within 2x; the failures must all be allocation budgets:
	// 0 → 1 breaks a zero-alloc budget outright, 18 → 40 exceeds 2x, and
	// 18 → 20 is within budget.
	want := map[string]bool{"LogAppend": true, "WALAppend/sync=always": true}
	for _, r := range regressions {
		if r.metric != "allocs/op" {
			t.Errorf("unexpected %s regression: %+v", r.metric, r)
			continue
		}
		if !want[r.name] {
			t.Errorf("unexpected alloc regression: %+v", r)
		}
		delete(want, r.name)
	}
	for name := range want {
		t.Errorf("alloc regression for %s not reported", name)
	}

	// Dropping -benchmem from the run while the baseline has a budget is a
	// gate failure, not a silent pass.
	noMem, err := parseBench(strings.NewReader(`
BenchmarkLogAppend-8      	 1000000	      1250 ns/op
BenchmarkWALAppend/sync=always-8 	    9000	    158000 ns/op
BenchmarkIngest-8         	   30000	     35000 ns/op
BenchmarkUntracked-8      	    5000	    231000 ns/op
PASS
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, missing := gate(noMem, baseline, 2.0, 2.0); len(missing) != 3 {
		t.Errorf("missing = %v, want the 3 benchmarks with alloc budgets", missing)
	}

	// A measured zero in the current run against a zero baseline passes.
	if r, _ := gate(baseline, baseline, 2.0, 2.0); len(r) != 0 {
		t.Errorf("self-gate regressions = %+v, want none", r)
	}
}

func TestGateAllocUnits(t *testing.T) {
	baseline := map[string]Result{"B": {NsPerOp: 100, AllocsPerOp: allocs(10)}}
	current := map[string]Result{"B": {NsPerOp: 100, AllocsPerOp: allocs(21)}}
	r, _ := gate(current, baseline, 2.0, 2.0)
	if len(r) != 1 || r[0].metric != "allocs/op" || r[0].ratio != 2.1 {
		t.Fatalf("regressions = %+v, want one allocs/op at 2.1x", r)
	}
	// Raising only the alloc ratio clears it.
	if r, _ := gate(current, baseline, 2.0, 2.5); len(r) != 0 {
		t.Fatalf("regressions = %+v, want none at 2.5x alloc ratio", r)
	}
}
