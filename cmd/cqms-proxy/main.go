// Command cqms-proxy is the passive query-log collector: a PostgreSQL
// wire-protocol (v3) man-in-the-middle proxy. Point any Postgres client
// (psql, JDBC, a BI tool) at the proxy instead of the database; the proxy
// splices bytes between client and backend unchanged — same auth, same
// results — while every statement observed on the wire is canonicalised,
// fingerprinted and logged in the CQMS, realising the paper's premise that
// the query log is collected "as a side effect of normal DBMS use".
//
// Capture is fully asynchronous: observed statements enter a bounded queue
// drained in batches, and when the queue is full statements are dropped and
// counted (cqms_proxy_statements_dropped_total) rather than ever delaying
// the proxied session.
//
// Usage:
//
//	# Embedded CQMS (optionally durable with -data-dir):
//	cqms-proxy -listen :6432 -backend db.internal:5432 -data-dir /var/lib/cqms
//
//	# Forward captured statements to a running cqms-server instead:
//	cqms-proxy -listen :6432 -backend db.internal:5432 -server http://cqms:8080
//
//	# Self-contained demo without a real Postgres (in-process fake backend):
//	cqms-proxy -listen :6432 -fake-backend
//	psql "host=localhost port=6432 user=alice dbname=limnology"
//
// The admin endpoint (-admin) serves GET /v1/proxy/status (uptime, active
// connections, captured/dropped totals — `cqmsctl proxy status` reads it)
// and GET /v1/metrics (Prometheus exposition of the cqms_proxy_* families,
// plus the embedded system's families in embedded mode).
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/pgwire"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

func main() {
	var (
		listen      = flag.String("listen", ":6432", "frontend listen address (what psql connects to)")
		backendAddr = flag.String("backend", "", "backend Postgres-protocol address to forward to")
		fakeBackend = flag.Bool("fake-backend", false, "start an in-process fake backend instead of forwarding to a real one (demo mode)")
		adminAddr   = flag.String("admin", ":6433", "admin HTTP address for /v1/proxy/status and /v1/metrics (empty disables)")
		serverURL   = flag.String("server", "", "submit captured statements to this cqms-server over the v1 API instead of an embedded CQMS")
		dataDir     = flag.String("data-dir", "", "embedded mode: durable query-log directory (empty: in-memory)")
		syncPolicy  = flag.String("sync", "interval", "embedded mode WAL fsync policy: always, interval or off")
		queueLen    = flag.Int("queue", 4096, "capture queue length (statements dropped with a counter beyond it)")
		batchSize   = flag.Int("batch", 256, "statements per sink batch")
		flushEvery  = flag.Duration("flush", 100*time.Millisecond, "max time a captured statement waits in a partial batch")
		visibility  = flag.String("visibility", "group", "visibility captured queries are logged with: private, group or public")
		groupFrom   = flag.String("group-from", "database", "CQMS group for captured queries: 'database' (the session's database), or a literal group name")
		dialTimeout = flag.Duration("dial-timeout", 5*time.Second, "backend dial timeout")
	)
	flag.Parse()

	if *backendAddr == "" && !*fakeBackend {
		log.Fatal("cqms-proxy: -backend is required (or use -fake-backend for the demo mode)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *fakeBackend {
		fb, err := pgwire.NewFakeBackend("127.0.0.1:0")
		if err != nil {
			log.Fatalf("cqms-proxy: starting fake backend: %v", err)
		}
		defer fb.Close()
		*backendAddr = fb.Addr()
		log.Printf("in-process fake backend listening on %s", *backendAddr)
	}

	// Principal mapping: the session's startup user is the CQMS user; the
	// group comes from the database name (the paper's shared-database =
	// collaborating-group setting) or a fixed name.
	vis := parseVisibility(*visibility)
	mapper := func(user, database string) pgwire.Identity {
		group := *groupFrom
		if group == "database" {
			group = database
		}
		return pgwire.Identity{User: user, Group: group, Visibility: vis}
	}

	// The sink: embedded CQMS by default, remote cqms-server with -server.
	reg := telemetry.NewRegistry()
	var sink pgwire.Sink
	var embedded *core.CQMS
	if *serverURL != "" {
		base := client.New(*serverURL)
		sink = pgwire.NewClientSink(base, mapper)
		log.Printf("capturing to remote cqms-server at %s", *serverURL)
	} else {
		cfg := core.DefaultConfig()
		// Passive capture must not silently drop what it cannot parse.
		cfg.Profiler.CaptureParseErrors = true
		cfg.Metrics = reg
		if *dataDir != "" {
			cfg.Durability = wal.DefaultConfig(*dataDir)
			cfg.Durability.SyncPolicy = *syncPolicy
		}
		var err error
		embedded, err = core.Open(cfg)
		if err != nil {
			log.Fatalf("cqms-proxy: opening embedded CQMS: %v", err)
		}
		if rec := embedded.Recovery(); rec != nil {
			log.Printf("recovered durable query log from %s: %d queries", *dataDir, rec.Queries)
		}
		sink = &pgwire.CoreSink{CQMS: embedded, Map: mapper}
		embedded.StartBackground(ctx)
		log.Printf("capturing to embedded CQMS (durable: %v)", *dataDir != "")
	}

	proxy := pgwire.NewProxy(sink, pgwire.Config{
		Backend:     *backendAddr,
		DialTimeout: *dialTimeout,
		Map:         mapper,
		Capture: pgwire.CaptureConfig{
			Queue: *queueLen, Batch: *batchSize, FlushEvery: *flushEvery,
		},
		Metrics: reg,
	})

	if *adminAddr != "" {
		adminSrv := &http.Server{
			Addr:              *adminAddr,
			Handler:           proxy.AdminHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("admin endpoint on %s (/v1/proxy/status, /v1/metrics)", *adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin endpoint: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = adminSrv.Shutdown(shutdownCtx)
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cqms-proxy: listen %s: %v", *listen, err)
	}
	log.Printf("proxying %s -> %s", *listen, *backendAddr)
	if err := proxy.Serve(ctx, ln); err != nil && ctx.Err() == nil {
		log.Printf("proxy: %v", err)
	}
	// Drain in-flight sessions and flush the capture queue before exiting.
	proxy.Close()
	if embedded != nil {
		if err := embedded.Close(); err != nil {
			log.Printf("warning: closing durable query log: %v", err)
		}
	}
	st := proxy.Status()
	log.Printf("cqms-proxy stopped: %d connections, %d statements captured, %d dropped",
		st.TotalConnections, st.StatementsCaptured, st.StatementsDropped)
}

// parseVisibility maps the flag onto the storage visibility levels.
func parseVisibility(s string) storage.Visibility {
	switch s {
	case "private":
		return storage.VisibilityPrivate
	case "public":
		return storage.VisibilityPublic
	default:
		return storage.VisibilityGroup
	}
}
