// Command cqms-server runs the CQMS server of Figure 4 over HTTP: an embedded
// scientific database, the Query Profiler / Storage / Meta-query Executor /
// Miner / Maintenance stack, and the JSON API consumed by cqmsctl and the
// examples.
//
// Usage:
//
//	cqms-server -addr :8080 -rows 2000 -seed 1 -replay-users 10
//	cqms-server -addr :8080 -data-dir /var/lib/cqms
//	cqms-server -addr :8081 -follow http://primary:8080 -replay-users 0
//
// With -data-dir the query log is durable: every mutation is appended to a
// segmented write-ahead log and the store is snapshotted periodically, so a
// restart recovers the full log (snapshot + WAL tail replay) instead of
// starting empty. With -replay-users > 0 the server pre-loads a synthetic
// multi-user trace so that search, recommendation and session browsing have
// something to work with immediately; replay is skipped when a data
// directory already holds recovered queries.
//
// With -follow the server runs as a read replica: it bootstraps from the
// primary's newest snapshot over GET /v1/replication/snapshot, tails its WAL
// stream, and serves the read surface (search, history, sessions, assist,
// stats) from the replicated state. Writes are refused with a read_only
// envelope naming the primary. -follow is incompatible with -data-dir — a
// follower keeps no local log, it re-bootstraps on restart.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

func main() {
	var (
		addr              = flag.String("addr", ":8080", "listen address")
		rows              = flag.Int("rows", 2000, "rows per measurement table in the synthetic database")
		seed              = flag.Int64("seed", 1, "random seed for data and trace generation")
		replayUsers       = flag.Int("replay-users", 10, "number of synthetic users to replay at startup (0 disables)")
		replaySessions    = flag.Int("replay-sessions", 5, "sessions per synthetic user to replay at startup")
		miningInterval    = flag.Duration("mine-every", time.Minute, "background mining interval")
		maintainInterval  = flag.Duration("maintain-every", 5*time.Minute, "background maintenance interval")
		dataDir           = flag.String("data-dir", "", "directory for the durable query log (empty: in-memory only)")
		follow            = flag.String("follow", "", "run as a read replica of the primary at this base URL (incompatible with -data-dir)")
		syncPolicy        = flag.String("sync", "interval", "WAL fsync policy: always, interval or off")
		groupWindow       = flag.Duration("wal-group-window", 0, "group-commit accumulation window: extra latency the WAL committer waits to batch concurrent appends into one fsync (0: batch only what arrives while the previous fsync runs)")
		segmentBytes      = flag.Int64("segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation threshold")
		snapshotEvery     = flag.Duration("snapshot-every", 5*time.Minute, "background snapshot/compaction interval")
		readHeaderTimeout = flag.Duration("read-header-timeout", 10*time.Second, "HTTP read-header timeout")
		readTimeout       = flag.Duration("read-timeout", 30*time.Second, "HTTP read timeout")
		writeTimeout      = flag.Duration("write-timeout", time.Minute, "HTTP write timeout (bounds slow scans)")
		idleTimeout       = flag.Duration("idle-timeout", 2*time.Minute, "HTTP keep-alive idle timeout")
		captureParseErrs  = flag.Bool("capture-parse-errors", false, "log unparsable submissions as raw records (parse_error class) instead of rejecting them; enable when a cqms-proxy submits passively captured traffic here")
		accessLog         = flag.Bool("access-log", true, "log one line per request")
		slowRequest       = flag.Duration("slow-request", time.Second, "log requests slower than this with their request ID (0 disables)")
	)
	flag.Parse()

	eng := engine.New()
	log.Printf("populating synthetic scientific database (%d rows per table)", *rows)
	if err := workload.Populate(eng, *rows, *seed); err != nil {
		log.Fatalf("populating database: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.MiningInterval = *miningInterval
	cfg.MaintenanceInterval = *maintainInterval
	cfg.Profiler.CaptureParseErrors = *captureParseErrs
	if *dataDir != "" {
		cfg.Durability = wal.DefaultConfig(*dataDir)
		cfg.Durability.SyncPolicy = *syncPolicy
		cfg.Durability.GroupWindow = *groupWindow
		cfg.Durability.SegmentBytes = *segmentBytes
		cfg.Durability.SnapshotEvery = *snapshotEvery
	}
	var cqms *core.CQMS
	var err error
	if *follow != "" {
		if *dataDir != "" {
			log.Fatalf("-follow is incompatible with -data-dir: a follower keeps no local log")
		}
		if *replayUsers > 0 {
			log.Printf("skipping trace replay: a follower's query log comes from the primary")
			*replayUsers = 0
		}
		// The replication stream is admin-gated; the snapshot transfer can
		// outlast the default client timeout, so give it a generous one.
		source := client.New(*follow, client.WithAdmin(),
			client.WithHTTPClient(&http.Client{Timeout: 2 * time.Minute}))
		cqms, err = core.OpenFollower(eng, cfg, source)
	} else {
		cqms, err = core.OpenWithEngine(eng, cfg)
	}
	if err != nil {
		log.Fatalf("opening CQMS: %v", err)
	}
	if rec := cqms.Recovery(); rec != nil {
		log.Printf("recovered durable query log from %s: %d queries (snapshot seq %d, %d WAL records replayed, torn tail: %v)",
			*dataDir, rec.Queries, rec.SnapshotSeq, rec.Replayed, rec.TornTail)
	}

	if cqms.Store().Count() > 0 {
		// Recovered data: mine it immediately so sessions and recommendations
		// are warm, and don't layer a fresh synthetic trace on top.
		if *replayUsers > 0 {
			log.Printf("skipping trace replay: data directory already holds %d queries", cqms.Store().Count())
			*replayUsers = 0
		}
		res := cqms.RunMiner()
		log.Printf("initial mining pass over recovered log: %d queries, %d rules, %d clusters",
			res.TransactionCount, len(res.Rules), len(res.Clusters))
	}
	if *replayUsers > 0 {
		wcfg := workload.DefaultConfig()
		wcfg.Seed = *seed
		wcfg.Users = *replayUsers
		wcfg.SessionsPerUser = *replaySessions
		trace := workload.Generate(wcfg)
		log.Printf("replaying %d synthetic queries from %d users", len(trace.Queries), *replayUsers)
		prof := profiler.New(eng, cqms.Store(), cfg.Profiler)
		if failures, err := workload.Replay(trace, prof); err != nil {
			log.Fatalf("replaying trace: %v", err)
		} else if failures > 0 {
			log.Printf("warning: %d replayed queries failed to execute", failures)
		}
		res := cqms.RunMiner()
		log.Printf("initial mining pass: %d queries, %d rules, %d clusters",
			res.TransactionCount, len(res.Rules), len(res.Clusters))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cqms.StartBackground(ctx)
	if *follow != "" {
		if err := cqms.StartFollower(ctx); err != nil {
			log.Fatalf("starting replication: %v", err)
		}
		log.Printf("replicating from primary %s", *follow)
	}

	// The middleware chain (request IDs, panic recovery, metrics, access and
	// slow-request logging) lives in the server package; the timeouts guard
	// the listener itself. Slow-request logging needs a logger, so -access-log
	// false also silences it.
	var srvOpts []server.Option
	if *accessLog {
		srvOpts = append(srvOpts, server.WithLogger(log.Default()))
	}
	if *slowRequest > 0 {
		srvOpts = append(srvOpts, server.WithSlowRequests(*slowRequest))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(cqms, srvOpts...).Handler(),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("CQMS server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("server: %v", err)
	}
	// Flush the durable log before exiting so every acknowledged mutation is
	// on disk.
	if err := cqms.Close(); err != nil {
		log.Printf("warning: closing durable query log: %v", err)
	}
	log.Printf("CQMS server stopped")
}
