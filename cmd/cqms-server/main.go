// Command cqms-server runs the CQMS server of Figure 4 over HTTP: an embedded
// scientific database, the Query Profiler / Storage / Meta-query Executor /
// Miner / Maintenance stack, and the JSON API consumed by cqmsctl and the
// examples.
//
// Usage:
//
//	cqms-server -addr :8080 -rows 2000 -seed 1 -replay-users 10
//
// With -replay-users > 0 the server pre-loads a synthetic multi-user trace so
// that search, recommendation and session browsing have something to work
// with immediately.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr             = flag.String("addr", ":8080", "listen address")
		rows             = flag.Int("rows", 2000, "rows per measurement table in the synthetic database")
		seed             = flag.Int64("seed", 1, "random seed for data and trace generation")
		replayUsers      = flag.Int("replay-users", 10, "number of synthetic users to replay at startup (0 disables)")
		replaySessions   = flag.Int("replay-sessions", 5, "sessions per synthetic user to replay at startup")
		miningInterval   = flag.Duration("mine-every", time.Minute, "background mining interval")
		maintainInterval = flag.Duration("maintain-every", 5*time.Minute, "background maintenance interval")
	)
	flag.Parse()

	eng := engine.New()
	log.Printf("populating synthetic scientific database (%d rows per table)", *rows)
	if err := workload.Populate(eng, *rows, *seed); err != nil {
		log.Fatalf("populating database: %v", err)
	}

	cfg := core.DefaultConfig()
	cfg.MiningInterval = *miningInterval
	cfg.MaintenanceInterval = *maintainInterval
	cqms := core.NewWithEngine(eng, cfg)

	if *replayUsers > 0 {
		wcfg := workload.DefaultConfig()
		wcfg.Seed = *seed
		wcfg.Users = *replayUsers
		wcfg.SessionsPerUser = *replaySessions
		trace := workload.Generate(wcfg)
		log.Printf("replaying %d synthetic queries from %d users", len(trace.Queries), *replayUsers)
		prof := profiler.New(eng, cqms.Store(), cfg.Profiler)
		if failures, err := workload.Replay(trace, prof); err != nil {
			log.Fatalf("replaying trace: %v", err)
		} else if failures > 0 {
			log.Printf("warning: %d replayed queries failed to execute", failures)
		}
		res := cqms.RunMiner()
		log.Printf("initial mining pass: %d queries, %d rules, %d clusters",
			res.TransactionCount, len(res.Rules), len(res.Clusters))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cqms.StartBackground(ctx)

	srv := &http.Server{Addr: *addr, Handler: server.New(cqms).Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("CQMS server listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("server: %v", err)
	}
	log.Printf("CQMS server stopped")
}
