// Command cqms-workload generates the synthetic multi-user exploratory query
// traces used by the experiments and prints either a summary or the full
// trace. With -server it replays the trace against a running cqms-server
// through the v1 batch-submit endpoint, so the serving path can be loaded
// from the outside. With -proxy it replays the trace as Postgres
// wire-protocol sessions through a running cqms-proxy (one frontend
// connection per user), exercising the passive-capture path end to end.
//
// With -openloop it instead runs the open-loop Poisson load harness
// (internal/workload/openloop) against the server: mixed
// submit/search/complete/stats traffic from a configurable user population,
// reporting p50/p90/p99 latency and achieved throughput. -rates sweeps a
// list of arrival rates and reports the highest sustainable one.
//
// Usage:
//
//	cqms-workload -users 20 -sessions 10 -summary
//	cqms-workload -users 5 -sessions 2 -dump
//	cqms-workload -users 5 -sessions 2 -server http://localhost:8080 -batch 100
//	cqms-workload -users 5 -sessions 2 -proxy localhost:6432
//	cqms-workload -openloop -server http://localhost:8080 -population 100000 -rate 500 -duration 30s -json report.json
//	cqms-workload -openloop -server http://localhost:8080 -rates 250,500,1000,2000 -slo-p99 100
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/pgwire"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/internal/workload/openloop"
)

func main() {
	var (
		users     = flag.Int("users", 20, "number of synthetic users")
		sessions  = flag.Int("sessions", 10, "sessions per user")
		seed      = flag.Int64("seed", 42, "random seed")
		dump      = flag.Bool("dump", false, "print every generated query")
		summary   = flag.Bool("summary", true, "print a workload summary")
		serverURL = flag.String("server", "", "replay the trace against this CQMS server over the v1 API")
		batchSize = flag.Int("batch", 100, "queries per batch-submit round trip when replaying")
		proxyAddr = flag.String("proxy", "", "replay the trace through this cqms-proxy as Postgres wire-protocol sessions")

		openLoop   = flag.Bool("openloop", false, "run the open-loop Poisson load harness against -server instead of replaying a trace")
		population = flag.Int("population", 1000, "openloop: number of distinct users issuing traffic")
		rate       = flag.Float64("rate", 200, "openloop: target arrival rate in requests/second")
		rates      = flag.String("rates", "", "openloop: comma-separated rate sweep; overrides -rate and reports the highest sustainable rate")
		duration   = flag.Duration("duration", 10*time.Second, "openloop: dispatching window per run")
		skew       = flag.Float64("skew", 0, "openloop: Zipf exponent for user popularity (>1 enables skew; 0 = uniform)")
		inflight   = flag.Int("inflight", 512, "openloop: maximum concurrent in-flight requests")
		timeout    = flag.Duration("timeout", 5*time.Second, "openloop: per-request timeout")
		mixSpec    = flag.String("mix", "", "openloop: operation mix as submit=60,search=15,complete=15,stats=10")
		jsonOut    = flag.String("json", "", "openloop: write the report (or sweep reports) as JSON to this file, - for stdout")
		sloP99     = flag.Float64("slo-p99", 0, "openloop: p99 bound in ms used to judge sweep sustainability (0 = shed/failures only)")
	)
	flag.Parse()

	if *openLoop {
		if *serverURL == "" {
			log.Fatal("cqms-workload: -openloop requires -server")
		}
		cfg := openloop.DefaultConfig()
		cfg.Seed = *seed
		cfg.Population = *population
		cfg.Rate = *rate
		cfg.Duration = *duration
		cfg.Skew = *skew
		cfg.MaxInFlight = *inflight
		cfg.Timeout = *timeout
		if *mixSpec != "" {
			mix, err := parseMix(*mixSpec)
			if err != nil {
				log.Fatalf("cqms-workload: %v", err)
			}
			cfg.Mix = mix
		}
		if err := runOpenLoop(cfg, *serverURL, *rates, *jsonOut, *sloP99); err != nil {
			log.Fatalf("cqms-workload: %v", err)
		}
		return
	}

	cfg := workload.DefaultConfig()
	cfg.Users = *users
	cfg.SessionsPerUser = *sessions
	cfg.Seed = *seed
	trace := workload.Generate(cfg)

	if *serverURL != "" {
		if err := replayOverHTTP(trace, *serverURL, *batchSize); err != nil {
			log.Fatalf("cqms-workload: replaying to %s: %v", *serverURL, err)
		}
	}
	if *proxyAddr != "" {
		if err := replayOverProxy(trace, *proxyAddr); err != nil {
			log.Fatalf("cqms-workload: replaying through proxy %s: %v", *proxyAddr, err)
		}
	}

	if *dump {
		for _, q := range trace.Queries {
			fmt.Printf("%s\t%s\tsession=%d\ttopic=%s\t%s\n",
				q.IssuedAt.Format("2006-01-02 15:04:05"), q.User, q.SessionID, q.Topic, q.SQL)
		}
	}
	if *summary {
		printSummary(trace)
	}
}

// replayOverHTTP pushes the trace through a running server's batch-submit
// endpoint, batching batchSize queries per round trip. One base client is
// dialled and per-user identities are derived from it with Client.As, so
// every batch reuses the same HTTP connection pool instead of opening a
// fresh connection per user.
func replayOverHTTP(trace *workload.Trace, serverURL string, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 100
	}
	if batchSize > server.MaxBatchQueries {
		batchSize = server.MaxBatchQueries
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Group the trace by user, preserving per-user temporal order.
	byUser := make(map[string][]server.SubmitParams)
	groupOf := make(map[string]string)
	var order []string
	for _, q := range trace.Queries {
		if _, seen := byUser[q.User]; !seen {
			order = append(order, q.User)
			groupOf[q.User] = q.Group
		}
		byUser[q.User] = append(byUser[q.User], server.SubmitParams{
			SQL: q.SQL, Group: q.Group, Visibility: "group",
		})
	}
	base := client.New(serverURL)
	var submitted, failed int
	for _, user := range order {
		c := base.As(user, groupOf[user])
		queries := byUser[user]
		for start := 0; start < len(queries); start += batchSize {
			end := start + batchSize
			if end > len(queries) {
				end = len(queries)
			}
			resp, err := c.SubmitBatch(ctx, queries[start:end])
			if err != nil {
				return err
			}
			for _, res := range resp.Results {
				if res.Error != nil || (res.Result != nil && res.Result.ExecError != "") {
					failed++
				}
				submitted++
			}
		}
	}
	fmt.Printf("replayed %d queries over %s (%d failed)\n", submitted, serverURL, failed)
	return nil
}

// replayOverProxy replays the trace through a cqms-proxy as real
// wire-protocol sessions: one frontend connection per user (the user's group
// becomes the session database, matching the proxy's default principal
// mapping), every query sent as a simple-protocol Query message.
func replayOverProxy(trace *workload.Trace, proxyAddr string) error {
	byUser := make(map[string][]string)
	groupOf := make(map[string]string)
	var order []string
	for _, q := range trace.Queries {
		if _, seen := byUser[q.User]; !seen {
			order = append(order, q.User)
			groupOf[q.User] = q.Group
		}
		byUser[q.User] = append(byUser[q.User], q.SQL)
	}
	var sent, failed int
	for _, user := range order {
		fe, err := pgwire.DialFrontend(proxyAddr, user, groupOf[user])
		if err != nil {
			return fmt.Errorf("dialling as %s: %w", user, err)
		}
		for _, sql := range byUser[user] {
			if err := fe.SimpleQuery(sql); err != nil {
				failed++
			}
			sent++
		}
		if err := fe.Close(); err != nil {
			return fmt.Errorf("closing session of %s: %w", user, err)
		}
	}
	fmt.Printf("replayed %d queries through proxy %s (%d failed)\n", sent, proxyAddr, failed)
	return nil
}

// runOpenLoop executes the open-loop harness: a single run at cfg.Rate, or a
// sweep over ratesSpec reporting the highest sustainable rate (no shed
// arrivals, failure rate within bound, p99 under -slo-p99 when set).
func runOpenLoop(cfg openloop.Config, serverURL, ratesSpec, jsonOut string, sloP99 float64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	slo := openloop.SLO{MaxP99Ms: sloP99, MaxFailureRate: 0.01}

	var reports []*openloop.Report
	if ratesSpec == "" {
		rep, err := openloop.Run(ctx, serverURL, cfg)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		fmt.Print(rep.Format())
	} else {
		sweep, err := parseRates(ratesSpec)
		if err != nil {
			return err
		}
		best := -1.0
		for _, r := range sweep {
			if ctx.Err() != nil {
				break
			}
			cfg.Rate = r
			rep, err := openloop.Run(ctx, serverURL, cfg)
			if err != nil {
				return err
			}
			reports = append(reports, rep)
			fmt.Print(rep.Format())
			if violations := rep.CheckSLO(slo); len(violations) == 0 {
				best = r
				fmt.Println("  sustainable: yes")
			} else {
				for _, v := range violations {
					fmt.Printf("  sustainable: no (%s)\n", v)
				}
			}
		}
		if best >= 0 {
			fmt.Printf("max sustainable rate: %.0f req/s\n", best)
		} else {
			fmt.Println("max sustainable rate: none of the swept rates met the SLO")
		}
	}

	if jsonOut != "" {
		var data []byte
		var err error
		if len(reports) == 1 {
			data, err = json.MarshalIndent(reports[0], "", "  ")
		} else {
			data, err = json.MarshalIndent(reports, "", "  ")
		}
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonOut == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(jsonOut, data, 0o644)
	}
	return nil
}

// parseMix parses "submit=60,search=15,complete=15,stats=10"; omitted
// operations get weight zero.
func parseMix(spec string) (openloop.Mix, error) {
	var m openloop.Mix
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch key {
		case openloop.OpSubmit:
			m.Submit = w
		case openloop.OpSearch:
			m.Search = w
		case openloop.OpComplete:
			m.Complete = w
		case openloop.OpStats:
			m.Stats = w
		default:
			return m, fmt.Errorf("unknown operation %q in mix", key)
		}
	}
	return m, nil
}

func parseRates(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate %q in -rates", part)
		}
		out = append(out, r)
	}
	return out, nil
}

func printSummary(trace *workload.Trace) {
	topics := map[string]int{}
	for _, q := range trace.Queries {
		topics[q.Topic]++
	}
	fmt.Printf("queries:  %d\n", len(trace.Queries))
	fmt.Printf("users:    %d\n", len(trace.Users))
	fmt.Printf("sessions: %d (mean length %.1f queries)\n",
		trace.Sessions, float64(len(trace.Queries))/float64(trace.Sessions))
	fmt.Println("queries per topic:")
	var names []string
	for t := range topics {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		fmt.Printf("  %-24s %d\n", t, topics[t])
	}
}
