// Command cqms-workload generates the synthetic multi-user exploratory query
// traces used by the experiments and prints either a summary or the full
// trace. It exists so the workload substrate can be inspected independently
// of the CQMS itself.
//
// Usage:
//
//	cqms-workload -users 20 -sessions 10 -summary
//	cqms-workload -users 5 -sessions 2 -dump
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/workload"
)

func main() {
	var (
		users    = flag.Int("users", 20, "number of synthetic users")
		sessions = flag.Int("sessions", 10, "sessions per user")
		seed     = flag.Int64("seed", 42, "random seed")
		dump     = flag.Bool("dump", false, "print every generated query")
		summary  = flag.Bool("summary", true, "print a workload summary")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Users = *users
	cfg.SessionsPerUser = *sessions
	cfg.Seed = *seed
	trace := workload.Generate(cfg)

	if *dump {
		for _, q := range trace.Queries {
			fmt.Printf("%s\t%s\tsession=%d\ttopic=%s\t%s\n",
				q.IssuedAt.Format("2006-01-02 15:04:05"), q.User, q.SessionID, q.Topic, q.SQL)
		}
	}
	if *summary {
		topics := map[string]int{}
		usersSeen := map[string]int{}
		for _, q := range trace.Queries {
			topics[q.Topic]++
			usersSeen[q.User]++
		}
		fmt.Printf("queries:  %d\n", len(trace.Queries))
		fmt.Printf("users:    %d\n", len(trace.Users))
		fmt.Printf("sessions: %d (mean length %.1f queries)\n",
			trace.Sessions, float64(len(trace.Queries))/float64(trace.Sessions))
		fmt.Println("queries per topic:")
		var names []string
		for t := range topics {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			fmt.Printf("  %-24s %d\n", t, topics[t])
		}
	}
}
