// Command cqms-workload generates the synthetic multi-user exploratory query
// traces used by the experiments and prints either a summary or the full
// trace. With -server it replays the trace against a running cqms-server
// through the v1 batch-submit endpoint, so the serving path can be loaded
// from the outside. With -proxy it replays the trace as Postgres
// wire-protocol sessions through a running cqms-proxy (one frontend
// connection per user), exercising the passive-capture path end to end.
//
// Usage:
//
//	cqms-workload -users 20 -sessions 10 -summary
//	cqms-workload -users 5 -sessions 2 -dump
//	cqms-workload -users 5 -sessions 2 -server http://localhost:8080 -batch 100
//	cqms-workload -users 5 -sessions 2 -proxy localhost:6432
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"

	"repro/internal/client"
	"repro/internal/pgwire"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		users     = flag.Int("users", 20, "number of synthetic users")
		sessions  = flag.Int("sessions", 10, "sessions per user")
		seed      = flag.Int64("seed", 42, "random seed")
		dump      = flag.Bool("dump", false, "print every generated query")
		summary   = flag.Bool("summary", true, "print a workload summary")
		serverURL = flag.String("server", "", "replay the trace against this CQMS server over the v1 API")
		batchSize = flag.Int("batch", 100, "queries per batch-submit round trip when replaying")
		proxyAddr = flag.String("proxy", "", "replay the trace through this cqms-proxy as Postgres wire-protocol sessions")
	)
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.Users = *users
	cfg.SessionsPerUser = *sessions
	cfg.Seed = *seed
	trace := workload.Generate(cfg)

	if *serverURL != "" {
		if err := replayOverHTTP(trace, *serverURL, *batchSize); err != nil {
			log.Fatalf("cqms-workload: replaying to %s: %v", *serverURL, err)
		}
	}
	if *proxyAddr != "" {
		if err := replayOverProxy(trace, *proxyAddr); err != nil {
			log.Fatalf("cqms-workload: replaying through proxy %s: %v", *proxyAddr, err)
		}
	}

	if *dump {
		for _, q := range trace.Queries {
			fmt.Printf("%s\t%s\tsession=%d\ttopic=%s\t%s\n",
				q.IssuedAt.Format("2006-01-02 15:04:05"), q.User, q.SessionID, q.Topic, q.SQL)
		}
	}
	if *summary {
		printSummary(trace)
	}
}

// replayOverHTTP pushes the trace through a running server's batch-submit
// endpoint, batching batchSize queries per round trip. One base client is
// dialled and per-user identities are derived from it with Client.As, so
// every batch reuses the same HTTP connection pool instead of opening a
// fresh connection per user.
func replayOverHTTP(trace *workload.Trace, serverURL string, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 100
	}
	if batchSize > server.MaxBatchQueries {
		batchSize = server.MaxBatchQueries
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Group the trace by user, preserving per-user temporal order.
	byUser := make(map[string][]server.SubmitParams)
	groupOf := make(map[string]string)
	var order []string
	for _, q := range trace.Queries {
		if _, seen := byUser[q.User]; !seen {
			order = append(order, q.User)
			groupOf[q.User] = q.Group
		}
		byUser[q.User] = append(byUser[q.User], server.SubmitParams{
			SQL: q.SQL, Group: q.Group, Visibility: "group",
		})
	}
	base := client.New(serverURL)
	var submitted, failed int
	for _, user := range order {
		c := base.As(user, groupOf[user])
		queries := byUser[user]
		for start := 0; start < len(queries); start += batchSize {
			end := start + batchSize
			if end > len(queries) {
				end = len(queries)
			}
			resp, err := c.SubmitBatch(ctx, queries[start:end])
			if err != nil {
				return err
			}
			for _, res := range resp.Results {
				if res.Error != nil || (res.Result != nil && res.Result.ExecError != "") {
					failed++
				}
				submitted++
			}
		}
	}
	fmt.Printf("replayed %d queries over %s (%d failed)\n", submitted, serverURL, failed)
	return nil
}

// replayOverProxy replays the trace through a cqms-proxy as real
// wire-protocol sessions: one frontend connection per user (the user's group
// becomes the session database, matching the proxy's default principal
// mapping), every query sent as a simple-protocol Query message.
func replayOverProxy(trace *workload.Trace, proxyAddr string) error {
	byUser := make(map[string][]string)
	groupOf := make(map[string]string)
	var order []string
	for _, q := range trace.Queries {
		if _, seen := byUser[q.User]; !seen {
			order = append(order, q.User)
			groupOf[q.User] = q.Group
		}
		byUser[q.User] = append(byUser[q.User], q.SQL)
	}
	var sent, failed int
	for _, user := range order {
		fe, err := pgwire.DialFrontend(proxyAddr, user, groupOf[user])
		if err != nil {
			return fmt.Errorf("dialling as %s: %w", user, err)
		}
		for _, sql := range byUser[user] {
			if err := fe.SimpleQuery(sql); err != nil {
				failed++
			}
			sent++
		}
		if err := fe.Close(); err != nil {
			return fmt.Errorf("closing session of %s: %w", user, err)
		}
	}
	fmt.Printf("replayed %d queries through proxy %s (%d failed)\n", sent, proxyAddr, failed)
	return nil
}

func printSummary(trace *workload.Trace) {
	topics := map[string]int{}
	for _, q := range trace.Queries {
		topics[q.Topic]++
	}
	fmt.Printf("queries:  %d\n", len(trace.Queries))
	fmt.Printf("users:    %d\n", len(trace.Users))
	fmt.Printf("sessions: %d (mean length %.1f queries)\n",
		trace.Sessions, float64(len(trace.Queries))/float64(trace.Sessions))
	fmt.Println("queries per topic:")
	var names []string
	for t := range topics {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		fmt.Printf("  %-24s %d\n", t, topics[t])
	}
}
