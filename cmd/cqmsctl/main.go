// Command cqmsctl is the command-line CQMS client: it talks to a running
// cqms-server over the v1 API and exposes the four interaction modes of the
// paper from the shell.
//
// Usage:
//
//	cqmsctl -server http://localhost:8080 -user alice -groups limnology <command> [args]
//
// Commands:
//
//	query <sql>                       run a SQL query through the CQMS (Traditional mode)
//	batch <sql>;<sql>;...             submit many queries in one round trip
//	annotate <id> <text>              attach an annotation to a logged query
//	show <id>                         fetch one logged query
//	search <keyword>...               keyword search over the query log
//	metaquery <sql>                   run a SQL meta-query over the feature relations (Figure 1)
//	partial <partial sql>             find queries matching a partially written query
//	bydata <include> [exclude]        query-by-data: value that must / must not appear in output
//	similar <sql>                     k most similar logged queries
//	history [user]                    list logged queries of a user (default: yourself)
//	sessions                          list detected query sessions
//	graph <session id>                render the Figure 2 session window
//	complete <partial sql>            completion suggestions (Figure 3)
//	corrections <sql>                 correction suggestions
//	recommend <sql>                   the Figure 3 similar-queries pane
//	publish <id> <private|group|public>   change a query's visibility
//	delete <id>                       delete a logged query
//	mine                              trigger a mining pass (admin)
//	maintain                          trigger a maintenance scan (admin)
//	log info                          durable query-log state (segments, sequences)
//	log backup                        force a point-in-time snapshot of the query log
//	log compact                       snapshot and prune covered WAL segments
//	stats                             server statistics
//	metrics                           Prometheus metrics exposition (-admin shows admin-only series)
//	proxy status                      capture totals of a cqms-proxy (-server points at its admin address)
//	replication status                replication role, sequences and lag of a primary or follower
//
// The stats, proxy status and replication status commands all lead with the
// same status document (role, applied sequence, uptime, derived-state
// provenance), rendered by one shared printer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro/internal/client"
	"repro/internal/server"
)

func main() {
	var (
		serverURL = flag.String("server", "http://localhost:8080", "CQMS server URL")
		user      = flag.String("user", os.Getenv("USER"), "acting user")
		groups    = flag.String("groups", "", "comma-separated groups of the acting user")
		admin     = flag.Bool("admin", false, "act as administrator")
		k         = flag.Int("k", 5, "number of suggestions / results where applicable")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var groupList []string
	if *groups != "" {
		groupList = strings.Split(*groups, ",")
	}
	opts := []client.Option{client.WithUser(*user, groupList...)}
	if *admin {
		opts = append(opts, client.WithAdmin())
	}
	c := client.New(*serverURL, opts...)

	// Ctrl-C cancels the request context; the server aborts the in-flight
	// scan instead of finishing work nobody is waiting for.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cmd, rest := args[0], args[1:]
	if err := run(ctx, c, cmd, rest, *k); err != nil {
		log.Fatalf("cqmsctl %s: %v", cmd, err)
	}
}

func run(ctx context.Context, c *client.Client, cmd string, args []string, k int) error {
	switch cmd {
	case "query":
		return cmdQuery(ctx, c, args)
	case "batch":
		return cmdBatch(ctx, c, args)
	case "annotate":
		return cmdAnnotate(ctx, c, args)
	case "show":
		return cmdShow(ctx, c, args)
	case "search":
		return cmdSearch(ctx, c, args)
	case "metaquery":
		return cmdMetaQuery(ctx, c, args)
	case "partial":
		return cmdPartial(ctx, c, args)
	case "bydata":
		return cmdByData(ctx, c, args)
	case "similar":
		return cmdSimilar(ctx, c, args, k)
	case "history":
		return cmdHistory(ctx, c, args)
	case "sessions":
		return cmdSessions(ctx, c)
	case "graph":
		return cmdGraph(ctx, c, args)
	case "complete":
		return cmdComplete(ctx, c, args, k)
	case "corrections":
		return cmdCorrections(ctx, c, args)
	case "recommend":
		return cmdRecommend(ctx, c, args, k)
	case "publish":
		return cmdPublish(ctx, c, args)
	case "delete":
		return cmdDelete(ctx, c, args)
	case "mine":
		return cmdMine(ctx, c)
	case "maintain":
		return cmdMaintain(ctx, c)
	case "log":
		return cmdLog(ctx, c, args)
	case "stats":
		return cmdStats(ctx, c)
	case "metrics":
		return cmdMetrics(ctx, c)
	case "proxy":
		return cmdProxy(ctx, c, args)
	case "replication":
		return cmdReplication(ctx, c, args)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func joined(args []string) string { return strings.Join(args, " ") }

func printSubmitResponse(resp *server.SubmitResponse) {
	if resp.ExecError != "" {
		fmt.Printf("execution error: %s (logged as query %d)\n", resp.ExecError, resp.QueryID)
		return
	}
	fmt.Printf("query %d: %d rows in %.2f ms\n", resp.QueryID, resp.RowCount, resp.ExecMillis)
	if len(resp.Columns) > 0 {
		fmt.Println(strings.Join(resp.Columns, "\t"))
		for _, row := range resp.Rows {
			fmt.Println(strings.Join(row, "\t"))
		}
		if resp.RowCount > len(resp.Rows) {
			fmt.Printf("... (%d more rows)\n", resp.RowCount-len(resp.Rows))
		}
	}
	if resp.SuggestAnnotation {
		fmt.Printf("hint: this query is complex — consider `cqmsctl annotate %d \"...\"`\n", resp.QueryID)
	}
}

func cmdQuery(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: query <sql>")
	}
	resp, err := c.Submit(ctx, joined(args), client.Visibility("group"))
	if err != nil {
		return err
	}
	printSubmitResponse(resp)
	return nil
}

func cmdBatch(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: batch <sql>;<sql>;...")
	}
	var queries []server.SubmitParams
	for _, stmt := range strings.Split(joined(args), ";") {
		if stmt = strings.TrimSpace(stmt); stmt != "" {
			queries = append(queries, server.SubmitParams{SQL: stmt, Visibility: "group"})
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("usage: batch <sql>;<sql>;...")
	}
	resp, err := c.SubmitBatch(ctx, queries)
	if err != nil {
		return err
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			fmt.Printf("[%d] error %s: %s\n", i, res.Error.Code, res.Error.Message)
			continue
		}
		if res.Result.ExecError != "" {
			fmt.Printf("[%d] query %d: execution error: %s\n", i, res.Result.QueryID, res.Result.ExecError)
			continue
		}
		fmt.Printf("[%d] query %d: %d rows in %.2f ms\n", i, res.Result.QueryID, res.Result.RowCount, res.Result.ExecMillis)
	}
	return nil
}

func cmdAnnotate(ctx context.Context, c *client.Client, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: annotate <query id> <text>")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid query id %q", args[0])
	}
	return c.Annotate(ctx, id, joined(args[1:]))
}

func cmdShow(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: show <query id>")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid query id %q", args[0])
	}
	q, err := c.GetQuery(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("query %d by %s at %s\n%s\n", q.ID, q.User, q.IssuedAt.Format("2006-01-02 15:04"), q.Text)
	for _, a := range q.Annotations {
		fmt.Printf("  note: %s\n", a)
	}
	return nil
}

func printMatches(it *client.Iter[server.MatchDTO], notes bool) error {
	n := 0
	for it.Next() {
		m := it.Item()
		fmt.Printf("[q%-4d %-8s] %s\n", m.Query.ID, m.Query.User, m.Query.Text)
		if notes {
			for _, a := range m.Query.Annotations {
				fmt.Printf("      note: %s\n", a)
			}
		}
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Printf("%d matching queries\n", n)
	return nil
}

func cmdSearch(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: search <keyword>...")
	}
	return printMatches(c.SearchKeyword(ctx, args...), true)
}

func cmdMetaQuery(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: metaquery <sql over Queries/DataSources/Attributes/Predicates>")
	}
	return printMatches(c.MetaQuery(ctx, joined(args)), false)
}

func cmdPartial(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: partial <partial sql>")
	}
	return printMatches(c.SearchPartial(ctx, joined(args)), false)
}

func cmdByData(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: bydata <must-include value> [must-exclude value]")
	}
	include := []string{args[0]}
	var exclude []string
	if len(args) > 1 {
		exclude = []string{args[1]}
	}
	return printMatches(c.SearchByData(ctx, include, exclude), false)
}

func cmdSimilar(ctx context.Context, c *client.Client, args []string, k int) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: similar <sql>")
	}
	it := c.Similar(ctx, joined(args), k)
	for it.Next() {
		m := it.Item()
		fmt.Printf("[%3.0f%%] [q%-4d %-8s] %s\n", m.Score*100, m.Query.ID, m.Query.User, m.Query.Text)
	}
	return it.Err()
}

func cmdHistory(ctx context.Context, c *client.Client, args []string) error {
	of := ""
	if len(args) > 0 {
		of = args[0]
	}
	it := c.History(ctx, of)
	for it.Next() {
		m := it.Item()
		valid := ""
		if !m.Query.Valid {
			valid = " [INVALID]"
		}
		fmt.Printf("[q%-4d %s]%s %s (%d rows, %.2f ms)\n",
			m.Query.ID, m.Query.IssuedAt.Format("2006-01-02 15:04"), valid,
			m.Query.Text, m.Query.ResultRows, m.Query.ExecMillis)
	}
	return it.Err()
}

func cmdSessions(ctx context.Context, c *client.Client) error {
	it := c.Sessions(ctx)
	n := 0
	for it.Next() {
		s := it.Item()
		fmt.Printf("session %-4d %-10s %2d queries  %s — %s  tables: %s\n",
			s.ID, s.User, s.QueryCount,
			s.Start.Format("15:04"), s.End.Format("15:04"),
			strings.Join(s.Tables, ", "))
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Printf("%d sessions\n", n)
	return nil
}

func cmdGraph(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: graph <session id>")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid session id %q", args[0])
	}
	graph, err := c.SessionGraph(ctx, id)
	if err != nil {
		return err
	}
	fmt.Print(graph)
	return nil
}

func cmdComplete(ctx context.Context, c *client.Client, args []string, k int) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: complete <partial sql>")
	}
	completions, err := c.Complete(ctx, joined(args), k)
	if err != nil {
		return err
	}
	for _, comp := range completions {
		fmt.Printf("[%-9s] %-45s %s\n", comp.Kind, comp.Text, comp.Reason)
	}
	return nil
}

func cmdCorrections(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: corrections <sql>")
	}
	corrections, err := c.Corrections(ctx, joined(args))
	if err != nil {
		return err
	}
	if len(corrections) == 0 {
		fmt.Println("no corrections suggested")
		return nil
	}
	for _, corr := range corrections {
		fmt.Printf("[%-9s] %s -> %s (%s)\n", corr.Kind, corr.Original, corr.Suggestion, corr.Reason)
	}
	return nil
}

func cmdRecommend(ctx context.Context, c *client.Client, args []string, k int) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: recommend <sql>")
	}
	similar, err := c.SimilarQueries(ctx, joined(args), k)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s| %-60s| %-20s| %s\n", "Score", "Query", "Diff", "Annotations")
	for _, s := range similar {
		text := s.Query.Text
		if len(text) > 58 {
			text = text[:55] + "..."
		}
		fmt.Printf("[%3.0f%%] | %-60s| %-20s| %s\n", s.Score*100, text, s.Diff, strings.Join(s.Annotations, "; "))
	}
	return nil
}

func cmdPublish(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: publish <query id> <private|group|public>")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid query id %q", args[0])
	}
	return c.SetVisibility(ctx, id, args[1])
}

func cmdDelete(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: delete <query id>")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return fmt.Errorf("invalid query id %q", args[0])
	}
	return c.DeleteQuery(ctx, id)
}

func cmdMine(ctx context.Context, c *client.Client) error {
	resp, err := c.Mine(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("mined %d queries: %d rules, %d clusters, %d sessions\n",
		resp.Transactions, resp.Rules, resp.Clusters, resp.Sessions)
	return nil
}

func cmdMaintain(ctx context.Context, c *client.Client) error {
	resp, err := c.Maintain(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d queries: %d repaired, %d invalidated, %d statistics refreshed\n",
		resp.Checked, len(resp.Repaired), len(resp.Invalidated), resp.StatsRefreshed)
	for _, r := range resp.Repaired {
		fmt.Printf("  repaired   %s\n", r)
	}
	for _, inv := range resp.Invalidated {
		fmt.Printf("  invalidated %s\n", inv)
	}
	return nil
}

func cmdLog(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: log <info|backup|compact>")
	}
	switch args[0] {
	case "info":
		info, err := c.LogInfo(ctx)
		if err != nil {
			return err
		}
		if !info.Enabled {
			fmt.Println("durability: disabled (server runs in-memory; start it with -data-dir)")
			return nil
		}
		fmt.Printf("data dir:       %s\n", info.Dir)
		fmt.Printf("sync policy:    %s\n", info.SyncPolicy)
		if info.AppendError != "" {
			fmt.Printf("WARNING:        durability broken, mutations are NOT being persisted: %s\n", info.AppendError)
		}
		fmt.Printf("last sequence:  %d\n", info.LastSeq)
		fmt.Printf("snapshot seq:   %d (%d mutations pending)\n", info.SnapshotSeq, info.AppendsSinceSnapshot)
		var total int64
		for _, seg := range info.Segments {
			fmt.Printf("  segment %s  first-seq %-10d %8d bytes\n", seg.Name, seg.FirstSeq, seg.Bytes)
			total += seg.Bytes
		}
		fmt.Printf("%d segments, %d bytes\n", len(info.Segments), total)
		if len(info.SnapshotSidecars) > 0 {
			fmt.Println("snapshot sidecar sections:")
			for _, sc := range info.SnapshotSidecars {
				fmt.Printf("  %-12s v%-3d %8d bytes\n", sc.Name, sc.Version, sc.Bytes)
			}
		}
		return nil
	case "backup":
		resp, err := c.LogBackup(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("snapshot covering sequence %d written to %s\n", resp.Seq, resp.Path)
		return nil
	case "compact":
		resp, err := c.LogCompact(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("snapshot covering sequence %d written to %s; %d segments removed\n",
			resp.Seq, resp.Path, resp.RemovedSegments)
		return nil
	default:
		return fmt.Errorf("unknown log subcommand %q (want info, backup or compact)", args[0])
	}
}

func cmdStats(ctx context.Context, c *client.Client) error {
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("queries:  %d\n", stats.Queries)
	fmt.Printf("users:    %s\n", strings.Join(stats.Users, ", "))
	fmt.Printf("tables:   %s\n", strings.Join(stats.Tables, ", "))
	fmt.Printf("sessions: %d\n", stats.Sessions)
	// Principal-aware incremental counters (public + the caller's own
	// queries; everything for admins).
	fmt.Printf("visible queries: %d\n", stats.VisibleQueries)
	fmt.Printf("mined transactions: %d\n", stats.MinedTransactions)
	printStatusDoc(stats.Status)
	if len(stats.TableCounts) > 0 {
		fmt.Println("table counts:")
		for _, tc := range stats.TableCounts {
			fmt.Printf("  %-30s %d\n", tc.Item, tc.Count)
		}
	}
	if len(stats.UserActivity) > 0 {
		fmt.Println("user activity:")
		for _, ua := range stats.UserActivity {
			fmt.Printf("  %-30s %d\n", ua.Item, ua.Count)
		}
	}
	if len(stats.TopPredicates) > 0 {
		fmt.Println("top predicates:")
		for _, tp := range stats.TopPredicates {
			fmt.Printf("  %-45s %d\n", tp.Item, tp.Count)
		}
	}
	if a := stats.Approx; a != nil {
		// The listings above come from bounded top-K summaries: listed
		// counts are exact; a non-zero bound means items with true count at
		// or below it may be missing from that listing.
		fmt.Printf("listing summaries: capacity %d/bucket\n", a.Capacity)
		fmt.Printf("  miss bounds: tables<=%d users<=%d predicates<=%d fingerprints<=%d",
			a.TableBound, a.UserBound, a.PredicateBound, a.FingerprintBound)
		if a.TableBound == 0 && a.UserBound == 0 && a.PredicateBound == 0 && a.FingerprintBound == 0 {
			fmt.Printf(" (all listings exact)")
		}
		fmt.Println()
	}
	return nil
}

func cmdMetrics(ctx context.Context, c *client.Client) error {
	text, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

// cmdProxy talks to a cqms-proxy's admin endpoint; -server must point at the
// proxy's admin address (default :6433), not at a cqms-server.
func cmdProxy(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 || args[0] != "status" {
		return fmt.Errorf("usage: proxy status")
	}
	st, err := c.GetProxyStatus(ctx)
	if err != nil {
		return err
	}
	printStatusDoc(server.StatusDocDTO{Role: st.Role, UptimeSeconds: st.UptimeSeconds})
	fmt.Printf("backend:             %s\n", st.Backend)
	fmt.Printf("connections:         %d active, %d total\n", st.ActiveConnections, st.TotalConnections)
	fmt.Printf("statements captured: %d\n", st.StatementsCaptured)
	fmt.Printf("statements dropped:  %d\n", st.StatementsDropped)
	fmt.Printf("submit errors:       %d\n", st.SubmitErrors)
	fmt.Printf("backend dial errors: %d\n", st.BackendDialErrors)
	fmt.Printf("bytes relayed:       %d from clients, %d from backend\n", st.BytesFromClients, st.BytesFromBackend)
	fmt.Printf("capture enabled:     %v\n", st.CaptureEnabled)
	return nil
}

// printStatusDoc renders the status document every status surface shares
// (stats, proxy status, replication status): role, applied WAL sequence,
// uptime and derived-state provenance.
func printStatusDoc(doc server.StatusDocDTO) {
	fmt.Printf("role:        %s\n", doc.Role)
	fmt.Printf("applied seq: %d\n", doc.AppliedSeq)
	fmt.Printf("uptime:      %.0fs\n", doc.UptimeSeconds)
	if len(doc.Provenance) > 0 {
		// Whether each derived-state subsystem came back from a snapshot
		// checkpoint on the last (re)start or had to rebuild from a full scan.
		parts := make([]string, 0, len(doc.Provenance))
		for _, ds := range doc.Provenance {
			parts = append(parts, fmt.Sprintf("%s=%s", ds.Name, ds.Source))
		}
		fmt.Printf("derived state: %s\n", strings.Join(parts, ", "))
	}
}

func cmdReplication(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 || args[0] != "status" {
		return fmt.Errorf("usage: replication status")
	}
	st, err := c.ReplicationStatus(ctx)
	if err != nil {
		return err
	}
	printStatusDoc(st.StatusDocDTO)
	if st.Primary != "" {
		fmt.Printf("primary:     %s\n", st.Primary)
	}
	fmt.Printf("primary seq: %d\n", st.PrimarySeq)
	fmt.Printf("snapshot seq: %d\n", st.SnapshotSeq)
	fmt.Printf("lag:         %d records", st.LagRecords)
	if st.LagSeconds >= 0 {
		fmt.Printf(", %.1fs", st.LagSeconds)
	} else {
		fmt.Printf(", never caught up")
	}
	fmt.Println()
	if st.Role == "follower" {
		if st.StalenessSeconds >= 0 {
			fmt.Printf("staleness:   <= %.1fs\n", st.StalenessSeconds)
		} else {
			fmt.Printf("staleness:   unknown (still bootstrapping)\n")
		}
	}
	if st.LastError != "" {
		fmt.Printf("last error:  %s\n", st.LastError)
	}
	return nil
}
