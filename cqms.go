// Package cqms is the public facade of this repository's Collaborative Query
// Management System, a reproduction of "A Case for A Collaborative Query
// Management System" (Khoussainova et al., CIDR 2009).
//
// The system is organised exactly like Figure 4 of the paper: a CQMS server
// made of a Query Profiler, a Query Storage, a Meta-query Executor, a Query
// Miner and a Query Maintenance component, sitting on top of an embedded
// relational engine, with an HTTP client/server layer on top. This package
// re-exports the types that downstream code (the examples, the command-line
// tools and the benchmark harness) uses, so that a single import gives access
// to the whole system:
//
//	sys := cqms.New(cqms.DefaultConfig())
//	out, err := sys.Submit(cqms.Submission{User: "alice", SQL: "SELECT ..."})
//	matches := sys.Search(cqms.Principal{User: "alice"}, "salinity")
//
// See the examples/ directory for complete programs covering the four
// interaction modes of the paper.
package cqms

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/maintenance"
	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/profiler"
	"repro/internal/recommend"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// CQMS is the collaborative query management system (see internal/core).
type CQMS = core.CQMS

// Config aggregates the configuration of every CQMS component.
type Config = core.Config

// Submission is one user query entering the system in Traditional mode.
type Submission = profiler.Submission

// Outcome is what Submit returns: result, logged query ID and hints.
type Outcome = profiler.Outcome

// Principal identifies a user for access-control purposes.
type Principal = storage.Principal

// QueryID identifies a logged query.
type QueryID = storage.QueryID

// QueryRecord is the stored representation of a logged query.
type QueryRecord = storage.QueryRecord

// Annotation is a user note attached to a logged query.
type Annotation = storage.Annotation

// Visibility controls who can see a logged query.
type Visibility = storage.Visibility

// Visibility levels.
const (
	VisibilityPrivate = storage.VisibilityPrivate
	VisibilityGroup   = storage.VisibilityGroup
	VisibilityPublic  = storage.VisibilityPublic
)

// Match is one meta-query / search result.
type Match = metaquery.Match

// StructuralCondition expresses query-by-parse-tree search conditions.
type StructuralCondition = metaquery.StructuralCondition

// Completion is one assisted-interaction completion suggestion.
type Completion = recommend.Completion

// Correction is one assisted-interaction correction suggestion.
type Correction = recommend.Correction

// SimilarQuery is one row of the Figure 3 similar-queries pane.
type SimilarQuery = recommend.SimilarQuery

// TutorialStep is one step of the auto-generated data-set tutorial.
type TutorialStep = recommend.TutorialStep

// SessionSummary summarises one detected query session.
type SessionSummary = session.Summary

// MiningResult is the output of a background mining pass.
type MiningResult = miner.Result

// StatsTracker holds the incrementally maintained, visibility-aware query-log
// aggregates (see CQMS.StatsTracker).
type StatsTracker = stats.Tracker

// MaintenanceReport summarises a maintenance scan.
type MaintenanceReport = maintenance.Report

// Engine is the embedded relational engine the CQMS sits on.
type Engine = engine.Engine

// DurabilityConfig configures the durable query log (Config.Durability).
type DurabilityConfig = wal.Config

// RecoveryInfo reports what Open reconstructed from disk.
type RecoveryInfo = wal.RecoveryInfo

// DefaultDurabilityConfig returns the default durable-log settings for a
// data directory.
func DefaultDurabilityConfig(dir string) DurabilityConfig { return wal.DefaultConfig(dir) }

// New creates a CQMS over a fresh embedded engine.
func New(cfg Config) *CQMS { return core.New(cfg) }

// Open creates a CQMS and, when cfg.Durability.Dir is set, recovers the query
// log from disk and keeps it durable. Call Close to flush on shutdown.
func Open(cfg Config) (*CQMS, error) { return core.Open(cfg) }

// OpenWithEngine is Open over an existing (already populated) engine.
func OpenWithEngine(eng *Engine, cfg Config) (*CQMS, error) {
	return core.OpenWithEngine(eng, cfg)
}

// NewWithEngine creates a CQMS over an existing (already populated) engine.
func NewWithEngine(eng *Engine, cfg Config) *CQMS { return core.NewWithEngine(eng, cfg) }

// DefaultConfig returns defaults for every component.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewEngine returns a fresh embedded relational engine.
func NewEngine() *Engine { return engine.New() }

// PopulateScientificDB creates the synthetic scientific schema (the paper's
// lakes example plus an astronomy topic) and fills it with rowsPerTable rows
// per measurement table. It is the data substrate used by the examples and
// benchmarks.
func PopulateScientificDB(eng *Engine, rowsPerTable int, seed int64) error {
	return workload.Populate(eng, rowsPerTable, seed)
}

// Admin is the administrative principal that bypasses visibility checks.
var Admin = storage.Principal{Admin: true}
