package cqms

import (
	"context"
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API exactly the way the README's
// quick-start snippet does.
func TestFacadeEndToEnd(t *testing.T) {
	sys := New(DefaultConfig())
	if err := PopulateScientificDB(sys.Engine(), 200, 1); err != nil {
		t.Fatalf("PopulateScientificDB: %v", err)
	}
	alice := Principal{User: "alice", Groups: []string{"limnology"}}

	out, err := sys.Submit(Submission{
		User: "alice", Group: "limnology", Visibility: VisibilityGroup,
		SQL: "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out.Result.Cardinality() == 0 {
		t.Errorf("no rows from populated data")
	}
	if err := sys.Annotate(out.QueryID, alice, Annotation{Text: "cold lakes"}); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if _, err := sys.Submit(Submission{
		User: "alice", Group: "limnology", Visibility: VisibilityGroup,
		SQL:      "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
		IssuedAt: time.Now(),
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	mining := sys.RunMiner()
	if mining.TransactionCount != 2 {
		t.Errorf("mining transactions = %d", mining.TransactionCount)
	}

	ctx := context.Background()
	if matches, err := sys.Search(ctx, alice, "salinity"); err != nil || len(matches) != 1 {
		t.Errorf("keyword matches = %d, want 1 (err %v)", len(matches), err)
	}
	_, matches, err := sys.MetaQuery(ctx, alice, `SELECT Q.qid FROM Queries Q, DataSources D
		WHERE Q.qid = D.qid AND D.relName = 'WaterSalinity'`)
	if err != nil {
		t.Fatalf("MetaQuery: %v", err)
	}
	if len(matches) != 1 {
		t.Errorf("meta-query matches = %d, want 1", len(matches))
	}
	if got, err := sys.SuggestTables(ctx, alice, "SELECT * FROM WaterSalinity", 3); err != nil || len(got) == 0 {
		t.Errorf("no table suggestions (err %v)", err)
	}
	if report, err := sys.RunMaintenance(); err != nil || report.Checked != 2 {
		t.Errorf("maintenance report = %+v, err %v", report, err)
	}
	if err := sys.DeleteQuery(out.QueryID, alice); err != nil {
		t.Errorf("DeleteQuery: %v", err)
	}
}

func TestFacadeConstants(t *testing.T) {
	if VisibilityPrivate.String() != "private" || VisibilityPublic.String() != "public" {
		t.Error("visibility constants mis-mapped")
	}
	if !Admin.Admin {
		t.Error("Admin principal must have the admin flag")
	}
	if NewEngine() == nil {
		t.Error("NewEngine returned nil")
	}
	if NewWithEngine(NewEngine(), DefaultConfig()) == nil {
		t.Error("NewWithEngine returned nil")
	}
}
