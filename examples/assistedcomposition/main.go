// Assisted-composition scenario: Figure 3 of the paper, step by step. A user
// types a query fragment by fragment; at every step the CQMS proposes
// completions, flags misspellings, recovers from an empty result and finally
// shows the ranked similar-queries pane.
//
// Run with:
//
//	go run ./examples/assistedcomposition
package main

import (
	"context"
	"fmt"
	"log"

	cqms "repro"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	sys := cqms.New(cqms.DefaultConfig())
	if err := cqms.PopulateScientificDB(sys.Engine(), 600, 3); err != nil {
		log.Fatalf("populating database: %v", err)
	}
	// Seed the log with colleagues' queries so the assistant has something to
	// learn from.
	cfg := workload.DefaultConfig()
	cfg.Users = 8
	cfg.SessionsPerUser = 6
	cfg.Seed = 3
	trace := workload.Generate(cfg)
	prof := profiler.New(sys.Engine(), sys.Store(), profiler.DefaultConfig())
	if _, err := workload.Replay(trace, prof); err != nil {
		log.Fatalf("replay: %v", err)
	}
	sys.RunMiner()

	user := cqms.Principal{User: "nodira", Groups: []string{"limnology"}}

	// Step 1: the user has typed only the first relation. The CQMS suggests
	// which table to add next — context beats global popularity (§2.3).
	partial := "SELECT * FROM WaterSalinity"
	fmt.Printf("typed so far:  %s\n", partial)
	fmt.Println("table suggestions:")
	tableSuggestions, err := sys.SuggestTables(ctx, user, partial, 3)
	if err != nil {
		log.Fatalf("suggest tables: %v", err)
	}
	for _, c := range tableSuggestions {
		fmt.Printf("  %-15s %.2f  %s\n", c.Text, c.Score, c.Reason)
	}

	// Step 2: with both tables in place the CQMS proposes join conditions and
	// predicates mined from the log.
	partial = "SELECT * FROM WaterSalinity, WaterTemp WHERE "
	fmt.Printf("\ntyped so far:  %s\n", partial)
	fmt.Println("completions:")
	completions, err := sys.Complete(ctx, user, partial, 2)
	if err != nil {
		log.Fatalf("complete: %v", err)
	}
	for _, c := range completions {
		fmt.Printf("  [%-9s] %s\n", c.Kind, c.Text)
	}

	// Step 3: the user mistypes a column; the correction assistant catches it
	// like a spell checker.
	misspelled := "SELECT tmep FROM WaterTemp WHERE tmep < 18"
	fmt.Printf("\nsubmitted with a typo:  %s\n", misspelled)
	corrections, err := sys.Corrections(ctx, user, misspelled)
	if err != nil {
		log.Fatalf("corrections: %v", err)
	}
	for _, corr := range corrections {
		fmt.Printf("  correction [%s]: %s -> %s (%s)\n", corr.Kind, corr.Original, corr.Suggestion, corr.Reason)
	}

	// Step 4: a predicate returns the empty set; the CQMS suggests previously
	// issued predicates on the same column that returned data.
	empty := "SELECT lake FROM WaterTemp WHERE temp < -40"
	out, err := sys.Submit(cqms.Submission{User: "nodira", Group: "limnology", Visibility: cqms.VisibilityGroup, SQL: empty})
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Printf("\nran %q: %d rows\n", empty, out.Result.Cardinality())
	suggestions, err := sys.EmptyResultSuggestions(ctx, user, empty, 3)
	if err != nil {
		log.Fatalf("empty-result suggestions: %v", err)
	}
	for _, s := range suggestions {
		fmt.Printf("  try instead: %s (%s)\n", s.Suggestion, s.Reason)
	}

	// Step 5: the full Figure 3 pane for the query being composed.
	final := "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18"
	pane, err := sys.AssistPane(ctx, user, final, 3)
	if err != nil {
		log.Fatalf("assist pane: %v", err)
	}
	fmt.Printf("\nassisted-interaction pane for the finished query:\n%s\n", pane)
}
