// Log-analysis / administration scenario: the Administrative Interaction Mode
// (§2.4) plus Query Maintenance (§4.4). An administrator watches the shared
// query log, runs the miner, evolves the schema, lets the maintenance
// component repair or flag affected queries, refreshes stale statistics and
// inspects query-quality scores.
//
// Run with:
//
//	go run ./examples/loganalysis
package main

import (
	"fmt"
	"log"
	"sort"

	cqms "repro"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func main() {
	sys := cqms.New(cqms.DefaultConfig())
	if err := cqms.PopulateScientificDB(sys.Engine(), 700, 11); err != nil {
		log.Fatalf("populating database: %v", err)
	}
	cfg := workload.DefaultConfig()
	cfg.Users = 10
	cfg.SessionsPerUser = 5
	cfg.Seed = 11
	trace := workload.Generate(cfg)
	prof := profiler.New(sys.Engine(), sys.Store(), profiler.DefaultConfig())
	if _, err := workload.Replay(trace, prof); err != nil {
		log.Fatalf("replay: %v", err)
	}

	admin := cqms.Admin

	// 1. A mining pass: what is the lab actually querying?
	mining := sys.RunMiner()
	fmt.Printf("query log: %d queries, %d distinct users\n", sys.Store().Count(), len(sys.Store().Users()))
	fmt.Println("most queried relations:")
	for i, pop := range mining.TablePopularity {
		if i == 5 {
			break
		}
		fmt.Printf("  %-15s %d queries\n", pop.Item, pop.Count)
	}
	fmt.Println("most common query edits (mined from session edges):")
	for i, p := range mining.EditPatterns {
		if i == 5 {
			break
		}
		fmt.Printf("  %-45s %d times\n", p.Pattern, p.Count)
	}

	// 2. The schema evolves: a column is renamed and a sensor table retired.
	fmt.Println("\napplying schema changes: RENAME WaterTemp.temp -> temperature, DROP TABLE Sensors")
	sys.Engine().MustExecute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	sys.Engine().MustExecute("DROP TABLE Sensors")

	// 3. Maintenance scan: renames are repaired automatically, queries over
	//    the dropped table are flagged.
	report, err := sys.RunMaintenance()
	if err != nil {
		log.Fatalf("maintenance: %v", err)
	}
	fmt.Printf("maintenance scan over %d queries: %d repaired, %d invalidated, %d statistics refreshed\n",
		report.Checked, len(report.Repaired), len(report.Invalidated), len(report.StatsRefreshed))
	for i, rep := range report.Repaired {
		if i == 3 {
			break
		}
		fmt.Printf("  repaired q%d: %s\n", rep.ID, rep.NewText)
	}
	for i, inv := range report.Invalidated {
		if i == 3 {
			break
		}
		fmt.Printf("  flagged  q%d: %s\n", inv.ID, inv.Reason)
	}

	// 4. Quality scores let the administrator (and the recommender) prefer
	//    well-documented, efficient queries.
	records := sys.Store().Snapshot().Records(admin)
	sort.Slice(records, func(i, j int) bool { return records[i].QualityScore > records[j].QualityScore })
	fmt.Println("\nhighest-quality logged queries:")
	for i, rec := range records {
		if i == 3 {
			break
		}
		fmt.Printf("  [%.2f] %s\n", rec.QualityScore, rec.Canonical)
	}
	invalid := sys.Store().InvalidQueries()
	fmt.Printf("\nqueries currently flagged invalid: %d\n", len(invalid))
}
