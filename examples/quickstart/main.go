// Quickstart: embed the CQMS in a Go program, run a few queries through it,
// search the resulting query log and ask for recommendations.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	cqms "repro"
)

func main() {
	// 1. Create the system over a fresh embedded engine and load the
	//    synthetic scientific database (the paper's lakes schema).
	sys := cqms.New(cqms.DefaultConfig())
	if err := cqms.PopulateScientificDB(sys.Engine(), 500, 1); err != nil {
		log.Fatalf("populating database: %v", err)
	}

	ctx := context.Background()
	alice := cqms.Principal{User: "alice", Groups: []string{"limnology"}}

	// 2. Traditional Interaction Mode: run queries; the CQMS logs them
	//    transparently.
	queries := []string{
		"SELECT lake, temp FROM WaterTemp WHERE temp < 18",
		"SELECT WaterTemp.lake, WaterTemp.temp, WaterSalinity.salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18",
		"SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake ORDER BY avg_temp DESC",
	}
	for _, q := range queries {
		out, err := sys.Submit(cqms.Submission{
			User: "alice", Group: "limnology", Visibility: cqms.VisibilityGroup, SQL: q,
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		fmt.Printf("ran query %d: %d rows in %s\n", out.QueryID, out.Result.Cardinality(), out.Result.Elapsed)
	}

	// 3. Annotate the correlation query so others can find it.
	if err := sys.Annotate(2, alice, cqms.Annotation{Text: "temperature vs salinity for Seattle lakes"}); err != nil {
		log.Fatalf("annotate: %v", err)
	}

	// 4. Run a mining pass (normally periodic in the background) so the
	//    assisted mode has association rules and sessions to work with.
	mining := sys.RunMiner()
	fmt.Printf("\nmined %d queries into %d rules and %d clusters\n",
		mining.TransactionCount, len(mining.Rules), len(mining.Clusters))

	// 5. Search & Browse Interaction Mode: keyword search and the Figure 1
	//    meta-query.
	fmt.Println("\nkeyword search for 'salinity':")
	searchMatches, err := sys.Search(ctx, alice, "salinity")
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	for _, m := range searchMatches {
		fmt.Printf("  [q%d] %s\n", m.Record.ID, m.Record.Canonical)
	}

	_, matches, err := sys.MetaQuery(ctx, alice, `SELECT Q.qid, Q.qText
		FROM Queries Q, DataSources D1, DataSources D2
		WHERE Q.qid = D1.qid AND Q.qid = D2.qid
		AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`)
	if err != nil {
		log.Fatalf("meta-query: %v", err)
	}
	fmt.Println("\nFigure 1 meta-query (queries correlating salinity with temperature):")
	for _, m := range matches {
		fmt.Printf("  [q%d] %s\n", m.Record.ID, m.Record.Canonical)
	}

	// 6. Assisted Interaction Mode: ask for completions while composing a new
	//    query, and for the Figure 3 similar-queries pane.
	fmt.Println("\ncompletions for 'SELECT * FROM WaterSalinity':")
	suggestions, err := sys.SuggestTables(ctx, alice, "SELECT * FROM WaterSalinity", 3)
	if err != nil {
		log.Fatalf("suggest tables: %v", err)
	}
	for _, c := range suggestions {
		fmt.Printf("  add table %-15s (%s)\n", c.Text, c.Reason)
	}

	pane, err := sys.AssistPane(ctx, alice, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	if err != nil {
		log.Fatalf("assist pane: %v", err)
	}
	fmt.Println("\nassisted-interaction pane (Figure 3):")
	fmt.Println(pane)
}
