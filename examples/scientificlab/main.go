// Scientific-lab scenario: the paper's motivating setting. A research group
// shares one large scientific database; many members explore it with
// evolving queries. The example replays a multi-user synthetic trace through
// the CQMS, then shows what a newly arrived scientist gets out of the system:
// the queries their colleagues already ran (Figure 1 meta-query), the
// session view of one exploration (Figure 2), the auto-generated data-set
// tutorial, and access control keeping another group's queries invisible.
//
// Run with:
//
//	go run ./examples/scientificlab
package main

import (
	"context"
	"fmt"
	"log"

	cqms "repro"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	sys := cqms.New(cqms.DefaultConfig())
	if err := cqms.PopulateScientificDB(sys.Engine(), 800, 7); err != nil {
		log.Fatalf("populating database: %v", err)
	}

	// Replay a 12-user workload: 8 limnologists and 4 astronomers share the
	// data center, each running exploratory sessions.
	cfg := workload.DefaultConfig()
	cfg.Users = 12
	cfg.SessionsPerUser = 6
	cfg.Seed = 7
	trace := workload.Generate(cfg)
	prof := profiler.New(sys.Engine(), sys.Store(), profiler.DefaultConfig())
	if _, err := workload.Replay(trace, prof); err != nil {
		log.Fatalf("replaying trace: %v", err)
	}
	mining := sys.RunMiner()
	allSessions, err := sys.Sessions(ctx, cqms.Admin)
	if err != nil {
		log.Fatalf("sessions: %v", err)
	}
	fmt.Printf("replayed %d queries from %d users; mined %d rules, %d sessions detected\n",
		sys.Store().Count(), len(trace.Users), len(mining.Rules), len(allSessions))

	// A new limnologist joins the lab.
	newcomer := cqms.Principal{User: "newcomer", Groups: []string{"limnology"}}

	// 1. "Has anyone already correlated salinity with temperature?" — the
	//    Figure 1 meta-query answers from the group's query log.
	_, matches, err := sys.MetaQuery(ctx, newcomer, `SELECT Q.qid, Q.qText
		FROM Queries Q, DataSources D1, DataSources D2
		WHERE Q.qid = D1.qid AND Q.qid = D2.qid
		AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`)
	if err != nil {
		log.Fatalf("meta-query: %v", err)
	}
	fmt.Printf("\n%d colleagues' queries already correlate salinity with temperature; for example:\n", len(matches))
	for i, m := range matches {
		if i == 3 {
			break
		}
		fmt.Printf("  [%s] %s\n", m.Record.User, m.Record.Canonical)
	}

	// 2. Browse one colleague's exploration as a Figure 2 session window.
	sessions, err := sys.Sessions(ctx, newcomer)
	if err != nil {
		log.Fatalf("sessions: %v", err)
	}
	if len(sessions) > 0 {
		target := sessions[0]
		for _, s := range sessions {
			if s.QueryCount > target.QueryCount {
				target = s
			}
		}
		graph, err := sys.SessionGraph(ctx, newcomer, target.ID)
		if err != nil {
			log.Fatalf("session graph: %v", err)
		}
		fmt.Printf("\nlongest visible session (Figure 2 view):\n%s\n", graph)
	}

	// 3. The auto-generated tutorial introduces the data set through its most
	//    popular queries (§2.3).
	fmt.Println("auto-generated tutorial for the newcomer:")
	steps, err := sys.Tutorial(ctx, newcomer, 2)
	if err != nil {
		log.Fatalf("tutorial: %v", err)
	}
	for i, step := range steps {
		if i == 3 {
			break
		}
		fmt.Printf("  relation %s (columns: %v)\n", step.Table, step.Columns)
		for _, q := range step.PopularQueries {
			fmt.Printf("    example: %s\n", q.Canonical)
		}
	}

	// 4. Access control: the astronomy group's queries stay invisible to the
	//    limnology newcomer, and vice versa.
	astroQueries := 0
	sys.Store().Snapshot().Scan(cqms.Admin, func(rec *cqms.QueryRecord) bool {
		if rec.Group == "astro" {
			astroQueries++
		}
		return true
	})
	visibleAstro := 0
	starMatches, err := sys.Search(ctx, newcomer, "Stars")
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	for _, m := range starMatches {
		if m.Record.Group == "astro" {
			visibleAstro++
		}
	}
	fmt.Printf("\naccess control: %d astronomy queries exist, %d visible to the limnology newcomer\n",
		astroQueries, visibleAstro)
}
