// Package client is a Go client for the CQMS HTTP API (internal/server). It
// is what cmd/cqmsctl and the integration tests use to talk to a running
// CQMS server, playing the role of the paper's CQMS client.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// Client talks to a CQMS server.
type Client struct {
	base       string
	httpClient *http.Client
	principal  server.PrincipalDTO
}

// New returns a client for the server at baseURL acting as the given user.
func New(baseURL, user string, groups []string, admin bool) *Client {
	return &Client{
		base:       strings.TrimRight(baseURL, "/"),
		httpClient: &http.Client{Timeout: 30 * time.Second},
		principal:  server.PrincipalDTO{User: user, Groups: groups, Admin: admin},
	}
}

// Principal returns the identity the client acts as.
func (c *Client) Principal() server.PrincipalDTO { return c.principal }

func (c *Client) post(path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("client: encoding request: %w", err)
	}
	httpResp, err := c.httpClient.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: POST %s: %w", path, err)
	}
	defer httpResp.Body.Close()
	return decodeResponse(path, httpResp, resp)
}

func (c *Client) get(path string, params url.Values, resp interface{}) error {
	params.Set("user", c.principal.User)
	if len(c.principal.Groups) > 0 {
		params.Set("groups", strings.Join(c.principal.Groups, ","))
	}
	if c.principal.Admin {
		params.Set("admin", "true")
	}
	httpResp, err := c.httpClient.Get(c.base + path + "?" + params.Encode())
	if err != nil {
		return fmt.Errorf("client: GET %s: %w", path, err)
	}
	defer httpResp.Body.Close()
	return decodeResponse(path, httpResp, resp)
}

func decodeResponse(path string, httpResp *http.Response, resp interface{}) error {
	if httpResp.StatusCode >= 400 {
		var e server.ErrorResponse
		if err := json.NewDecoder(httpResp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("client: %s: %s (status %d)", path, e.Error, httpResp.StatusCode)
		}
		return fmt.Errorf("client: %s: status %d", path, httpResp.StatusCode)
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// Submit runs a SQL query through the CQMS (Traditional mode).
func (c *Client) Submit(sqlText, group, visibility string) (*server.SubmitResponse, error) {
	var resp server.SubmitResponse
	err := c.post("/api/query", server.SubmitRequest{
		Principal: c.principal, Group: group, Visibility: visibility, SQL: sqlText,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Annotate attaches an annotation to a logged query.
func (c *Client) Annotate(queryID int64, text string) error {
	return c.post("/api/annotate", server.AnnotateRequest{
		Principal: c.principal, QueryID: queryID, Text: text,
	}, nil)
}

// SearchKeyword performs keyword search.
func (c *Client) SearchKeyword(keywords ...string) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	err := c.post("/api/search/keyword", server.SearchRequest{Principal: c.principal, Keywords: keywords}, &resp)
	return resp.Matches, err
}

// MetaQuery runs a SQL meta-query over the feature relations.
func (c *Client) MetaQuery(metaSQL string) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	err := c.post("/api/search/metaquery", server.SearchRequest{Principal: c.principal, MetaSQL: metaSQL}, &resp)
	return resp.Matches, err
}

// SearchPartial runs the auto-generated feature meta-query for a partial
// query.
func (c *Client) SearchPartial(partial string) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	err := c.post("/api/search/partial", server.SearchRequest{Principal: c.principal, Partial: partial}, &resp)
	return resp.Matches, err
}

// SearchByData runs a query-by-data search.
func (c *Client) SearchByData(include, exclude []string) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	err := c.post("/api/search/bydata", server.SearchRequest{Principal: c.principal, Include: include, Exclude: exclude}, &resp)
	return resp.Matches, err
}

// Similar returns the k most similar logged queries to the given SQL.
func (c *Client) Similar(sqlText string, k int) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	err := c.post("/api/search/similar", server.SearchRequest{Principal: c.principal, SQL: sqlText, K: k}, &resp)
	return resp.Matches, err
}

// History returns the caller's (or another user's) query history.
func (c *Client) History(of string) ([]server.MatchDTO, error) {
	var resp server.SearchResponse
	params := url.Values{}
	if of != "" {
		params.Set("of", of)
	}
	err := c.get("/api/history", params, &resp)
	return resp.Matches, err
}

// Sessions lists detected sessions visible to the caller.
func (c *Client) Sessions() ([]server.SessionDTO, error) {
	var resp server.SessionsResponse
	err := c.get("/api/sessions", url.Values{}, &resp)
	return resp.Sessions, err
}

// SessionGraph fetches the rendered Figure 2 graph of one session.
func (c *Client) SessionGraph(id int64) (string, error) {
	var resp server.GraphResponse
	params := url.Values{}
	params.Set("id", strconv.FormatInt(id, 10))
	err := c.get("/api/sessions/graph", params, &resp)
	return resp.Graph, err
}

// Complete requests completion suggestions for a partial query.
func (c *Client) Complete(partial string, k int) ([]server.CompletionDTO, error) {
	var resp server.AssistResponse
	err := c.post("/api/assist/complete", server.CompleteRequest{Principal: c.principal, Partial: partial, K: k}, &resp)
	return resp.Completions, err
}

// Corrections requests correction suggestions for a query.
func (c *Client) Corrections(queryText string) ([]server.CorrectionDTO, error) {
	var resp server.AssistResponse
	err := c.post("/api/assist/corrections", server.CompleteRequest{Principal: c.principal, Partial: queryText}, &resp)
	return resp.Corrections, err
}

// SimilarQueries requests the Figure 3 similar-queries pane.
func (c *Client) SimilarQueries(queryText string, k int) ([]server.SimilarQueryDTO, error) {
	var resp server.AssistResponse
	err := c.post("/api/assist/similar", server.CompleteRequest{Principal: c.principal, Partial: queryText, K: k}, &resp)
	return resp.Similar, err
}

// SetVisibility changes a logged query's visibility.
func (c *Client) SetVisibility(queryID int64, visibility string) error {
	return c.post("/api/admin/visibility", server.VisibilityRequest{
		Principal: c.principal, QueryID: queryID, Visibility: visibility,
	}, nil)
}

// DeleteQuery removes a logged query.
func (c *Client) DeleteQuery(queryID int64) error {
	return c.post("/api/admin/delete", server.DeleteRequest{Principal: c.principal, QueryID: queryID}, nil)
}

// Mine triggers a mining pass on the server.
func (c *Client) Mine() (*server.MineResponse, error) {
	var resp server.MineResponse
	err := c.post("/api/admin/mine", struct{}{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Maintain triggers a maintenance scan on the server.
func (c *Client) Maintain() (*server.MaintainResponse, error) {
	var resp server.MaintainResponse
	err := c.post("/api/admin/maintain", struct{}{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogInfo reports the server's durable query-log state.
func (c *Client) LogInfo() (*server.LogInfoResponse, error) {
	var resp server.LogInfoResponse
	err := c.get("/api/admin/log/info", url.Values{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogBackup forces a full-store snapshot (a consistent point-in-time backup
// on the server) and returns its location.
func (c *Client) LogBackup() (*server.LogSnapshotResponse, error) {
	var resp server.LogSnapshotResponse
	err := c.post("/api/admin/log/snapshot", struct{}{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogCompact snapshots the store and removes the WAL segments the snapshot
// covers.
func (c *Client) LogCompact() (*server.LogSnapshotResponse, error) {
	var resp server.LogSnapshotResponse
	err := c.post("/api/admin/log/compact", struct{}{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches server-wide counters.
func (c *Client) Stats() (*server.StatsResponse, error) {
	var resp server.StatsResponse
	err := c.get("/api/stats", url.Values{}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}
