// Package client is the Go client for the CQMS v1 HTTP API
// (internal/server). It is what cmd/cqmsctl, cmd/cqms-workload and the
// integration tests use to talk to a running CQMS server, playing the role
// of the paper's CQMS client.
//
// The client follows the v1 contract end to end: every method takes a
// context.Context (cancelling it aborts the server-side scan), the acting
// principal travels in the X-CQMS-* headers, failures surface the server's
// structured error envelope as *client.Error, and list endpoints return
// auto-paginating iterators that follow nextCursor transparently.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
)

// defaultPageSize is the page size the iterators request — the server's
// maximum, because every search page re-runs the scan server-side, so a full
// drain (Iter.All) should take as few round trips as the server permits.
// Tune with WithPageSize for interactive consumers that stop early.
const defaultPageSize = 500

// Client talks to a CQMS server.
type Client struct {
	base       string
	httpClient *http.Client
	user       string
	groups     []string
	admin      bool
	pageSize   int
}

// Option configures a Client.
type Option func(*Client)

// WithUser sets the acting user and its groups.
func WithUser(user string, groups ...string) Option {
	return func(c *Client) { c.user, c.groups = user, groups }
}

// WithAdmin marks the client as acting with administrative rights.
func WithAdmin() Option {
	return func(c *Client) { c.admin = true }
}

// WithHTTPClient replaces the underlying *http.Client (timeouts, transport).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.httpClient = hc }
}

// WithPageSize sets the page size the auto-paginating iterators request.
func WithPageSize(n int) Option {
	return func(c *Client) { c.pageSize = n }
}

// New returns a client for the server at baseURL. Without options it acts as
// the anonymous principal.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(baseURL, "/"),
		httpClient: &http.Client{Timeout: 30 * time.Second},
		pageSize:   defaultPageSize,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// User returns the user the client acts as.
func (c *Client) User() string { return c.user }

// As returns a client acting as a different principal while sharing this
// client's *http.Client (and therefore its transport's connection pool).
// Callers that submit on behalf of many users — the workload replayer, the
// proxy's remote sink — derive per-user clients from one base instead of
// constructing independent clients, so every request reuses the same
// keep-alive connections.
func (c *Client) As(user string, groups ...string) *Client {
	derived := *c
	derived.user = user
	derived.groups = groups
	return &derived
}

// Error is a failed API call: the HTTP status and the server's structured
// error envelope.
type Error struct {
	Status int
	Path   string
	API    server.APIError
}

// Error implements the error interface. Envelope details are rendered in a
// stable order so a read_only refusal, for example, names the primary.
func (e *Error) Error() string {
	msg := fmt.Sprintf("client: %s: %s: %s (status %d)", e.Path, e.API.Code, e.API.Message, e.Status)
	if len(e.API.Details) == 0 {
		return msg
	}
	keys := make([]string, 0, len(e.API.Details))
	for k := range e.API.Details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(msg)
	b.WriteString(" [")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, e.API.Details[k])
	}
	b.WriteString("]")
	return b.String()
}

// Code returns the machine-readable error code, the field clients should
// branch on.
func (e *Error) Code() server.ErrorCode { return e.API.Code }

// Details returns the envelope's details map (nil when the server sent none):
// machine-readable context such as the offending field, or the primary URL on
// a read_only refusal.
func (e *Error) Details() map[string]string { return e.API.Details }

// Detail returns one envelope detail ("" when absent).
func (e *Error) Detail(key string) string { return e.API.Details[key] }

// do performs one request against the v1 API: principal headers, JSON body
// in, JSON body out, envelope errors decoded into *Error.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out interface{}) error {
	var reader *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		reader = bytes.NewReader(b)
	} else {
		reader = bytes.NewReader(nil)
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, reader)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.setPrincipalHeaders(req)
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var envelope server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
			envelope.Error = server.APIError{Code: server.CodeInternal, Message: "unparsable error response"}
		}
		return &Error{Status: resp.StatusCode, Path: path, API: envelope.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// setPrincipalHeaders stamps the client's identity onto one request in the
// X-CQMS-* headers.
func (c *Client) setPrincipalHeaders(req *http.Request) {
	if c.user != "" {
		req.Header.Set(server.HeaderUser, c.user)
	}
	if len(c.groups) > 0 {
		req.Header.Set(server.HeaderGroups, strings.Join(c.groups, ","))
	}
	if c.admin {
		req.Header.Set(server.HeaderAdmin, "true")
	}
}

// ---------------------------------------------------------------------------
// Auto-paginating iterators
// ---------------------------------------------------------------------------

// Iter walks a paginated listing, fetching pages on demand. Use Next/Item to
// stream, All to collect the remainder, and Err after Next returns false.
type Iter[T any] struct {
	ctx   context.Context
	fetch func(ctx context.Context, cursor string) ([]T, string, error)
	buf   []T
	pos   int
	next  string
	done  bool
	err   error
}

func newIter[T any](ctx context.Context, fetch func(context.Context, string) ([]T, string, error)) *Iter[T] {
	return &Iter[T]{ctx: ctx, fetch: fetch}
}

// Next advances to the next item, fetching the next page when the buffered
// one is exhausted. It returns false at the end of the listing or on error.
func (it *Iter[T]) Next() bool {
	if it.err != nil {
		return false
	}
	for it.pos >= len(it.buf) {
		if it.done {
			return false
		}
		items, next, err := it.fetch(it.ctx, it.next)
		if err != nil {
			it.err = err
			return false
		}
		it.buf, it.pos, it.next = items, 0, next
		it.done = next == ""
	}
	it.pos++
	return true
}

// Item returns the current item. Valid only after Next returned true.
func (it *Iter[T]) Item() T { return it.buf[it.pos-1] }

// Err returns the error that stopped iteration, if any.
func (it *Iter[T]) Err() error { return it.err }

// All drains the iterator and returns every remaining item.
func (it *Iter[T]) All() ([]T, error) {
	var out []T
	for it.Next() {
		out = append(out, it.Item())
	}
	return out, it.Err()
}

// ---------------------------------------------------------------------------
// Traditional mode
// ---------------------------------------------------------------------------

// SubmitOption configures one submission.
type SubmitOption func(*server.SubmitParams)

// Group attributes the query to a group.
func Group(group string) SubmitOption {
	return func(p *server.SubmitParams) { p.Group = group }
}

// Visibility sets the logged query's visibility: private, group or public.
func Visibility(v string) SubmitOption {
	return func(p *server.SubmitParams) { p.Visibility = v }
}

// Submit runs a SQL query through the CQMS (Traditional mode).
func (c *Client) Submit(ctx context.Context, sqlText string, opts ...SubmitOption) (*server.SubmitResponse, error) {
	params := server.SubmitParams{SQL: sqlText}
	for _, opt := range opts {
		opt(&params)
	}
	var resp server.SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/v1/queries", nil, params, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SubmitBatch submits many queries in one round trip. Results mirror the
// input order; per-query failures are reported per item, not as a call
// error.
func (c *Client) SubmitBatch(ctx context.Context, queries []server.SubmitParams) (*server.BatchSubmitResponse, error) {
	var resp server.BatchSubmitResponse
	err := c.do(ctx, http.MethodPost, "/v1/queries:batch", nil, server.BatchSubmitRequest{Queries: queries}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetQuery fetches one logged query.
func (c *Client) GetQuery(ctx context.Context, queryID int64) (*server.QueryDTO, error) {
	var resp server.QueryDTO
	err := c.do(ctx, http.MethodGet, "/v1/queries/"+strconv.FormatInt(queryID, 10), nil, nil, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Annotate attaches an annotation to a logged query.
func (c *Client) Annotate(ctx context.Context, queryID int64, text string) error {
	return c.do(ctx, http.MethodPost,
		"/v1/queries/"+strconv.FormatInt(queryID, 10)+"/annotations",
		nil, server.AnnotateParams{Text: text}, nil)
}

// DeleteQuery removes a logged query.
func (c *Client) DeleteQuery(ctx context.Context, queryID int64) error {
	return c.do(ctx, http.MethodDelete, "/v1/queries/"+strconv.FormatInt(queryID, 10), nil, nil, nil)
}

// SetVisibility changes a logged query's visibility.
func (c *Client) SetVisibility(ctx context.Context, queryID int64, visibility string) error {
	return c.do(ctx, http.MethodPut,
		"/v1/queries/"+strconv.FormatInt(queryID, 10)+"/visibility",
		nil, server.VisibilityParams{Visibility: visibility}, nil)
}

// ---------------------------------------------------------------------------
// Search & browse mode
// ---------------------------------------------------------------------------

// searchIter pages one search kind through POST /v1/search/{kind}.
func (c *Client) searchIter(ctx context.Context, kind string, params server.SearchParams) *Iter[server.MatchDTO] {
	params.Limit = c.pageSize
	return newIter(ctx, func(ctx context.Context, cursor string) ([]server.MatchDTO, string, error) {
		p := params
		p.Cursor = cursor
		var resp server.SearchResponse
		if err := c.do(ctx, http.MethodPost, "/v1/search/"+kind, nil, p, &resp); err != nil {
			return nil, "", err
		}
		return resp.Matches, resp.NextCursor, nil
	})
}

// SearchKeyword performs keyword search over the visible query log.
func (c *Client) SearchKeyword(ctx context.Context, keywords ...string) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "keyword", server.SearchParams{Keywords: keywords})
}

// SearchSubstring performs substring search over the visible query log.
func (c *Client) SearchSubstring(ctx context.Context, substring string) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "substring", server.SearchParams{Substring: substring})
}

// MetaQuery runs a SQL meta-query over the feature relations.
func (c *Client) MetaQuery(ctx context.Context, metaSQL string) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "metaquery", server.SearchParams{MetaSQL: metaSQL})
}

// SearchPartial runs the auto-generated feature meta-query for a partial
// query.
func (c *Client) SearchPartial(ctx context.Context, partial string) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "partial", server.SearchParams{Partial: partial})
}

// SearchByData runs a query-by-data search.
func (c *Client) SearchByData(ctx context.Context, include, exclude []string) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "bydata", server.SearchParams{Include: include, Exclude: exclude})
}

// Similar returns the k most similar logged queries to the given SQL (k <= 0
// ranks the whole visible log).
func (c *Client) Similar(ctx context.Context, sqlText string, k int) *Iter[server.MatchDTO] {
	return c.searchIter(ctx, "similar", server.SearchParams{SQL: sqlText, K: k})
}

// History returns the caller's (or another user's) query history in temporal
// order.
func (c *Client) History(ctx context.Context, of string) *Iter[server.MatchDTO] {
	return newIter(ctx, func(ctx context.Context, cursor string) ([]server.MatchDTO, string, error) {
		query := url.Values{}
		if of != "" {
			query.Set("of", of)
		}
		query.Set("limit", strconv.Itoa(c.pageSize))
		if cursor != "" {
			query.Set("cursor", cursor)
		}
		var resp server.SearchResponse
		if err := c.do(ctx, http.MethodGet, "/v1/history", query, nil, &resp); err != nil {
			return nil, "", err
		}
		return resp.Matches, resp.NextCursor, nil
	})
}

// Sessions lists detected sessions visible to the caller.
func (c *Client) Sessions(ctx context.Context) *Iter[server.SessionDTO] {
	return newIter(ctx, func(ctx context.Context, cursor string) ([]server.SessionDTO, string, error) {
		query := url.Values{}
		query.Set("limit", strconv.Itoa(c.pageSize))
		if cursor != "" {
			query.Set("cursor", cursor)
		}
		var resp server.SessionsResponse
		if err := c.do(ctx, http.MethodGet, "/v1/sessions", query, nil, &resp); err != nil {
			return nil, "", err
		}
		return resp.Sessions, resp.NextCursor, nil
	})
}

// SessionGraph fetches the rendered Figure 2 graph of one session.
func (c *Client) SessionGraph(ctx context.Context, id int64) (string, error) {
	var resp server.GraphResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+strconv.FormatInt(id, 10)+"/graph", nil, nil, &resp)
	if err != nil {
		return "", err
	}
	return resp.Graph, nil
}

// ---------------------------------------------------------------------------
// Assisted mode
// ---------------------------------------------------------------------------

// Complete requests completion suggestions for a partial query.
func (c *Client) Complete(ctx context.Context, partial string, k int) ([]server.CompletionDTO, error) {
	var resp server.AssistResponse
	err := c.do(ctx, http.MethodPost, "/v1/assist/complete", nil, server.CompleteParams{Partial: partial, K: k}, &resp)
	return resp.Completions, err
}

// Corrections requests correction suggestions for a query.
func (c *Client) Corrections(ctx context.Context, queryText string) ([]server.CorrectionDTO, error) {
	var resp server.AssistResponse
	err := c.do(ctx, http.MethodPost, "/v1/assist/corrections", nil, server.CompleteParams{Partial: queryText}, &resp)
	return resp.Corrections, err
}

// SimilarQueries requests the Figure 3 similar-queries pane.
func (c *Client) SimilarQueries(ctx context.Context, queryText string, k int) ([]server.SimilarQueryDTO, error) {
	var resp server.AssistResponse
	err := c.do(ctx, http.MethodPost, "/v1/assist/similar", nil, server.CompleteParams{Partial: queryText, K: k}, &resp)
	return resp.Similar, err
}

// Tutorial fetches the generated data-set tutorial.
func (c *Client) Tutorial(ctx context.Context, perTable int) ([]server.TutorialStepDTO, error) {
	query := url.Values{}
	if perTable > 0 {
		query.Set("per_table", strconv.Itoa(perTable))
	}
	var resp []server.TutorialStepDTO
	err := c.do(ctx, http.MethodGet, "/v1/assist/tutorial", query, nil, &resp)
	return resp, err
}

// ---------------------------------------------------------------------------
// Administrative mode
// ---------------------------------------------------------------------------

// Mine triggers a mining pass on the server.
func (c *Client) Mine(ctx context.Context) (*server.MineResponse, error) {
	var resp server.MineResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/mine", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Maintain triggers a maintenance scan on the server.
func (c *Client) Maintain(ctx context.Context) (*server.MaintainResponse, error) {
	var resp server.MaintainResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/maintain", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogInfo reports the server's durable query-log state.
func (c *Client) LogInfo(ctx context.Context) (*server.LogInfoResponse, error) {
	var resp server.LogInfoResponse
	if err := c.do(ctx, http.MethodGet, "/v1/admin/log", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogBackup forces a full-store snapshot (a consistent point-in-time backup
// on the server) and returns its location.
func (c *Client) LogBackup(ctx context.Context) (*server.LogSnapshotResponse, error) {
	var resp server.LogSnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/log/snapshot", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// LogCompact snapshots the store and removes the WAL segments the snapshot
// covers.
func (c *Client) LogCompact(ctx context.Context) (*server.LogSnapshotResponse, error) {
	var resp server.LogSnapshotResponse
	if err := c.do(ctx, http.MethodPost, "/v1/admin/log/compact", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches server-wide counters.
// ProxyStatus mirrors the cqms-proxy admin endpoint's GET /v1/proxy/status
// response. It lives here (not in internal/pgwire) so the client stays free
// of the proxy's dependencies; the JSON contract is the shared surface.
type ProxyStatus struct {
	Role               string  `json:"role"`
	UptimeSeconds      float64 `json:"uptimeSeconds"`
	Backend            string  `json:"backend"`
	ActiveConnections  int64   `json:"activeConnections"`
	TotalConnections   uint64  `json:"totalConnections"`
	StatementsCaptured uint64  `json:"statementsCaptured"`
	StatementsDropped  uint64  `json:"statementsDropped"`
	SubmitErrors       uint64  `json:"submitErrors"`
	BackendDialErrors  uint64  `json:"backendDialErrors"`
	BytesFromClients   uint64  `json:"bytesFromClients"`
	BytesFromBackend   uint64  `json:"bytesFromBackend"`
	CaptureEnabled     bool    `json:"captureEnabled"`
}

// GetProxyStatus fetches a cqms-proxy's status snapshot. The client must be
// pointed at the proxy's admin address (-admin, default :6433), not at a
// cqms-server.
func (c *Client) GetProxyStatus(ctx context.Context) (*ProxyStatus, error) {
	var resp ProxyStatus
	if err := c.do(ctx, http.MethodGet, "/v1/proxy/status", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (c *Client) Stats(ctx context.Context) (*server.StatsResponse, error) {
	var resp server.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the Prometheus text exposition from GET /v1/metrics. The
// body is returned verbatim (it is not JSON); admin clients additionally see
// the admin-only families.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: building request: %w", err)
	}
	c.setPrincipalHeaders(req)
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return "", fmt.Errorf("client: GET /v1/metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading /v1/metrics response: %w", err)
	}
	if resp.StatusCode >= 400 {
		var envelope server.ErrorResponse
		if err := json.Unmarshal(body, &envelope); err != nil || envelope.Error.Code == "" {
			envelope.Error = server.APIError{Code: server.CodeInternal, Message: "unparsable error response"}
		}
		return "", &Error{Status: resp.StatusCode, Path: "/v1/metrics", API: envelope.Error}
	}
	return string(body), nil
}
