package client

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

// newServer spins up a CQMS HTTP server over a small populated database and
// returns a client for alice plus the test server for extra clients.
func newServer(t *testing.T, cfg core.Config) (*httptest.Server, *core.CQMS) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cqms, err := core.OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := cqms.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return ts, cqms
}

func TestClientSubmitSearchAnnotateRoundTrip(t *testing.T) {
	ts, _ := newServer(t, core.DefaultConfig())
	alice := New(ts.URL, "alice", []string{"limnology"}, false)

	resp, err := alice.Submit("SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15", "limnology", "group")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.QueryID == 0 {
		t.Fatal("Submit assigned no query ID")
	}
	if resp.ExecError != "" {
		t.Fatalf("Submit execution error: %s", resp.ExecError)
	}
	if len(resp.Columns) == 0 {
		t.Fatal("Submit returned no columns")
	}

	if err := alice.Annotate(resp.QueryID, "cold lakes only"); err != nil {
		t.Fatalf("Annotate: %v", err)
	}

	matches, err := alice.SearchKeyword("watertemp")
	if err != nil {
		t.Fatalf("SearchKeyword: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("keyword search found %d matches, want 1", len(matches))
	}
	got := matches[0].Query
	if got.ID != resp.QueryID || got.User != "alice" {
		t.Fatalf("match = %+v", got)
	}
	if len(got.Annotations) != 1 || got.Annotations[0] != "cold lakes only" {
		t.Fatalf("annotations on match = %v", got.Annotations)
	}

	history, err := alice.History("")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(history) != 1 || history[0].Query.ID != resp.QueryID {
		t.Fatalf("history = %+v", history)
	}
}

func TestClientVisibilityEnforcedAcrossUsers(t *testing.T) {
	ts, _ := newServer(t, core.DefaultConfig())
	alice := New(ts.URL, "alice", []string{"limnology"}, false)
	mallory := New(ts.URL, "mallory", nil, false)

	resp, err := alice.Submit("SELECT WaterSalinity.lake FROM WaterSalinity", "limnology", "private")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// A stranger cannot see or annotate the private query.
	if matches, err := mallory.SearchKeyword("watersalinity"); err != nil || len(matches) != 0 {
		t.Fatalf("stranger saw %d private matches (err %v)", len(matches), err)
	}
	if err := mallory.Annotate(resp.QueryID, "sneaky"); err == nil {
		t.Fatal("stranger annotated a private query")
	}
	if err := mallory.SetVisibility(resp.QueryID, "public"); err == nil {
		t.Fatal("stranger changed visibility of a private query")
	}
	// The owner publishes it; now everyone finds it.
	if err := alice.SetVisibility(resp.QueryID, "public"); err != nil {
		t.Fatalf("owner SetVisibility: %v", err)
	}
	if matches, err := mallory.SearchKeyword("watersalinity"); err != nil || len(matches) != 1 {
		t.Fatalf("stranger found %d public matches (err %v)", len(matches), err)
	}

	stats, err := alice.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Queries != 1 {
		t.Fatalf("stats.Queries = %d, want 1", stats.Queries)
	}
}

func TestClientLogEndpoints(t *testing.T) {
	// In-memory server: log info reports durability disabled and backup fails.
	ts, _ := newServer(t, core.DefaultConfig())
	c := New(ts.URL, "admin", nil, true)
	info, err := c.LogInfo()
	if err != nil {
		t.Fatalf("LogInfo: %v", err)
	}
	if info.Enabled {
		t.Fatal("in-memory server reported durability enabled")
	}
	if _, err := c.LogBackup(); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("LogBackup on in-memory server: %v", err)
	}

	// Durable server: submit, then inspect / backup / compact the log.
	cfg := core.DefaultConfig()
	cfg.Durability.Dir = t.TempDir()
	cfg.Durability.SyncPolicy = "off"
	tsd, _ := newServer(t, cfg)
	cd := New(tsd.URL, "alice", []string{"limnology"}, false)
	if _, err := cd.Submit("SELECT WaterTemp.lake FROM WaterTemp", "limnology", "group"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	dinfo, err := cd.LogInfo()
	if err != nil {
		t.Fatalf("LogInfo: %v", err)
	}
	if !dinfo.Enabled || dinfo.LastSeq == 0 || len(dinfo.Segments) == 0 {
		t.Fatalf("durable log info = %+v", dinfo)
	}
	backup, err := cd.LogBackup()
	if err != nil {
		t.Fatalf("LogBackup: %v", err)
	}
	if backup.Seq != dinfo.LastSeq || backup.Path == "" {
		t.Fatalf("backup = %+v, want seq %d", backup, dinfo.LastSeq)
	}
	compacted, err := cd.LogCompact()
	if err != nil {
		t.Fatalf("LogCompact: %v", err)
	}
	if compacted.Seq < backup.Seq {
		t.Fatalf("compact seq %d went backwards from %d", compacted.Seq, backup.Seq)
	}
	after, err := cd.LogInfo()
	if err != nil {
		t.Fatalf("LogInfo after compact: %v", err)
	}
	if after.SnapshotSeq != compacted.Seq || after.AppendsSinceSnapshot != 0 {
		t.Fatalf("log info after compact = %+v", after)
	}
}
