package client

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

var ctx = context.Background()

// newServer spins up a CQMS HTTP server over a small populated database and
// returns the test server plus the CQMS for extra assertions.
func newServer(t *testing.T, cfg core.Config) (*httptest.Server, *core.CQMS) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cqms, err := core.OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := cqms.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return ts, cqms
}

func TestClientSubmitSearchAnnotateRoundTrip(t *testing.T) {
	ts, _ := newServer(t, core.DefaultConfig())
	alice := New(ts.URL, WithUser("alice", "limnology"))

	resp, err := alice.Submit(ctx, "SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15",
		Group("limnology"), Visibility("group"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.QueryID == 0 {
		t.Fatal("Submit assigned no query ID")
	}
	if resp.ExecError != "" {
		t.Fatalf("Submit execution error: %s", resp.ExecError)
	}
	if len(resp.Columns) == 0 {
		t.Fatal("Submit returned no columns")
	}

	if err := alice.Annotate(ctx, resp.QueryID, "cold lakes only"); err != nil {
		t.Fatalf("Annotate: %v", err)
	}

	matches, err := alice.SearchKeyword(ctx, "watertemp").All()
	if err != nil {
		t.Fatalf("SearchKeyword: %v", err)
	}
	if len(matches) != 1 {
		t.Fatalf("keyword search found %d matches, want 1", len(matches))
	}
	got := matches[0].Query
	if got.ID != resp.QueryID || got.User != "alice" {
		t.Fatalf("match = %+v", got)
	}
	if len(got.Annotations) != 1 || got.Annotations[0] != "cold lakes only" {
		t.Fatalf("annotations on match = %v", got.Annotations)
	}

	history, err := alice.History(ctx, "").All()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(history) != 1 || history[0].Query.ID != resp.QueryID {
		t.Fatalf("history = %+v", history)
	}

	// GetQuery fetches the same record by ID.
	q, err := alice.GetQuery(ctx, resp.QueryID)
	if err != nil {
		t.Fatalf("GetQuery: %v", err)
	}
	if q.ID != resp.QueryID || q.User != "alice" {
		t.Fatalf("GetQuery = %+v", q)
	}
}

func TestClientVisibilityEnforcedAcrossUsers(t *testing.T) {
	ts, _ := newServer(t, core.DefaultConfig())
	alice := New(ts.URL, WithUser("alice", "limnology"))
	mallory := New(ts.URL, WithUser("mallory"))

	resp, err := alice.Submit(ctx, "SELECT WaterSalinity.lake FROM WaterSalinity",
		Group("limnology"), Visibility("private"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// A stranger cannot see or annotate the private query.
	if matches, err := mallory.SearchKeyword(ctx, "watersalinity").All(); err != nil || len(matches) != 0 {
		t.Fatalf("stranger saw %d private matches (err %v)", len(matches), err)
	}
	if err := mallory.Annotate(ctx, resp.QueryID, "sneaky"); err == nil {
		t.Fatal("stranger annotated a private query")
	}
	if err := mallory.SetVisibility(ctx, resp.QueryID, "public"); err == nil {
		t.Fatal("stranger changed visibility of a private query")
	}
	// The stranger's failures carry machine-readable codes.
	if cerr, ok := asClientError(mallory.SetVisibility(ctx, resp.QueryID, "public")); ok {
		if cerr.Code() != server.CodePermissionDenied {
			t.Fatalf("stranger visibility change code = %s, want %s", cerr.Code(), server.CodePermissionDenied)
		}
	} else {
		t.Fatal("expected a *client.Error from the denied visibility change")
	}
	// The owner publishes it; now everyone finds it.
	if err := alice.SetVisibility(ctx, resp.QueryID, "public"); err != nil {
		t.Fatalf("owner SetVisibility: %v", err)
	}
	if matches, err := mallory.SearchKeyword(ctx, "watersalinity").All(); err != nil || len(matches) != 1 {
		t.Fatalf("stranger found %d public matches (err %v)", len(matches), err)
	}

	stats, err := alice.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Queries != 1 {
		t.Fatalf("stats.Queries = %d, want 1", stats.Queries)
	}
}

// asClientError unwraps a *client.Error for code assertions.
func asClientError(e error) (*Error, bool) {
	cerr, ok := e.(*Error)
	return cerr, ok
}

func TestClientBatchSubmit(t *testing.T) {
	ts, cqms := newServer(t, core.DefaultConfig())
	alice := New(ts.URL, WithUser("alice", "limnology"))

	resp, err := alice.SubmitBatch(ctx, []server.SubmitParams{
		{SQL: "SELECT lake FROM WaterTemp", Visibility: "group"},
		{SQL: "SELEKT broken"},
		{SQL: "SELECT salinity FROM WaterSalinity", Visibility: "group"},
	})
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch results = %d, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != nil || resp.Results[0].Result == nil {
		t.Fatalf("first result = %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != server.CodeInvalidArgument {
		t.Fatalf("parse failure result = %+v", resp.Results[1])
	}
	if resp.Results[2].Result == nil {
		t.Fatalf("third result = %+v", resp.Results[2])
	}
	// IDs are consecutive (single commit batch) and only parsed queries
	// are logged.
	if got := cqms.Store().Count(); got != 2 {
		t.Fatalf("store holds %d queries, want 2", got)
	}
	if resp.Results[2].Result.QueryID != resp.Results[0].Result.QueryID+1 {
		t.Fatalf("batch IDs not consecutive: %d then %d",
			resp.Results[0].Result.QueryID, resp.Results[2].Result.QueryID)
	}
}

func TestClientLogEndpoints(t *testing.T) {
	// In-memory server: log info reports durability disabled and backup fails.
	ts, _ := newServer(t, core.DefaultConfig())
	c := New(ts.URL, WithUser("admin"), WithAdmin())
	info, err := c.LogInfo(ctx)
	if err != nil {
		t.Fatalf("LogInfo: %v", err)
	}
	if info.Enabled {
		t.Fatal("in-memory server reported durability enabled")
	}
	if _, err := c.LogBackup(ctx); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("LogBackup on in-memory server: %v", err)
	}

	// Durable server: submit, then inspect / backup / compact the log.
	cfg := core.DefaultConfig()
	cfg.Durability.Dir = t.TempDir()
	cfg.Durability.SyncPolicy = "off"
	tsd, _ := newServer(t, cfg)
	cd := New(tsd.URL, WithUser("alice", "limnology"))
	if _, err := cd.Submit(ctx, "SELECT WaterTemp.lake FROM WaterTemp", Group("limnology")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	dinfo, err := cd.LogInfo(ctx)
	if err != nil {
		t.Fatalf("LogInfo: %v", err)
	}
	if !dinfo.Enabled || dinfo.LastSeq == 0 || len(dinfo.Segments) == 0 {
		t.Fatalf("durable log info = %+v", dinfo)
	}
	backup, err := cd.LogBackup(ctx)
	if err != nil {
		t.Fatalf("LogBackup: %v", err)
	}
	if backup.Seq != dinfo.LastSeq || backup.Path == "" {
		t.Fatalf("backup = %+v, want seq %d", backup, dinfo.LastSeq)
	}
	compacted, err := cd.LogCompact(ctx)
	if err != nil {
		t.Fatalf("LogCompact: %v", err)
	}
	if compacted.Seq < backup.Seq {
		t.Fatalf("compact seq %d went backwards from %d", compacted.Seq, backup.Seq)
	}
	after, err := cd.LogInfo(ctx)
	if err != nil {
		t.Fatalf("LogInfo after compact: %v", err)
	}
	if after.SnapshotSeq != compacted.Seq || after.AppendsSinceSnapshot != 0 {
		t.Fatalf("log info after compact = %+v", after)
	}
}

// TestDerivedStateAndSidecarSurface covers the provenance wire surface: the
// stats endpoint reports where each derived-state subsystem came from, and
// log info lists the snapshot's sidecar checkpoint sections after a backup.
func TestDerivedStateAndSidecarSurface(t *testing.T) {
	// In-memory server: everything is live-built.
	ts, _ := newServer(t, core.DefaultConfig())
	c := New(ts.URL, WithUser("admin"), WithAdmin())
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	sources := map[string]string{}
	for _, ds := range stats.Status.Provenance {
		sources[ds.Name] = ds.Source
	}
	for _, name := range []string{"stats", "miner-feed", "sessions"} {
		if sources[name] != "live" {
			t.Errorf("in-memory provenance[%s] = %q, want live", name, sources[name])
		}
	}
	if stats.Status.Role != "primary" {
		t.Errorf("stats status role = %q, want primary", stats.Status.Role)
	}

	// Durable server: a backup writes sidecar sections for every subscriber.
	cfg := core.DefaultConfig()
	cfg.Durability.Dir = t.TempDir()
	cfg.Durability.SyncPolicy = "off"
	tsd, _ := newServer(t, cfg)
	cd := New(tsd.URL, WithUser("alice", "limnology"))
	if _, err := cd.Submit(ctx, "SELECT WaterTemp.lake FROM WaterTemp", Group("limnology")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := cd.LogBackup(ctx); err != nil {
		t.Fatalf("LogBackup: %v", err)
	}
	info, err := cd.LogInfo(ctx)
	if err != nil {
		t.Fatalf("LogInfo: %v", err)
	}
	got := map[string]bool{}
	for _, sc := range info.SnapshotSidecars {
		if sc.Bytes <= 0 || sc.Version <= 0 {
			t.Errorf("sidecar %+v has no payload or version", sc)
		}
		got[sc.Name] = true
	}
	for _, name := range []string{"stats", "miner-feed", "sessions"} {
		if !got[name] {
			t.Errorf("snapshot sidecars %v missing %q", info.SnapshotSidecars, name)
		}
	}
}
