package client

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestErrorDetailsRoundTrip: the details map a server puts in its error
// envelope survives the client decode and is reachable through the Error
// accessors — the read_only refusal's primary pointer being the motivating
// case.
func TestErrorDetailsRoundTrip(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"error":{"code":"read_only",` +
			`"message":"this server is a read replica; writes go to the primary",` +
			`"details":{"role":"follower","primary":"http://primary:8080"}}}`))
	}))
	defer ts.Close()

	_, err := New(ts.URL, WithUser("alice")).Submit(ctx, "SELECT lake FROM WaterTemp")
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *client.Error", err)
	}
	if apiErr.Code() != server.CodeReadOnly || apiErr.Status != http.StatusForbidden {
		t.Fatalf("code %q status %d", apiErr.Code(), apiErr.Status)
	}
	if got := apiErr.Detail("primary"); got != "http://primary:8080" {
		t.Fatalf("Detail(primary) = %q", got)
	}
	if got := apiErr.Details(); len(got) != 2 || got["role"] != "follower" {
		t.Fatalf("Details() = %v", got)
	}
	// The rendered message names the primary (details in stable key order).
	msg := apiErr.Error()
	if !strings.Contains(msg, "primary=http://primary:8080") || !strings.Contains(msg, "role=follower") {
		t.Fatalf("Error() = %q; details missing", msg)
	}
	if strings.Index(msg, "primary=") > strings.Index(msg, "role=") {
		t.Fatalf("Error() = %q; details not in sorted key order", msg)
	}

	// No details: accessors are nil-safe and the message is unchanged.
	tsPlain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"nope"}}`))
	}))
	defer tsPlain.Close()
	_, err = New(tsPlain.URL).GetQuery(ctx, 1)
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *client.Error", err)
	}
	if apiErr.Details() != nil || apiErr.Detail("anything") != "" {
		t.Fatalf("empty details not nil-safe: %v", apiErr.Details())
	}
	if strings.Contains(apiErr.Error(), "[") {
		t.Fatalf("Error() = %q; unexpected details suffix", apiErr.Error())
	}
}
