package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Replication client: implements core.ReplicationSource over the primary's
// /v1/replication API, so `cqms-server -follow <primary>` can hand a plain
// admin Client to core.OpenFollower. The snapshot and WAL bodies are raw CRC
// frames (see internal/wal), decoded strictly — a torn network body is
// refetched, never partially applied.

// Primary names the upstream this client points at (its base URL). Part of
// the core.ReplicationSource contract.
func (c *Client) Primary() string { return c.base }

// FetchSnapshot pulls the primary's newest snapshot document
// (GET /v1/replication/snapshot): the covered log sequence, the serialised
// store state and the derived-state checkpoints. ok is false when the primary
// has no snapshot yet.
func (c *Client) FetchSnapshot(ctx context.Context) (seq uint64, state []byte, checkpoints []storage.SubscriberCheckpoint, ok bool, err error) {
	resp, err := c.getRaw(ctx, "/v1/replication/snapshot", nil)
	if err != nil {
		return 0, nil, nil, false, err
	}
	defer resp.Body.Close()
	hdrSeq, err := strconv.ParseUint(resp.Header.Get("X-CQMS-Repl-Snapshot-Seq"), 10, 64)
	if err != nil {
		return 0, nil, nil, false, fmt.Errorf("client: replication snapshot: bad sequence header: %w", err)
	}
	if hdrSeq == 0 {
		// Empty body: no snapshot on the primary; replay the log from 0.
		return 0, nil, nil, false, nil
	}
	seq, state, sidecars, err := wal.DecodeSnapshot(resp.Body)
	if err != nil {
		return 0, nil, nil, false, err
	}
	if seq != hdrSeq {
		return 0, nil, nil, false, fmt.Errorf("client: replication snapshot: body sequence %d != header %d", seq, hdrSeq)
	}
	for _, sc := range sidecars {
		checkpoints = append(checkpoints, storage.SubscriberCheckpoint{
			Name: sc.Name, Version: sc.Version, Data: sc.Data,
		})
	}
	return seq, state, checkpoints, true, nil
}

// FetchWAL streams records with sequence > after from the primary
// (GET /v1/replication/wal) to fn, long-polling up to wait when the tail is
// empty. A compacted cursor surfaces as wal.ErrCompacted. Part of the
// core.ReplicationSource contract.
func (c *Client) FetchWAL(ctx context.Context, after uint64, wait time.Duration, fn func(seq uint64, payload []byte) error) (primarySeq uint64, bytes int64, err error) {
	query := url.Values{}
	query.Set("after", strconv.FormatUint(after, 10))
	if wait > 0 {
		query.Set("wait", wait.String())
	}
	resp, err := c.getRaw(ctx, "/v1/replication/wal", query)
	if err != nil {
		var apiErr *Error
		if errors.As(err, &apiErr) && apiErr.Detail("reason") == "compacted" {
			return 0, 0, fmt.Errorf("client: replication wal after %d: %w", after, wal.ErrCompacted)
		}
		return 0, 0, err
	}
	defer resp.Body.Close()
	primarySeq, err = strconv.ParseUint(resp.Header.Get("X-CQMS-Repl-Log-Seq"), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("client: replication wal: bad log-sequence header: %w", err)
	}
	counting := &countingReader{r: resp.Body}
	if err := wal.ReadFrames(counting, fn); err != nil {
		return primarySeq, counting.n, err
	}
	return primarySeq, counting.n, nil
}

// getRaw performs a GET whose success body is not JSON (the replication
// stream endpoints): principal headers go on, envelope errors are decoded
// into *Error, and the caller owns the response body.
func (c *Client) getRaw(ctx context.Context, path string, query url.Values) (*http.Response, error) {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	c.setPrincipalHeaders(req)
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: GET %s: %w", path, err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		var envelope server.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
			envelope.Error = server.APIError{Code: server.CodeInternal, Message: "unparsable error response"}
		}
		return nil, &Error{Status: resp.StatusCode, Path: path, API: envelope.Error}
	}
	return resp, nil
}

// countingReader tracks bytes read from the stream body.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReplicationStatus fetches a process's replication position
// (GET /v1/replication/status). Works against either role: a primary reports
// its log position, a follower additionally reports its lag and staleness.
func (c *Client) ReplicationStatus(ctx context.Context) (*server.ReplicationStatusResponse, error) {
	var resp server.ReplicationStatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/replication/status", nil, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
