package client

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

// The client is the production ReplicationSource implementation.
var _ core.ReplicationSource = (*Client)(nil)

// newFollower builds a read replica over its own freshly populated engine,
// replicating from the primary behind primaryURL, and serves it over HTTP.
func newFollower(t *testing.T, primaryURL string) (*core.CQMS, *httptest.Server, context.CancelFunc) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	src := New(primaryURL, WithAdmin())
	cqms, err := core.OpenFollower(eng, core.DefaultConfig(), src)
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := cqms.StartFollower(ctx); err != nil {
		t.Fatalf("StartFollower: %v", err)
	}
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(cancel)
	return cqms, ts, cancel
}

// waitCaughtUp blocks until the follower has applied everything the primary
// has appended (lag 0 against the primary's actual last sequence).
func waitCaughtUp(t *testing.T, follower *core.CQMS, primary *core.CQMS) {
	t.Helper()
	target := primary.Durability().LastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		st := follower.ReplicationStatus()
		if st.AppliedSeq >= target && st.LastError == "" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to seq %d: %+v", target, follower.ReplicationStatus())
}

// statsForDiff fetches the admin stats document with the per-process status
// fields (role, uptime) zeroed, so primary and follower can be compared
// byte for byte.
func statsForDiff(t *testing.T, url string) []byte {
	t.Helper()
	stats, err := New(url, WithAdmin()).Stats(ctx)
	if err != nil {
		t.Fatalf("Stats(%s): %v", url, err)
	}
	stats.Status = server.StatusDocDTO{}
	// MinedTransactions is legitimately path-dependent: once a full mining
	// pass retires the primary's incremental feed, the feed refuses to
	// checkpoint (see miner.Feed.Checkpoint), so any restore — a follower
	// bootstrap exactly like the primary's own WAL recovery — rebuilds it
	// from surviving records and no longer counts deleted queries.
	stats.MinedTransactions = 0
	b, err := json.Marshal(stats)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFollowerEquivalenceUnderRandomHistory is the replication equivalence
// test: a primary applies an arbitrary interleaving of every mutation class
// the API can produce (submits, batches, deletes, visibility flips,
// annotations, mining-driven session assignment, maintenance-driven repairs
// and stats refreshes) while a follower streams the log; at quiesce the
// follower's store state, stats counters and live sessions must be
// byte-identical to the primary's. Halfway through, the follower is restarted
// after a primary compaction, so the second half also exercises
// snapshot bootstrap plus cursor resume.
func TestFollowerEquivalenceUnderRandomHistory(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Durability = wal.DefaultConfig(t.TempDir())
	cfg.Durability.SyncPolicy = "off"
	cfg.Durability.SegmentBytes = 4 << 10
	tsPrimary, primary := newServer(t, cfg)

	follower, tsFollower, cancel := newFollower(t, tsPrimary.URL)

	rng := rand.New(rand.NewSource(7))
	trace := workload.Generate(workload.Config{
		Seed: 7, Users: 4, SessionsPerUser: 2,
		MinQueriesPerSession: 3, MaxQueriesPerSession: 6,
		MinThinkTime: time.Millisecond, MaxThinkTime: time.Millisecond,
		SessionGap: time.Hour, Start: time.Unix(1700000000, 0),
	})
	clients := map[string]*Client{}
	for _, u := range trace.Users {
		clients[u] = New(tsPrimary.URL, WithUser(u, "limnology"))
	}
	admin := New(tsPrimary.URL, WithAdmin())

	var ids []int64
	visibilities := []string{"private", "group", "public"}
	mutate := func(step int) {
		q := trace.Queries[step%len(trace.Queries)]
		c := clients[q.User]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // single submit
			resp, err := c.Submit(ctx, q.SQL, Group(q.Group), Visibility(visibilities[rng.Intn(3)]))
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ids = append(ids, resp.QueryID)
		case 4: // batch submit
			batch := []server.SubmitParams{}
			for j := 0; j < 3; j++ {
				bq := trace.Queries[(step+j)%len(trace.Queries)]
				batch = append(batch, server.SubmitParams{SQL: bq.SQL, Group: q.Group, Visibility: "group"})
			}
			resp, err := c.SubmitBatch(ctx, batch)
			if err != nil {
				t.Fatalf("SubmitBatch: %v", err)
			}
			for _, item := range resp.Results {
				if item.Result != nil {
					ids = append(ids, item.Result.QueryID)
				}
			}
		case 5: // annotate an existing query (owner-only; use admin)
			if len(ids) > 0 {
				_ = admin.Annotate(ctx, ids[rng.Intn(len(ids))], "replicated annotation")
			}
		case 6: // visibility flip
			if len(ids) > 0 {
				_ = admin.SetVisibility(ctx, ids[rng.Intn(len(ids))], visibilities[rng.Intn(3)])
			}
		case 7: // delete
			if len(ids) > 1 {
				i := rng.Intn(len(ids))
				_ = admin.DeleteQuery(ctx, ids[i])
				ids = append(ids[:i], ids[i+1:]...)
			}
		case 8: // mining persists session assignments through the log
			if _, err := admin.Mine(ctx); err != nil {
				t.Fatalf("Mine: %v", err)
			}
		case 9: // maintenance: invalidations, repairs, stats refreshes
			if _, err := admin.Maintain(ctx); err != nil {
				t.Fatalf("Maintain: %v", err)
			}
		}
	}

	const steps = 120
	for step := 0; step < steps/2; step++ {
		mutate(step)
	}

	// Mid-stream restart: compact the primary (snapshot + segment pruning)
	// and replace the follower with a fresh one, which must bootstrap from
	// the snapshot and resume the tail at its covered sequence.
	waitCaughtUp(t, follower, primary)
	if _, err := admin.LogCompact(ctx); err != nil {
		t.Fatalf("LogCompact: %v", err)
	}
	cancel()
	follower2, tsFollower2, _ := newFollower(t, tsPrimary.URL)
	follower, tsFollower = follower2, tsFollower2

	for step := steps / 2; step < steps; step++ {
		mutate(step)
	}

	waitCaughtUp(t, follower, primary)
	st := follower.ReplicationStatus()
	if st.SnapshotSeq == 0 {
		t.Fatalf("restarted follower did not bootstrap from a snapshot: %+v", st)
	}
	if st.LagRecords != 0 {
		t.Fatalf("lag at quiesce = %d records", st.LagRecords)
	}

	// Store state byte-identical.
	primaryState, err := json.Marshal(primary.Store().State())
	if err != nil {
		t.Fatal(err)
	}
	followerState, err := json.Marshal(follower.Store().State())
	if err != nil {
		t.Fatal(err)
	}
	if string(primaryState) != string(followerState) {
		t.Errorf("store state diverged: primary %d bytes, follower %d bytes",
			len(primaryState), len(followerState))
	}

	// Stats counters and listings byte-identical (modulo role/uptime).
	if p, f := statsForDiff(t, tsPrimary.URL), statsForDiff(t, tsFollower.URL); string(p) != string(f) {
		t.Errorf("stats diverged:\nprimary:  %s\nfollower: %s", p, f)
	}

	// Live sessions identical.
	if p, f := primary.SessionCount(), follower.SessionCount(); p != f {
		t.Errorf("session count diverged: primary %d, follower %d", p, f)
	}
	pSessions, err := New(tsPrimary.URL, WithAdmin()).Sessions(ctx).All()
	if err != nil {
		t.Fatal(err)
	}
	fSessions, err := New(tsFollower.URL, WithAdmin()).Sessions(ctx).All()
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := json.Marshal(pSessions)
	fb, _ := json.Marshal(fSessions)
	if string(pb) != string(fb) {
		t.Errorf("session listings diverged:\nprimary:  %s\nfollower: %s", pb, fb)
	}
}
