package core

import (
	"context"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// TestRecoveryRestoresFromCheckpoint proves the full durable-derived-state
// path: a compaction writes sidecar checkpoints for every subscriber, a
// restart restores all three from them (stats, miner feed, live sessions),
// the WAL tail replays on top, and the provenance surface reports it.
func TestRecoveryRestoresFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15",
			base.Add(time.Duration(i)*time.Minute))
	}
	// Snapshot with sidecars, then keep writing so recovery replays a tail
	// into the restored state.
	if _, _, _, err := c.Durability().Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	submit(t, c, "bob", "limnology",
		"SELECT WaterSalinity.lake FROM WaterSalinity", base.Add(2*time.Hour))
	statsBefore := c.StatsTracker().TableCounts(admin)
	sessionsBefore, err := c.Sessions(context.Background(), admin)
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	feedBefore := c.MinerFeed().NumTransactions()
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := openDurable(t, dir)
	defer c2.Close()
	info := c2.Recovery()
	if info == nil {
		t.Fatal("no recovery info")
	}
	restored := append([]string(nil), info.CheckpointRestored...)
	sort.Strings(restored)
	if want := []string{"miner-feed", "sessions", "stats"}; !reflect.DeepEqual(restored, want) {
		t.Fatalf("CheckpointRestored = %v (rebuilt = %v), want %v",
			info.CheckpointRestored, info.CheckpointRebuilt, want)
	}
	if info.Replayed == 0 {
		t.Fatal("expected a WAL tail replay after the snapshot")
	}
	prov := c2.DerivedStateProvenance()
	for _, name := range []string{"stats", "miner-feed", "sessions"} {
		if prov[name] != ProvenanceCheckpoint {
			t.Errorf("provenance[%s] = %q, want %q", name, prov[name], ProvenanceCheckpoint)
		}
	}
	if got := c2.StatsTracker().TableCounts(admin); !reflect.DeepEqual(got, statsBefore) {
		t.Errorf("stats diverged across checkpointed recovery\n got: %+v\nwant: %+v", got, statsBefore)
	}
	if got := c2.MinerFeed().NumTransactions(); got != feedBefore {
		t.Errorf("feed transactions = %d, want %d", got, feedBefore)
	}
	sessionsAfter, err := c2.Sessions(context.Background(), admin)
	if err != nil {
		t.Fatalf("Sessions after recovery: %v", err)
	}
	if !reflect.DeepEqual(sessionsAfter, sessionsBefore) {
		t.Errorf("sessions diverged across checkpointed recovery\n got: %+v\nwant: %+v",
			sessionsAfter, sessionsBefore)
	}
}

// TestRecoveryAfterMiningRebuildsActiveFeed pins the retirement contract at
// the system level: once a mining pass has retired the feed, a snapshot
// carries no miner-feed sidecar (the superseding mining Result is not
// durable), so recovery rebuilds a fresh active feed that can serve rules
// immediately — while stats and sessions still restore from checkpoints.
func TestRecoveryAfterMiningRebuildsActiveFeed(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterTemp.lake, WaterSalinity.salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.lake = WaterSalinity.lake",
			base.Add(time.Duration(i)*time.Minute))
	}
	if res := c.RunMiner(); res == nil {
		t.Fatal("mining pass returned nil")
	}
	if _, _, _, err := c.Durability().Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := openDurable(t, dir)
	defer c2.Close()
	prov := c2.DerivedStateProvenance()
	if prov["miner-feed"] != ProvenanceRebuilt {
		t.Errorf("provenance[miner-feed] = %q, want %q", prov["miner-feed"], ProvenanceRebuilt)
	}
	for _, name := range []string{"stats", "sessions"} {
		if prov[name] != ProvenanceCheckpoint {
			t.Errorf("provenance[%s] = %q, want %q", name, prov[name], ProvenanceCheckpoint)
		}
	}
	// The rebuilt feed is active: it ingested the recovered log and derives
	// rules without waiting for the next mining pass.
	if got := c2.MinerFeed().NumTransactions(); got != c2.Store().Count() {
		t.Errorf("rebuilt feed saw %d transactions, want %d", got, c2.Store().Count())
	}
	if len(c2.MinerFeed().Rules()) == 0 {
		t.Error("rebuilt feed derives no rules from the recovered log")
	}
}

// TestRecoveryFallsBackWithoutSidecars proves a legacy snapshot — one
// written without derived-state sections — still recovers, with every
// subscriber rebuilt from a full scan and the provenance saying so.
func TestRecoveryFallsBackWithoutSidecars(t *testing.T) {
	dir := t.TempDir()
	// Build the data directory with a bare store: no subscribers, so the
	// snapshot has no sidecars — exactly what a pre-sidecar version wrote.
	store := storage.NewStore()
	wcfg := wal.DefaultConfig(dir)
	wcfg.SyncPolicy = "off"
	mgr, _, err := wal.Open(store, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 4; i++ {
		rec, err := storage.NewRecordFromSQL("SELECT WaterTemp.lake FROM WaterTemp")
		if err != nil {
			t.Fatal(err)
		}
		rec.User = "alice"
		rec.IssuedAt = base.Add(time.Duration(i) * time.Minute)
		store.Put(rec)
	}
	if _, _, _, err := mgr.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	c := openDurable(t, dir)
	defer c.Close()
	info := c.Recovery()
	if info == nil || len(info.CheckpointRestored) != 0 {
		t.Fatalf("recovery info = %+v, want no checkpoint restores", info)
	}
	rebuilt := append([]string(nil), info.CheckpointRebuilt...)
	sort.Strings(rebuilt)
	if want := []string{"miner-feed", "sessions", "stats"}; !reflect.DeepEqual(rebuilt, want) {
		t.Fatalf("CheckpointRebuilt = %v, want %v", info.CheckpointRebuilt, want)
	}
	prov := c.DerivedStateProvenance()
	for _, name := range []string{"stats", "miner-feed", "sessions"} {
		if prov[name] != ProvenanceRebuilt {
			t.Errorf("provenance[%s] = %q, want %q", name, prov[name], ProvenanceRebuilt)
		}
	}
	// The rebuilt state is correct: counters and sessions match the store.
	if got := c.StatsTracker().QueryCount(admin); got != 4 {
		t.Errorf("QueryCount = %d, want 4", got)
	}
	sessions, err := c.Sessions(context.Background(), admin)
	if err != nil || len(sessions) != 1 {
		t.Fatalf("Sessions = %v (err %v), want one session", sessions, err)
	}
}

// TestProvenanceLiveWhenInMemory pins the third provenance value: a system
// with no durable snapshot reports every subscriber as live-built.
func TestProvenanceLiveWhenInMemory(t *testing.T) {
	c, err := Open(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for name, src := range c.DerivedStateProvenance() {
		if src != ProvenanceLive {
			t.Errorf("provenance[%s] = %q, want %q", name, src, ProvenanceLive)
		}
	}
}
