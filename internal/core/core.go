// Package core implements the Collaborative Query Management System itself:
// the component that wires the Query Profiler, Query Storage, Meta-query
// Executor, Query Miner and Query Maintenance of Figure 4 into the four
// interaction modes of §2 — Traditional, Search & Browse, Assisted and
// Administrative.
//
// CQMS is the type downstream users embed: examples/ and cmd/ build on this
// API, and the root package cqms re-exports it.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/maintenance"
	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/profiler"
	"repro/internal/recommend"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Config aggregates the configuration of every CQMS component.
type Config struct {
	Profiler    profiler.Config
	Miner       miner.Config
	Maintenance maintenance.Config
	Recommender recommend.Config
	Session     session.Config
	// Durability persists the query log to disk (segmented WAL + snapshots).
	// Disabled unless Durability.Dir is set; Open and OpenWithEngine recover
	// the store from that directory before serving.
	Durability wal.Config
	// MiningInterval and MaintenanceInterval drive the background scheduler
	// started by StartBackground; Durability.SnapshotEvery drives its
	// snapshot/compaction pass.
	MiningInterval      time.Duration
	MaintenanceInterval time.Duration
	// Metrics receives every component's instruments (storage, WAL, derived
	// state, assisted-mode latency). Nil means New creates a private registry,
	// so instrumentation is always on; embedders who want one registry across
	// several systems (or their own exposition endpoint) pass it in here.
	Metrics *telemetry.Registry
}

// DefaultConfig returns defaults for every component.
func DefaultConfig() Config {
	return Config{
		Profiler:            profiler.DefaultConfig(),
		Miner:               miner.DefaultConfig(),
		Maintenance:         maintenance.DefaultConfig(),
		Recommender:         recommend.DefaultConfig(),
		Session:             session.DefaultConfig(),
		MiningInterval:      time.Minute,
		MaintenanceInterval: 5 * time.Minute,
	}
}

// CQMS is the collaborative query management system.
type CQMS struct {
	cfg Config

	eng         *engine.Engine
	store       *storage.Store
	profiler    *profiler.Profiler
	executor    *metaquery.Executor
	miner       *miner.Miner
	recommender *recommend.Recommender
	maintainer  *maintenance.Maintainer

	// stats, minerFeed and sessions are derived-state subscribers on the
	// store's mutation event bus: incrementally maintained aggregates
	// serving the completion hot path and the stats API, a continuously
	// warm association-rule feed, and the live session detector serving
	// session/graph reads without full-log re-segmentation. All three
	// checkpoint into WAL snapshot sidecars and restore on recovery.
	stats     *stats.Tracker
	minerFeed *miner.Feed
	sessions  *session.Live

	mu         sync.RWMutex
	lastMining *miner.Result

	wal      *wal.Manager      // nil when durability is disabled
	recovery *wal.RecoveryInfo // what Open reconstructed from disk

	// follower is the replication apply-loop state (OpenFollower); nil on a
	// primary. started anchors the uptime reported by the status surfaces.
	follower *followerState
	started  time.Time
	// replStreamBytes counts replication stream bytes (served on a durable
	// primary, consumed on a follower); nil — and safe to Add on — otherwise.
	replStreamBytes *telemetry.Counter

	// metrics is never nil; the assist children and miner instruments are
	// cached at construction so hot paths skip the vec lookup.
	metrics       *telemetry.Registry
	assistLatency map[string]*telemetry.Histogram
	minerPass     *telemetry.Histogram
	minerPasses   *telemetry.Counter
}

// New creates a CQMS over a fresh embedded engine.
func New(cfg Config) *CQMS {
	return NewWithEngine(engine.New(), cfg)
}

// NewWithEngine creates a CQMS over an existing engine (typically one already
// populated with data by the workload substrate).
func NewWithEngine(eng *engine.Engine, cfg Config) *CQMS {
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	store := storage.NewStore()
	// Instrument the store before the derived-state subscribers attach: bus
	// callback timing is installed at Subscribe time, so a later EnableMetrics
	// would still cover them, but this order means no mutation is ever counted
	// with some subscribers timed and others not.
	store.EnableMetrics(reg)
	exec := metaquery.New(store)
	c := &CQMS{
		cfg:         cfg,
		eng:         eng,
		store:       store,
		profiler:    profiler.New(eng, store, cfg.Profiler),
		executor:    exec,
		miner:       miner.New(cfg.Miner),
		recommender: recommend.New(store, exec, cfg.Recommender),
		maintainer:  maintenance.New(eng, store, cfg.Maintenance),
		metrics:     reg,
		started:     time.Now(),
	}
	// Derived-state subscribers attach before any durability layer opens
	// (OpenWithEngine), so WAL recovery replay flows through them and their
	// counters come back consistent with the recovered store.
	c.stats = stats.Attach(store)
	c.recommender.UseStats(c.stats)
	c.minerFeed = miner.NewFeed(cfg.Miner.Assoc, minerFeedWarmup)
	c.minerFeed.Attach(store)
	c.sessions = session.AttachLive(store, cfg.Session)
	c.stats.EnableMetrics(reg)
	c.minerFeed.EnableMetrics(reg)
	c.sessions.EnableMetrics(reg)
	c.profiler.EnableMetrics(reg)
	assist := reg.HistogramVec("cqms_assist_seconds",
		"Assisted-mode (§2.3) request latency by operation.",
		telemetry.DefBuckets, "op")
	c.assistLatency = map[string]*telemetry.Histogram{
		"complete":    assist.With("complete"),
		"corrections": assist.With("corrections"),
		"similar":     assist.With("similar"),
	}
	c.minerPass = reg.Histogram("cqms_miner_pass_seconds",
		"Full background mining pass duration (RunMiner).", telemetry.DefBuckets)
	c.minerPasses = reg.Counter("cqms_miner_passes_total",
		"Completed full background mining passes.")
	// Until the first full mining pass runs, context-aware completions are
	// served from the feed's live rule counts instead of going
	// popularity-only.
	c.recommender.UseRuleFeed(c.minerFeed.Rules)
	c.syncSchemas()
	return c
}

// Metrics returns the system's telemetry registry (never nil). Embedders can
// register their own instruments on it or write a Prometheus exposition via
// telemetry.Registry.WritePrometheus; the HTTP server serves it at
// GET /v1/metrics.
func (c *CQMS) Metrics() *telemetry.Registry { return c.metrics }

// minerFeedWarmup is how many logged queries the incremental rule feed mines
// exactly before freezing its vocabulary (see miner.NewIncrementalMiner).
const minerFeedWarmup = 200

// Open creates a CQMS over a fresh embedded engine and, when
// cfg.Durability.Dir is set, recovers the query log from disk (newest
// snapshot plus WAL tail) and keeps it durable from then on. Close flushes
// and detaches the log.
func Open(cfg Config) (*CQMS, error) {
	return OpenWithEngine(engine.New(), cfg)
}

// OpenWithEngine is Open over an existing (typically pre-populated) engine.
func OpenWithEngine(eng *engine.Engine, cfg Config) (*CQMS, error) {
	c := NewWithEngine(eng, cfg)
	if !cfg.Durability.Enabled() {
		return c, nil
	}
	// The WAL registers its instruments (append/fsync latency, segment and
	// recovery gauges) on the same registry as everything else.
	cfg.Durability.Metrics = c.metrics
	mgr, recovery, err := wal.Open(c.store, cfg.Durability)
	if err != nil {
		return nil, fmt.Errorf("core: opening durable query log: %w", err)
	}
	c.wal = mgr
	c.recovery = recovery
	// A durable primary can serve the /v1/replication stream; register the
	// same instrument family a follower does so dashboards see one shape.
	c.replStreamBytes = c.metrics.Counter("cqms_repl_stream_bytes_total",
		"Replication stream bytes transferred (served by a primary, consumed by a follower).")
	c.metrics.GaugeFunc("cqms_repl_applied_seq",
		"Highest WAL sequence applied locally (followers: replicated; primary: appended).",
		func() float64 { return float64(mgr.LastSeq()) })
	c.metrics.GaugeFunc("cqms_repl_lag_seconds",
		"Seconds since this follower last had everything the primary reported (0 when caught up).",
		func() float64 { return 0 }) // a primary is never behind itself
	return c, nil
}

// ReplStreamBytes is the replication stream byte counter: a primary's HTTP
// layer adds bytes served, a follower's apply loop adds bytes consumed. Nil
// (safe to Add on) when this process neither serves nor consumes a stream.
func (c *CQMS) ReplStreamBytes() *telemetry.Counter { return c.replStreamBytes }

// Close flushes the durable query log (a no-op for in-memory systems). The
// CQMS must not be used afterwards.
func (c *CQMS) Close() error {
	if c.wal == nil {
		return nil
	}
	return c.wal.Close()
}

// Durability exposes the WAL manager, or nil when persistence is disabled.
func (c *CQMS) Durability() *wal.Manager { return c.wal }

// Recovery reports what Open reconstructed from disk, or nil when the system
// started fresh or in-memory.
func (c *CQMS) Recovery() *wal.RecoveryInfo { return c.recovery }

// Derived-state provenance values.
const (
	// ProvenanceCheckpoint: restored from a WAL snapshot sidecar checkpoint,
	// then caught up by the tail replay.
	ProvenanceCheckpoint = "checkpoint"
	// ProvenanceRebuilt: a snapshot was loaded but the subscriber's sidecar
	// was missing or unusable, so it rebuilt from a full scan.
	ProvenanceRebuilt = "rebuilt"
	// ProvenanceLive: built incrementally from live mutations (and WAL
	// replay) alone; no snapshot restore was involved.
	ProvenanceLive = "live"
)

// DerivedStateProvenance reports, for each derived-state bus subscriber
// (stats counters, the miner feed, the live session detector), where its
// current state originally came from.
func (c *CQMS) DerivedStateProvenance() map[string]string {
	out := map[string]string{
		"stats":      ProvenanceLive,
		"miner-feed": ProvenanceLive,
		"sessions":   ProvenanceLive,
	}
	if c.recovery != nil {
		for _, name := range c.recovery.CheckpointRestored {
			if _, ok := out[name]; ok {
				out[name] = ProvenanceCheckpoint
			}
		}
		for _, name := range c.recovery.CheckpointRebuilt {
			if _, ok := out[name]; ok {
				out[name] = ProvenanceRebuilt
			}
		}
	}
	if f := c.follower; f != nil {
		// A follower's bootstrap restore plays the same role recovery does:
		// checkpoints came from the primary's snapshot sidecars.
		f.mu.Lock()
		restored := append([]string(nil), f.restored...)
		rebuilt := append([]string(nil), f.rebuilt...)
		f.mu.Unlock()
		for _, name := range restored {
			if _, ok := out[name]; ok {
				out[name] = ProvenanceCheckpoint
			}
		}
		for _, name := range rebuilt {
			if _, ok := out[name]; ok {
				out[name] = ProvenanceRebuilt
			}
		}
	}
	return out
}

// Engine exposes the underlying DBMS (for loading data and DDL in examples
// and tests).
func (c *CQMS) Engine() *engine.Engine { return c.eng }

// Store exposes the query storage.
func (c *CQMS) Store() *storage.Store { return c.store }

// StatsTracker exposes the incrementally maintained, visibility-aware
// query-log aggregates (never nil).
func (c *CQMS) StatsTracker() *stats.Tracker { return c.stats }

// MinerFeed exposes the bus-driven incremental association-rule feed
// (never nil).
func (c *CQMS) MinerFeed() *miner.Feed { return c.minerFeed }

// syncSchemas pushes the engine's current schema catalog into the
// recommender so that name completion and correction know about every table.
func (c *CQMS) syncSchemas() {
	schemas := make(map[string][]string)
	for name, s := range c.eng.Catalog().Schemas() {
		schemas[name] = s.ColumnNames()
	}
	c.recommender.SetSchemas(schemas)
}

// ---------------------------------------------------------------------------
// Traditional Interaction Mode (§2.1)
// ---------------------------------------------------------------------------

// Submit executes a user query through the profiler: the query runs on the
// DBMS and is logged with its features, statistics and output sample.
func (c *CQMS) Submit(sub profiler.Submission) (*profiler.Outcome, error) {
	out, err := c.profiler.Submit(sub)
	if err != nil {
		return nil, err
	}
	// DDL submitted through the CQMS changes the schema; keep the
	// recommender's catalog in sync.
	c.syncSchemas()
	return out, nil
}

// SubmitBatch executes many submissions in one call and commits every
// successfully parsed query to the store under a single commit-lock
// acquisition (storage.PutBatch), amortising the per-write lock round trip
// and WAL ordering cost across the batch. outs[i]/errs[i] mirror Submit's
// return values for subs[i]: a parse error leaves outs[i] nil with errs[i]
// set, while execution errors are reported in-band in the Outcome. A context
// already cancelled on entry aborts before anything executes or commits.
func (c *CQMS) SubmitBatch(ctx context.Context, subs []profiler.Submission) ([]*profiler.Outcome, []error, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	outs, errs := c.profiler.SubmitBatch(subs)
	c.syncSchemas()
	return outs, errs, nil
}

// ExecuteUnprofiled runs a query directly against the DBMS without logging;
// it exists for the profiling-overhead experiment and for data loading.
func (c *CQMS) ExecuteUnprofiled(query string) (*engine.Result, error) {
	return c.profiler.ExecuteUnprofiled(query)
}

// Annotate attaches an annotation to a logged query.
func (c *CQMS) Annotate(id storage.QueryID, p storage.Principal, ann storage.Annotation) error {
	return c.store.Annotate(id, p, ann)
}

// ---------------------------------------------------------------------------
// Search & Browse Interaction Mode (§2.2)
// ---------------------------------------------------------------------------

// Search performs keyword search over the visible query log. A cancelled
// context aborts the underlying scan.
func (c *CQMS) Search(ctx context.Context, p storage.Principal, keywords ...string) ([]metaquery.Match, error) {
	return c.executor.Keyword(ctx, p, keywords...)
}

// SearchSubstring performs substring search over the visible query log.
func (c *CQMS) SearchSubstring(ctx context.Context, p storage.Principal, substr string) ([]metaquery.Match, error) {
	return c.executor.Substring(ctx, p, substr)
}

// MetaQuery executes a SQL meta-query over the feature relations (Figure 1).
func (c *CQMS) MetaQuery(ctx context.Context, p storage.Principal, metaSQL string) (*engine.Result, []metaquery.Match, error) {
	return c.executor.SQLMetaQuery(ctx, p, metaSQL)
}

// SearchByPartialQuery auto-generates and runs a feature meta-query from a
// partially written query.
func (c *CQMS) SearchByPartialQuery(ctx context.Context, p storage.Principal, partialSQL string) ([]metaquery.Match, error) {
	return c.executor.ByPartialQuery(ctx, p, partialSQL)
}

// SearchByStructure runs a query-by-parse-tree search.
func (c *CQMS) SearchByStructure(ctx context.Context, p storage.Principal, cond metaquery.StructuralCondition) ([]metaquery.Match, error) {
	return c.executor.ByStructure(ctx, p, cond)
}

// SearchByData runs a query-by-data search with positive and negative example
// values.
func (c *CQMS) SearchByData(ctx context.Context, p storage.Principal, include, exclude []string) ([]metaquery.Match, error) {
	return c.executor.ByData(ctx, p, include, exclude)
}

// SimilarTo returns the k logged queries most similar to the given query
// text.
func (c *CQMS) SimilarTo(ctx context.Context, p storage.Principal, queryText string, k int) ([]metaquery.Match, error) {
	return c.executor.KNN(ctx, p, queryText, k)
}

// GetQuery returns the current version of one visible logged query without
// cloning it; the record must be treated as read-only.
func (c *CQMS) GetQuery(ctx context.Context, p storage.Principal, id storage.QueryID) (*storage.QueryRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.store.Snapshot().Get(id, p)
}

// History returns the visible queries of one user in temporal order. The
// records are the store's shared immutable versions and must be treated as
// read-only.
func (c *CQMS) History(ctx context.Context, p storage.Principal, user string) ([]*storage.QueryRecord, error) {
	recs, _, err := c.HistoryPage(ctx, p, user, HistoryCursor{}, 0)
	return recs, err
}

// HistoryCursor pins one logical history listing: At is the membership
// high-water mark shared by every page, After the last query ID already
// returned. The zero value starts a new listing at the current high-water
// mark.
type HistoryCursor struct {
	At    storage.QueryID
	After storage.QueryID
}

// HistoryPage returns one page (at most limit records; limit <= 0 means
// unbounded) of a user's visible history and the cursor for the next page.
// Pages are served from views pinned at the first page's high-water mark, so
// paginating to exhaustion yields exactly that snapshot's membership — no
// duplicates or gaps under concurrent inserts — at O(log n + page) per page.
func (c *CQMS) HistoryPage(ctx context.Context, p storage.Principal, user string, cur HistoryCursor, limit int) ([]*storage.QueryRecord, HistoryCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, cur, err
	}
	var view *storage.View
	if cur.At == 0 {
		view = c.store.Snapshot()
		cur.At = view.Limit()
	} else {
		view = c.store.SnapshotAt(cur.At)
	}
	var out []*storage.QueryRecord
	view.ScanByUserAfter(user, cur.After, p, storage.ScanWithContext(ctx, func(rec *storage.QueryRecord) bool {
		out = append(out, rec)
		return limit <= 0 || len(out) < limit
	}))
	if err := ctx.Err(); err != nil {
		return nil, cur, err
	}
	if len(out) > 0 {
		cur.After = out[len(out)-1].ID
	}
	return out, cur, nil
}

// Sessions returns summaries of the live-detected sessions, restricted to
// those whose queries are all visible to the principal. Sessions are
// maintained incrementally off the mutation event bus, so the summaries are
// current as of the last committed query — no mining pass required.
func (c *CQMS) Sessions(ctx context.Context, p storage.Principal) ([]session.Summary, error) {
	return c.SessionsPage(ctx, p, 0, 0)
}

// SessionsPage returns at most limit visible session summaries (limit <= 0
// means unbounded) with ID strictly greater than after, in ascending ID
// order. Session IDs are stable while a user's stream only grows at its
// chronological tail; an out-of-order insert, deletion or text repair
// re-segments that user and reissues their session IDs.
func (c *CQMS) SessionsPage(ctx context.Context, p storage.Principal, after int64, limit int) ([]session.Summary, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.sessions.Summaries(p, after, limit), nil
}

// SessionGraph renders the Figure 2 session window for a detected session.
func (c *CQMS) SessionGraph(ctx context.Context, p storage.Principal, sessionID int64) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	sess, ok, visible := c.sessions.Get(p, sessionID)
	if !ok {
		return "", fmt.Errorf("core: session %d: %w", sessionID, storage.ErrNotFound)
	}
	if !visible {
		return "", fmt.Errorf("core: %w", storage.ErrAccessDenied)
	}
	return session.Render(&sess), nil
}

// SessionCount returns how many sessions the live detector currently tracks
// across all users (regardless of visibility).
func (c *CQMS) SessionCount() int { return c.sessions.Count() }

// ---------------------------------------------------------------------------
// Assisted Interaction Mode (§2.3)
// ---------------------------------------------------------------------------

// Complete returns completion suggestions (tables, columns, predicates,
// joins) for a partially written query.
func (c *CQMS) Complete(ctx context.Context, p storage.Principal, partialSQL string, k int) ([]recommend.Completion, error) {
	start := time.Now()
	defer func() { c.assistLatency["complete"].Observe(time.Since(start)) }()
	out := c.recommender.Complete(ctx, p, partialSQL, k)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SuggestTables returns table suggestions only.
func (c *CQMS) SuggestTables(ctx context.Context, p storage.Principal, partialSQL string, k int) ([]recommend.Completion, error) {
	out := c.recommender.SuggestTables(ctx, p, partialSQL, k)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Corrections returns spelling corrections for table and column names.
func (c *CQMS) Corrections(ctx context.Context, p storage.Principal, querySQL string) ([]recommend.Correction, error) {
	start := time.Now()
	defer func() { c.assistLatency["corrections"].Observe(time.Since(start)) }()
	out := c.recommender.Corrections(ctx, p, querySQL)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// EmptyResultSuggestions suggests alternative predicates for a query that
// returned no rows.
func (c *CQMS) EmptyResultSuggestions(ctx context.Context, p storage.Principal, querySQL string, k int) ([]recommend.Correction, error) {
	return c.recommender.EmptyResultSuggestions(ctx, p, querySQL, k)
}

// SimilarQueries returns the Figure 3 similar-queries pane for a query.
func (c *CQMS) SimilarQueries(ctx context.Context, p storage.Principal, querySQL string, k int) ([]recommend.SimilarQuery, error) {
	start := time.Now()
	defer func() { c.assistLatency["similar"].Observe(time.Since(start)) }()
	return c.recommender.SimilarQueries(ctx, p, querySQL, k)
}

// AssistPane renders the full Figure 3 pane (completions + similar queries)
// for a partial query.
func (c *CQMS) AssistPane(ctx context.Context, p storage.Principal, partialSQL string, k int) (string, error) {
	completions, err := c.Complete(ctx, p, partialSQL, k)
	if err != nil {
		return "", err
	}
	similar, err := c.recommender.SimilarQueries(ctx, p, partialSQL, k)
	if err != nil {
		return "", err
	}
	return recommend.RenderAssistPane(completions, similar), nil
}

// Tutorial generates the data-set tutorial of §2.3.
func (c *CQMS) Tutorial(ctx context.Context, p storage.Principal, queriesPerTable int) ([]recommend.TutorialStep, error) {
	out := c.recommender.Tutorial(ctx, p, queriesPerTable)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Administrative Interaction Mode (§2.4) and background processing
// ---------------------------------------------------------------------------

// SetVisibility changes a query's visibility (owner or admin only).
func (c *CQMS) SetVisibility(id storage.QueryID, p storage.Principal, v storage.Visibility) error {
	return c.store.SetVisibility(id, p, v)
}

// DeleteQuery removes a query from the log (owner or admin only).
func (c *CQMS) DeleteQuery(id storage.QueryID, p storage.Principal) error {
	return c.store.Delete(id, p)
}

// RunMiner performs one full background mining pass: persisting the live
// detector's sessions into the store, the miner proper, and installation of
// the results into the recommender. Session detection itself no longer runs
// here — the bus-driven detector maintains the windows continuously — so the
// pass only writes the current assignments back (feature relations and the
// bySession index serve meta-queries from them).
func (c *CQMS) RunMiner() *miner.Result {
	start := time.Now()
	defer func() {
		c.minerPass.Observe(time.Since(start))
		c.minerPasses.Inc()
	}()
	// On a read-only replica the session assignments arrive through the
	// replicated log; the local pass only refreshes the recommender.
	if !c.store.ReadOnly() {
		c.persistSessions()
	}
	res := c.miner.Run(c.store)
	c.recommender.UpdateMining(res)
	// The installed Result permanently supersedes the feed's approximate
	// rules in the recommender, so stop the feed's per-commit itemset
	// counting; it keeps counting transactions for the stats surface.
	if c.minerFeed != nil {
		c.minerFeed.Retire()
	}
	c.syncSchemas()
	c.mu.Lock()
	c.lastMining = res
	c.mu.Unlock()
	return res
}

// persistSessions writes the live detector's current session assignments and
// edges into the store. Export copies the sessions first: the mutations
// below re-enter the detector through the bus, so they must not run while
// holding its lock. Individual failures (a query deleted since the export)
// are skipped — the next pass re-persists.
func (c *CQMS) persistSessions() {
	for _, sess := range c.sessions.Export() {
		for _, q := range sess.Queries {
			if q.SessionID != sess.ID {
				_ = c.store.AssignSession(q.ID, sess.ID)
			}
		}
		for _, e := range sess.Edges {
			_ = c.store.AddEdge(e)
		}
	}
}

// RunMaintenance performs one maintenance scan.
func (c *CQMS) RunMaintenance() (*maintenance.Report, error) {
	report, err := c.maintainer.Scan()
	if err != nil {
		return nil, err
	}
	c.syncSchemas()
	return report, nil
}

// MiningResult returns the most recent mining result (nil before the first
// pass).
func (c *CQMS) MiningResult() *miner.Result {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lastMining
}

// StartBackground launches the periodic miner and maintenance passes (the
// "run in the background" components of Figure 4) and, when durability is
// enabled, the periodic snapshot/compaction pass, until the context is
// cancelled. It returns immediately.
func (c *CQMS) StartBackground(ctx context.Context) {
	mineEvery := c.cfg.MiningInterval
	if mineEvery <= 0 {
		mineEvery = time.Minute
	}
	maintainEvery := c.cfg.MaintenanceInterval
	if maintainEvery <= 0 {
		maintainEvery = 5 * time.Minute
	}
	go func() {
		ticker := time.NewTicker(mineEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				c.RunMiner()
			}
		}
	}()
	// Maintenance repairs by writing (MarkInvalid, ReplaceText, …); on a
	// read-only replica those repairs replicate in from the primary instead.
	if !c.store.ReadOnly() {
		go func() {
			ticker := time.NewTicker(maintainEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if _, err := c.RunMaintenance(); err != nil {
						// Maintenance errors are retried on the next tick.
						continue
					}
				}
			}
		}()
	}
	if c.wal != nil && c.cfg.Durability.SnapshotEvery > 0 {
		go func() {
			ticker := time.NewTicker(c.cfg.Durability.SnapshotEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					// Snapshot errors are retried on the next tick; the WAL
					// itself keeps every mutation in the meantime.
					_ = c.wal.MaybeSnapshot()
				}
			}
		}()
	}
}
