package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metaquery"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/workload"
)

var (
	admin = storage.Principal{Admin: true}
	alice = storage.Principal{User: "alice", Groups: []string{"limnology"}}
)

// newSystem builds a CQMS over a small populated scientific database.
func newSystem(t testing.TB) *CQMS {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 300, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	return NewWithEngine(eng, DefaultConfig())
}

func submit(t testing.TB, c *CQMS, user, group, q string, at time.Time) *profiler.Outcome {
	t.Helper()
	out, err := c.Submit(profiler.Submission{
		User: user, Group: group, Visibility: storage.VisibilityGroup, SQL: q, IssuedAt: at,
	})
	if err != nil {
		t.Fatalf("Submit(%q): %v", q, err)
	}
	return out
}

// loadFigure2Session replays the paper's Figure 2 session for one user.
func loadFigure2Session(t testing.TB, c *CQMS, user string, base time.Time) {
	t.Helper()
	queries := []string{
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 10",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18",
		"SELECT * FROM WaterTemp, WaterSalinity, CityLocations WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18 AND WaterTemp.loc_x = CityLocations.loc_x",
	}
	for i, q := range queries {
		submit(t, c, user, "limnology", q, base.Add(time.Duration(i)*time.Minute))
	}
}

func TestTraditionalModeEndToEnd(t *testing.T) {
	c := newSystem(t)
	out := submit(t, c, "alice", "limnology", "SELECT lake, temp FROM WaterTemp WHERE temp < 18", time.Time{})
	if out.ExecError != nil {
		t.Fatalf("exec error: %v", out.ExecError)
	}
	if out.Result.Cardinality() == 0 {
		t.Errorf("query over populated data returned nothing")
	}
	if c.Store().Count() != 1 {
		t.Errorf("store count = %d", c.Store().Count())
	}
	if err := c.Annotate(out.QueryID, alice, storage.Annotation{Text: "cold lakes"}); err != nil {
		t.Errorf("Annotate: %v", err)
	}
}

func TestSearchAndBrowseMode(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	loadFigure2Session(t, c, "alice", base)
	submit(t, c, "bob", "limnology", "SELECT city FROM CityLocations WHERE state = 'WA'", base.Add(3*time.Hour))

	// Keyword search.
	ctx := context.Background()
	if got, err := c.Search(ctx, admin, "WaterSalinity"); err != nil || len(got) != 4 {
		t.Errorf("keyword matches = %d, want 4", len(got))
	}
	// Figure 1 meta-query through the public API.
	_, matches, err := c.MetaQuery(ctx, admin, `SELECT Q.qid FROM Queries Q, Attributes A1, Attributes A2
		WHERE Q.qid = A1.qid AND Q.qid = A2.qid AND A1.relName = 'WaterTemp' AND A1.attrName = 'temp'
		AND A2.relName = 'WaterSalinity' AND A2.attrName = 'loc_x'`)
	if err != nil {
		t.Fatalf("MetaQuery: %v", err)
	}
	if len(matches) == 0 {
		t.Errorf("meta-query found nothing")
	}
	// Structure search.
	if got, err := c.SearchByStructure(ctx, admin, metaquery.StructuralCondition{MinTables: 3}); err != nil || len(got) != 1 {
		t.Errorf("structural matches = %d, want 1", len(got))
	}
	// Partial-query search.
	got, err := c.SearchByPartialQuery(ctx, admin, "SELECT FROM WaterTemp, WaterSalinity")
	if err != nil {
		t.Fatalf("SearchByPartialQuery: %v", err)
	}
	if len(got) != 4 {
		t.Errorf("partial matches = %d, want 4", len(got))
	}
	// History.
	if h, err := c.History(ctx, admin, "alice"); err != nil || len(h) != 5 {
		t.Errorf("history = %d, want 5", len(h))
	}
	// kNN.
	knn, err := c.SimilarTo(ctx, admin, "SELECT * FROM WaterTemp WHERE temp < 20", 3)
	if err != nil || len(knn) == 0 {
		t.Errorf("SimilarTo: %v, %d results", err, len(knn))
	}
}

func TestSessionsAfterMining(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	loadFigure2Session(t, c, "alice", base)
	submit(t, c, "alice", "limnology", "SELECT city FROM CityLocations", base.Add(5*time.Hour))

	res := c.RunMiner()
	if res == nil || res.TransactionCount != 6 {
		t.Fatalf("mining result = %+v", res)
	}
	ctx := context.Background()
	sessions, err := c.Sessions(ctx, admin)
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	graph, err := c.SessionGraph(ctx, admin, sessions[0].ID)
	if err != nil {
		t.Fatalf("SessionGraph: %v", err)
	}
	if !strings.Contains(graph, "+table WaterSalinity") {
		t.Errorf("session graph missing Figure 2 edge label:\n%s", graph)
	}
	if _, err := c.SessionGraph(ctx, admin, 9999); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("missing session error = %v", err)
	}
	// Access control on session graphs: a stranger cannot view alice's
	// group-visible session.
	stranger := storage.Principal{User: "eve", Groups: []string{"other"}}
	if _, err := c.SessionGraph(ctx, stranger, sessions[0].ID); !errors.Is(err, storage.ErrAccessDenied) {
		t.Errorf("stranger session access = %v, want ErrAccessDenied", err)
	}
	if got, err := c.Sessions(ctx, stranger); err != nil || len(got) != 0 {
		t.Errorf("stranger sees %d sessions, want 0", len(got))
	}
	if c.MiningResult() == nil {
		t.Errorf("MiningResult should be cached")
	}
}

func TestAssistedMode(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	// Build a log where WaterSalinity co-occurs with WaterTemp.
	for i := 0; i < 6; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18",
			base.Add(time.Duration(i)*3*time.Hour))
	}
	for i := 0; i < 8; i++ {
		submit(t, c, "bob", "limnology", "SELECT city FROM CityLocations WHERE pop > 100000",
			base.Add(time.Duration(i)*2*time.Hour))
	}
	c.RunMiner()

	// Context-aware table completion (§2.3 example).
	ctx := context.Background()
	got, err := c.SuggestTables(ctx, alice, "SELECT * FROM WaterSalinity", 3)
	if err != nil {
		t.Fatalf("SuggestTables: %v", err)
	}
	if len(got) == 0 || got[0].Text != "WaterTemp" {
		t.Errorf("table suggestions = %+v, want WaterTemp first", got)
	}
	// Full completion list has several kinds.
	all, err := c.Complete(ctx, alice, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if len(all) == 0 {
		t.Errorf("no completions")
	}
	// Corrections.
	corr, err := c.Corrections(ctx, alice, "SELECT tmep FROM WaterTemp")
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	if len(corr) == 0 {
		t.Errorf("no corrections for misspelled column")
	}
	// Empty-result suggestions.
	sugg, err := c.EmptyResultSuggestions(ctx, alice, "SELECT * FROM WaterTemp WHERE temp < -100", 3)
	if err != nil {
		t.Fatalf("EmptyResultSuggestions: %v", err)
	}
	if len(sugg) == 0 {
		t.Errorf("no empty-result suggestions")
	}
	// Similar queries and the rendered pane.
	pane, err := c.AssistPane(ctx, alice, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	if err != nil {
		t.Fatalf("AssistPane: %v", err)
	}
	if !strings.Contains(pane, "Similar Queries") {
		t.Errorf("pane missing similar queries:\n%s", pane)
	}
	sim, err := c.SimilarQueries(ctx, alice, "SELECT WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 20", 3)
	if err != nil || len(sim) == 0 {
		t.Errorf("SimilarQueries: %v, %d", err, len(sim))
	}
	// Tutorial.
	steps, err := c.Tutorial(ctx, alice, 2)
	if err != nil {
		t.Fatalf("Tutorial: %v", err)
	}
	if len(steps) == 0 {
		t.Errorf("no tutorial steps")
	}
}

func TestAdministrativeMode(t *testing.T) {
	c := newSystem(t)
	out := submit(t, c, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})

	// Visibility change and deletion respect ownership.
	bob := storage.Principal{User: "bob", Groups: []string{"limnology"}}
	if err := c.SetVisibility(out.QueryID, bob, storage.VisibilityPublic); !errors.Is(err, storage.ErrAccessDenied) {
		t.Errorf("non-owner visibility change err = %v", err)
	}
	if err := c.SetVisibility(out.QueryID, alice, storage.VisibilityPublic); err != nil {
		t.Errorf("owner visibility change: %v", err)
	}
	if err := c.DeleteQuery(out.QueryID, alice); err != nil {
		t.Errorf("DeleteQuery: %v", err)
	}
	if c.Store().Count() != 0 {
		t.Errorf("query not deleted")
	}
}

func TestMaintenanceIntegration(t *testing.T) {
	c := newSystem(t)
	submit(t, c, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})
	submit(t, c, "alice", "limnology", "SELECT battery FROM Sensors WHERE battery < 20", time.Time{})

	// Rename a column through the CQMS itself (DDL also goes through Submit).
	if _, err := c.Submit(profiler.Submission{User: "dba", SQL: "ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature"}); err != nil {
		t.Fatalf("DDL submit: %v", err)
	}
	report, err := c.RunMaintenance()
	if err != nil {
		t.Fatalf("RunMaintenance: %v", err)
	}
	if len(report.Repaired) != 1 {
		t.Fatalf("repaired = %+v, want the WaterTemp query", report.Repaired)
	}
	// The repaired query must execute against the evolved schema.
	rec, err := c.Store().Get(report.Repaired[0].ID, admin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteUnprofiled(rec.Text); err != nil {
		t.Errorf("repaired query fails: %v", err)
	}
}

func TestBackgroundScheduler(t *testing.T) {
	c := newSystem(t)
	cfg := DefaultConfig()
	cfg.MiningInterval = 10 * time.Millisecond
	cfg.MaintenanceInterval = 10 * time.Millisecond
	c2 := NewWithEngine(c.Engine(), cfg)
	submit(t, c2, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	c2.StartBackground(ctx)
	deadline := time.After(2 * time.Second)
	for c2.MiningResult() == nil {
		select {
		case <-deadline:
			cancel()
			t.Fatal("background miner did not run")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if c2.MiningResult().TransactionCount != 1 {
		t.Errorf("mining result = %+v", c2.MiningResult())
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MiningInterval <= 0 || cfg.MaintenanceInterval <= 0 {
		t.Errorf("intervals must be positive")
	}
	if cfg.Profiler.Sample.MaxRows == 0 {
		t.Errorf("profiler sample policy missing")
	}
	c := New(cfg)
	if c.Engine() == nil || c.Store() == nil {
		t.Errorf("New returned incomplete system")
	}
}

// TestCancelledContextPropagates pins the v1 contract at the core layer: a
// cancelled request context makes every read/search method fail with
// context.Canceled instead of returning partial results, and batch submits
// refuse to start.
func TestCancelledContextPropagates(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	loadFigure2Session(t, c, "alice", base)
	c.RunMiner()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := c.Search(cancelled, admin, "watertemp"); !errors.Is(err, context.Canceled) {
		t.Errorf("Search: err = %v, want context.Canceled", err)
	}
	if _, err := c.SearchSubstring(cancelled, admin, "watertemp"); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchSubstring: err = %v", err)
	}
	if _, _, err := c.MetaQuery(cancelled, admin, "SELECT qid FROM Queries"); !errors.Is(err, context.Canceled) {
		t.Errorf("MetaQuery: err = %v", err)
	}
	if _, err := c.History(cancelled, admin, "alice"); !errors.Is(err, context.Canceled) {
		t.Errorf("History: err = %v", err)
	}
	if _, _, err := c.HistoryPage(cancelled, admin, "alice", HistoryCursor{}, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("HistoryPage: err = %v", err)
	}
	if _, err := c.Sessions(cancelled, admin); !errors.Is(err, context.Canceled) {
		t.Errorf("Sessions: err = %v", err)
	}
	if _, err := c.SessionGraph(cancelled, admin, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SessionGraph: err = %v", err)
	}
	if _, err := c.Complete(cancelled, admin, "SELECT * FROM WaterTemp", 3); !errors.Is(err, context.Canceled) {
		t.Errorf("Complete: err = %v", err)
	}
	if _, err := c.SimilarTo(cancelled, admin, "SELECT * FROM WaterTemp", 3); !errors.Is(err, context.Canceled) {
		t.Errorf("SimilarTo: err = %v", err)
	}
	if _, err := c.Tutorial(cancelled, admin, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("Tutorial: err = %v", err)
	}
	if _, err := c.GetQuery(cancelled, admin, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("GetQuery: err = %v", err)
	}
	if _, _, err := c.SubmitBatch(cancelled, []profiler.Submission{{User: "alice", SQL: "SELECT lake FROM WaterTemp"}}); !errors.Is(err, context.Canceled) {
		t.Errorf("SubmitBatch: err = %v", err)
	}
	before := c.Store().Count()
	if got := c.Store().Count(); got != before {
		t.Errorf("cancelled batch mutated the store: %d -> %d", before, got)
	}
}

// TestHistoryPagePinsSnapshot paginates a user's history while new queries
// arrive between pages; the listing must stay exactly the first page's
// membership.
func TestHistoryPagePinsSnapshot(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		submit(t, c, "alice", "limnology", "SELECT lake FROM WaterTemp", base.Add(time.Duration(i)*time.Minute))
	}
	ctx := context.Background()

	var all []storage.QueryID
	cur := HistoryCursor{}
	for {
		recs, next, err := c.HistoryPage(ctx, admin, "alice", cur, 3)
		if err != nil {
			t.Fatalf("HistoryPage: %v", err)
		}
		if len(recs) == 0 {
			break
		}
		for _, rec := range recs {
			all = append(all, rec.ID)
		}
		cur = next
		// Interleave writes between pages: they must stay invisible.
		submit(t, c, "alice", "limnology", "SELECT salinity FROM WaterSalinity", base.Add(time.Hour))
	}
	if len(all) != 10 {
		t.Fatalf("paginated %d records, want the 10 pre-listing ones: %v", len(all), all)
	}
	seen := map[storage.QueryID]bool{}
	for i, id := range all {
		if seen[id] {
			t.Fatalf("duplicate query %d in pagination", id)
		}
		seen[id] = true
		if i > 0 && id <= all[i-1] {
			t.Fatalf("pagination out of order: %v", all)
		}
	}
}

// TestColdStartContextAwareCompletion proves the bus-driven miner feed
// serves context-aware table suggestions before the first full mining pass:
// no RunMiner is called, yet the §2.3 co-occurrence example still ranks
// WaterTemp above the globally more popular CityLocations.
func TestColdStartContextAwareCompletion(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 6; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
			base.Add(time.Duration(i)*time.Minute))
	}
	for i := 0; i < 8; i++ {
		submit(t, c, "bob", "limnology", "SELECT city FROM CityLocations WHERE pop > 100000",
			base.Add(time.Duration(i)*time.Minute))
	}
	got, err := c.SuggestTables(context.Background(), alice, "SELECT * FROM WaterSalinity", 3)
	if err != nil {
		t.Fatalf("SuggestTables: %v", err)
	}
	if len(got) == 0 || got[0].Text != "WaterTemp" {
		t.Errorf("cold-start suggestions = %+v, want WaterTemp first (from the incremental feed)", got)
	}

	// A full mining pass retires the feed (its rules are superseded by the
	// installed Result), but the transaction counter behind the stats
	// surface keeps following submissions.
	c.RunMiner()
	before := c.MinerFeed().NumTransactions()
	submit(t, c, "alice", "limnology", "SELECT temp FROM WaterTemp", base.Add(time.Hour))
	if got := c.MinerFeed().NumTransactions(); got != before+1 {
		t.Errorf("retired feed transactions = %d, want %d", got, before+1)
	}
	got, err = c.SuggestTables(context.Background(), alice, "SELECT * FROM WaterSalinity", 3)
	if err != nil {
		t.Fatalf("SuggestTables after mining pass: %v", err)
	}
	if len(got) == 0 || got[0].Text != "WaterTemp" {
		t.Errorf("post-mining suggestions = %+v, want WaterTemp first (from the mined result)", got)
	}
}
