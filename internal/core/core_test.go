package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metaquery"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/workload"
)

var (
	admin = storage.Principal{Admin: true}
	alice = storage.Principal{User: "alice", Groups: []string{"limnology"}}
)

// newSystem builds a CQMS over a small populated scientific database.
func newSystem(t testing.TB) *CQMS {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 300, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	return NewWithEngine(eng, DefaultConfig())
}

func submit(t testing.TB, c *CQMS, user, group, q string, at time.Time) *profiler.Outcome {
	t.Helper()
	out, err := c.Submit(profiler.Submission{
		User: user, Group: group, Visibility: storage.VisibilityGroup, SQL: q, IssuedAt: at,
	})
	if err != nil {
		t.Fatalf("Submit(%q): %v", q, err)
	}
	return out
}

// loadFigure2Session replays the paper's Figure 2 session for one user.
func loadFigure2Session(t testing.TB, c *CQMS, user string, base time.Time) {
	t.Helper()
	queries := []string{
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 10",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18",
		"SELECT * FROM WaterTemp, WaterSalinity, CityLocations WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18 AND WaterTemp.loc_x = CityLocations.loc_x",
	}
	for i, q := range queries {
		submit(t, c, user, "limnology", q, base.Add(time.Duration(i)*time.Minute))
	}
}

func TestTraditionalModeEndToEnd(t *testing.T) {
	c := newSystem(t)
	out := submit(t, c, "alice", "limnology", "SELECT lake, temp FROM WaterTemp WHERE temp < 18", time.Time{})
	if out.ExecError != nil {
		t.Fatalf("exec error: %v", out.ExecError)
	}
	if out.Result.Cardinality() == 0 {
		t.Errorf("query over populated data returned nothing")
	}
	if c.Store().Count() != 1 {
		t.Errorf("store count = %d", c.Store().Count())
	}
	if err := c.Annotate(out.QueryID, alice, storage.Annotation{Text: "cold lakes"}); err != nil {
		t.Errorf("Annotate: %v", err)
	}
}

func TestSearchAndBrowseMode(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	loadFigure2Session(t, c, "alice", base)
	submit(t, c, "bob", "limnology", "SELECT city FROM CityLocations WHERE state = 'WA'", base.Add(3*time.Hour))

	// Keyword search.
	if got := c.Search(admin, "WaterSalinity"); len(got) != 4 {
		t.Errorf("keyword matches = %d, want 4", len(got))
	}
	// Figure 1 meta-query through the public API.
	_, matches, err := c.MetaQuery(admin, `SELECT Q.qid FROM Queries Q, Attributes A1, Attributes A2
		WHERE Q.qid = A1.qid AND Q.qid = A2.qid AND A1.relName = 'WaterTemp' AND A1.attrName = 'temp'
		AND A2.relName = 'WaterSalinity' AND A2.attrName = 'loc_x'`)
	if err != nil {
		t.Fatalf("MetaQuery: %v", err)
	}
	if len(matches) == 0 {
		t.Errorf("meta-query found nothing")
	}
	// Structure search.
	if got := c.SearchByStructure(admin, metaquery.StructuralCondition{MinTables: 3}); len(got) != 1 {
		t.Errorf("structural matches = %d, want 1", len(got))
	}
	// Partial-query search.
	got, err := c.SearchByPartialQuery(admin, "SELECT FROM WaterTemp, WaterSalinity")
	if err != nil {
		t.Fatalf("SearchByPartialQuery: %v", err)
	}
	if len(got) != 4 {
		t.Errorf("partial matches = %d, want 4", len(got))
	}
	// History.
	if h := c.History(admin, "alice"); len(h) != 5 {
		t.Errorf("history = %d, want 5", len(h))
	}
	// kNN.
	knn, err := c.SimilarTo(admin, "SELECT * FROM WaterTemp WHERE temp < 20", 3)
	if err != nil || len(knn) == 0 {
		t.Errorf("SimilarTo: %v, %d results", err, len(knn))
	}
}

func TestSessionsAfterMining(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	loadFigure2Session(t, c, "alice", base)
	submit(t, c, "alice", "limnology", "SELECT city FROM CityLocations", base.Add(5*time.Hour))

	res := c.RunMiner()
	if res == nil || res.TransactionCount != 6 {
		t.Fatalf("mining result = %+v", res)
	}
	sessions := c.Sessions(admin)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	graph, err := c.SessionGraph(admin, sessions[0].ID)
	if err != nil {
		t.Fatalf("SessionGraph: %v", err)
	}
	if !strings.Contains(graph, "+table WaterSalinity") {
		t.Errorf("session graph missing Figure 2 edge label:\n%s", graph)
	}
	if _, err := c.SessionGraph(admin, 9999); !errors.Is(err, storage.ErrNotFound) {
		t.Errorf("missing session error = %v", err)
	}
	// Access control on session graphs: a stranger cannot view alice's
	// group-visible session.
	stranger := storage.Principal{User: "eve", Groups: []string{"other"}}
	if _, err := c.SessionGraph(stranger, sessions[0].ID); !errors.Is(err, storage.ErrAccessDenied) {
		t.Errorf("stranger session access = %v, want ErrAccessDenied", err)
	}
	if got := c.Sessions(stranger); len(got) != 0 {
		t.Errorf("stranger sees %d sessions, want 0", len(got))
	}
	if c.MiningResult() == nil {
		t.Errorf("MiningResult should be cached")
	}
}

func TestAssistedMode(t *testing.T) {
	c := newSystem(t)
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	// Build a log where WaterSalinity co-occurs with WaterTemp.
	for i := 0; i < 6; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18",
			base.Add(time.Duration(i)*3*time.Hour))
	}
	for i := 0; i < 8; i++ {
		submit(t, c, "bob", "limnology", "SELECT city FROM CityLocations WHERE pop > 100000",
			base.Add(time.Duration(i)*2*time.Hour))
	}
	c.RunMiner()

	// Context-aware table completion (§2.3 example).
	got := c.SuggestTables(alice, "SELECT * FROM WaterSalinity", 3)
	if len(got) == 0 || got[0].Text != "WaterTemp" {
		t.Errorf("table suggestions = %+v, want WaterTemp first", got)
	}
	// Full completion list has several kinds.
	all := c.Complete(alice, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	if len(all) == 0 {
		t.Errorf("no completions")
	}
	// Corrections.
	corr := c.Corrections(alice, "SELECT tmep FROM WaterTemp")
	if len(corr) == 0 {
		t.Errorf("no corrections for misspelled column")
	}
	// Empty-result suggestions.
	sugg, err := c.EmptyResultSuggestions(alice, "SELECT * FROM WaterTemp WHERE temp < -100", 3)
	if err != nil {
		t.Fatalf("EmptyResultSuggestions: %v", err)
	}
	if len(sugg) == 0 {
		t.Errorf("no empty-result suggestions")
	}
	// Similar queries and the rendered pane.
	pane, err := c.AssistPane(alice, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	if err != nil {
		t.Fatalf("AssistPane: %v", err)
	}
	if !strings.Contains(pane, "Similar Queries") {
		t.Errorf("pane missing similar queries:\n%s", pane)
	}
	sim, err := c.SimilarQueries(alice, "SELECT WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 20", 3)
	if err != nil || len(sim) == 0 {
		t.Errorf("SimilarQueries: %v, %d", err, len(sim))
	}
	// Tutorial.
	steps := c.Tutorial(alice, 2)
	if len(steps) == 0 {
		t.Errorf("no tutorial steps")
	}
}

func TestAdministrativeMode(t *testing.T) {
	c := newSystem(t)
	out := submit(t, c, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})

	// Visibility change and deletion respect ownership.
	bob := storage.Principal{User: "bob", Groups: []string{"limnology"}}
	if err := c.SetVisibility(out.QueryID, bob, storage.VisibilityPublic); !errors.Is(err, storage.ErrAccessDenied) {
		t.Errorf("non-owner visibility change err = %v", err)
	}
	if err := c.SetVisibility(out.QueryID, alice, storage.VisibilityPublic); err != nil {
		t.Errorf("owner visibility change: %v", err)
	}
	if err := c.DeleteQuery(out.QueryID, alice); err != nil {
		t.Errorf("DeleteQuery: %v", err)
	}
	if c.Store().Count() != 0 {
		t.Errorf("query not deleted")
	}
}

func TestMaintenanceIntegration(t *testing.T) {
	c := newSystem(t)
	submit(t, c, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})
	submit(t, c, "alice", "limnology", "SELECT battery FROM Sensors WHERE battery < 20", time.Time{})

	// Rename a column through the CQMS itself (DDL also goes through Submit).
	if _, err := c.Submit(profiler.Submission{User: "dba", SQL: "ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature"}); err != nil {
		t.Fatalf("DDL submit: %v", err)
	}
	report, err := c.RunMaintenance()
	if err != nil {
		t.Fatalf("RunMaintenance: %v", err)
	}
	if len(report.Repaired) != 1 {
		t.Fatalf("repaired = %+v, want the WaterTemp query", report.Repaired)
	}
	// The repaired query must execute against the evolved schema.
	rec, err := c.Store().Get(report.Repaired[0].ID, admin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteUnprofiled(rec.Text); err != nil {
		t.Errorf("repaired query fails: %v", err)
	}
}

func TestBackgroundScheduler(t *testing.T) {
	c := newSystem(t)
	cfg := DefaultConfig()
	cfg.MiningInterval = 10 * time.Millisecond
	cfg.MaintenanceInterval = 10 * time.Millisecond
	c2 := NewWithEngine(c.Engine(), cfg)
	submit(t, c2, "alice", "limnology", "SELECT temp FROM WaterTemp WHERE temp < 18", time.Time{})

	ctx, cancel := context.WithCancel(context.Background())
	c2.StartBackground(ctx)
	deadline := time.After(2 * time.Second)
	for c2.MiningResult() == nil {
		select {
		case <-deadline:
			cancel()
			t.Fatal("background miner did not run")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	if c2.MiningResult().TransactionCount != 1 {
		t.Errorf("mining result = %+v", c2.MiningResult())
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.MiningInterval <= 0 || cfg.MaintenanceInterval <= 0 {
		t.Errorf("intervals must be positive")
	}
	if cfg.Profiler.Sample.MaxRows == 0 {
		t.Errorf("profiler sample policy missing")
	}
	c := New(cfg)
	if c.Engine() == nil || c.Store() == nil {
		t.Errorf("New returned incomplete system")
	}
}
