package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/storage"
	"repro/internal/workload"
)

// openDurable builds a durable CQMS over a small populated database, reusing
// the data directory across calls to exercise recover-on-start.
func openDurable(t *testing.T, dir string) *CQMS {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 300, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Durability.Dir = dir
	cfg.Durability.SyncPolicy = "off"
	c, err := OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	return c
}

func TestDurableSubmitSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	out := submit(t, c, "alice", "limnology",
		"SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15", base)
	submit(t, c, "alice", "limnology",
		"SELECT WaterSalinity.lake FROM WaterSalinity", base.Add(time.Minute))
	if err := c.Annotate(out.QueryID, alice, storage.Annotation{Text: "cold lakes"}); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	if err := c.SetVisibility(out.QueryID, alice, storage.VisibilityPublic); err != nil {
		t.Fatalf("SetVisibility: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := openDurable(t, dir)
	defer c2.Close()
	rec := c2.Recovery()
	if rec == nil || rec.Queries != 2 {
		t.Fatalf("recovery info = %+v, want 2 queries", rec)
	}
	got, err := c2.Store().Get(out.QueryID, storage.Principal{User: "bob"})
	if err != nil {
		t.Fatalf("recovered query not public: %v", err)
	}
	if len(got.Annotations) != 1 || got.Annotations[0].Text != "cold lakes" {
		t.Fatalf("recovered annotations = %+v", got.Annotations)
	}
	if matches, err := c2.Search(context.Background(), admin, "watertemp"); err != nil || len(matches) != 1 {
		t.Fatalf("keyword search over recovered log found %d matches, want 1", len(matches))
	}
	// The log keeps growing after recovery.
	out3 := submit(t, c2, "bob", "limnology",
		"SELECT Observations.id FROM Observations", base.Add(2*time.Minute))
	if out3.QueryID <= out.QueryID {
		t.Fatalf("post-recovery query id %d not beyond recovered ids", out3.QueryID)
	}
}

func TestOpenWithoutDurabilityIsInMemory(t *testing.T) {
	c, err := Open(DefaultConfig())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if c.Durability() != nil || c.Recovery() != nil {
		t.Fatal("in-memory Open attached a WAL manager")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestDurableSchedulerSnapshots(t *testing.T) {
	dir := t.TempDir()
	eng := engine.New()
	if err := workload.Populate(eng, 100, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Durability.Dir = dir
	cfg.Durability.SyncPolicy = "off"
	cfg.Durability.SnapshotEvery = 20 * time.Millisecond
	cfg.MiningInterval = time.Hour
	cfg.MaintenanceInterval = time.Hour
	c, err := OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	defer c.Close()
	if _, err := c.Submit(profiler.Submission{
		User: "alice", SQL: "SELECT WaterTemp.lake FROM WaterTemp",
	}); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	c.StartBackground(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		info, err := c.Durability().Info()
		if err != nil {
			t.Fatalf("Info: %v", err)
		}
		if info.SnapshotSeq > 0 {
			return // the scheduler snapshotted the store
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("background scheduler never snapshotted the store")
}

// TestRecoveryRebuildsDerivedState proves the bus-driven derived state — the
// stats tracker and the miner feed — comes back from a restart consistent
// with the recovered store, without any explicit re-scan by the caller.
func TestRecoveryRebuildsDerivedState(t *testing.T) {
	dir := t.TempDir()
	c := openDurable(t, dir)
	base := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		submit(t, c, "alice", "limnology",
			"SELECT WaterTemp.lake, WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 15",
			base.Add(time.Duration(i)*time.Minute))
	}
	submit(t, c, "bob", "limnology",
		"SELECT WaterSalinity.lake FROM WaterSalinity", base.Add(time.Hour))
	before := c.StatsTracker().TableCounts(admin)
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	c2 := openDurable(t, dir)
	defer c2.Close()
	after := c2.StatsTracker().TableCounts(admin)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("stats counters diverged across recovery\n pre: %+v\npost: %+v", before, after)
	}
	if got := c2.StatsTracker().QueryCount(admin); got != c2.Store().Count() {
		t.Errorf("tracker covers %d queries, store holds %d", got, c2.Store().Count())
	}
	if got := c2.MinerFeed().NumTransactions(); got != c2.Store().Count() {
		t.Errorf("miner feed saw %d transactions, want %d", got, c2.Store().Count())
	}
	// New submissions keep flowing through the bus after recovery.
	submit(t, c2, "alice", "limnology",
		"SELECT Observations.id FROM Observations", base.Add(2*time.Hour))
	if got := c2.MinerFeed().NumTransactions(); got != c2.Store().Count() {
		t.Errorf("post-recovery feed = %d, want %d", got, c2.Store().Count())
	}
}
