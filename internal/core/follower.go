package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Follower mode: a read replica bootstraps from the primary's newest
// snapshot, then replays the primary's WAL stream through storage.Apply —
// the same entry point recovery uses — so every derived-state subscriber
// (stats, miner feed, live sessions) rebuilds exactly as it would from the
// local log. The replica's store is read-only: its only writer is the
// replication apply loop.

// Roles a CQMS process can serve in a replication topology.
const (
	RolePrimary  = "primary"
	RoleFollower = "follower"
)

// ReplicationSource is the transport a follower pulls the primary's state
// through. internal/client implements it over the /v1/replication API; tests
// implement it in-process.
type ReplicationSource interface {
	// FetchSnapshot returns the primary's newest snapshot: the log sequence
	// it covers, the serialised store state (storage.StoreState JSON) and the
	// derived-state checkpoints it carries. ok is false when the primary has
	// no snapshot yet — the follower then replays the whole log from 0.
	FetchSnapshot(ctx context.Context) (seq uint64, state []byte, checkpoints []storage.SubscriberCheckpoint, ok bool, err error)
	// FetchWAL streams every record with sequence > after, in order, to fn,
	// long-polling up to wait when the tail is empty. It returns the
	// primary's current last sequence and the bytes transferred. A cursor
	// that has been compacted away yields an error matching wal.ErrCompacted;
	// the follower must re-bootstrap from a newer snapshot.
	FetchWAL(ctx context.Context, after uint64, wait time.Duration, fn func(seq uint64, payload []byte) error) (primarySeq uint64, bytes int64, err error)
	// Primary names the upstream (its base URL) for status and errors.
	Primary() string
}

// followerState tracks the replication apply loop's progress.
type followerState struct {
	src  ReplicationSource
	wait time.Duration // long-poll window per FetchWAL

	appliedSeq  atomic.Uint64
	primarySeq  atomic.Uint64 // last sequence the primary reported
	snapshotSeq atomic.Uint64 // sequence the last bootstrap snapshot covered
	// caughtUpNano is the wall clock (unix nanos) of the last moment the
	// follower had applied everything the primary reported; 0 before the
	// first catch-up. It bounds read staleness: a read served now is at most
	// now-caughtUpNano behind the primary.
	caughtUpNano atomic.Int64

	mu       sync.Mutex
	lastErr  string
	restored []string // subscribers restored from snapshot checkpoints
	rebuilt  []string // subscribers that fell back to a full rebuild
}

// followerPollWait is the default long-poll window for the WAL tail.
const followerPollWait = 25 * time.Second

// OpenFollower creates a read replica over an existing engine, pulling state
// from src. The replica is in-memory: cfg.Durability must be disabled (its
// log of record is the primary's). Call StartFollower to begin replicating.
func OpenFollower(eng *engine.Engine, cfg Config, src ReplicationSource) (*CQMS, error) {
	if cfg.Durability.Enabled() {
		return nil, fmt.Errorf("core: a follower keeps no local log; disable Durability.Dir")
	}
	c := NewWithEngine(eng, cfg)
	c.store.SetReadOnly(true)
	f := &followerState{src: src, wait: followerPollWait}
	c.follower = f
	c.replStreamBytes = c.metrics.Counter("cqms_repl_stream_bytes_total",
		"Replication stream bytes transferred (served by a primary, consumed by a follower).")
	c.metrics.GaugeFunc("cqms_repl_applied_seq",
		"Highest WAL sequence applied locally (followers: replicated; primary: appended).",
		func() float64 { return float64(f.appliedSeq.Load()) })
	c.metrics.GaugeFunc("cqms_repl_lag_seconds",
		"Seconds since this follower last had everything the primary reported (0 when caught up).",
		func() float64 { return f.lagSeconds() })
	return c, nil
}

// StartFollower launches the replication apply loop; it returns immediately
// and the loop runs until the context is cancelled. Only valid on a CQMS
// built by OpenFollower.
func (c *CQMS) StartFollower(ctx context.Context) error {
	if c.follower == nil {
		return fmt.Errorf("core: StartFollower on a non-follower")
	}
	go c.follower.run(ctx, c)
	return nil
}

// run is the apply loop: bootstrap from a snapshot, then tail the WAL
// stream. Errors back off and retry; a compacted cursor re-bootstraps.
func (f *followerState) run(ctx context.Context, c *CQMS) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	sleep := func() bool {
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
			backoff = min(backoff*2, maxBackoff)
			return true
		}
	}
	for ctx.Err() == nil {
		if err := f.bootstrap(ctx, c); err != nil {
			f.setErr(err)
			if !sleep() {
				return
			}
			continue
		}
		backoff = 100 * time.Millisecond
		for ctx.Err() == nil {
			err := f.pullTail(ctx, c)
			if err == nil {
				f.setErr(nil)
				backoff = 100 * time.Millisecond
				continue
			}
			if errors.Is(err, wal.ErrCompacted) {
				// The records past our cursor are gone; re-bootstrap from
				// the primary's newer snapshot.
				slog.Info("replication cursor compacted; re-bootstrapping",
					"applied", f.appliedSeq.Load())
				break
			}
			f.setErr(err)
			if !sleep() {
				return
			}
		}
	}
}

// bootstrap restores the store (and derived-state checkpoints) from the
// primary's newest snapshot and positions the cursor at its covered
// sequence. With no snapshot on the primary the follower starts empty and
// replays the whole log.
func (f *followerState) bootstrap(ctx context.Context, c *CQMS) error {
	seq, state, cps, ok, err := f.src.FetchSnapshot(ctx)
	if err != nil {
		return fmt.Errorf("core: fetching bootstrap snapshot: %w", err)
	}
	if !ok {
		f.appliedSeq.Store(0)
		f.snapshotSeq.Store(0)
		return nil
	}
	var st storage.StoreState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("core: decoding bootstrap snapshot: %w", err)
	}
	restored, rebuilt := c.store.RestoreStateWithCheckpoints(&st, cps)
	f.appliedSeq.Store(seq)
	f.snapshotSeq.Store(seq)
	f.mu.Lock()
	f.restored, f.rebuilt = restored, rebuilt
	f.mu.Unlock()
	slog.Info("follower bootstrapped from primary snapshot",
		"seq", seq, "restored", restored, "rebuilt", rebuilt)
	return nil
}

// pullTail fetches and applies one batch of WAL records.
func (f *followerState) pullTail(ctx context.Context, c *CQMS) error {
	after := f.appliedSeq.Load()
	primarySeq, n, err := f.src.FetchWAL(ctx, after, f.wait, func(seq uint64, payload []byte) error {
		m, derr := storage.DecodeMutation(payload)
		if derr != nil {
			return fmt.Errorf("core: decoding replicated mutation at seq %d: %w", seq, derr)
		}
		if aerr := c.store.Apply(m); aerr != nil {
			return fmt.Errorf("core: applying replicated mutation at seq %d: %w", seq, aerr)
		}
		f.appliedSeq.Store(seq)
		return nil
	})
	c.replStreamBytes.Add(uint64(n))
	if err != nil {
		return err
	}
	if primarySeq > f.primarySeq.Load() {
		f.primarySeq.Store(primarySeq)
	}
	if f.appliedSeq.Load() >= f.primarySeq.Load() {
		f.caughtUpNano.Store(time.Now().UnixNano())
	}
	return nil
}

// lagSeconds is the follower's replication lag: 0 when it has applied
// everything the primary last reported, otherwise the time since it last
// had (and the time since start before the first catch-up).
func (f *followerState) lagSeconds() float64 {
	if f.appliedSeq.Load() >= f.primarySeq.Load() && f.caughtUpNano.Load() != 0 {
		return 0
	}
	at := f.caughtUpNano.Load()
	if at == 0 {
		return -1 // never caught up yet; unknown
	}
	return time.Since(time.Unix(0, at)).Seconds()
}

// stalenessSeconds bounds how far behind the primary a read served now can
// be: the time since the follower last knew it was fully caught up. -1
// before the first catch-up.
func (f *followerState) stalenessSeconds() float64 {
	at := f.caughtUpNano.Load()
	if at == 0 {
		return -1
	}
	return time.Since(time.Unix(0, at)).Seconds()
}

func (f *followerState) setErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		f.lastErr = ""
		return
	}
	f.lastErr = err.Error()
}

// Role reports this process's replication role.
func (c *CQMS) Role() string {
	if c.follower != nil {
		return RoleFollower
	}
	return RolePrimary
}

// PrimaryURL names the upstream a follower replicates from ("" on a
// primary). Write refusals surface it so clients know where to go.
func (c *CQMS) PrimaryURL() string {
	if c.follower == nil {
		return ""
	}
	return c.follower.src.Primary()
}

// Uptime reports how long this CQMS has been constructed.
func (c *CQMS) Uptime() time.Duration { return time.Since(c.started) }

// ReplStatus is the replication status document shared by both roles.
type ReplStatus struct {
	// Role is RolePrimary or RoleFollower.
	Role string
	// Primary is the upstream URL (followers only).
	Primary string
	// AppliedSeq is the highest WAL sequence applied locally: appended on a
	// primary, replicated on a follower.
	AppliedSeq uint64
	// PrimarySeq is the primary's last sequence as this process knows it
	// (equal to AppliedSeq on the primary itself).
	PrimarySeq uint64
	// SnapshotSeq is the sequence the newest snapshot covers (the bootstrap
	// snapshot on a follower).
	SnapshotSeq uint64
	// LagRecords is max(PrimarySeq-AppliedSeq, 0).
	LagRecords uint64
	// LagSeconds is 0 when caught up, otherwise seconds since the follower
	// last was; -1 before the first catch-up. Always 0 on a primary.
	LagSeconds float64
	// StalenessSeconds bounds how far behind the primary a read served now
	// can be (followers; -1 before the first catch-up, 0 on a primary).
	StalenessSeconds float64
	// LastError is the apply loop's most recent failure ("" when healthy).
	LastError string
}

// ReplicationStatus reports the replication position of this process.
func (c *CQMS) ReplicationStatus() ReplStatus {
	if f := c.follower; f != nil {
		applied, primary := f.appliedSeq.Load(), f.primarySeq.Load()
		var lagRecords uint64
		if primary > applied {
			lagRecords = primary - applied
		}
		f.mu.Lock()
		lastErr := f.lastErr
		f.mu.Unlock()
		return ReplStatus{
			Role:             RoleFollower,
			Primary:          f.src.Primary(),
			AppliedSeq:       applied,
			PrimarySeq:       primary,
			SnapshotSeq:      f.snapshotSeq.Load(),
			LagRecords:       lagRecords,
			LagSeconds:       f.lagSeconds(),
			StalenessSeconds: f.stalenessSeconds(),
			LastError:        lastErr,
		}
	}
	st := ReplStatus{Role: RolePrimary}
	if c.wal != nil {
		st.AppliedSeq = c.wal.LastSeq()
		st.PrimarySeq = st.AppliedSeq
		st.SnapshotSeq = c.wal.SnapshotSeq()
	}
	return st
}
