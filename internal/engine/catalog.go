package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sentinel errors returned by the catalog and executor.
var (
	// ErrTableNotFound is returned when a referenced table does not exist.
	ErrTableNotFound = errors.New("engine: table not found")
	// ErrColumnNotFound is returned when a referenced column does not exist.
	ErrColumnNotFound = errors.New("engine: column not found")
	// ErrTableExists is returned when creating a table that already exists.
	ErrTableExists = errors.New("engine: table already exists")
	// ErrAmbiguousColumn is returned when an unqualified column name matches
	// more than one table in scope.
	ErrAmbiguousColumn = errors.New("engine: ambiguous column")

	errNullComparison = errors.New("engine: comparison with NULL")
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
	// PrimaryKey and NotNull are informational; the engine does not enforce
	// uniqueness but the workload generator and maintenance component use
	// them.
	PrimaryKey bool
	NotNull    bool
}

// Schema describes a table's structure.
type Schema struct {
	Table   string
	Columns []Column
}

// ColumnIndex returns the position of the named column (case-insensitive) or
// -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the column names in order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	out := &Schema{Table: s.Table, Columns: make([]Column, len(s.Columns))}
	copy(out.Columns, s.Columns)
	return out
}

// Table is an in-memory relation: a schema plus row storage.
type Table struct {
	Schema *Schema
	Rows   []Row
}

// SchemaChangeKind enumerates the kinds of schema evolution tracked by the
// catalog for the Query Maintenance component.
type SchemaChangeKind int

// Schema change kinds.
const (
	ChangeCreateTable SchemaChangeKind = iota
	ChangeDropTable
	ChangeAddColumn
	ChangeDropColumn
	ChangeRenameColumn
	ChangeRenameTable
)

// String returns a readable label for the change kind.
func (k SchemaChangeKind) String() string {
	switch k {
	case ChangeCreateTable:
		return "CREATE TABLE"
	case ChangeDropTable:
		return "DROP TABLE"
	case ChangeAddColumn:
		return "ADD COLUMN"
	case ChangeDropColumn:
		return "DROP COLUMN"
	case ChangeRenameColumn:
		return "RENAME COLUMN"
	case ChangeRenameTable:
		return "RENAME TABLE"
	default:
		return "UNKNOWN"
	}
}

// SchemaChange records one schema evolution event. The Query Maintenance
// component compares query timestamps against these events to flag queries
// invalidated by schema changes (paper §4.4).
type SchemaChange struct {
	Kind      SchemaChangeKind
	Table     string
	Column    string // affected column for column-level changes
	NewName   string // for renames
	Timestamp time.Time
	Version   int64
}

// Catalog holds all tables and the schema-change log. It is safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	tables  map[string]*Table // keyed by lower-cased name
	changes []SchemaChange
	version int64
	now     func() time.Time
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), now: time.Now}
}

// SetClock overrides the catalog's time source, used by tests and the
// workload generator to produce deterministic schema-change timestamps.
func (c *Catalog) SetClock(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}

// Version returns the current schema version. The version increments on
// every schema change.
func (c *Catalog) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// Changes returns a copy of the schema-change log, optionally filtered to
// changes after the given version.
func (c *Catalog) Changes(afterVersion int64) []SchemaChange {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []SchemaChange
	for _, ch := range c.changes {
		if ch.Version > afterVersion {
			out = append(out, ch)
		}
	}
	return out
}

// TableNames returns the names of all tables, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		names = append(names, t.Schema.Table)
	}
	sort.Strings(names)
	return names
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return t, nil
}

// SchemaOf returns a copy of the named table's schema.
func (c *Catalog) SchemaOf(name string) (*Schema, error) {
	t, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return t.Schema.Clone(), nil
}

// Schemas returns a copy of every table schema keyed by table name.
func (c *Catalog) Schemas() map[string]*Schema {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Schema, len(c.tables))
	for _, t := range c.tables {
		out[t.Schema.Table] = t.Schema.Clone()
	}
	return out
}

func (c *Catalog) recordChange(ch SchemaChange) {
	c.version++
	ch.Version = c.version
	ch.Timestamp = c.now()
	c.changes = append(c.changes, ch)
}

// CreateTable adds a new table with the given schema.
func (c *Catalog) CreateTable(schema *Schema, ifNotExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(schema.Table)
	if _, ok := c.tables[key]; ok {
		if ifNotExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrTableExists, schema.Table)
	}
	c.tables[key] = &Table{Schema: schema.Clone()}
	c.recordChange(SchemaChange{Kind: ChangeCreateTable, Table: schema.Table})
	return nil
}

// DropTable removes a table.
func (c *Catalog) DropTable(name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := c.tables[key]
	if !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(c.tables, key)
	c.recordChange(SchemaChange{Kind: ChangeDropTable, Table: t.Schema.Table})
	return nil
}

// AddColumn appends a column to an existing table, filling existing rows
// with NULL.
func (c *Catalog) AddColumn(table string, col Column) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	if t.Schema.ColumnIndex(col.Name) >= 0 {
		return fmt.Errorf("engine: column %s already exists in %s", col.Name, table)
	}
	t.Schema.Columns = append(t.Schema.Columns, col)
	for i := range t.Rows {
		t.Rows[i] = append(t.Rows[i], Null)
	}
	c.recordChange(SchemaChange{Kind: ChangeAddColumn, Table: t.Schema.Table, Column: col.Name})
	return nil
}

// DropColumn removes a column from an existing table.
func (c *Catalog) DropColumn(table, column string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	idx := t.Schema.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("%w: %s.%s", ErrColumnNotFound, table, column)
	}
	t.Schema.Columns = append(t.Schema.Columns[:idx], t.Schema.Columns[idx+1:]...)
	for i, row := range t.Rows {
		t.Rows[i] = append(row[:idx], row[idx+1:]...)
	}
	c.recordChange(SchemaChange{Kind: ChangeDropColumn, Table: t.Schema.Table, Column: column})
	return nil
}

// RenameColumn renames a column of an existing table.
func (c *Catalog) RenameColumn(table, oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	idx := t.Schema.ColumnIndex(oldName)
	if idx < 0 {
		return fmt.Errorf("%w: %s.%s", ErrColumnNotFound, table, oldName)
	}
	t.Schema.Columns[idx].Name = newName
	c.recordChange(SchemaChange{Kind: ChangeRenameColumn, Table: t.Schema.Table, Column: oldName, NewName: newName})
	return nil
}

// RenameTable renames a table.
func (c *Catalog) RenameTable(oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(oldName)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, oldName)
	}
	if _, exists := c.tables[strings.ToLower(newName)]; exists {
		return fmt.Errorf("%w: %s", ErrTableExists, newName)
	}
	delete(c.tables, key)
	t.Schema.Table = newName
	c.tables[strings.ToLower(newName)] = t
	c.recordChange(SchemaChange{Kind: ChangeRenameTable, Table: oldName, NewName: newName})
	return nil
}

// Insert appends rows to a table, coercing each value to the column type.
func (c *Catalog) Insert(table string, columns []string, rows []Row) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrTableNotFound, table)
	}
	// Map provided column order onto schema order.
	indexes := make([]int, 0, len(t.Schema.Columns))
	if len(columns) == 0 {
		for i := range t.Schema.Columns {
			indexes = append(indexes, i)
		}
	} else {
		for _, name := range columns {
			idx := t.Schema.ColumnIndex(name)
			if idx < 0 {
				return 0, fmt.Errorf("%w: %s.%s", ErrColumnNotFound, table, name)
			}
			indexes = append(indexes, idx)
		}
	}
	inserted := 0
	for _, row := range rows {
		if len(row) != len(indexes) {
			return inserted, fmt.Errorf("engine: INSERT into %s expects %d values, got %d", table, len(indexes), len(row))
		}
		full := make(Row, len(t.Schema.Columns))
		for i := range full {
			full[i] = Null
		}
		for i, idx := range indexes {
			v, err := row[i].Coerce(t.Schema.Columns[idx].Type)
			if err != nil {
				return inserted, err
			}
			full[idx] = v
		}
		t.Rows = append(t.Rows, full)
		inserted++
	}
	return inserted, nil
}

// RowCount returns the number of rows stored in the table.
func (c *Catalog) RowCount(table string) (int, error) {
	t, err := c.Table(table)
	if err != nil {
		return 0, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(t.Rows), nil
}

// snapshotRows returns a copy of the table's rows for scan isolation.
func (c *Catalog) snapshotRows(name string) (*Schema, []Row, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	rows := make([]Row, len(t.Rows))
	copy(rows, t.Rows)
	return t.Schema.Clone(), rows, nil
}
