package engine

import (
	"fmt"
	"time"

	"repro/internal/sql"
)

// Result is the outcome of executing a statement: for SELECTs the column
// names and rows, for DML the affected-row count. Elapsed is the wall-clock
// execution time, which the Query Profiler records as a runtime feature.
type Result struct {
	Columns      []string
	Rows         []Row
	RowsAffected int64
	Elapsed      time.Duration
}

// Cardinality returns the number of result rows (0 for DML).
func (r *Result) Cardinality() int { return len(r.Rows) }

// Engine is the embedded DBMS: a catalog plus a query executor. It is safe
// for concurrent use; DDL/DML serialise on the catalog's lock while SELECTs
// run over row snapshots.
type Engine struct {
	catalog *Catalog
}

// New returns an engine with an empty catalog.
func New() *Engine {
	return &Engine{catalog: NewCatalog()}
}

// NewWithCatalog returns an engine over an existing catalog, used by tests
// and the workload generator to share pre-populated data.
func NewWithCatalog(c *Catalog) *Engine {
	return &Engine{catalog: c}
}

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *Catalog { return e.catalog }

// Execute parses and executes a single SQL statement.
func (e *Engine) Execute(query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt)
}

// MustExecute executes a statement and panics on error. It is intended for
// test fixtures and example programs that load static data.
func (e *Engine) MustExecute(query string) *Result {
	res, err := e.Execute(query)
	if err != nil {
		panic(fmt.Sprintf("engine: MustExecute(%q): %v", query, err))
	}
	return res
}

// ExecuteStmt executes an already-parsed statement.
func (e *Engine) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	start := time.Now()
	res, err := e.dispatch(stmt)
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

func (e *Engine) dispatch(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		rel, err := e.execSelect(s, nil)
		if err != nil {
			return nil, err
		}
		return &Result{Columns: rel.columnNames(), Rows: rel.rows}, nil
	case *sql.InsertStmt:
		return e.execInsert(s)
	case *sql.UpdateStmt:
		return e.execUpdate(s)
	case *sql.DeleteStmt:
		return e.execDelete(s)
	case *sql.CreateTableStmt:
		return e.execCreateTable(s)
	case *sql.DropTableStmt:
		if err := e.catalog.DropTable(s.Table, s.IfExists); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sql.AlterTableStmt:
		return e.execAlterTable(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (e *Engine) execCreateTable(s *sql.CreateTableStmt) (*Result, error) {
	schema := &Schema{Table: s.Table}
	for _, c := range s.Columns {
		typ, err := TypeFromName(c.Type)
		if err != nil {
			return nil, err
		}
		schema.Columns = append(schema.Columns, Column{
			Name: c.Name, Type: typ, PrimaryKey: c.PrimaryKey, NotNull: c.NotNull,
		})
	}
	if err := e.catalog.CreateTable(schema, s.IfNotExists); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) execAlterTable(s *sql.AlterTableStmt) (*Result, error) {
	switch s.Action {
	case sql.AlterAddColumn:
		typ, err := TypeFromName(s.Column.Type)
		if err != nil {
			return nil, err
		}
		if err := e.catalog.AddColumn(s.Table, Column{Name: s.Column.Name, Type: typ}); err != nil {
			return nil, err
		}
	case sql.AlterDropColumn:
		if err := e.catalog.DropColumn(s.Table, s.OldName); err != nil {
			return nil, err
		}
	case sql.AlterRenameColumn:
		if err := e.catalog.RenameColumn(s.Table, s.OldName, s.NewName); err != nil {
			return nil, err
		}
	case sql.AlterRenameTable:
		if err := e.catalog.RenameTable(s.Table, s.NewName); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unsupported ALTER TABLE action %d", s.Action)
	}
	return &Result{}, nil
}

func (e *Engine) execInsert(s *sql.InsertStmt) (*Result, error) {
	ev := &evaluator{eng: e}
	var rows []Row
	if s.Select != nil {
		rel, err := e.execSelect(s.Select, nil)
		if err != nil {
			return nil, err
		}
		rows = rel.rows
	} else {
		emptyEnv := &env{rel: &relation{}, row: Row{}}
		for _, exprRow := range s.Rows {
			row := make(Row, len(exprRow))
			for i, ex := range exprRow {
				v, err := ev.eval(ex, emptyEnv)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
	}
	n, err := e.catalog.Insert(s.Table, s.Columns, rows)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: int64(n)}, nil
}

func (e *Engine) execUpdate(s *sql.UpdateStmt) (*Result, error) {
	ev := &evaluator{eng: e}
	e.catalog.mu.Lock()
	defer e.catalog.mu.Unlock()
	t, ok := e.catalog.tables[lowerKey(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, s.Table)
	}
	rel := tableRelation(t)
	var affected int64
	for i, row := range t.Rows {
		en := &env{rel: rel, row: row}
		if s.Where != nil {
			ok, err := ev.evalBool(s.Where, en)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		for _, a := range s.Set {
			idx := t.Schema.ColumnIndex(a.Column)
			if idx < 0 {
				return nil, fmt.Errorf("%w: %s.%s", ErrColumnNotFound, s.Table, a.Column)
			}
			v, err := ev.eval(a.Value, en)
			if err != nil {
				return nil, err
			}
			cv, err := v.Coerce(t.Schema.Columns[idx].Type)
			if err != nil {
				return nil, err
			}
			t.Rows[i][idx] = cv
		}
		affected++
	}
	return &Result{RowsAffected: affected}, nil
}

func (e *Engine) execDelete(s *sql.DeleteStmt) (*Result, error) {
	ev := &evaluator{eng: e}
	e.catalog.mu.Lock()
	defer e.catalog.mu.Unlock()
	t, ok := e.catalog.tables[lowerKey(s.Table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, s.Table)
	}
	rel := tableRelation(t)
	kept := t.Rows[:0:0]
	var affected int64
	for _, row := range t.Rows {
		remove := true
		if s.Where != nil {
			en := &env{rel: rel, row: row}
			ok, err := ev.evalBool(s.Where, en)
			if err != nil {
				return nil, err
			}
			remove = ok
		}
		if remove {
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	return &Result{RowsAffected: affected}, nil
}

func tableRelation(t *Table) *relation {
	cols := make([]binding, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		cols[i] = binding{qualifier: t.Schema.Table, table: t.Schema.Table, column: c.Name}
	}
	return &relation{cols: cols}
}

func lowerKey(name string) string {
	b := []byte(name)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
