package engine

import (
	"errors"
	"strings"
	"testing"
)

// newLakesEngine builds the paper's running-example schema with a small,
// deterministic data set.
func newLakesEngine(t testing.TB) *Engine {
	t.Helper()
	e := New()
	stmts := []string{
		"CREATE TABLE WaterSalinity (id INT PRIMARY KEY, lake TEXT, loc_x INT, loc_y INT, salinity FLOAT, depth FLOAT)",
		"CREATE TABLE WaterTemp (id INT PRIMARY KEY, lake TEXT, loc_x INT, loc_y INT, temp FLOAT)",
		"CREATE TABLE CityLocations (city TEXT, state TEXT, loc_x INT, loc_y INT, pop INT)",
		"INSERT INTO WaterSalinity VALUES (1, 'Lake Washington', 10, 20, 2.5, 30), (2, 'Lake Union', 11, 21, 3.1, 15), (3, 'Lake Sammamish', 12, 22, 1.8, 25)",
		"INSERT INTO WaterTemp VALUES (1, 'Lake Washington', 10, 20, 14.5), (2, 'Lake Union', 11, 21, 19.0), (3, 'Lake Sammamish', 12, 22, 17.2), (4, 'Lake Washington', 10, 20, 21.0)",
		"INSERT INTO CityLocations VALUES ('Seattle', 'WA', 10, 20, 750000), ('Bellevue', 'WA', 12, 22, 150000), ('Detroit', 'MI', 90, 95, 630000)",
	}
	for _, s := range stmts {
		if _, err := e.Execute(s); err != nil {
			t.Fatalf("setup %q: %v", s, err)
		}
	}
	return e
}

func query(t testing.TB, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%q): %v", q, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, temp FROM WaterTemp WHERE temp < 18")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
	if res.Columns[0] != "lake" || res.Columns[1] != "temp" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT * FROM CityLocations")
	if len(res.Rows) != 3 || len(res.Columns) != 5 {
		t.Errorf("rows = %d cols = %d", len(res.Rows), len(res.Columns))
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := New()
	res := query(t, e, "SELECT 1 + 2, 'hello'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Int != 3 || res.Rows[0][1].Str != "hello" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestWherePredicates(t *testing.T) {
	e := newLakesEngine(t)
	cases := []struct {
		q    string
		want int
	}{
		{"SELECT * FROM WaterTemp WHERE temp < 18", 2},
		{"SELECT * FROM WaterTemp WHERE temp >= 18", 2},
		{"SELECT * FROM WaterTemp WHERE temp BETWEEN 15 AND 20", 2},
		{"SELECT * FROM WaterTemp WHERE lake LIKE 'Lake W%'", 2},
		{"SELECT * FROM WaterTemp WHERE lake IN ('Lake Union', 'Lake Sammamish')", 2},
		{"SELECT * FROM WaterTemp WHERE lake NOT IN ('Lake Union')", 3},
		{"SELECT * FROM WaterTemp WHERE temp < 18 AND lake = 'Lake Washington'", 1},
		{"SELECT * FROM WaterTemp WHERE temp < 15 OR temp > 20", 2},
		{"SELECT * FROM WaterTemp WHERE NOT temp < 18", 2},
		{"SELECT * FROM CityLocations WHERE state = 'WA' AND pop > 200000", 1},
		{"SELECT * FROM CityLocations WHERE pop IS NULL", 0},
		{"SELECT * FROM CityLocations WHERE pop IS NOT NULL", 3},
	}
	for _, c := range cases {
		res := query(t, e, c.q)
		if len(res.Rows) != c.want {
			t.Errorf("%q rows = %d, want %d", c.q, len(res.Rows), c.want)
		}
	}
}

func TestImplicitJoinWithWhere(t *testing.T) {
	e := newLakesEngine(t)
	// The paper's Figure 3 query (without the IN clause).
	res := query(t, e, `SELECT * FROM WaterSalinity S, WaterTemp T
		WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y`)
	// WaterTemp rows with temp<18: id 1 (Lake Washington) and id 3 (Lake
	// Sammamish); each joins to one salinity row at the same location.
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
	if len(res.Columns) != 11 {
		t.Errorf("columns = %d, want 11", len(res.Columns))
	}
}

func TestExplicitJoins(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT S.lake, T.temp FROM WaterSalinity S JOIN WaterTemp T ON S.loc_x = T.loc_x")
	if len(res.Rows) != 4 {
		t.Errorf("inner join rows = %d, want 4", len(res.Rows))
	}

	// LEFT JOIN keeps unmatched left rows with NULL padding.
	query(t, e, "INSERT INTO WaterSalinity VALUES (4, 'Lake Tahoe', 99, 99, 0.1, 500)")
	res = query(t, e, "SELECT S.lake, T.temp FROM WaterSalinity S LEFT JOIN WaterTemp T ON S.loc_x = T.loc_x")
	if len(res.Rows) != 5 {
		t.Fatalf("left join rows = %d, want 5", len(res.Rows))
	}
	foundNull := false
	for _, r := range res.Rows {
		if r[0].Str == "Lake Tahoe" && r[1].IsNull() {
			foundNull = true
		}
	}
	if !foundNull {
		t.Errorf("left join should keep Lake Tahoe with NULL temp: %v", res.Rows)
	}

	// RIGHT JOIN mirrors.
	res = query(t, e, "SELECT T.lake, S.salinity FROM WaterSalinity S RIGHT JOIN WaterTemp T ON S.loc_x = T.loc_x")
	if len(res.Rows) != 4 {
		t.Errorf("right join rows = %d, want 4", len(res.Rows))
	}

	// CROSS JOIN.
	res = query(t, e, "SELECT * FROM CityLocations CROSS JOIN WaterTemp")
	if len(res.Rows) != 12 {
		t.Errorf("cross join rows = %d, want 12", len(res.Rows))
	}
}

func TestJoinUsing(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT * FROM WaterSalinity JOIN WaterTemp USING (loc_x, loc_y)")
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(res.Rows))
	}
}

func TestAggregates(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT COUNT(*), AVG(temp), MIN(temp), MAX(temp), SUM(temp) FROM WaterTemp")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row[0].Int != 4 {
		t.Errorf("COUNT(*) = %v, want 4", row[0])
	}
	if row[2].Float != 14.5 || row[3].Float != 21.0 {
		t.Errorf("MIN/MAX = %v/%v", row[2], row[3])
	}
	wantAvg := (14.5 + 19.0 + 17.2 + 21.0) / 4
	if diff := row[1].Float - wantAvg; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("AVG = %v, want %v", row[1].Float, wantAvg)
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, COUNT(*) AS n, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only Lake Washington has 2 readings)", len(res.Rows))
	}
	if res.Rows[0][0].Str != "Lake Washington" || res.Rows[0][1].Int != 2 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestGroupByOrderByAlias(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake ORDER BY avg_temp DESC")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	if res.Rows[0][0].Str != "Lake Union" {
		t.Errorf("first row = %v, want Lake Union (highest avg temp)", res.Rows[0])
	}
	prev := res.Rows[0][1].Float
	for _, r := range res.Rows[1:] {
		if r[1].Float > prev {
			t.Errorf("rows not sorted descending: %v", res.Rows)
		}
		prev = r[1].Float
	}
}

func TestCountDistinct(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT COUNT(DISTINCT lake) FROM WaterTemp")
	if res.Rows[0][0].Int != 3 {
		t.Errorf("COUNT(DISTINCT lake) = %v, want 3", res.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT DISTINCT lake FROM WaterTemp")
	if len(res.Rows) != 3 {
		t.Errorf("distinct rows = %d, want 3", len(res.Rows))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, temp FROM WaterTemp ORDER BY temp LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0][1].Float != 14.5 {
		t.Errorf("first row = %v, want lowest temp", res.Rows[0])
	}
	res = query(t, e, "SELECT lake, temp FROM WaterTemp ORDER BY temp LIMIT 2 OFFSET 2")
	if len(res.Rows) != 2 || res.Rows[0][1].Float != 19.0 {
		t.Errorf("offset rows = %v", res.Rows)
	}
	res = query(t, e, "SELECT lake FROM WaterTemp ORDER BY temp LIMIT 100 OFFSET 100")
	if len(res.Rows) != 0 {
		t.Errorf("out-of-range offset should return no rows")
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake FROM WaterTemp ORDER BY temp DESC")
	if res.Rows[0][0].Str != "Lake Washington" {
		t.Errorf("first = %v, want Lake Washington (21.0)", res.Rows[0])
	}
}

func TestSubqueryIn(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, `SELECT city FROM CityLocations WHERE loc_x IN (SELECT loc_x FROM WaterTemp WHERE temp < 18)`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (Seattle, Bellevue)", len(res.Rows))
	}
}

func TestSubqueryExistsCorrelated(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, `SELECT city FROM CityLocations L WHERE EXISTS (SELECT 1 FROM WaterTemp T WHERE T.loc_x = L.loc_x AND T.temp < 18)`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake FROM WaterTemp WHERE temp > (SELECT AVG(temp) FROM WaterTemp)")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2 (19.0 and 21.0 above avg 17.925)", len(res.Rows))
	}
}

func TestDerivedTable(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake FROM (SELECT lake, AVG(temp) AS a FROM WaterTemp GROUP BY lake) sub WHERE a > 17.5")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2: %v", len(res.Rows), res.Rows)
	}
}

func TestUnionExceptIntersect(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake FROM WaterTemp UNION SELECT lake FROM WaterSalinity")
	if len(res.Rows) != 3 {
		t.Errorf("union rows = %d, want 3", len(res.Rows))
	}
	res = query(t, e, "SELECT lake FROM WaterTemp UNION ALL SELECT lake FROM WaterSalinity")
	if len(res.Rows) != 7 {
		t.Errorf("union all rows = %d, want 7", len(res.Rows))
	}
	res = query(t, e, "SELECT lake FROM WaterSalinity EXCEPT SELECT lake FROM WaterTemp WHERE temp > 18")
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Lake Sammamish" {
		t.Errorf("except rows = %v, want just Lake Sammamish", res.Rows)
	}
	res = query(t, e, "SELECT lake FROM WaterSalinity INTERSECT SELECT lake FROM WaterTemp")
	if len(res.Rows) != 3 {
		t.Errorf("intersect rows = %d, want 3", len(res.Rows))
	}
}

func TestCaseExpression(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, CASE WHEN temp >= 18 THEN 'warm' ELSE 'cold' END AS label FROM WaterTemp ORDER BY temp")
	if res.Rows[0][1].Str != "cold" || res.Rows[3][1].Str != "warm" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := New()
	res := query(t, e, "SELECT LOWER('ABC'), UPPER('abc'), LENGTH('hello'), ABS(-4), ROUND(3.567, 2), COALESCE(NULL, 7), SUBSTR('Seattle', 1, 3)")
	row := res.Rows[0]
	if row[0].Str != "abc" || row[1].Str != "ABC" {
		t.Errorf("LOWER/UPPER = %v/%v", row[0], row[1])
	}
	if row[2].Int != 5 || row[3].Int != 4 {
		t.Errorf("LENGTH/ABS = %v/%v", row[2], row[3])
	}
	if row[4].Float != 3.57 {
		t.Errorf("ROUND = %v", row[4])
	}
	if row[5].Int != 7 {
		t.Errorf("COALESCE = %v", row[5])
	}
	if row[6].Str != "Sea" {
		t.Errorf("SUBSTR = %v", row[6])
	}
}

func TestArithmetic(t *testing.T) {
	e := New()
	res := query(t, e, "SELECT 7 + 3, 7 - 3, 7 * 3, 7 / 2, 7 % 3, 7.0 / 2, 'a' || 'b'")
	row := res.Rows[0]
	if row[0].Int != 10 || row[1].Int != 4 || row[2].Int != 21 || row[3].Int != 3 || row[4].Int != 1 {
		t.Errorf("integer arithmetic = %v", row[:5])
	}
	if row[5].Float != 3.5 {
		t.Errorf("float division = %v", row[5])
	}
	if row[6].Str != "ab" {
		t.Errorf("concat = %v", row[6])
	}
}

func TestDivisionByZero(t *testing.T) {
	e := New()
	if _, err := e.Execute("SELECT 1 / 0"); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestUpdateAndDelete(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "UPDATE WaterTemp SET temp = temp + 1 WHERE lake = 'Lake Union'")
	if res.RowsAffected != 1 {
		t.Fatalf("update affected = %d, want 1", res.RowsAffected)
	}
	check := query(t, e, "SELECT temp FROM WaterTemp WHERE lake = 'Lake Union'")
	if check.Rows[0][0].Float != 20.0 {
		t.Errorf("temp after update = %v, want 20", check.Rows[0][0])
	}

	res = query(t, e, "DELETE FROM WaterTemp WHERE temp >= 20")
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected = %d, want 2", res.RowsAffected)
	}
	check = query(t, e, "SELECT COUNT(*) FROM WaterTemp")
	if check.Rows[0][0].Int != 2 {
		t.Errorf("remaining rows = %v, want 2", check.Rows[0][0])
	}
}

func TestInsertSelect(t *testing.T) {
	e := newLakesEngine(t)
	query(t, e, "CREATE TABLE WarmReadings (id INT, lake TEXT, loc_x INT, loc_y INT, temp FLOAT)")
	res := query(t, e, "INSERT INTO WarmReadings SELECT * FROM WaterTemp WHERE temp >= 18")
	if res.RowsAffected != 2 {
		t.Fatalf("insert-select affected = %d, want 2", res.RowsAffected)
	}
}

func TestInsertColumnSubsetAndCoercion(t *testing.T) {
	e := New()
	query(t, e, "CREATE TABLE t (a INT, b FLOAT, c TEXT)")
	query(t, e, "INSERT INTO t (a, c) VALUES (1, 'x')")
	res := query(t, e, "SELECT a, b, c FROM t")
	if !res.Rows[0][1].IsNull() {
		t.Errorf("unspecified column should be NULL: %v", res.Rows[0])
	}
	// Integer literal coerced into FLOAT column.
	query(t, e, "INSERT INTO t VALUES (2, 5, 'y')")
	res = query(t, e, "SELECT b FROM t WHERE a = 2")
	if res.Rows[0][0].Type != TypeFloat || res.Rows[0][0].Float != 5 {
		t.Errorf("coerced value = %#v", res.Rows[0][0])
	}
}

func TestDDLAndSchemaChanges(t *testing.T) {
	e := newLakesEngine(t)
	v0 := e.Catalog().Version()
	query(t, e, "ALTER TABLE WaterTemp ADD COLUMN sensor TEXT")
	query(t, e, "ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	query(t, e, "ALTER TABLE CityLocations DROP COLUMN pop")
	query(t, e, "DROP TABLE WaterSalinity")
	changes := e.Catalog().Changes(v0)
	if len(changes) != 4 {
		t.Fatalf("changes = %d, want 4", len(changes))
	}
	kinds := []SchemaChangeKind{ChangeAddColumn, ChangeRenameColumn, ChangeDropColumn, ChangeDropTable}
	for i, ch := range changes {
		if ch.Kind != kinds[i] {
			t.Errorf("change %d kind = %v, want %v", i, ch.Kind, kinds[i])
		}
	}
	// Old column name is gone.
	if _, err := e.Execute("SELECT temp FROM WaterTemp"); err == nil {
		t.Error("expected error selecting renamed column")
	}
	if _, err := e.Execute("SELECT temperature FROM WaterTemp"); err != nil {
		t.Errorf("renamed column should work: %v", err)
	}
}

func TestErrorCases(t *testing.T) {
	e := newLakesEngine(t)
	cases := []struct {
		q        string
		sentinel error
	}{
		{"SELECT * FROM NoSuchTable", ErrTableNotFound},
		{"SELECT nosuchcol FROM WaterTemp", ErrColumnNotFound},
		{"SELECT loc_x FROM WaterSalinity, WaterTemp", ErrAmbiguousColumn},
		{"INSERT INTO NoSuchTable VALUES (1)", ErrTableNotFound},
		{"UPDATE NoSuchTable SET a = 1", ErrTableNotFound},
		{"DELETE FROM NoSuchTable", ErrTableNotFound},
		{"ALTER TABLE WaterTemp DROP COLUMN nosuch", ErrColumnNotFound},
	}
	for _, c := range cases {
		_, err := e.Execute(c.q)
		if err == nil {
			t.Errorf("%q: expected error", c.q)
			continue
		}
		if c.sentinel != nil && !errors.Is(err, c.sentinel) {
			t.Errorf("%q: error %v is not %v", c.q, err, c.sentinel)
		}
	}
	if _, err := e.Execute("CREATE TABLE WaterTemp (id INT)"); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create error = %v", err)
	}
	if _, err := e.Execute("CREATE TABLE IF NOT EXISTS WaterTemp (id INT)"); err != nil {
		t.Errorf("IF NOT EXISTS should succeed: %v", err)
	}
}

func TestResultMetadata(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT * FROM WaterTemp")
	if res.Cardinality() != 4 {
		t.Errorf("cardinality = %d, want 4", res.Cardinality())
	}
	if res.Elapsed <= 0 {
		t.Errorf("elapsed should be positive")
	}
}

func TestStringOutput(t *testing.T) {
	e := newLakesEngine(t)
	res := query(t, e, "SELECT lake, temp FROM WaterTemp WHERE id = 1")
	strs := res.Rows[0].Strings()
	if strs[0] != "Lake Washington" || !strings.HasPrefix(strs[1], "14.5") {
		t.Errorf("strings = %v", strs)
	}
}

func TestNullSemantics(t *testing.T) {
	e := New()
	query(t, e, "CREATE TABLE n (a INT, b INT)")
	query(t, e, "INSERT INTO n VALUES (1, NULL), (2, 5)")
	// NULL comparisons are never true.
	res := query(t, e, "SELECT a FROM n WHERE b = 5")
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(res.Rows))
	}
	res = query(t, e, "SELECT a FROM n WHERE b <> 5")
	if len(res.Rows) != 0 {
		t.Errorf("NULL <> 5 should not match, got %d rows", len(res.Rows))
	}
	// Aggregates skip NULLs.
	res = query(t, e, "SELECT COUNT(b), SUM(b) FROM n")
	if res.Rows[0][0].Int != 1 || res.Rows[0][1].Int != 5 {
		t.Errorf("COUNT/SUM over NULLs = %v", res.Rows[0])
	}
}

func TestMustExecutePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("MustExecute should panic on error")
		}
	}()
	e.MustExecute("SELECT * FROM missing")
}
