package engine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sql"
)

// binding describes one column of an intermediate relation: the qualifier it
// is visible under (alias or table name), the base table it came from and its
// column name.
type binding struct {
	qualifier string
	table     string
	column    string
}

// relation is an intermediate result: a list of column bindings plus rows.
type relation struct {
	cols []binding
	rows []Row
}

func (r *relation) columnNames() []string {
	out := make([]string, len(r.cols))
	for i, b := range r.cols {
		out[i] = b.column
	}
	return out
}

// lookup finds the index of a column reference in the relation. An empty
// qualifier matches any column with that name but must be unambiguous.
func (r *relation) lookup(qualifier, column string) (int, error) {
	found := -1
	for i, b := range r.cols {
		if !strings.EqualFold(b.column, column) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(b.qualifier, qualifier) && !strings.EqualFold(b.table, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("%w: %s", ErrAmbiguousColumn, column)
		}
		found = i
	}
	if found < 0 {
		name := column
		if qualifier != "" {
			name = qualifier + "." + column
		}
		return 0, fmt.Errorf("%w: %s", ErrColumnNotFound, name)
	}
	return found, nil
}

// env is the evaluation environment for one row, chaining to an outer
// environment for correlated sub-queries.
type env struct {
	rel   *relation
	row   Row
	outer *env
}

func (e *env) lookup(qualifier, column string) (Value, error) {
	for cur := e; cur != nil; cur = cur.outer {
		idx, err := cur.rel.lookup(qualifier, column)
		if err == nil {
			return cur.row[idx], nil
		}
		if strings.Contains(err.Error(), "ambiguous") {
			return Null, err
		}
	}
	name := column
	if qualifier != "" {
		name = qualifier + "." + column
	}
	return Null, fmt.Errorf("%w: %s", ErrColumnNotFound, name)
}

// evaluator evaluates expressions against an environment. It holds a
// reference to the engine so nested sub-queries can be executed.
type evaluator struct {
	eng *Engine
}

// evalBool evaluates e as a predicate; NULL and errors from NULL comparisons
// count as false (SQL three-valued logic collapsed to boolean).
func (ev *evaluator) evalBool(e sql.Expr, en *env) (bool, error) {
	v, err := ev.eval(e, en)
	if err != nil {
		if err == errNullComparison {
			return false, nil
		}
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	b, err := v.Coerce(TypeBool)
	if err != nil {
		return false, fmt.Errorf("engine: predicate is not boolean: %s", e.SQL())
	}
	return b.Bool, nil
}

func (ev *evaluator) eval(e sql.Expr, en *env) (Value, error) {
	switch n := e.(type) {
	case *sql.Literal:
		return literalValue(n)
	case *sql.ColumnRef:
		return en.lookup(n.Table, n.Name)
	case *sql.ParamExpr:
		return Null, fmt.Errorf("engine: unbound parameter %s", n.Text)
	case *sql.UnaryExpr:
		return ev.evalUnary(n, en)
	case *sql.BinaryExpr:
		return ev.evalBinary(n, en)
	case *sql.FuncCall:
		return ev.evalFunc(n, en)
	case *sql.InExpr:
		return ev.evalIn(n, en)
	case *sql.BetweenExpr:
		return ev.evalBetween(n, en)
	case *sql.LikeExpr:
		return ev.evalLike(n, en)
	case *sql.IsNullExpr:
		v, err := ev.eval(n.Expr, en)
		if err != nil {
			return Null, err
		}
		if n.Not {
			return NewBool(!v.IsNull()), nil
		}
		return NewBool(v.IsNull()), nil
	case *sql.ExistsExpr:
		rel, err := ev.eng.execSelect(n.Select, en)
		if err != nil {
			return Null, err
		}
		exists := len(rel.rows) > 0
		if n.Not {
			exists = !exists
		}
		return NewBool(exists), nil
	case *sql.SubqueryExpr:
		rel, err := ev.eng.execSelect(n.Select, en)
		if err != nil {
			return Null, err
		}
		if len(rel.rows) == 0 || len(rel.rows[0]) == 0 {
			return Null, nil
		}
		return rel.rows[0][0], nil
	case *sql.CaseExpr:
		return ev.evalCase(n, en)
	default:
		return Null, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

func literalValue(l *sql.Literal) (Value, error) {
	switch l.Kind {
	case sql.LiteralNull:
		return Null, nil
	case sql.LiteralBool:
		return NewBool(strings.EqualFold(l.Text, "TRUE")), nil
	case sql.LiteralString:
		return NewText(l.Text), nil
	case sql.LiteralNumber:
		if !strings.ContainsAny(l.Text, ".eE") {
			n, err := strconv.ParseInt(l.Text, 10, 64)
			if err == nil {
				return NewInt(n), nil
			}
		}
		f, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return Null, fmt.Errorf("engine: invalid number literal %q", l.Text)
		}
		return NewFloat(f), nil
	default:
		return Null, fmt.Errorf("engine: unknown literal kind %d", l.Kind)
	}
}

func (ev *evaluator) evalUnary(n *sql.UnaryExpr, en *env) (Value, error) {
	v, err := ev.eval(n.Expr, en)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "NOT":
		if v.IsNull() {
			return Null, nil
		}
		b, err := v.Coerce(TypeBool)
		if err != nil {
			return Null, err
		}
		return NewBool(!b.Bool), nil
	case "-":
		switch v.Type {
		case TypeInt:
			return NewInt(-v.Int), nil
		case TypeFloat:
			return NewFloat(-v.Float), nil
		case TypeNull:
			return Null, nil
		}
		return Null, fmt.Errorf("engine: cannot negate %s", v.Type)
	case "+":
		return v, nil
	default:
		return Null, fmt.Errorf("engine: unknown unary operator %q", n.Op)
	}
}

func (ev *evaluator) evalBinary(n *sql.BinaryExpr, en *env) (Value, error) {
	switch n.Op {
	case "AND":
		lb, err := ev.evalBool(n.Left, en)
		if err != nil {
			return Null, err
		}
		if !lb {
			return NewBool(false), nil
		}
		rb, err := ev.evalBool(n.Right, en)
		if err != nil {
			return Null, err
		}
		return NewBool(rb), nil
	case "OR":
		lb, err := ev.evalBool(n.Left, en)
		if err != nil {
			return Null, err
		}
		if lb {
			return NewBool(true), nil
		}
		rb, err := ev.evalBool(n.Right, en)
		if err != nil {
			return Null, err
		}
		return NewBool(rb), nil
	}
	left, err := ev.eval(n.Left, en)
	if err != nil {
		return Null, err
	}
	right, err := ev.eval(n.Right, en)
	if err != nil {
		return Null, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if left.IsNull() || right.IsNull() {
			return Null, nil
		}
		c, err := left.Compare(right)
		if err != nil {
			return Null, err
		}
		var out bool
		switch n.Op {
		case "=":
			out = c == 0
		case "<>":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return NewBool(out), nil
	case "+", "-", "*", "/", "%":
		return arith(n.Op, left, right)
	case "||":
		if left.IsNull() || right.IsNull() {
			return Null, nil
		}
		return NewText(left.String() + right.String()), nil
	default:
		return Null, fmt.Errorf("engine: unknown binary operator %q", n.Op)
	}
}

func arith(op string, left, right Value) (Value, error) {
	if left.IsNull() || right.IsNull() {
		return Null, nil
	}
	// Integer arithmetic when both sides are INT (except division, which
	// follows SQL convention of integer division).
	if left.Type == TypeInt && right.Type == TypeInt {
		a, b := left.Int, right.Int
		switch op {
		case "+":
			return NewInt(a + b), nil
		case "-":
			return NewInt(a - b), nil
		case "*":
			return NewInt(a * b), nil
		case "/":
			if b == 0 {
				return Null, fmt.Errorf("engine: division by zero")
			}
			return NewInt(a / b), nil
		case "%":
			if b == 0 {
				return Null, fmt.Errorf("engine: division by zero")
			}
			return NewInt(a % b), nil
		}
	}
	lf, lok := left.asFloat()
	rf, rok := right.asFloat()
	if !lok || !rok {
		return Null, fmt.Errorf("engine: arithmetic on non-numeric values %s and %s", left.Type, right.Type)
	}
	switch op {
	case "+":
		return NewFloat(lf + rf), nil
	case "-":
		return NewFloat(lf - rf), nil
	case "*":
		return NewFloat(lf * rf), nil
	case "/":
		if rf == 0 {
			return Null, fmt.Errorf("engine: division by zero")
		}
		return NewFloat(lf / rf), nil
	case "%":
		if rf == 0 {
			return Null, fmt.Errorf("engine: division by zero")
		}
		return NewFloat(float64(int64(lf) % int64(rf))), nil
	default:
		return Null, fmt.Errorf("engine: unknown arithmetic operator %q", op)
	}
}

func (ev *evaluator) evalFunc(n *sql.FuncCall, en *env) (Value, error) {
	if n.IsAggregate() {
		return Null, fmt.Errorf("engine: aggregate %s used outside aggregation context", n.Name)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := ev.eval(a, en)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	return callScalarFunc(n.Name, args)
}

func callScalarFunc(name string, args []Value) (Value, error) {
	switch strings.ToUpper(name) {
	case "LOWER":
		if len(args) != 1 {
			return Null, fmt.Errorf("engine: LOWER expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewText(strings.ToLower(args[0].String())), nil
	case "UPPER":
		if len(args) != 1 {
			return Null, fmt.Errorf("engine: UPPER expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewText(strings.ToUpper(args[0].String())), nil
	case "LENGTH":
		if len(args) != 1 {
			return Null, fmt.Errorf("engine: LENGTH expects 1 argument")
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return NewInt(int64(len(args[0].String()))), nil
	case "ABS":
		if len(args) != 1 {
			return Null, fmt.Errorf("engine: ABS expects 1 argument")
		}
		v := args[0]
		switch v.Type {
		case TypeInt:
			if v.Int < 0 {
				return NewInt(-v.Int), nil
			}
			return v, nil
		case TypeFloat:
			if v.Float < 0 {
				return NewFloat(-v.Float), nil
			}
			return v, nil
		case TypeNull:
			return Null, nil
		}
		return Null, fmt.Errorf("engine: ABS on non-numeric value")
	case "ROUND":
		if len(args) < 1 || args[0].IsNull() {
			return Null, nil
		}
		f, ok := args[0].asFloat()
		if !ok {
			return Null, fmt.Errorf("engine: ROUND on non-numeric value")
		}
		scale := 0.0
		if len(args) > 1 {
			s, ok := args[1].asFloat()
			if !ok {
				return Null, fmt.Errorf("engine: ROUND scale must be numeric")
			}
			scale = s
		}
		mult := 1.0
		for i := 0; i < int(scale); i++ {
			mult *= 10
		}
		v := f * mult
		if v >= 0 {
			v = float64(int64(v + 0.5))
		} else {
			v = float64(int64(v - 0.5))
		}
		return NewFloat(v / mult), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || args[0].IsNull() {
			return Null, nil
		}
		s := args[0].String()
		start, ok := args[1].asFloat()
		if !ok {
			return Null, fmt.Errorf("engine: SUBSTR start must be numeric")
		}
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		end := len(s)
		if len(args) > 2 {
			n, ok := args[2].asFloat()
			if !ok {
				return Null, fmt.Errorf("engine: SUBSTR length must be numeric")
			}
			end = i + int(n)
			if end > len(s) {
				end = len(s)
			}
		}
		return NewText(s[i:end]), nil
	default:
		return Null, fmt.Errorf("engine: unknown function %s", name)
	}
}

func (ev *evaluator) evalIn(n *sql.InExpr, en *env) (Value, error) {
	target, err := ev.eval(n.Expr, en)
	if err != nil {
		return Null, err
	}
	if target.IsNull() {
		return Null, nil
	}
	match := false
	if n.Select != nil {
		rel, err := ev.eng.execSelect(n.Select, en)
		if err != nil {
			return Null, err
		}
		for _, row := range rel.rows {
			if len(row) > 0 && target.Equal(row[0]) {
				match = true
				break
			}
		}
	} else {
		for _, item := range n.List {
			v, err := ev.eval(item, en)
			if err != nil {
				return Null, err
			}
			if target.Equal(v) {
				match = true
				break
			}
		}
	}
	if n.Not {
		match = !match
	}
	return NewBool(match), nil
}

func (ev *evaluator) evalBetween(n *sql.BetweenExpr, en *env) (Value, error) {
	v, err := ev.eval(n.Expr, en)
	if err != nil {
		return Null, err
	}
	low, err := ev.eval(n.Low, en)
	if err != nil {
		return Null, err
	}
	high, err := ev.eval(n.High, en)
	if err != nil {
		return Null, err
	}
	if v.IsNull() || low.IsNull() || high.IsNull() {
		return Null, nil
	}
	cl, err := v.Compare(low)
	if err != nil {
		return Null, err
	}
	ch, err := v.Compare(high)
	if err != nil {
		return Null, err
	}
	in := cl >= 0 && ch <= 0
	if n.Not {
		in = !in
	}
	return NewBool(in), nil
}

func (ev *evaluator) evalLike(n *sql.LikeExpr, en *env) (Value, error) {
	v, err := ev.eval(n.Expr, en)
	if err != nil {
		return Null, err
	}
	p, err := ev.eval(n.Pattern, en)
	if err != nil {
		return Null, err
	}
	if v.IsNull() || p.IsNull() {
		return Null, nil
	}
	match := likeMatch(v.String(), p.String())
	if n.Not {
		match = !match
	}
	return NewBool(match), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitive.
func likeMatch(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	return likeMatchRec(s, pattern)
}

func likeMatchRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive wildcards.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeMatchRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s = s[1:]
			p = p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s = s[1:]
			p = p[1:]
		}
	}
	return len(s) == 0
}

func (ev *evaluator) evalCase(n *sql.CaseExpr, en *env) (Value, error) {
	if n.Operand != nil {
		op, err := ev.eval(n.Operand, en)
		if err != nil {
			return Null, err
		}
		for _, w := range n.Whens {
			v, err := ev.eval(w.When, en)
			if err != nil {
				return Null, err
			}
			if op.Equal(v) {
				return ev.eval(w.Then, en)
			}
		}
	} else {
		for _, w := range n.Whens {
			ok, err := ev.evalBool(w.When, en)
			if err != nil {
				return Null, err
			}
			if ok {
				return ev.eval(w.Then, en)
			}
		}
	}
	if n.Else != nil {
		return ev.eval(n.Else, en)
	}
	return Null, nil
}
