package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sql"
)

// execSelect evaluates a SELECT statement against the catalog. The outer
// environment (possibly nil) supplies bindings for correlated sub-queries.
func (e *Engine) execSelect(stmt *sql.SelectStmt, outer *env) (*relation, error) {
	rel, err := e.execSelectCore(stmt, outer)
	if err != nil {
		return nil, err
	}
	if stmt.Compound != nil {
		right, err := e.execSelect(stmt.Compound.Right, outer)
		if err != nil {
			return nil, err
		}
		rel, err = applyCompound(stmt.Compound.Op, stmt.Compound.All, rel, right)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func (e *Engine) execSelectCore(stmt *sql.SelectStmt, outer *env) (*relation, error) {
	ev := &evaluator{eng: e}

	// 1. Evaluate FROM into a single joined relation, pushing down WHERE
	//    conjuncts where possible.
	conjuncts := splitConjuncts(stmt.Where)
	source, usedConjuncts, err := e.buildFrom(stmt.From, conjuncts, outer)
	if err != nil {
		return nil, err
	}

	// 2. Apply the remaining WHERE conjuncts.
	remaining := make([]sql.Expr, 0, len(conjuncts))
	for i, c := range conjuncts {
		if !usedConjuncts[i] {
			remaining = append(remaining, c)
		}
	}
	if len(remaining) > 0 {
		filtered := source.rows[:0:0]
		for _, row := range source.rows {
			en := &env{rel: source, row: row, outer: outer}
			keep := true
			for _, c := range remaining {
				ok, err := ev.evalBool(c, en)
				if err != nil {
					return nil, err
				}
				if !ok {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, row)
			}
		}
		source = &relation{cols: source.cols, rows: filtered}
	}

	// 3. Aggregation or plain projection.
	var out *relation
	if needsAggregation(stmt) {
		out, err = e.execAggregate(stmt, source, outer)
	} else {
		out, err = e.execProject(stmt, source, outer)
	}
	if err != nil {
		return nil, err
	}

	// 4. DISTINCT.
	if stmt.Distinct {
		out.rows = distinctRows(out.rows)
	}

	// 5. ORDER BY. Column references in ORDER BY may name output aliases or
	//    source columns; aggregation output handles its own ordering inside
	//    execAggregate, so this path only covers the non-aggregated case
	//    (execProject keeps a parallel source relation for ordering).
	// ORDER BY is applied inside execProject/execAggregate because it may
	// reference columns that are not projected.

	// 6. LIMIT/OFFSET.
	if stmt.Limit != nil {
		out.rows = applyLimit(out.rows, stmt.Limit)
	}
	return out, nil
}

// splitConjuncts splits a WHERE tree on top-level ANDs.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []sql.Expr{e}
}

// buildFrom evaluates the FROM list into one relation. It returns a parallel
// slice marking which WHERE conjuncts were consumed by push-down or joins.
func (e *Engine) buildFrom(from []sql.TableRef, conjuncts []sql.Expr, outer *env) (*relation, []bool, error) {
	used := make([]bool, len(conjuncts))
	if len(from) == 0 {
		// SELECT without FROM: a single empty row so expressions evaluate once.
		return &relation{cols: nil, rows: []Row{{}}}, used, nil
	}
	var acc *relation
	for _, ref := range from {
		rel, err := e.evalTableRef(ref, outer)
		if err != nil {
			return nil, nil, err
		}
		// Push down single-relation conjuncts onto rel before joining.
		rel, err = e.pushDownFilters(rel, conjuncts, used, outer)
		if err != nil {
			return nil, nil, err
		}
		if acc == nil {
			acc = rel
			continue
		}
		acc, err = e.joinRelations(acc, rel, conjuncts, used, outer)
		if err != nil {
			return nil, nil, err
		}
	}
	// A final push-down pass over the accumulated relation catches conjuncts
	// that reference columns from several relations already joined.
	acc, err := e.pushDownFilters(acc, conjuncts, used, outer)
	if err != nil {
		return nil, nil, err
	}
	return acc, used, nil
}

// pushDownFilters applies every not-yet-used conjunct that references only
// columns available in rel (and contains no sub-query) as a filter on rel.
func (e *Engine) pushDownFilters(rel *relation, conjuncts []sql.Expr, used []bool, outer *env) (*relation, error) {
	ev := &evaluator{eng: e}
	applicable := make([]int, 0, len(conjuncts))
	for i, c := range conjuncts {
		if used[i] || exprHasSubquery(c) {
			continue
		}
		if exprResolvable(c, rel) {
			applicable = append(applicable, i)
		}
	}
	if len(applicable) == 0 {
		return rel, nil
	}
	filtered := make([]Row, 0, len(rel.rows))
	for _, row := range rel.rows {
		en := &env{rel: rel, row: row, outer: outer}
		keep := true
		for _, idx := range applicable {
			ok, err := ev.evalBool(conjuncts[idx], en)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			filtered = append(filtered, row)
		}
	}
	for _, idx := range applicable {
		used[idx] = true
	}
	return &relation{cols: rel.cols, rows: filtered}, nil
}

// exprResolvable reports whether every column reference in the expression can
// be resolved against rel.
func exprResolvable(e sql.Expr, rel *relation) bool {
	ok := true
	sql.WalkExpr(e, func(x sql.Expr) bool {
		if c, isCol := x.(*sql.ColumnRef); isCol {
			if _, err := rel.lookup(c.Table, c.Name); err != nil {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

func exprHasSubquery(e sql.Expr) bool {
	has := false
	sql.WalkExpr(e, func(x sql.Expr) bool {
		switch n := x.(type) {
		case *sql.InExpr:
			if n.Select != nil {
				has = true
			}
		case *sql.ExistsExpr, *sql.SubqueryExpr:
			has = true
		}
		return !has
	})
	return has
}

// evalTableRef evaluates a single FROM item.
func (e *Engine) evalTableRef(ref sql.TableRef, outer *env) (*relation, error) {
	switch t := ref.(type) {
	case *sql.TableName:
		schema, rows, err := e.catalog.snapshotRows(t.Name)
		if err != nil {
			return nil, err
		}
		qualifier := t.Name
		if t.Alias != "" {
			qualifier = t.Alias
		}
		cols := make([]binding, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = binding{qualifier: qualifier, table: schema.Table, column: c.Name}
		}
		return &relation{cols: cols, rows: rows}, nil
	case *sql.SubqueryRef:
		rel, err := e.execSelect(t.Select, outer)
		if err != nil {
			return nil, err
		}
		qualifier := t.Alias
		cols := make([]binding, len(rel.cols))
		for i, c := range rel.cols {
			q := qualifier
			if q == "" {
				q = c.qualifier
			}
			cols[i] = binding{qualifier: q, table: c.table, column: c.column}
		}
		return &relation{cols: cols, rows: rel.rows}, nil
	case *sql.JoinExpr:
		left, err := e.evalTableRef(t.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := e.evalTableRef(t.Right, outer)
		if err != nil {
			return nil, err
		}
		return e.explicitJoin(t, left, right, outer)
	default:
		return nil, fmt.Errorf("engine: unsupported table reference %T", ref)
	}
}

// joinRelations joins two relations from a comma-separated FROM list, using
// any available equi-join conjunct as a hash-join key; otherwise it falls
// back to a cross product.
func (e *Engine) joinRelations(left, right *relation, conjuncts []sql.Expr, used []bool, outer *env) (*relation, error) {
	combinedCols := append(append([]binding{}, left.cols...), right.cols...)
	combined := &relation{cols: combinedCols}

	// Look for an equi-join conjunct with one side in left and one in right.
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		b, ok := c.(*sql.BinaryExpr)
		if !ok || b.Op != "=" {
			continue
		}
		lc, lok := b.Left.(*sql.ColumnRef)
		rc, rok := b.Right.(*sql.ColumnRef)
		if !lok || !rok {
			continue
		}
		li, lerr := left.lookup(lc.Table, lc.Name)
		ri, rerr := right.lookup(rc.Table, rc.Name)
		if lerr != nil || rerr != nil {
			// Try the flipped orientation.
			li, lerr = left.lookup(rc.Table, rc.Name)
			ri, rerr = right.lookup(lc.Table, lc.Name)
			if lerr != nil || rerr != nil {
				continue
			}
		}
		used[i] = true
		combined.rows = hashJoinRows(left.rows, right.rows, li, ri, false)
		return combined, nil
	}
	// Cross product.
	combined.rows = crossJoinRows(left.rows, right.rows)
	return combined, nil
}

// explicitJoin evaluates JOIN ... ON / USING with inner and outer variants.
func (e *Engine) explicitJoin(j *sql.JoinExpr, left, right *relation, outer *env) (*relation, error) {
	ev := &evaluator{eng: e}
	combinedCols := append(append([]binding{}, left.cols...), right.cols...)
	combined := &relation{cols: combinedCols}

	// Build the ON condition from USING if necessary.
	on := j.On
	if on == nil && len(j.Using) > 0 {
		for _, col := range j.Using {
			lq := left.cols[0].qualifier
			rq := right.cols[0].qualifier
			cond := &sql.BinaryExpr{Op: "=",
				Left:  &sql.ColumnRef{Table: lq, Name: col},
				Right: &sql.ColumnRef{Table: rq, Name: col}}
			if on == nil {
				on = cond
			} else {
				on = &sql.BinaryExpr{Op: "AND", Left: on, Right: cond}
			}
		}
	}

	if j.Type == JoinCrossType() || on == nil {
		combined.rows = crossJoinRows(left.rows, right.rows)
		return combined, nil
	}

	// Try a hash join for single equality conditions between the two sides.
	if b, ok := on.(*sql.BinaryExpr); ok && b.Op == "=" && j.Type == sql.JoinInner {
		lc, lok := b.Left.(*sql.ColumnRef)
		rc, rok := b.Right.(*sql.ColumnRef)
		if lok && rok {
			li, lerr := left.lookup(lc.Table, lc.Name)
			ri, rerr := right.lookup(rc.Table, rc.Name)
			if lerr != nil || rerr != nil {
				li, lerr = left.lookup(rc.Table, rc.Name)
				ri, rerr = right.lookup(lc.Table, lc.Name)
			}
			if lerr == nil && rerr == nil {
				combined.rows = hashJoinRows(left.rows, right.rows, li, ri, false)
				return combined, nil
			}
		}
	}

	// General nested-loop join with outer-join null padding.
	leftMatched := make([]bool, len(left.rows))
	rightMatched := make([]bool, len(right.rows))
	for li, lrow := range left.rows {
		for ri, rrow := range right.rows {
			joined := append(append(Row{}, lrow...), rrow...)
			en := &env{rel: combined, row: joined, outer: outer}
			ok, err := ev.evalBool(on, en)
			if err != nil {
				return nil, err
			}
			if ok {
				combined.rows = append(combined.rows, joined)
				leftMatched[li] = true
				rightMatched[ri] = true
			}
		}
	}
	nullRow := func(n int) Row {
		r := make(Row, n)
		for i := range r {
			r[i] = Null
		}
		return r
	}
	if j.Type == sql.JoinLeft || j.Type == sql.JoinFull {
		for li, lrow := range left.rows {
			if !leftMatched[li] {
				combined.rows = append(combined.rows, append(append(Row{}, lrow...), nullRow(len(right.cols))...))
			}
		}
	}
	if j.Type == sql.JoinRight || j.Type == sql.JoinFull {
		for ri, rrow := range right.rows {
			if !rightMatched[ri] {
				combined.rows = append(combined.rows, append(append(Row{}, nullRow(len(left.cols))...), rrow...))
			}
		}
	}
	return combined, nil
}

// JoinCrossType exposes the cross-join constant to avoid importing sql in
// callers that only need the comparison above.
func JoinCrossType() sql.JoinType { return sql.JoinCross }

func crossJoinRows(left, right []Row) []Row {
	out := make([]Row, 0, len(left)*len(right))
	for _, l := range left {
		for _, r := range right {
			out = append(out, append(append(Row{}, l...), r...))
		}
	}
	return out
}

func hashJoinRows(left, right []Row, li, ri int, _ bool) []Row {
	// Build on the smaller side.
	if len(right) < len(left) {
		index := make(map[string][]Row, len(right))
		for _, r := range right {
			if r[ri].IsNull() {
				continue
			}
			k := r[ri].Key()
			index[k] = append(index[k], r)
		}
		var out []Row
		for _, l := range left {
			if l[li].IsNull() {
				continue
			}
			for _, r := range index[l[li].Key()] {
				out = append(out, append(append(Row{}, l...), r...))
			}
		}
		return out
	}
	index := make(map[string][]Row, len(left))
	for _, l := range left {
		if l[li].IsNull() {
			continue
		}
		k := l[li].Key()
		index[k] = append(index[k], l)
	}
	var out []Row
	for _, r := range right {
		if r[ri].IsNull() {
			continue
		}
		for _, l := range index[r[ri].Key()] {
			out = append(out, append(append(Row{}, l...), r...))
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Projection, aggregation, ordering
// ---------------------------------------------------------------------------

// execProject projects the SELECT list over each source row (no aggregation).
func (e *Engine) execProject(stmt *sql.SelectStmt, source *relation, outer *env) (*relation, error) {
	ev := &evaluator{eng: e}
	outCols, starIdx, err := projectionColumns(stmt, source)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: outCols}

	// Precompute ORDER BY keys against the source relation so ordering can
	// reference non-projected columns.
	type keyedRow struct {
		keys Row
		row  Row
	}
	var keyed []keyedRow
	for _, srcRow := range source.rows {
		en := &env{rel: source, row: srcRow, outer: outer}
		projected := make(Row, 0, len(outCols))
		for i, item := range stmt.Columns {
			switch {
			case item.Star:
				projected = append(projected, srcRow...)
			case item.TableStar != "":
				for ci, b := range source.cols {
					if strings.EqualFold(b.qualifier, item.TableStar) || strings.EqualFold(b.table, item.TableStar) {
						projected = append(projected, srcRow[ci])
					}
				}
			default:
				v, err := ev.eval(item.Expr, en)
				if err != nil {
					return nil, err
				}
				projected = append(projected, v)
			}
			_ = i
		}
		var keys Row
		for _, o := range stmt.OrderBy {
			v, err := e.evalOrderKey(o.Expr, stmt, source, srcRow, projected, outCols, outer)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		keyed = append(keyed, keyedRow{keys: keys, row: projected})
	}
	_ = starIdx
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(keyed, func(i, j int) bool {
			return compareKeys(keyed[i].keys, keyed[j].keys, stmt.OrderBy)
		})
	}
	for _, kr := range keyed {
		out.rows = append(out.rows, kr.row)
	}
	return out, nil
}

// evalOrderKey evaluates an ORDER BY expression, first trying output aliases
// then the source relation.
func (e *Engine) evalOrderKey(expr sql.Expr, stmt *sql.SelectStmt, source *relation, srcRow, projected Row, outCols []binding, outer *env) (Value, error) {
	if c, ok := expr.(*sql.ColumnRef); ok && c.Table == "" {
		for i, item := range stmt.Columns {
			if item.Alias != "" && strings.EqualFold(item.Alias, c.Name) && i < len(projected) {
				return projected[i], nil
			}
		}
	}
	ev := &evaluator{eng: e}
	en := &env{rel: source, row: srcRow, outer: outer}
	return ev.eval(expr, en)
}

func compareKeys(a, b Row, order []sql.OrderItem) bool {
	for i := range order {
		if i >= len(a) || i >= len(b) {
			break
		}
		av, bv := a[i], b[i]
		if av.IsNull() && bv.IsNull() {
			continue
		}
		if av.IsNull() {
			return !order[i].Desc
		}
		if bv.IsNull() {
			return order[i].Desc
		}
		c, err := av.Compare(bv)
		if err != nil || c == 0 {
			continue
		}
		if order[i].Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// projectionColumns computes the output bindings for the SELECT list.
func projectionColumns(stmt *sql.SelectStmt, source *relation) ([]binding, int, error) {
	var out []binding
	starIdx := -1
	for _, item := range stmt.Columns {
		switch {
		case item.Star:
			starIdx = len(out)
			out = append(out, source.cols...)
		case item.TableStar != "":
			for _, b := range source.cols {
				if strings.EqualFold(b.qualifier, item.TableStar) || strings.EqualFold(b.table, item.TableStar) {
					out = append(out, b)
				}
			}
		default:
			name := item.Alias
			if name == "" {
				if c, ok := item.Expr.(*sql.ColumnRef); ok {
					name = c.Name
				} else {
					name = item.Expr.SQL()
				}
			}
			out = append(out, binding{column: name})
		}
	}
	return out, starIdx, nil
}

// needsAggregation reports whether the SELECT uses GROUP BY or aggregate
// functions in its SELECT list or HAVING clause.
func needsAggregation(stmt *sql.SelectStmt) bool {
	if len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return true
	}
	agg := false
	for _, item := range stmt.Columns {
		if item.Expr == nil {
			continue
		}
		sql.WalkExpr(item.Expr, func(x sql.Expr) bool {
			if f, ok := x.(*sql.FuncCall); ok && f.IsAggregate() {
				agg = true
				return false
			}
			return true
		})
	}
	return agg
}

// execAggregate evaluates a grouped (or implicitly single-group) query.
func (e *Engine) execAggregate(stmt *sql.SelectStmt, source *relation, outer *env) (*relation, error) {
	ev := &evaluator{eng: e}

	// Partition rows into groups.
	type group struct {
		keyVals Row
		rows    []Row
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range source.rows {
		en := &env{rel: source, row: row, outer: outer}
		var keyVals Row
		var keyParts []string
		for _, g := range stmt.GroupBy {
			v, err := ev.eval(g, en)
			if err != nil {
				return nil, err
			}
			keyVals = append(keyVals, v)
			keyParts = append(keyParts, v.Key())
		}
		key := strings.Join(keyParts, "\x1f")
		grp, ok := groups[key]
		if !ok {
			grp = &group{keyVals: keyVals}
			groups[key] = grp
			order = append(order, key)
		}
		grp.rows = append(grp.rows, row)
	}
	// A query with aggregates but no GROUP BY has exactly one group, even if
	// the source is empty.
	if len(stmt.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	outCols, _, err := projectionColumns(stmt, source)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: outCols}

	type keyedRow struct {
		keys Row
		row  Row
	}
	var keyed []keyedRow
	for _, key := range order {
		grp := groups[key]
		gev := &groupEvaluator{eng: e, source: source, rows: grp.rows, outer: outer}
		// HAVING filter.
		if stmt.Having != nil {
			v, err := gev.eval(stmt.Having)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			b, err := v.Coerce(TypeBool)
			if err != nil || !b.Bool {
				continue
			}
		}
		projected := make(Row, 0, len(stmt.Columns))
		for _, item := range stmt.Columns {
			switch {
			case item.Star:
				// SELECT * with GROUP BY projects the first row of the group.
				if len(grp.rows) > 0 {
					projected = append(projected, grp.rows[0]...)
				} else {
					projected = append(projected, make(Row, len(source.cols))...)
				}
			case item.TableStar != "":
				if len(grp.rows) > 0 {
					for ci, b := range source.cols {
						if strings.EqualFold(b.qualifier, item.TableStar) || strings.EqualFold(b.table, item.TableStar) {
							projected = append(projected, grp.rows[0][ci])
						}
					}
				}
			default:
				v, err := gev.eval(item.Expr)
				if err != nil {
					return nil, err
				}
				projected = append(projected, v)
			}
		}
		var keys Row
		for _, o := range stmt.OrderBy {
			v, err := e.evalGroupOrderKey(o.Expr, stmt, gev, projected)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		keyed = append(keyed, keyedRow{keys: keys, row: projected})
	}
	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(keyed, func(i, j int) bool {
			return compareKeys(keyed[i].keys, keyed[j].keys, stmt.OrderBy)
		})
	}
	for _, kr := range keyed {
		out.rows = append(out.rows, kr.row)
	}
	return out, nil
}

func (e *Engine) evalGroupOrderKey(expr sql.Expr, stmt *sql.SelectStmt, gev *groupEvaluator, projected Row) (Value, error) {
	if c, ok := expr.(*sql.ColumnRef); ok && c.Table == "" {
		for i, item := range stmt.Columns {
			if item.Alias != "" && strings.EqualFold(item.Alias, c.Name) && i < len(projected) {
				return projected[i], nil
			}
		}
	}
	return gev.eval(expr)
}

// groupEvaluator evaluates expressions in the context of one group: aggregate
// calls aggregate over the group's rows, plain column references evaluate
// against the group's first row.
type groupEvaluator struct {
	eng    *Engine
	source *relation
	rows   []Row
	outer  *env
}

func (g *groupEvaluator) eval(e sql.Expr) (Value, error) {
	if f, ok := e.(*sql.FuncCall); ok && f.IsAggregate() {
		return g.evalAggregate(f)
	}
	switch n := e.(type) {
	case *sql.BinaryExpr:
		// Allow expressions over aggregates, e.g. AVG(x) > 10, SUM(a)/COUNT(*).
		left, err := g.eval(n.Left)
		if err != nil {
			return Null, err
		}
		right, err := g.eval(n.Right)
		if err != nil {
			return Null, err
		}
		return evalBinaryValues(n.Op, left, right)
	case *sql.UnaryExpr:
		inner, err := g.eval(n.Expr)
		if err != nil {
			return Null, err
		}
		switch n.Op {
		case "-":
			return arith("-", NewInt(0), inner)
		case "NOT":
			if inner.IsNull() {
				return Null, nil
			}
			b, err := inner.Coerce(TypeBool)
			if err != nil {
				return Null, err
			}
			return NewBool(!b.Bool), nil
		default:
			return inner, nil
		}
	}
	// Non-aggregate expression: evaluate against the group's representative row.
	ev := &evaluator{eng: g.eng}
	var row Row
	if len(g.rows) > 0 {
		row = g.rows[0]
	} else {
		row = make(Row, len(g.source.cols))
		for i := range row {
			row[i] = Null
		}
	}
	en := &env{rel: g.source, row: row, outer: g.outer}
	return ev.eval(e, en)
}

func (g *groupEvaluator) evalAggregate(f *sql.FuncCall) (Value, error) {
	name := strings.ToUpper(f.Name)
	ev := &evaluator{eng: g.eng}
	// Collect argument values across the group.
	var vals []Value
	if f.Star {
		if name != "COUNT" {
			return Null, fmt.Errorf("engine: %s(*) is not supported", name)
		}
		return NewInt(int64(len(g.rows))), nil
	}
	if len(f.Args) != 1 {
		return Null, fmt.Errorf("engine: aggregate %s expects exactly one argument", name)
	}
	seen := make(map[string]bool)
	for _, row := range g.rows {
		en := &env{rel: g.source, row: row, outer: g.outer}
		v, err := ev.eval(f.Args[0], en)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch name {
	case "COUNT":
		return NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := v.asFloat()
			if !ok {
				return Null, fmt.Errorf("engine: %s over non-numeric values", name)
			}
			if v.Type != TypeInt {
				allInt = false
			}
			sum += f
		}
		if name == "AVG" {
			return NewFloat(sum / float64(len(vals))), nil
		}
		if allInt {
			return NewInt(int64(sum)), nil
		}
		return NewFloat(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := v.Compare(best)
			if err != nil {
				return Null, err
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return Null, fmt.Errorf("engine: unknown aggregate %s", name)
	}
}

// evalBinaryValues applies a binary operator to two already-evaluated values.
func evalBinaryValues(op string, left, right Value) (Value, error) {
	switch op {
	case "AND", "OR":
		if left.IsNull() || right.IsNull() {
			return Null, nil
		}
		lb, err := left.Coerce(TypeBool)
		if err != nil {
			return Null, err
		}
		rb, err := right.Coerce(TypeBool)
		if err != nil {
			return Null, err
		}
		if op == "AND" {
			return NewBool(lb.Bool && rb.Bool), nil
		}
		return NewBool(lb.Bool || rb.Bool), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if left.IsNull() || right.IsNull() {
			return Null, nil
		}
		c, err := left.Compare(right)
		if err != nil {
			return Null, err
		}
		var out bool
		switch op {
		case "=":
			out = c == 0
		case "<>":
			out = c != 0
		case "<":
			out = c < 0
		case "<=":
			out = c <= 0
		case ">":
			out = c > 0
		case ">=":
			out = c >= 0
		}
		return NewBool(out), nil
	case "||":
		if left.IsNull() || right.IsNull() {
			return Null, nil
		}
		return NewText(left.String() + right.String()), nil
	default:
		return arith(op, left, right)
	}
}

// ---------------------------------------------------------------------------
// DISTINCT, LIMIT, set operations
// ---------------------------------------------------------------------------

func rowKey(r Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}

func distinctRows(rows []Row) []Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

func applyLimit(rows []Row, limit *sql.LimitClause) []Row {
	start := int(limit.Offset)
	if start < 0 {
		start = 0
	}
	if start > len(rows) {
		return nil
	}
	end := len(rows)
	if limit.Count >= 0 && start+int(limit.Count) < end {
		end = start + int(limit.Count)
	}
	return rows[start:end]
}

func applyCompound(op string, all bool, left, right *relation) (*relation, error) {
	if len(left.cols) != len(right.cols) {
		return nil, fmt.Errorf("engine: %s operands have different column counts (%d vs %d)", op, len(left.cols), len(right.cols))
	}
	out := &relation{cols: left.cols}
	switch op {
	case "UNION":
		out.rows = append(append([]Row{}, left.rows...), right.rows...)
		if !all {
			out.rows = distinctRows(out.rows)
		}
	case "EXCEPT":
		rightKeys := make(map[string]bool, len(right.rows))
		for _, r := range right.rows {
			rightKeys[rowKey(r)] = true
		}
		for _, r := range left.rows {
			if !rightKeys[rowKey(r)] {
				out.rows = append(out.rows, r)
			}
		}
		if !all {
			out.rows = distinctRows(out.rows)
		}
	case "INTERSECT":
		rightKeys := make(map[string]bool, len(right.rows))
		for _, r := range right.rows {
			rightKeys[rowKey(r)] = true
		}
		for _, r := range left.rows {
			if rightKeys[rowKey(r)] {
				out.rows = append(out.rows, r)
			}
		}
		if !all {
			out.rows = distinctRows(out.rows)
		}
	default:
		return nil, fmt.Errorf("engine: unknown set operation %s", op)
	}
	return out, nil
}
