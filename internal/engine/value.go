// Package engine implements the in-memory relational DBMS that the CQMS sits
// on top of. The paper assumes "a standard DBMS" under the CQMS server
// (Figure 4); this package is that substrate: a catalog with typed schemas,
// row storage and a query executor supporting the SQL subset of package sql
// (scans, filters, projections, joins, grouping, ordering, limits, nested
// sub-queries and DML/DDL).
//
// The engine also exposes exactly the information the Query Profiler needs:
// result cardinality, execution time and output rows for sampling, plus a
// schema-change log consumed by the Query Maintenance component.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type identifies the type of a column or value.
type Type int

// Column and value types.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
	TypeTimestamp
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	case TypeTimestamp:
		return "TIMESTAMP"
	case TypeNull:
		return "NULL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// TypeFromName maps the parser's normalised type names onto engine types.
func TypeFromName(name string) (Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "CHAR":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "TIMESTAMP", "DATE":
		return TypeTimestamp, nil
	default:
		return TypeNull, fmt.Errorf("engine: unknown type %q", name)
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	Type  Type
	Int   int64
	Float float64
	Str   string
	Bool  bool
	Time  time.Time
}

// Null is the SQL NULL value.
var Null = Value{Type: TypeNull}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Type: TypeInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Type: TypeFloat, Float: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{Type: TypeText, Str: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{Type: TypeBool, Bool: v} }

// NewTimestamp returns a TIMESTAMP value.
func NewTimestamp(v time.Time) Value { return Value{Type: TypeTimestamp, Time: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Type == TypeNull }

// String renders the value for display and output sampling.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.Int, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeText:
		return v.Str
	case TypeBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	case TypeTimestamp:
		return v.Time.UTC().Format(time.RFC3339)
	default:
		return "?"
	}
}

// asFloat converts numeric values to float64 for mixed-type arithmetic.
func (v Value) asFloat() (float64, bool) {
	switch v.Type {
	case TypeInt:
		return float64(v.Int), true
	case TypeFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// Compare returns -1, 0 or +1 comparing v with other, or an error if the
// values are not comparable. NULL compares only with NULL.
func (v Value) Compare(other Value) (int, error) {
	if v.IsNull() || other.IsNull() {
		if v.IsNull() && other.IsNull() {
			return 0, nil
		}
		return 0, errNullComparison
	}
	// Numeric cross-type comparison.
	if vf, ok := v.asFloat(); ok {
		if of, ok2 := other.asFloat(); ok2 {
			switch {
			case vf < of:
				return -1, nil
			case vf > of:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if v.Type != other.Type {
		return 0, fmt.Errorf("engine: cannot compare %s with %s", v.Type, other.Type)
	}
	switch v.Type {
	case TypeText:
		return strings.Compare(v.Str, other.Str), nil
	case TypeBool:
		a, b := 0, 0
		if v.Bool {
			a = 1
		}
		if other.Bool {
			b = 1
		}
		return a - b, nil
	case TypeTimestamp:
		switch {
		case v.Time.Before(other.Time):
			return -1, nil
		case v.Time.After(other.Time):
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("engine: cannot compare values of type %s", v.Type)
	}
}

// Equal reports whether two non-NULL values are equal; NULL never equals
// anything including NULL (SQL three-valued logic collapses to false here).
func (v Value) Equal(other Value) bool {
	if v.IsNull() || other.IsNull() {
		return false
	}
	c, err := v.Compare(other)
	return err == nil && c == 0
}

// Key returns a string usable as a map key for grouping and hash joins.
// Numeric values of equal magnitude map to the same key regardless of
// int/float representation.
func (v Value) Key() string {
	switch v.Type {
	case TypeNull:
		return "\x00null"
	case TypeInt:
		return "n:" + strconv.FormatFloat(float64(v.Int), 'g', -1, 64)
	case TypeFloat:
		return "n:" + strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TypeText:
		return "s:" + v.Str
	case TypeBool:
		if v.Bool {
			return "b:1"
		}
		return "b:0"
	case TypeTimestamp:
		return "t:" + strconv.FormatInt(v.Time.UnixNano(), 10)
	default:
		return "?"
	}
}

// Coerce converts the value to the target column type where a lossless or
// conventional conversion exists (int↔float, text→timestamp in RFC3339 or
// "2006-01-02" form, numeric text→number).
func (v Value) Coerce(target Type) (Value, error) {
	if v.IsNull() || v.Type == target {
		return v, nil
	}
	switch target {
	case TypeInt:
		switch v.Type {
		case TypeFloat:
			return NewInt(int64(v.Float)), nil
		case TypeText:
			n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
			if err != nil {
				return Null, fmt.Errorf("engine: cannot coerce %q to INT", v.Str)
			}
			return NewInt(n), nil
		case TypeBool:
			if v.Bool {
				return NewInt(1), nil
			}
			return NewInt(0), nil
		}
	case TypeFloat:
		switch v.Type {
		case TypeInt:
			return NewFloat(float64(v.Int)), nil
		case TypeText:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64)
			if err != nil {
				return Null, fmt.Errorf("engine: cannot coerce %q to FLOAT", v.Str)
			}
			return NewFloat(f), nil
		}
	case TypeText:
		return NewText(v.String()), nil
	case TypeBool:
		switch v.Type {
		case TypeInt:
			return NewBool(v.Int != 0), nil
		case TypeText:
			switch strings.ToUpper(v.Str) {
			case "TRUE", "T", "1":
				return NewBool(true), nil
			case "FALSE", "F", "0":
				return NewBool(false), nil
			}
		}
	case TypeTimestamp:
		if v.Type == TypeText {
			for _, layout := range []string{time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
				if ts, err := time.Parse(layout, v.Str); err == nil {
					return NewTimestamp(ts), nil
				}
			}
			return Null, fmt.Errorf("engine: cannot coerce %q to TIMESTAMP", v.Str)
		}
		if v.Type == TypeInt {
			return NewTimestamp(time.Unix(v.Int, 0).UTC()), nil
		}
	}
	return Null, fmt.Errorf("engine: cannot coerce %s to %s", v.Type, target)
}

// Row is a single tuple.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Strings renders every value of the row, used for output samples.
func (r Row) Strings() []string {
	out := make([]string, len(r))
	for i, v := range r {
		out[i] = v.String()
	}
	return out
}
