package engine

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndString(t *testing.T) {
	ts := time.Date(2009, 1, 5, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewFloat(3.5), "3.5"},
		{NewText("Lake Washington"), "Lake Washington"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{Null, "NULL"},
		{NewTimestamp(ts), "2009-01-05T12:00:00Z"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewText("a"), NewText("b"), -1},
		{NewBool(false), NewBool(true), -1},
		{NewTimestamp(time.Unix(1, 0)), NewTimestamp(time.Unix(2, 0)), -1},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Incompatible types error.
	if _, err := NewText("x").Compare(NewInt(1)); err == nil {
		t.Error("comparing text with int should error")
	}
	// NULL comparisons are flagged.
	if _, err := Null.Compare(NewInt(1)); err == nil {
		t.Error("comparing NULL with a value should error")
	}
	if c, err := Null.Compare(Null); err != nil || c != 0 {
		t.Errorf("NULL vs NULL = %d, %v", c, err)
	}
}

func TestValueEqualAndKey(t *testing.T) {
	if !NewInt(2).Equal(NewFloat(2)) {
		t.Error("2 should equal 2.0")
	}
	if NewInt(2).Key() != NewFloat(2).Key() {
		t.Error("numeric keys should unify int and float")
	}
	if Null.Equal(Null) {
		t.Error("NULL never equals NULL in SQL semantics")
	}
	if NewText("a").Key() == NewInt(97).Key() {
		t.Error("text and int keys must not collide")
	}
}

func TestValueCoerce(t *testing.T) {
	cases := []struct {
		in     Value
		target Type
		want   Value
	}{
		{NewFloat(3.9), TypeInt, NewInt(3)},
		{NewText("42"), TypeInt, NewInt(42)},
		{NewBool(true), TypeInt, NewInt(1)},
		{NewInt(5), TypeFloat, NewFloat(5)},
		{NewText("2.5"), TypeFloat, NewFloat(2.5)},
		{NewInt(7), TypeText, NewText("7")},
		{NewInt(0), TypeBool, NewBool(false)},
		{NewText("true"), TypeBool, NewBool(true)},
	}
	for _, c := range cases {
		got, err := c.in.Coerce(c.target)
		if err != nil {
			t.Errorf("Coerce(%v, %v): %v", c.in, c.target, err)
			continue
		}
		if got.Type != c.want.Type || got.String() != c.want.String() {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.in, c.target, got, c.want)
		}
	}
	// Timestamp coercion from common layouts.
	for _, s := range []string{"2009-01-05", "2009-01-05 10:30:00", "2009-01-05T10:30:00Z"} {
		if _, err := NewText(s).Coerce(TypeTimestamp); err != nil {
			t.Errorf("Coerce(%q, TIMESTAMP): %v", s, err)
		}
	}
	// Failures.
	if _, err := NewText("not a number").Coerce(TypeInt); err == nil {
		t.Error("expected coercion error")
	}
	if _, err := NewText("not a date").Coerce(TypeTimestamp); err == nil {
		t.Error("expected coercion error")
	}
	// NULL coerces to anything unchanged.
	if v, err := Null.Coerce(TypeInt); err != nil || !v.IsNull() {
		t.Errorf("NULL coercion = %v, %v", v, err)
	}
}

func TestTypeFromName(t *testing.T) {
	cases := map[string]Type{
		"INT": TypeInt, "integer": TypeInt, "BIGINT": TypeInt,
		"FLOAT": TypeFloat, "double": TypeFloat,
		"TEXT": TypeText, "VarChar": TypeText,
		"BOOL": TypeBool, "boolean": TypeBool,
		"TIMESTAMP": TypeTimestamp, "date": TypeTimestamp,
	}
	for name, want := range cases {
		got, err := TypeFromName(name)
		if err != nil || got != want {
			t.Errorf("TypeFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := TypeFromName("BLOB"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestRowCloneAndStrings(t *testing.T) {
	r := Row{NewInt(1), NewText("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int != 1 {
		t.Error("Clone should copy values")
	}
	s := r.Strings()
	if s[0] != "1" || s[1] != "a" {
		t.Errorf("Strings = %v", s)
	}
}

// Property: Compare is antisymmetric over numeric values and Key is
// consistent with Equal.
func TestPropertyValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int32) bool {
		va, vb := NewInt(int64(a)), NewFloat(float64(b))
		ab, err1 := va.Compare(vb)
		ba, err2 := vb.Compare(va)
		if err1 != nil || err2 != nil {
			return false
		}
		if ab != -ba {
			return false
		}
		if va.Equal(vb) != (va.Key() == vb.Key()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCatalogRowCountAndSchemas(t *testing.T) {
	e := newLakesEngine(t)
	n, err := e.Catalog().RowCount("WaterTemp")
	if err != nil || n != 4 {
		t.Errorf("RowCount = %d, %v", n, err)
	}
	if _, err := e.Catalog().RowCount("missing"); err == nil {
		t.Error("RowCount of missing table should error")
	}
	schemas := e.Catalog().Schemas()
	if len(schemas) != 3 {
		t.Errorf("Schemas = %d tables", len(schemas))
	}
	names := e.Catalog().TableNames()
	if len(names) != 3 || names[0] != "CityLocations" {
		t.Errorf("TableNames = %v", names)
	}
	// SchemaOf returns a copy: mutating it does not change the catalog.
	s, err := e.Catalog().SchemaOf("WaterTemp")
	if err != nil {
		t.Fatal(err)
	}
	s.Columns[0].Name = "mutated"
	s2, _ := e.Catalog().SchemaOf("WaterTemp")
	if s2.Columns[0].Name == "mutated" {
		t.Error("SchemaOf should return a copy")
	}
}

func TestSchemaChangeKindString(t *testing.T) {
	kinds := map[SchemaChangeKind]string{
		ChangeCreateTable:  "CREATE TABLE",
		ChangeDropTable:    "DROP TABLE",
		ChangeAddColumn:    "ADD COLUMN",
		ChangeDropColumn:   "DROP COLUMN",
		ChangeRenameColumn: "RENAME COLUMN",
		ChangeRenameTable:  "RENAME TABLE",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q", k, k.String())
		}
	}
	if SchemaChangeKind(99).String() != "UNKNOWN" {
		t.Error("unknown kind label wrong")
	}
	if Type(99).String() == "" {
		t.Error("unknown type should still render")
	}
}
