// Package experiments implements the per-experiment harness of DESIGN.md:
// for each experiment E1–E9 it builds the synthetic workload, runs the
// relevant CQMS components and computes the quality metrics (hit rates,
// precision/recall, overhead ratios) that EXPERIMENTS.md reports next to the
// paper's qualitative claims. cmd/cqms-bench prints these results; the
// timing-oriented counterparts live in the root bench_test.go.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/maintenance"
	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/profiler"
	"repro/internal/recommend"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/workload"
)

// admin bypasses access control for measurement purposes.
var admin = storage.Principal{Admin: true}

// Options size the synthetic workload used by every experiment.
type Options struct {
	RowsPerTable    int
	Users           int
	SessionsPerUser int
	Seed            int64
}

// DefaultOptions is the configuration used for the numbers recorded in
// EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{RowsPerTable: 1000, Users: 20, SessionsPerUser: 10, Seed: 42}
}

// Metric is one reported measurement.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Result is the outcome of one experiment.
type Result struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Claim   string   `json:"claim"` // the paper's qualitative claim this experiment checks
	Metrics []Metric `json:"metrics"`
	Notes   string   `json:"notes,omitempty"`
}

// Format renders the result as the block recorded in EXPERIMENTS.md.
func (r Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "  paper claim: %s\n", r.Claim)
	for _, m := range r.Metrics {
		fmt.Fprintf(&sb, "  %-42s %12.3f %s\n", m.Name, m.Value, m.Unit)
	}
	if r.Notes != "" {
		fmt.Fprintf(&sb, "  note: %s\n", r.Notes)
	}
	return sb.String()
}

// Env is the shared experimental environment: a populated engine, a CQMS with
// a replayed trace, and the trace's ground truth.
type Env struct {
	Opts   Options
	Sys    *core.CQMS
	Eng    *engine.Engine
	Trace  *workload.Trace
	Mining *miner.Result
}

// NewEnv builds the shared environment.
func NewEnv(opts Options) (*Env, error) {
	eng := engine.New()
	if err := workload.Populate(eng, opts.RowsPerTable, opts.Seed); err != nil {
		return nil, err
	}
	sys := core.NewWithEngine(eng, core.DefaultConfig())
	cfg := workload.DefaultConfig()
	cfg.Seed = opts.Seed
	cfg.Users = opts.Users
	cfg.SessionsPerUser = opts.SessionsPerUser
	trace := workload.Generate(cfg)
	prof := profiler.New(eng, sys.Store(), profiler.DefaultConfig())
	if _, err := workload.Replay(trace, prof); err != nil {
		return nil, err
	}
	mining := sys.RunMiner()
	return &Env{Opts: opts, Sys: sys, Eng: eng, Trace: trace, Mining: mining}, nil
}

// RunAll runs every experiment and returns their results in order.
func RunAll(env *Env) ([]Result, error) {
	runs := []func(*Env) (Result, error){
		E1QueryByFeature,
		E2SessionDetection,
		E3AssistedInteraction,
		E4ProfilerOverhead,
		E5OutputSampling,
		E6AssociationMining,
		E7Clustering,
		E8Maintenance,
		E9QueryByData,
	}
	var out []Result
	for _, run := range runs {
		res, err := run(env)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// E1 — Figure 1 meta-query
// ---------------------------------------------------------------------------

// E1QueryByFeature checks that the Figure 1 query-by-feature meta-query finds
// exactly the logged queries that correlate WaterSalinity with WaterTemp, and
// compares its latency against a raw-text substring scan.
func E1QueryByFeature(env *Env) (Result, error) {
	store := env.Sys.Store()
	// Ground truth: logged queries whose FROM references both relations.
	truth := make(map[storage.QueryID]bool)
	store.Snapshot().Scan(admin, func(rec *storage.QueryRecord) bool {
		hasSal, hasTemp := false, false
		for _, t := range rec.Tables {
			if t == "WaterSalinity" {
				hasSal = true
			}
			if t == "WaterTemp" {
				hasTemp = true
			}
		}
		if hasSal && hasTemp {
			truth[rec.ID] = true
		}
		return true
	})
	meta := `SELECT Q.qid, Q.qText FROM Queries Q, DataSources D1, DataSources D2
		WHERE Q.qid = D1.qid AND Q.qid = D2.qid
		AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`
	start := time.Now()
	_, matches, err := env.Sys.MetaQuery(context.Background(), admin, meta)
	if err != nil {
		return Result{}, err
	}
	metaLatency := time.Since(start)

	correct := 0
	for _, m := range matches {
		if truth[m.Record.ID] {
			correct++
		}
	}
	precision := ratio(correct, len(matches))
	recall := ratio(correct, len(truth))

	// Baseline: substring scan over raw text.
	exec := metaquery.New(store)
	start = time.Now()
	sub, err := exec.Substring(context.Background(), admin, "WaterSalinity")
	if err != nil {
		return Result{}, err
	}
	textMatches := 0
	for _, m := range sub {
		if strings.Contains(m.Record.Text, "WaterTemp") {
			textMatches++
		}
	}
	textLatency := time.Since(start)

	return Result{
		ID:    "E1",
		Title: "Query-by-feature meta-query (Figure 1)",
		Claim: "feature relations let users find all queries correlating salinity with temperature",
		Metrics: []Metric{
			{"queries in log", float64(store.Count()), "queries"},
			{"ground-truth correlating queries", float64(len(truth)), "queries"},
			{"meta-query matches", float64(len(matches)), "queries"},
			{"meta-query precision", precision, ""},
			{"meta-query recall", recall, ""},
			{"meta-query latency", float64(metaLatency.Microseconds()) / 1000, "ms"},
			{"raw-text scan matches", float64(textMatches), "queries"},
			{"raw-text scan latency", float64(textLatency.Microseconds()) / 1000, "ms"},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// E2 — session detection
// ---------------------------------------------------------------------------

// E2SessionDetection measures how well the session detector recovers the
// generator's ground-truth session boundaries.
func E2SessionDetection(env *Env) (Result, error) {
	records := env.Sys.Store().Snapshot().Records(admin)
	start := time.Now()
	detected := session.NewDetector(session.DefaultConfig()).Detect(records, 0)
	latency := time.Since(start)

	// Ground truth lookup by (user, text, time).
	truth := make(map[string]int)
	for _, q := range env.Trace.Queries {
		truth[q.User+"|"+q.SQL+"|"+q.IssuedAt.UTC().String()] = q.SessionID
	}
	// Purity: a detected session is pure if all its queries share one
	// ground-truth session.
	pure := 0
	for _, s := range detected {
		seen := map[int]bool{}
		for _, rec := range s.Queries {
			if id, ok := truth[rec.User+"|"+rec.Text+"|"+rec.IssuedAt.UTC().String()]; ok {
				seen[id] = true
			}
		}
		if len(seen) <= 1 {
			pure++
		}
	}
	return Result{
		ID:    "E2",
		Title: "Session detection and Figure 2 rendering",
		Claim: "query sessions can be automatically identified and visually summarised",
		Metrics: []Metric{
			{"ground-truth sessions", float64(env.Trace.Sessions), "sessions"},
			{"detected sessions", float64(len(detected)), "sessions"},
			{"detected/truth ratio", ratio(len(detected), env.Trace.Sessions), ""},
			{"session purity", ratio(pure, len(detected)), ""},
			{"detection latency (full log)", float64(latency.Microseconds()) / 1000, "ms"},
		},
		Notes: "purity = fraction of detected sessions whose queries all belong to one ground-truth session",
	}, nil
}

// ---------------------------------------------------------------------------
// E3 — assisted interaction
// ---------------------------------------------------------------------------

// E3AssistedInteraction evaluates context-aware table completion with a
// hold-one-table-out protocol, against the global-popularity baseline, and
// similar-query retrieval by topic.
func E3AssistedInteraction(env *Env) (Result, error) {
	store := env.Sys.Store()
	records := store.Snapshot().Records(admin)

	exec := metaquery.New(store)
	contextCfg := recommend.DefaultConfig()
	contextRec := recommend.New(store, exec, contextCfg)
	contextRec.UpdateMining(env.Mining)
	popCfg := recommend.DefaultConfig()
	popCfg.ContextAware = false
	popRec := recommend.New(store, exec, popCfg)
	popRec.UpdateMining(env.Mining)

	// k = 1: the metric is whether the single top suggestion is the held-out
	// table. With the small schema a top-3 window would let the popularity
	// baseline succeed trivially, hiding the §2.3 effect.
	const k = 1
	// globalTopFor returns the globally most popular table not already in the
	// partial query — what a popularity-only assistant would suggest first.
	globalTopFor := func(kept []string) string {
		for _, pop := range env.Mining.TablePopularity {
			inKept := false
			for _, t := range kept {
				if strings.EqualFold(t, pop.Item) {
					inKept = true
					break
				}
			}
			if !inKept {
				return pop.Item
			}
		}
		return ""
	}
	var trials, contextHits, popHits int
	var hardTrials, hardContextHits, hardPopHits int
	var contextWins, popWins int
	for _, rec := range records {
		if len(rec.Tables) < 2 || trials >= 400 {
			continue
		}
		// Hold out every table of the query in turn: the partial query
		// mentions the remaining ones and the assistant must propose the
		// held-out one.
		for holdIdx := range rec.Tables {
			heldOut := rec.Tables[holdIdx]
			kept := make([]string, 0, len(rec.Tables)-1)
			for i, t := range rec.Tables {
				if i != holdIdx {
					kept = append(kept, t)
				}
			}
			partial := "SELECT * FROM " + strings.Join(kept, ", ")
			trials++
			ctxHit := hitInTopK(contextRec.SuggestTables(context.Background(), admin, partial, k), heldOut)
			popHit := hitInTopK(popRec.SuggestTables(context.Background(), admin, partial, k), heldOut)
			if ctxHit {
				contextHits++
			}
			if popHit {
				popHits++
			}
			if ctxHit && !popHit {
				contextWins++
			}
			if popHit && !ctxHit {
				popWins++
			}
			// "Hard" trials are the paper's §2.3 situation: the right table is
			// NOT the globally most popular one, so popularity alone cannot
			// find it at rank 1.
			if !strings.EqualFold(globalTopFor(kept), heldOut) {
				hardTrials++
				if ctxHit {
					hardContextHits++
				}
				if popHit {
					hardPopHits++
				}
			}
		}
	}

	// Similar-query retrieval: probe with one query per topic, count how many
	// of the top-5 results come from the same ground-truth topic.
	topicOf := make(map[uint64]string)
	for _, q := range env.Trace.Queries {
		fp := storageFingerprint(q.SQL)
		if _, ok := topicOf[fp]; !ok {
			topicOf[fp] = q.Topic
		}
	}
	var simTrials, simSameTopic int
	seenTopic := map[string]bool{}
	for _, q := range env.Trace.Queries {
		if seenTopic[q.Topic] {
			continue
		}
		seenTopic[q.Topic] = true
		similar, err := contextRec.SimilarQueries(context.Background(), admin, q.SQL, 5)
		if err != nil {
			continue
		}
		for _, s := range similar {
			simTrials++
			if topicOf[s.Record.Fingerprint] == q.Topic {
				simSameTopic++
			}
		}
	}

	return Result{
		ID:    "E3",
		Title: "Assisted interaction (Figure 3)",
		Claim: "context-aware suggestions (WaterSalinity => WaterTemp) beat global popularity; similar queries help users leverage others' analyses",
		Metrics: []Metric{
			{"hold-out completion trials", float64(trials), "trials"},
			{fmt.Sprintf("context-aware hit rate@%d", k), ratio(contextHits, trials), ""},
			{fmt.Sprintf("popularity-only hit rate@%d", k), ratio(popHits, trials), ""},
			{"trials won by context only", float64(contextWins), "trials"},
			{"trials won by popularity only", float64(popWins), "trials"},
			{"hard trials (truth != global top)", float64(hardTrials), "trials"},
			{fmt.Sprintf("context-aware hit rate@%d (hard)", k), ratio(hardContextHits, hardTrials), ""},
			{fmt.Sprintf("popularity-only hit rate@%d (hard)", k), ratio(hardPopHits, hardTrials), ""},
			{"similar-query same-topic fraction", ratio(simSameTopic, simTrials), ""},
		},
		Notes: "hard trials are those where the correct next table differs from the globally most popular table (the paper's WaterSalinity => WaterTemp over CityLocations situation)",
	}, nil
}

func hitInTopK(completions []recommend.Completion, want string) bool {
	for _, c := range completions {
		if c.Kind == recommend.CompleteTable && strings.EqualFold(c.Text, want) {
			return true
		}
	}
	return false
}

func storageFingerprint(sqlText string) uint64 {
	rec, err := storage.NewRecordFromSQL(sqlText)
	if err != nil {
		return 0
	}
	return rec.Fingerprint
}

// ---------------------------------------------------------------------------
// E4 — profiler overhead and interactive meta-querying
// ---------------------------------------------------------------------------

// E4ProfilerOverhead compares unprofiled execution against profiled
// submission and reports meta-query latency on the full log.
func E4ProfilerOverhead(env *Env) (Result, error) {
	queries := []string{
		"SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp WHERE temp < 18 GROUP BY lake ORDER BY avg_temp DESC",
		"SELECT WaterTemp.lake, WaterTemp.temp, WaterSalinity.salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 15",
		"SELECT city FROM CityLocations WHERE state = 'WA' AND pop > 100000",
		"SELECT Stars.name, AVG(Observations.flux) AS f FROM Stars, Observations WHERE Stars.star_id = Observations.star_id GROUP BY Stars.name ORDER BY f DESC LIMIT 20",
	}
	const rounds = 25

	// Baseline: plain execution.
	start := time.Now()
	for i := 0; i < rounds; i++ {
		for _, q := range queries {
			if _, err := env.Sys.ExecuteUnprofiled(q); err != nil {
				return Result{}, err
			}
		}
	}
	baseline := time.Since(start)

	// Profiled: execution + logging into a throwaway store.
	store := storage.NewStore()
	prof := profiler.New(env.Eng, store, profiler.DefaultConfig())
	start = time.Now()
	for i := 0; i < rounds; i++ {
		for _, q := range queries {
			if _, err := prof.Submit(profiler.Submission{User: "bench", SQL: q}); err != nil {
				return Result{}, err
			}
		}
	}
	profiled := time.Since(start)

	overheadPct := 0.0
	if baseline > 0 {
		overheadPct = 100 * float64(profiled-baseline) / float64(baseline)
	}

	// Interactive meta-query latency over the full log.
	exec := metaquery.New(env.Sys.Store())
	start = time.Now()
	_, _ = exec.Keyword(context.Background(), admin, "salinity")
	keywordLatency := time.Since(start)
	start = time.Now()
	if _, err := exec.KNN(context.Background(), admin, queries[0], 10); err != nil {
		return Result{}, err
	}
	knnLatency := time.Since(start)

	n := rounds * len(queries)
	return Result{
		ID:    "E4",
		Title: "Profiling overhead and interactive meta-querying (Figure 4 requirements)",
		Claim: "the CQMS must not impose significant runtime overhead and meta-querying must be interactive",
		Metrics: []Metric{
			{"queries executed per variant", float64(n), "queries"},
			{"baseline execution (mean)", msPer(baseline, n), "ms/query"},
			{"profiled execution (mean)", msPer(profiled, n), "ms/query"},
			{"profiler overhead", overheadPct, "%"},
			{"keyword meta-query latency", float64(keywordLatency.Microseconds()) / 1000, "ms"},
			{"kNN meta-query latency", float64(knnLatency.Microseconds()) / 1000, "ms"},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// E5 — adaptive output sampling
// ---------------------------------------------------------------------------

// E5OutputSampling compares the storage footprint of the adaptive sampling
// policy against a fixed policy over a cheap-but-wide and expensive-but-small
// query mix.
func E5OutputSampling(env *Env) (Result, error) {
	run := func(policy profiler.SamplePolicy) (int, int, error) {
		store := storage.NewStore()
		cfg := profiler.DefaultConfig()
		cfg.Sample = policy
		prof := profiler.New(env.Eng, store, cfg)
		queries := []string{
			"SELECT * FROM Observations",                          // cheap, huge output
			"SELECT * FROM WaterTemp",                             // cheap, large output
			"SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake", // small output
			"SELECT Stars.name, AVG(Observations.flux) AS f FROM Stars, Observations WHERE Stars.star_id = Observations.star_id GROUP BY Stars.name", // expensive, modest output
		}
		totalRows, totalStored := 0, 0
		for _, q := range queries {
			out, err := prof.Submit(profiler.Submission{User: "bench", SQL: q})
			if err != nil {
				return 0, 0, err
			}
			totalRows += out.Result.Cardinality()
			rec, err := store.Get(out.QueryID, admin)
			if err != nil {
				return 0, 0, err
			}
			if rec.Sample != nil {
				totalStored += len(rec.Sample.Rows)
			}
		}
		return totalRows, totalStored, nil
	}
	totalRows, adaptiveStored, err := run(profiler.DefaultSamplePolicy())
	if err != nil {
		return Result{}, err
	}
	_, fixedStored, err := run(profiler.SamplePolicy{Adaptive: false, FixedRows: 500})
	if err != nil {
		return Result{}, err
	}
	return Result{
		ID:    "E5",
		Title: "Adaptive output sampling (§4.1)",
		Claim: "sample size should follow execution time: cheap huge outputs need no large sample, expensive small outputs are kept whole",
		Metrics: []Metric{
			{"total result rows produced", float64(totalRows), "rows"},
			{"rows stored (adaptive policy)", float64(adaptiveStored), "rows"},
			{"rows stored (fixed 500-row policy)", float64(fixedStored), "rows"},
			{"adaptive/fixed storage ratio", ratio(adaptiveStored, fixedStored), ""},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// E6 — association mining: batch vs incremental
// ---------------------------------------------------------------------------

// E6AssociationMining compares batch Apriori against the incremental miner on
// runtime and on whether the headline context rule survives.
func E6AssociationMining(env *Env) (Result, error) {
	records := env.Sys.Store().Snapshot().Records(admin)
	transactions := make([][]string, 0, len(records))
	for _, r := range records {
		transactions = append(transactions, r.Features)
	}
	cfg := miner.DefaultAssocConfig()

	start := time.Now()
	batch := miner.MineAssociationRules(transactions, cfg)
	batchTime := time.Since(start)

	inc := miner.NewIncrementalMiner(cfg, 200)
	start = time.Now()
	for _, t := range transactions {
		inc.Add(t)
	}
	addTime := time.Since(start)
	start = time.Now()
	incRules := inc.Rules()
	deriveTime := time.Since(start)

	batchKeys := map[string]bool{}
	for _, r := range batch {
		batchKeys[r.Key()] = true
	}
	common := 0
	for _, r := range incRules {
		if batchKeys[r.Key()] {
			common++
		}
	}
	return Result{
		ID:    "E6",
		Title: "Association-rule mining: batch vs incremental (§4.3)",
		Claim: "incremental mining is necessary as the query log grows",
		Metrics: []Metric{
			{"transactions", float64(len(transactions)), "queries"},
			{"batch rules", float64(len(batch)), "rules"},
			{"batch mining time", float64(batchTime.Microseconds()) / 1000, "ms"},
			{"incremental per-query add time", msPer(addTime, len(transactions)) * 1000, "us/query"},
			{"incremental rule derivation time", float64(deriveTime.Microseconds()) / 1000, "ms"},
			{"incremental rules", float64(len(incRules)), "rules"},
			{"batch-rule recall by incremental", ratio(common, len(batch)), ""},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// E7 — clustering quality per similarity measure
// ---------------------------------------------------------------------------

// E7Clustering clusters the log with each similarity measure and scores the
// clusters against the ground-truth topics.
func E7Clustering(env *Env) (Result, error) {
	records := env.Sys.Store().Snapshot().Records(admin)
	if len(records) > 400 {
		records = records[:400]
	}
	topicByFingerprint := map[uint64]string{}
	for _, q := range env.Trace.Queries {
		topicByFingerprint[storageFingerprint(q.SQL)] = q.Topic
	}
	metrics := []Metric{{"clustered queries", float64(len(records)), "queries"}}
	for _, m := range []miner.Measure{miner.MeasureFeatures, miner.MeasureTemplate, miner.MeasureText} {
		start := time.Now()
		clusters := miner.KMedoids(records, miner.ClusterConfig{K: 12, Measure: m, MaxIters: 20, Seed: 1})
		elapsed := time.Since(start)
		purity := clusterTopicPurity(records, clusters, topicByFingerprint)
		metrics = append(metrics,
			Metric{fmt.Sprintf("topic purity (%s similarity)", m), purity, ""},
			Metric{fmt.Sprintf("clustering time (%s similarity)", m), float64(elapsed.Microseconds()) / 1000, "ms"},
		)
	}
	return Result{
		ID:      "E7",
		Title:   "Query clustering and similarity-measure ablation (§4.3)",
		Claim:   "similarity must go beyond string similarity; feature/template measures group queries by analysis topic",
		Metrics: metrics,
	}, nil
}

func clusterTopicPurity(records []*storage.QueryRecord, clusters []miner.Cluster, topicOf map[uint64]string) float64 {
	correct, total := 0, 0
	for _, c := range clusters {
		counts := map[string]int{}
		for _, idx := range c.Members {
			topic := topicOf[records[idx].Fingerprint]
			counts[topic]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
		total += len(c.Members)
	}
	return ratio(correct, total)
}

// ---------------------------------------------------------------------------
// E8 — maintenance after schema evolution
// ---------------------------------------------------------------------------

// E8Maintenance applies schema changes to a copy of the environment and
// measures how many queries the maintenance component flags and repairs.
func E8Maintenance(env *Env) (Result, error) {
	// Build an isolated environment so schema evolution does not disturb the
	// other experiments.
	opts := env.Opts
	opts.Users = env.Opts.Users / 2
	if opts.Users == 0 {
		opts.Users = 1
	}
	isolated, err := NewEnv(opts)
	if err != nil {
		return Result{}, err
	}
	eng := isolated.Eng
	store := isolated.Sys.Store()

	// Schema evolution: one rename (repairable), one dropped column and one
	// dropped table (both invalidating).
	eng.MustExecute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	eng.MustExecute("ALTER TABLE WaterSalinity DROP COLUMN depth")
	eng.MustExecute("DROP TABLE Sensors")

	m := maintenance.New(eng, store, maintenance.DefaultConfig())
	start := time.Now()
	report, err := m.Scan()
	if err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)
	return Result{
		ID:    "E8",
		Title: "Query maintenance after schema evolution (§4.4)",
		Claim: "the CQMS should efficiently identify affected queries, repair what it can and flag the rest",
		Metrics: []Metric{
			{"logged queries scanned", float64(report.Checked), "queries"},
			{"queries repaired (renames)", float64(len(report.Repaired)), "queries"},
			{"queries flagged invalid", float64(len(report.Invalidated)), "queries"},
			{"stale statistics flagged", float64(len(report.StatsFlagged)), "queries"},
			{"statistics refreshed", float64(len(report.StatsRefreshed)), "queries"},
			{"scan time", float64(elapsed.Microseconds()) / 1000, "ms"},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// E9 — query-by-data
// ---------------------------------------------------------------------------

// E9QueryByData reproduces the §2.2 example: find queries whose output
// includes Lake Washington but not Lake Union, and verify that the matched
// queries' predicates are indeed the discriminating ones.
func E9QueryByData(env *Env) (Result, error) {
	exec := metaquery.New(env.Sys.Store())
	start := time.Now()
	matches, err := exec.ByData(context.Background(), admin, []string{"Lake Washington"}, []string{"Lake Union"})
	if err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	// Check the matches against their own samples (consistency).
	consistent := 0
	for _, m := range matches {
		hasInclude, hasExclude := false, false
		for _, row := range m.Record.Sample.Rows {
			for _, cell := range row {
				if cell == "Lake Washington" {
					hasInclude = true
				}
				if cell == "Lake Union" {
					hasExclude = true
				}
			}
		}
		if hasInclude && !hasExclude {
			consistent++
		}
	}
	return Result{
		ID:    "E9",
		Title: "Query-by-data (§2.2 example)",
		Claim: "users can find past queries by positive/negative example tuples in their outputs",
		Metrics: []Metric{
			{"matching queries", float64(len(matches)), "queries"},
			{"matches consistent with samples", ratio(consistent, len(matches)), ""},
			{"search latency", float64(elapsed.Microseconds()) / 1000, "ms"},
		},
	}, nil
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func msPer(d time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Microseconds()) / 1000 / float64(n)
}

// SortMetrics orders metrics by name (used by tests for stable comparison).
func SortMetrics(ms []Metric) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
}
