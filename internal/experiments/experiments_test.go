package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps the experiment environment small enough for unit tests.
func tinyOptions() Options {
	return Options{RowsPerTable: 150, Users: 6, SessionsPerUser: 3, Seed: 7}
}

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewEnv(tinyOptions())
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func metricByName(t *testing.T, res Result, name string) float64 {
	t.Helper()
	for _, m := range res.Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("%s: metric %q missing (have %+v)", res.ID, name, res.Metrics)
	return 0
}

func TestRunAllProducesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment environment is slow")
	}
	env := tinyEnv(t)
	results, err := RunAll(env)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != 9 {
		t.Fatalf("results = %d, want 9", len(results))
	}
	wantIDs := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	for i, r := range results {
		if r.ID != wantIDs[i] {
			t.Errorf("result %d ID = %s, want %s", i, r.ID, wantIDs[i])
		}
		if len(r.Metrics) == 0 {
			t.Errorf("%s has no metrics", r.ID)
		}
		if r.Claim == "" || r.Title == "" {
			t.Errorf("%s missing claim/title", r.ID)
		}
		text := r.Format()
		if !strings.Contains(text, r.ID) || !strings.Contains(text, "paper claim") {
			t.Errorf("%s Format output malformed:\n%s", r.ID, text)
		}
	}

	// Spot-check the headline numbers the paper's claims depend on.
	byID := map[string]Result{}
	for _, r := range results {
		byID[r.ID] = r
	}
	// E1: the feature meta-query must have perfect recall of correlating
	// queries and near-perfect precision.
	if rec := metricByName(t, byID["E1"], "meta-query recall"); rec < 0.999 {
		t.Errorf("E1 recall = %v, want 1.0", rec)
	}
	if prec := metricByName(t, byID["E1"], "meta-query precision"); prec < 0.999 {
		t.Errorf("E1 precision = %v, want 1.0", prec)
	}
	// E2: detection should never merge across the 2h ground-truth gaps, so
	// the ratio is >= 1; purity must be high.
	if ratio := metricByName(t, byID["E2"], "detected/truth ratio"); ratio < 1.0 {
		t.Errorf("E2 detected/truth = %v, want >= 1", ratio)
	}
	if purity := metricByName(t, byID["E2"], "session purity"); purity < 0.95 {
		t.Errorf("E2 purity = %v, want >= 0.95", purity)
	}
	// E3: context-aware completion must beat (or at least match) popularity,
	// and on the hard trials it must strictly dominate.
	ctx := metricByName(t, byID["E3"], "context-aware hit rate@1")
	pop := metricByName(t, byID["E3"], "popularity-only hit rate@1")
	if ctx < pop {
		t.Errorf("E3 context-aware %v below popularity-only %v", ctx, pop)
	}
	if hard := metricByName(t, byID["E3"], "hard trials (truth != global top)"); hard > 0 {
		hardCtx := metricByName(t, byID["E3"], "context-aware hit rate@1 (hard)")
		hardPop := metricByName(t, byID["E3"], "popularity-only hit rate@1 (hard)")
		if hardCtx <= hardPop {
			t.Errorf("E3 hard-trial context %v should exceed popularity %v", hardCtx, hardPop)
		}
	}
	// E5: the adaptive policy must store far fewer rows than the fixed one.
	if r := metricByName(t, byID["E5"], "adaptive/fixed storage ratio"); r >= 1.0 {
		t.Errorf("E5 adaptive/fixed ratio = %v, want < 1", r)
	}
	// E6: the incremental miner must recover the batch rules.
	if r := metricByName(t, byID["E6"], "batch-rule recall by incremental"); r < 0.9 {
		t.Errorf("E6 incremental recall = %v, want >= 0.9", r)
	}
	// E8: the rename is repaired and the dropped column/table queries are
	// flagged.
	if n := metricByName(t, byID["E8"], "queries repaired (renames)"); n == 0 {
		t.Errorf("E8 repaired none")
	}
	if n := metricByName(t, byID["E8"], "queries flagged invalid"); n == 0 {
		t.Errorf("E8 flagged none")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{
		ID: "EX", Title: "Example", Claim: "something holds",
		Metrics: []Metric{{Name: "metric", Value: 1.5, Unit: "ms"}},
		Notes:   "a note",
	}
	out := r.Format()
	for _, want := range []string{"EX — Example", "paper claim: something holds", "metric", "1.500 ms", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestSortMetrics(t *testing.T) {
	ms := []Metric{{Name: "b"}, {Name: "a"}, {Name: "c"}}
	SortMetrics(ms)
	if ms[0].Name != "a" || ms[2].Name != "c" {
		t.Errorf("SortMetrics = %+v", ms)
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(1, 0) != 0 {
		t.Errorf("ratio with zero denominator should be 0")
	}
	if ratio(1, 2) != 0.5 {
		t.Errorf("ratio(1,2) = %v", ratio(1, 2))
	}
	if msPer(0, 0) != 0 {
		t.Errorf("msPer with zero count should be 0")
	}
}
