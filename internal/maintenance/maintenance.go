// Package maintenance implements the CQMS Query Maintenance component
// (Figure 4, §4.4): the background process that keeps the Query Storage
// up-to-date as the underlying database evolves. It identifies queries
// invalidated by schema changes, attempts automatic repair for renames,
// flags runtime statistics that have become stale, selectively re-executes
// queries to refresh statistics, and maintains a per-query quality score.
package maintenance

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Config controls maintenance behaviour.
type Config struct {
	// AttemptRepair enables automatic rewriting of queries broken by RENAME
	// schema changes.
	AttemptRepair bool
	// RefreshStaleStats enables re-executing flagged queries to refresh their
	// runtime statistics.
	RefreshStaleStats bool
	// MaxRefreshPerScan bounds how many stale queries are re-executed per
	// scan (the paper notes that re-running everything is "overly
	// expensive"); the most popular/recent queries are refreshed first.
	MaxRefreshPerScan int
	// StaleRowDeltaRatio is the relative change in a table's row count beyond
	// which statistics of queries over that table are considered stale.
	StaleRowDeltaRatio float64
}

// DefaultConfig returns the default maintenance configuration.
func DefaultConfig() Config {
	return Config{
		AttemptRepair:      true,
		RefreshStaleStats:  true,
		MaxRefreshPerScan:  50,
		StaleRowDeltaRatio: 0.25,
	}
}

// Invalidation describes one query flagged as broken by schema evolution.
type Invalidation struct {
	ID     storage.QueryID
	Reason string
}

// Repair describes one automatically repaired query.
type Repair struct {
	ID      storage.QueryID
	OldText string
	NewText string
	Change  string
}

// Report summarises one maintenance scan.
type Report struct {
	Checked        int
	Invalidated    []Invalidation
	Repaired       []Repair
	StatsFlagged   []storage.QueryID
	StatsRefreshed []storage.QueryID
	QualityScored  int
	Elapsed        time.Duration
}

// Maintainer runs maintenance scans over a store backed by an engine.
type Maintainer struct {
	eng   *engine.Engine
	store *storage.Store
	cfg   Config
	// lastRowCounts remembers per-table row counts from the previous scan to
	// detect data-distribution changes.
	lastRowCounts map[string]int
}

// New returns a maintainer.
func New(eng *engine.Engine, store *storage.Store, cfg Config) *Maintainer {
	return &Maintainer{eng: eng, store: store, cfg: cfg, lastRowCounts: map[string]int{}}
}

// Scan runs one full maintenance pass: schema-change validation (with
// optional repair), stale-statistics detection (with optional refresh) and
// quality scoring. It returns a report of everything it did.
func (m *Maintainer) Scan() (*Report, error) {
	start := time.Now()
	report := &Report{}
	admin := storage.Principal{Admin: true}
	records := m.store.Snapshot().Records(admin)
	report.Checked = len(records)

	schemas := m.eng.Catalog().Schemas()
	changes := m.eng.Catalog().Changes(0)

	currentCounts := make(map[string]int)
	for name := range schemas {
		if n, err := m.eng.Catalog().RowCount(name); err == nil {
			currentCounts[name] = n
		}
	}

	for _, rec := range records {
		if len(rec.Tables) == 0 {
			continue
		}
		// 1. Validity against the current schema.
		reason, repairable := validate(rec, schemas, changes)
		if reason != "" {
			if m.cfg.AttemptRepair && repairable != nil {
				if rep, err := m.tryRepair(rec, repairable, schemas); err == nil {
					report.Repaired = append(report.Repaired, *rep)
					continue
				}
			}
			if err := m.store.MarkInvalid(rec.ID, reason); err != nil {
				return nil, fmt.Errorf("maintenance: flagging query %d: %w", rec.ID, err)
			}
			report.Invalidated = append(report.Invalidated, Invalidation{ID: rec.ID, Reason: reason})
			continue
		}
		if !rec.Valid {
			// Previously flagged but now consistent again (e.g. the column
			// was re-added): clear the flag.
			if err := m.store.MarkValid(rec.ID); err != nil {
				return nil, err
			}
		}

		// 2. Staleness of runtime statistics: schema newer than the recorded
		// run, or the referenced tables' cardinalities changed materially.
		if m.isStale(rec, currentCounts) {
			if err := m.store.MarkStatsStale(rec.ID, true); err != nil {
				return nil, err
			}
			report.StatsFlagged = append(report.StatsFlagged, rec.ID)
		}

		// 3. Quality score.
		if err := m.store.SetQuality(rec.ID, QualityScore(rec)); err != nil {
			return nil, err
		}
		report.QualityScored++
	}

	// 4. Refresh statistics for (a bounded number of) stale queries.
	if m.cfg.RefreshStaleStats {
		refreshed, err := m.RefreshStats(m.cfg.MaxRefreshPerScan)
		if err != nil {
			return nil, err
		}
		report.StatsRefreshed = refreshed
	}

	m.lastRowCounts = currentCounts
	report.Elapsed = time.Since(start)
	return report, nil
}

// validate checks the query's referenced tables and columns against the
// current schema. It returns a human-readable reason when the query is
// broken, plus the schema change that broke it when that change is a rename
// (and hence repairable).
func validate(rec *storage.QueryRecord, schemas map[string]*engine.Schema, changes []engine.SchemaChange) (string, *engine.SchemaChange) {
	findSchema := func(table string) *engine.Schema {
		for name, s := range schemas {
			if strings.EqualFold(name, table) {
				return s
			}
		}
		return nil
	}
	for _, table := range rec.Tables {
		s := findSchema(table)
		if s == nil {
			if ch := findRename(changes, engine.ChangeRenameTable, table, ""); ch != nil {
				return fmt.Sprintf("table %s renamed to %s", table, ch.NewName), ch
			}
			return fmt.Sprintf("table %s no longer exists", table), nil
		}
		// Columns the query references on this table.
		for _, attr := range rec.Attributes {
			if !strings.EqualFold(attr.Rel, table) {
				continue
			}
			if s.ColumnIndex(attr.Attr) < 0 {
				if ch := findRename(changes, engine.ChangeRenameColumn, table, attr.Attr); ch != nil {
					return fmt.Sprintf("column %s.%s renamed to %s", table, attr.Attr, ch.NewName), ch
				}
				return fmt.Sprintf("column %s.%s no longer exists", table, attr.Attr), nil
			}
		}
	}
	return "", nil
}

// findRename locates the most recent rename change matching the missing
// table or column.
func findRename(changes []engine.SchemaChange, kind engine.SchemaChangeKind, table, column string) *engine.SchemaChange {
	for i := len(changes) - 1; i >= 0; i-- {
		ch := changes[i]
		if ch.Kind != kind {
			continue
		}
		switch kind {
		case engine.ChangeRenameTable:
			if strings.EqualFold(ch.Table, table) {
				return &ch
			}
		case engine.ChangeRenameColumn:
			if strings.EqualFold(ch.Table, table) && strings.EqualFold(ch.Column, column) {
				return &ch
			}
		}
	}
	return nil
}

// tryRepair rewrites the query for a rename change, verifies that the
// rewritten query parses and references only existing tables and columns,
// and replaces the stored text.
func (m *Maintainer) tryRepair(rec *storage.QueryRecord, ch *engine.SchemaChange, schemas map[string]*engine.Schema) (*Repair, error) {
	var newText string
	var err error
	switch ch.Kind {
	case engine.ChangeRenameTable:
		newText, err = RewriteTableName(rec.Text, ch.Table, ch.NewName)
	case engine.ChangeRenameColumn:
		newText, err = RewriteColumnName(rec.Text, ch.Table, ch.Column, ch.NewName)
	default:
		return nil, fmt.Errorf("maintenance: change %v is not repairable", ch.Kind)
	}
	if err != nil {
		return nil, err
	}
	updated, err := storage.NewRecordFromSQL(newText)
	if err != nil {
		return nil, err
	}
	// Validate the rewritten query against the current schema before
	// committing the repair.
	if reason, _ := validate(updated, schemas, nil); reason != "" {
		return nil, fmt.Errorf("maintenance: repair still invalid: %s", reason)
	}
	if err := m.store.ReplaceText(rec.ID, updated); err != nil {
		return nil, err
	}
	if err := m.store.MarkValid(rec.ID); err != nil {
		return nil, err
	}
	return &Repair{
		ID: rec.ID, OldText: rec.Text, NewText: newText,
		Change: fmt.Sprintf("%s %s -> %s", ch.Kind, ch.Table+nonEmptyDot(ch.Column), ch.NewName),
	}, nil
}

func nonEmptyDot(column string) string {
	if column == "" {
		return ""
	}
	return "." + column
}

// isStale decides whether the query's recorded runtime statistics should be
// refreshed: the schema has changed since the query ran, or the row count of
// a referenced table moved by more than StaleRowDeltaRatio since the last
// scan.
func (m *Maintainer) isStale(rec *storage.QueryRecord, currentCounts map[string]int) bool {
	if rec.StatsStale {
		return true
	}
	if rec.Stats.SchemaVersion < m.eng.Catalog().Version() {
		// Only consider it stale if one of its tables actually changed after
		// the query ran.
		for _, ch := range m.eng.Catalog().Changes(rec.Stats.SchemaVersion) {
			for _, t := range rec.Tables {
				if strings.EqualFold(ch.Table, t) {
					return true
				}
			}
		}
	}
	if m.cfg.StaleRowDeltaRatio > 0 {
		for _, t := range rec.Tables {
			prev, okPrev := m.lastRowCounts[t]
			cur, okCur := currentCounts[t]
			if !okPrev || !okCur || prev == 0 {
				continue
			}
			delta := float64(cur-prev) / float64(prev)
			if delta < 0 {
				delta = -delta
			}
			if delta > m.cfg.StaleRowDeltaRatio {
				return true
			}
		}
	}
	return false
}

// RefreshStats re-executes up to max stale queries (most recently issued
// first), updating their runtime statistics and output samples. It returns
// the IDs refreshed.
func (m *Maintainer) RefreshStats(max int) ([]storage.QueryID, error) {
	admin := storage.Principal{Admin: true}
	stale := m.store.StaleQueries()
	if max > 0 && len(stale) > max {
		// Most recent queries first: higher IDs are newer.
		stale = stale[len(stale)-max:]
	}
	var refreshed []storage.QueryID
	for _, id := range stale {
		rec, err := m.store.Get(id, admin)
		if err != nil {
			continue
		}
		res, execErr := m.eng.Execute(rec.Text)
		stats := storage.RuntimeStats{
			SchemaVersion: m.eng.Catalog().Version(),
			ExecutedAt:    time.Now(),
		}
		if execErr != nil {
			stats.Error = execErr.Error()
			if err := m.store.UpdateStats(id, stats); err != nil {
				return refreshed, err
			}
			if err := m.store.MarkInvalid(id, "re-execution failed: "+execErr.Error()); err != nil {
				return refreshed, err
			}
			continue
		}
		stats.ExecTime = res.Elapsed
		stats.ResultRows = res.Cardinality()
		stats.ResultColumns = len(res.Columns)
		if err := m.store.UpdateStats(id, stats); err != nil {
			return refreshed, err
		}
		refreshed = append(refreshed, id)
	}
	return refreshed, nil
}

// QualityScore computes the §4.4 query-quality measure in [0, 1]: valid,
// annotated, efficient queries with modest result sizes score highest.
func QualityScore(rec *storage.QueryRecord) float64 {
	score := 0.0
	if rec.Valid {
		score += 0.4
	}
	if len(rec.Annotations) > 0 {
		score += 0.2
	}
	if rec.Stats.Error == "" {
		score += 0.1
	}
	// Efficiency: 0.2 at instant execution decaying with runtime.
	ms := float64(rec.Stats.ExecTime.Milliseconds())
	score += 0.2 / (1 + ms/200)
	// Simplicity: fewer referenced tables is simpler.
	score += 0.1 / float64(1+len(rec.Tables))
	if score > 1 {
		score = 1
	}
	return score
}

// ---------------------------------------------------------------------------
// Query rewriting for repairs
// ---------------------------------------------------------------------------

// RewriteTableName renames every reference to oldName in the query to
// newName and returns the rewritten SQL text.
func RewriteTableName(queryText, oldName, newName string) (string, error) {
	stmt, err := sql.Parse(queryText)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("maintenance: only SELECT queries can be repaired")
	}
	rewriteSelectTables(sel, oldName, newName)
	return sel.SQL(), nil
}

func rewriteSelectTables(sel *sql.SelectStmt, oldName, newName string) {
	sql.WalkTableRefs(sel, func(t sql.TableRef) bool {
		if tn, ok := t.(*sql.TableName); ok && strings.EqualFold(tn.Name, oldName) {
			tn.Name = newName
		}
		return true
	})
	rewrite := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) bool {
			if c, ok := x.(*sql.ColumnRef); ok && strings.EqualFold(c.Table, oldName) {
				c.Table = newName
			}
			return true
		})
	}
	for _, item := range sel.Columns {
		rewrite(item.Expr)
	}
	rewrite(sel.Where)
	rewrite(sel.Having)
	for _, g := range sel.GroupBy {
		rewrite(g)
	}
	for _, o := range sel.OrderBy {
		rewrite(o.Expr)
	}
	for _, t := range sel.From {
		rewriteJoinQualifiers(t, rewrite)
	}
	for _, sub := range sql.Subqueries(sel) {
		rewriteSelectTables(sub, oldName, newName)
	}
}

// rewriteJoinQualifiers applies the rewrite function to every ON condition in
// a (possibly nested) join tree.
func rewriteJoinQualifiers(t sql.TableRef, rewrite func(sql.Expr)) {
	if j, ok := t.(*sql.JoinExpr); ok {
		rewriteJoinQualifiers(j.Left, rewrite)
		rewriteJoinQualifiers(j.Right, rewrite)
		rewrite(j.On)
	}
}

// RewriteColumnName renames references to table.oldCol (or unqualified oldCol
// when the query references only that table) to newCol.
func RewriteColumnName(queryText, table, oldCol, newCol string) (string, error) {
	stmt, err := sql.Parse(queryText)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return "", fmt.Errorf("maintenance: only SELECT queries can be repaired")
	}
	analysis := sql.Analyze(sel)
	aliasesOfTable := map[string]bool{strings.ToLower(table): true}
	for alias, base := range analysis.Aliases {
		if strings.EqualFold(base, table) {
			aliasesOfTable[strings.ToLower(alias)] = true
		}
	}
	singleTable := len(analysis.Tables) == 1 && strings.EqualFold(analysis.Tables[0], table)

	rewriteCols := func(sel *sql.SelectStmt) {
		rewrite := func(e sql.Expr) {
			sql.WalkExpr(e, func(x sql.Expr) bool {
				c, ok := x.(*sql.ColumnRef)
				if !ok || !strings.EqualFold(c.Name, oldCol) {
					return true
				}
				if c.Table == "" {
					if singleTable {
						c.Name = newCol
					}
					return true
				}
				if aliasesOfTable[strings.ToLower(c.Table)] {
					c.Name = newCol
				}
				return true
			})
		}
		for _, item := range sel.Columns {
			rewrite(item.Expr)
		}
		rewrite(sel.Where)
		rewrite(sel.Having)
		for _, g := range sel.GroupBy {
			rewrite(g)
		}
		for _, o := range sel.OrderBy {
			rewrite(o.Expr)
		}
		for _, t := range sel.From {
			if j, ok := t.(*sql.JoinExpr); ok {
				rewrite(j.On)
			}
		}
	}
	rewriteCols(sel)
	for _, sub := range sql.Subqueries(sel) {
		rewriteCols(sub)
	}
	return sel.SQL(), nil
}
