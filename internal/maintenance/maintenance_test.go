package maintenance

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/storage"
)

var admin = storage.Principal{Admin: true}

// fixture builds an engine with the lakes schema, a profiler and a set of
// logged queries.
func fixture(t testing.TB) (*engine.Engine, *storage.Store, *profiler.Profiler) {
	t.Helper()
	eng := engine.New()
	setup := []string{
		"CREATE TABLE WaterTemp (id INT, lake TEXT, loc_x INT, temp FLOAT)",
		"CREATE TABLE WaterSalinity (id INT, lake TEXT, loc_x INT, salinity FLOAT)",
		"CREATE TABLE CityLocations (city TEXT, state TEXT, loc_x INT)",
		"INSERT INTO WaterTemp VALUES (1, 'Lake Washington', 10, 14.5), (2, 'Lake Union', 11, 19.0)",
		"INSERT INTO WaterSalinity VALUES (1, 'Lake Washington', 10, 2.5)",
		"INSERT INTO CityLocations VALUES ('Seattle', 'WA', 10)",
	}
	for _, s := range setup {
		eng.MustExecute(s)
	}
	store := storage.NewStore()
	p := profiler.New(eng, store, profiler.DefaultConfig())
	submit := func(q string) {
		if _, err := p.Submit(profiler.Submission{User: "alice", Visibility: storage.VisibilityPublic, SQL: q}); err != nil {
			t.Fatalf("Submit(%q): %v", q, err)
		}
	}
	submit("SELECT temp FROM WaterTemp WHERE temp < 18")
	submit("SELECT lake, temp FROM WaterTemp ORDER BY temp")
	submit("SELECT salinity FROM WaterSalinity WHERE salinity > 2")
	submit("SELECT WaterTemp.temp, CityLocations.city FROM WaterTemp, CityLocations WHERE WaterTemp.loc_x = CityLocations.loc_x")
	return eng, store, p
}

func TestScanAllValid(t *testing.T) {
	eng, store, _ := fixture(t)
	m := New(eng, store, DefaultConfig())
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if report.Checked != 4 {
		t.Errorf("checked = %d, want 4", report.Checked)
	}
	if len(report.Invalidated) != 0 || len(report.Repaired) != 0 {
		t.Errorf("nothing should be invalid on an unchanged schema: %+v", report)
	}
	if report.QualityScored != 4 {
		t.Errorf("quality scored = %d, want 4", report.QualityScored)
	}
	// Quality scores persisted.
	for _, rec := range store.Snapshot().Records(admin) {
		if rec.QualityScore <= 0 {
			t.Errorf("query %d has no quality score", rec.ID)
		}
	}
}

func TestScanFlagsDroppedColumn(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("ALTER TABLE WaterSalinity DROP COLUMN salinity")
	m := New(eng, store, DefaultConfig())
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(report.Invalidated) != 1 {
		t.Fatalf("invalidated = %+v, want exactly the salinity query", report.Invalidated)
	}
	if !strings.Contains(report.Invalidated[0].Reason, "salinity") {
		t.Errorf("reason = %q", report.Invalidated[0].Reason)
	}
	invalid := store.InvalidQueries()
	if len(invalid) != 1 {
		t.Errorf("store invalid queries = %v", invalid)
	}
}

func TestScanFlagsDroppedTable(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("DROP TABLE CityLocations")
	m := New(eng, store, DefaultConfig())
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(report.Invalidated) != 1 {
		t.Fatalf("invalidated = %+v", report.Invalidated)
	}
	if !strings.Contains(report.Invalidated[0].Reason, "CityLocations") {
		t.Errorf("reason = %q", report.Invalidated[0].Reason)
	}
}

func TestScanRepairsRenamedColumn(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	m := New(eng, store, DefaultConfig())
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(report.Repaired) < 2 {
		t.Fatalf("repaired = %+v, want the two WaterTemp.temp queries", report.Repaired)
	}
	if len(report.Invalidated) != 0 {
		t.Errorf("renames should be repaired, not invalidated: %+v", report.Invalidated)
	}
	// The repaired queries now reference the new column and still execute.
	for _, rep := range report.Repaired {
		if !strings.Contains(rep.NewText, "temperature") {
			t.Errorf("repair text = %q", rep.NewText)
		}
		if _, err := eng.Execute(rep.NewText); err != nil {
			t.Errorf("repaired query does not execute: %v", err)
		}
	}
	for _, rec := range store.Snapshot().Records(admin) {
		if !rec.Valid {
			t.Errorf("query %d should be valid after repair", rec.ID)
		}
	}
}

func TestScanRepairsQueryOrderingByAlias(t *testing.T) {
	// Regression: a query ordering by a SELECT alias (ORDER BY avg_temp) must
	// be repairable after the underlying column is renamed; the alias must
	// not be mistaken for a dropped column.
	eng, store, p := fixture(t)
	out, err := p.Submit(profiler.Submission{
		User: "alice", Visibility: storage.VisibilityPublic,
		SQL: "SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake ORDER BY avg_temp DESC",
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.MustExecute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	report, err := New(eng, store, DefaultConfig()).Scan()
	if err != nil {
		t.Fatal(err)
	}
	repaired := false
	for _, rep := range report.Repaired {
		if rep.ID == out.QueryID {
			repaired = true
			if !strings.Contains(rep.NewText, "AVG(temperature)") || !strings.Contains(rep.NewText, "ORDER BY avg_temp") {
				t.Errorf("repair text = %q", rep.NewText)
			}
			if _, err := eng.Execute(rep.NewText); err != nil {
				t.Errorf("repaired query fails: %v", err)
			}
		}
	}
	if !repaired {
		t.Errorf("aliased query was not repaired; invalidated = %+v", report.Invalidated)
	}
}

func TestScanRepairsRenamedTable(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("ALTER TABLE WaterSalinity RENAME TO LakeSalinity")
	m := New(eng, store, DefaultConfig())
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(report.Repaired) != 1 {
		t.Fatalf("repaired = %+v, want the salinity query", report.Repaired)
	}
	if !strings.Contains(report.Repaired[0].NewText, "LakeSalinity") {
		t.Errorf("repair text = %q", report.Repaired[0].NewText)
	}
	if _, err := eng.Execute(report.Repaired[0].NewText); err != nil {
		t.Errorf("repaired query fails: %v", err)
	}
	// The store index follows the rename.
	if got := store.ByTable("LakeSalinity", admin); len(got) != 1 {
		t.Errorf("ByTable(LakeSalinity) = %d, want 1", len(got))
	}
}

func TestScanRepairDisabled(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature")
	cfg := DefaultConfig()
	cfg.AttemptRepair = false
	m := New(eng, store, cfg)
	report, err := m.Scan()
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(report.Repaired) != 0 {
		t.Errorf("repair disabled but repaired = %+v", report.Repaired)
	}
	if len(report.Invalidated) == 0 {
		t.Errorf("broken queries should be invalidated when repair is off")
	}
}

func TestStaleStatsFlaggingAndRefresh(t *testing.T) {
	eng, store, _ := fixture(t)
	m := New(eng, store, DefaultConfig())
	if _, err := m.Scan(); err != nil {
		t.Fatal(err)
	}
	// Grow WaterTemp by well over the 25% threshold.
	for i := 0; i < 10; i++ {
		eng.MustExecute("INSERT INTO WaterTemp VALUES (99, 'Bulk Lake', 50, 12.0)")
	}
	report, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.StatsFlagged) == 0 {
		t.Fatalf("no stats flagged after data growth")
	}
	if len(report.StatsRefreshed) == 0 {
		t.Fatalf("no stats refreshed")
	}
	// The refreshed statistics reflect the new data.
	for _, rec := range store.Snapshot().Records(admin) {
		if rec.Tables[0] == "WaterTemp" && len(rec.Tables) == 1 && strings.Contains(rec.Text, "ORDER BY") {
			if rec.Stats.ResultRows != 12 {
				t.Errorf("refreshed cardinality = %d, want 12", rec.Stats.ResultRows)
			}
		}
	}
	if len(store.StaleQueries()) != 0 {
		t.Errorf("stale flags should be cleared after refresh")
	}
}

func TestStaleStatsAfterSchemaChangeOnReferencedTable(t *testing.T) {
	eng, store, _ := fixture(t)
	m := New(eng, store, DefaultConfig())
	if _, err := m.Scan(); err != nil {
		t.Fatal(err)
	}
	// Adding a column to WaterSalinity leaves its queries valid but makes
	// their stats stale; WaterTemp-only queries are unaffected.
	eng.MustExecute("ALTER TABLE WaterSalinity ADD COLUMN depth FLOAT")
	cfg := DefaultConfig()
	cfg.RefreshStaleStats = false
	m2 := New(eng, store, cfg)
	report, err := m2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.StatsFlagged) != 1 {
		t.Errorf("stats flagged = %v, want only the WaterSalinity query", report.StatsFlagged)
	}
}

func TestRefreshStatsBound(t *testing.T) {
	eng, store, _ := fixture(t)
	for _, id := range []storage.QueryID{1, 2, 3, 4} {
		if err := store.MarkStatsStale(id, true); err != nil {
			t.Fatal(err)
		}
	}
	m := New(eng, store, DefaultConfig())
	refreshed, err := m.RefreshStats(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed) != 2 {
		t.Errorf("refreshed = %d, want 2 (bounded)", len(refreshed))
	}
	// The most recent queries are refreshed first.
	if refreshed[0] != 3 || refreshed[1] != 4 {
		t.Errorf("refreshed IDs = %v, want the newest two", refreshed)
	}
}

func TestRefreshStatsMarksFailingQueriesInvalid(t *testing.T) {
	eng, store, _ := fixture(t)
	eng.MustExecute("DROP TABLE CityLocations")
	// Flag the CityLocations query as stale and refresh it: execution fails,
	// so it must be marked invalid.
	if err := store.MarkStatsStale(4, true); err != nil {
		t.Fatal(err)
	}
	m := New(eng, store, DefaultConfig())
	refreshed, err := m.RefreshStats(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(refreshed) != 0 {
		t.Errorf("failing query should not count as refreshed")
	}
	rec, _ := store.Get(4, admin)
	if rec.Valid {
		t.Errorf("failing query should be invalid after refresh attempt")
	}
}

func TestQualityScore(t *testing.T) {
	good := &storage.QueryRecord{
		Valid:       true,
		Annotations: []storage.Annotation{{Text: "documented"}},
		Tables:      []string{"WaterTemp"},
		Stats:       storage.RuntimeStats{ExecTime: time.Millisecond, ResultRows: 5},
	}
	bad := &storage.QueryRecord{
		Valid:  false,
		Tables: []string{"A", "B", "C", "D"},
		Stats:  storage.RuntimeStats{ExecTime: 10 * time.Second, Error: "boom"},
	}
	gs, bs := QualityScore(good), QualityScore(bad)
	if gs <= bs {
		t.Errorf("good quality %v should exceed bad quality %v", gs, bs)
	}
	if gs > 1 || bs < 0 {
		t.Errorf("scores out of range: %v %v", gs, bs)
	}
}

func TestRewriteTableName(t *testing.T) {
	got, err := RewriteTableName(
		"SELECT WaterSalinity.salinity FROM WaterSalinity WHERE WaterSalinity.salinity > 2",
		"WaterSalinity", "LakeSalinity")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, "WaterSalinity") || !strings.Contains(got, "LakeSalinity") {
		t.Errorf("rewrite = %q", got)
	}
	// Aliased references keep their alias.
	got, err = RewriteTableName("SELECT s.salinity FROM WaterSalinity s JOIN WaterTemp t ON s.loc_x = t.loc_x", "WaterSalinity", "LakeSalinity")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "LakeSalinity s") || !strings.Contains(got, "s.salinity") {
		t.Errorf("aliased rewrite = %q", got)
	}
	if _, err := RewriteTableName("not sql", "a", "b"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := RewriteTableName("DELETE FROM t", "t", "u"); err == nil {
		t.Error("expected non-SELECT error")
	}
}

func TestRewriteColumnName(t *testing.T) {
	// Unqualified references over a single table.
	got, err := RewriteColumnName("SELECT temp FROM WaterTemp WHERE temp < 18 ORDER BY temp", "WaterTemp", "temp", "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(got, " temp ") || !strings.Contains(got, "temperature") {
		t.Errorf("rewrite = %q", got)
	}
	// Alias-qualified references.
	got, err = RewriteColumnName("SELECT t.temp FROM WaterTemp t, WaterSalinity s WHERE t.temp < 18 AND s.loc_x = t.loc_x", "WaterTemp", "temp", "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "t.temperature") {
		t.Errorf("aliased column rewrite = %q", got)
	}
	// A same-named column of a different table is left alone.
	got, err = RewriteColumnName("SELECT t.loc_x, s.loc_x FROM WaterTemp t, WaterSalinity s", "WaterTemp", "loc_x", "grid_x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "t.grid_x") || !strings.Contains(got, "s.loc_x") {
		t.Errorf("selective column rewrite = %q", got)
	}
}
