// Package metaquery implements the CQMS Meta-query Executor (Figure 4): the
// online component that answers queries about queries. It supports the four
// meta-querying paradigms of §2.2 and §4.2:
//
//   - keyword and substring search over query text and annotations,
//   - query-by-feature: SQL meta-queries over the Figure 1 feature relations,
//     including automatic generation of such meta-queries from a partially
//     written query,
//   - query-by-parse-tree: conditions on the structure of logged queries,
//   - query-by-data: conditions on query outputs (positive/negative example
//     tuples), and
//   - kNN similarity queries used by the Assisted Interaction Mode.
//
// All operations enforce the storage layer's access-control rules.
package metaquery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/miner"
	"repro/internal/sql"
	"repro/internal/storage"
)

// ErrNoQIDColumn is returned by SQLMetaQuery when the meta-query result does
// not include a qid column to join back to stored queries.
var ErrNoQIDColumn = errors.New("metaquery: meta-query result has no qid column")

// Match is one meta-query result: a stored query, a relevance score in
// [0, 1] and a short explanation of why it matched. The record is the
// store's shared immutable version and must be treated as read-only; use
// Record.Clone for an owned copy.
type Match struct {
	Record *storage.QueryRecord
	Score  float64
	Why    string
}

// Executor answers meta-queries over a query store.
type Executor struct {
	store   *storage.Store
	weights miner.CompositeWeights
}

// New returns an executor over the store using the default composite
// similarity weights for kNN queries.
func New(store *storage.Store) *Executor {
	return &Executor{store: store, weights: miner.DefaultWeights()}
}

// SetWeights overrides the composite similarity weights used by KNN.
func (x *Executor) SetWeights(w miner.CompositeWeights) { x.weights = w }

// withCtx makes a scan callback abort soon after the requesting client goes
// away; see storage.ScanWithContext. Callers inspect ctx.Err() afterwards to
// distinguish an aborted scan from an exhausted one.
func withCtx(ctx context.Context, fn func(*storage.QueryRecord) bool) func(*storage.QueryRecord) bool {
	return storage.ScanWithContext(ctx, fn)
}

// ---------------------------------------------------------------------------
// Keyword and substring search
// ---------------------------------------------------------------------------

// Keyword returns the visible queries whose text or annotations contain every
// given keyword (case-insensitive). The score is the fraction of matched
// keywords weighted towards annotation hits. A cancelled context aborts the
// scan and returns ctx.Err().
func (x *Executor) Keyword(ctx context.Context, p storage.Principal, keywords ...string) ([]Match, error) {
	if len(keywords) == 0 {
		return nil, nil
	}
	lowered := make([]string, len(keywords))
	for i, k := range keywords {
		lowered[i] = strings.ToLower(k)
	}
	var out []Match
	x.store.Snapshot().Scan(p, withCtx(ctx, func(rec *storage.QueryRecord) bool {
		text := rec.LowerText()
		var ann string
		if len(rec.Annotations) > 0 {
			var annText strings.Builder
			for _, a := range rec.Annotations {
				annText.WriteString(strings.ToLower(a.Text))
				annText.WriteString(" ")
			}
			ann = annText.String()
		}
		matched := 0
		annotationHits := 0
		for _, k := range lowered {
			inText := strings.Contains(text, k)
			inAnn := strings.Contains(ann, k)
			if inText || inAnn {
				matched++
			}
			if inAnn {
				annotationHits++
			}
		}
		if matched != len(lowered) {
			return true
		}
		score := 0.8 + 0.2*float64(annotationHits)/float64(len(lowered))
		out = append(out, Match{Record: rec, Score: score, Why: "keywords: " + strings.Join(keywords, ", ")})
		return true
	}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	SortMatches(out)
	return out, nil
}

// Substring returns the visible queries whose canonical text contains the
// given substring (case-insensitive), in insertion order.
func (x *Executor) Substring(ctx context.Context, p storage.Principal, substr string) ([]Match, error) {
	needle := strings.ToLower(substr)
	var out []Match
	x.store.Snapshot().Scan(p, withCtx(ctx, func(rec *storage.QueryRecord) bool {
		if strings.Contains(rec.LowerCanonical(), needle) ||
			strings.Contains(rec.LowerText(), needle) {
			out = append(out, Match{Record: rec, Score: 1, Why: "substring: " + substr})
		}
		return true
	}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Query-by-feature: SQL meta-queries over the feature relations
// ---------------------------------------------------------------------------

// SQLMetaQuery materialises the feature relations visible to the principal
// and executes the given SQL meta-query (e.g. the query of Figure 1) against
// them. If the result contains a qid column, the corresponding stored
// queries are returned as matches alongside the raw result.
func (x *Executor) SQLMetaQuery(ctx context.Context, p storage.Principal, metaSQL string) (*engine.Result, []Match, error) {
	eng, err := x.store.MaterializeFeatureRelations(p)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res, err := eng.Execute(metaSQL)
	if err != nil {
		return nil, nil, fmt.Errorf("metaquery: executing meta-query: %w", err)
	}
	qidCol := -1
	for i, c := range res.Columns {
		if strings.EqualFold(c, "qid") {
			qidCol = i
			break
		}
	}
	if qidCol < 0 {
		return res, nil, ErrNoQIDColumn
	}
	seen := make(map[storage.QueryID]bool)
	var matches []Match
	view := x.store.Snapshot()
	for _, row := range res.Rows {
		v := row[qidCol]
		if v.Type != engine.TypeInt {
			continue
		}
		id := storage.QueryID(v.Int)
		if seen[id] {
			continue
		}
		seen[id] = true
		rec, err := view.Get(id, p)
		if err != nil {
			continue
		}
		matches = append(matches, Match{Record: rec, Score: 1, Why: "feature meta-query"})
	}
	return res, matches, nil
}

// GenerateMetaQuery builds a Figure 1-style SQL meta-query from a partially
// written user query (§2.2: "the CQMS could automatically generate these
// statements from partially written queries"). The partial query need not
// parse; table names are taken from the FROM clause tokens and attribute
// names from identifiers appearing elsewhere.
func GenerateMetaQuery(partialSQL string) (string, error) {
	tables, attrs := extractPartialFeatures(partialSQL)
	if len(tables) == 0 && len(attrs) == 0 {
		return "", fmt.Errorf("metaquery: no tables or attributes found in partial query")
	}
	var (
		from  []string
		where []string
	)
	from = append(from, storage.RelQueries+" Q")
	for i, t := range tables {
		alias := fmt.Sprintf("D%d", i+1)
		from = append(from, storage.RelDataSources+" "+alias)
		where = append(where, fmt.Sprintf("Q.qid = %s.qid", alias))
		where = append(where, fmt.Sprintf("%s.relName = '%s'", alias, escapeSQLString(t)))
	}
	for i, a := range attrs {
		alias := fmt.Sprintf("A%d", i+1)
		from = append(from, storage.RelAttributes+" "+alias)
		where = append(where, fmt.Sprintf("Q.qid = %s.qid", alias))
		where = append(where, fmt.Sprintf("%s.attrName = '%s'", alias, escapeSQLString(a)))
	}
	query := "SELECT DISTINCT Q.qid, Q.qText FROM " + strings.Join(from, ", ")
	if len(where) > 0 {
		query += " WHERE " + strings.Join(where, " AND ")
	}
	return query, nil
}

// escapeSQLString doubles single quotes for inclusion in a SQL literal.
func escapeSQLString(s string) string { return strings.ReplaceAll(s, "'", "''") }

// extractPartialFeatures tokenises a possibly-incomplete query and heuristically
// extracts table names (identifiers in the FROM clause) and attribute names
// (identifiers in SELECT/WHERE/GROUP BY clauses).
func extractPartialFeatures(partial string) (tables, attrs []string) {
	toks, err := sql.Tokenize(partial)
	if err != nil {
		return nil, nil
	}
	clause := ""
	seenT := make(map[string]bool)
	seenA := make(map[string]bool)
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == sql.TokenKeyword {
			switch t.Text {
			case "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER":
				clause = t.Text
			}
			continue
		}
		if t.Kind != sql.TokenIdent && t.Kind != sql.TokenQuotedIdent {
			continue
		}
		// Qualified references a.b: the qualifier may be an alias, the second
		// part is an attribute.
		if i+2 < len(toks) && toks[i+1].Kind == sql.TokenDot &&
			(toks[i+2].Kind == sql.TokenIdent || toks[i+2].Kind == sql.TokenQuotedIdent) {
			attr := toks[i+2].Text
			if !seenA[attr] {
				seenA[attr] = true
				attrs = append(attrs, attr)
			}
			i += 2
			continue
		}
		switch clause {
		case "FROM":
			// Skip alias tokens: an identifier immediately following another
			// identifier in the FROM clause is an alias.
			if i > 0 && (toks[i-1].Kind == sql.TokenIdent || toks[i-1].Kind == sql.TokenQuotedIdent) {
				continue
			}
			if !seenT[t.Text] {
				seenT[t.Text] = true
				tables = append(tables, t.Text)
			}
		case "SELECT", "WHERE", "GROUP", "HAVING", "ORDER":
			if !seenA[t.Text] {
				seenA[t.Text] = true
				attrs = append(attrs, t.Text)
			}
		}
	}
	return tables, attrs
}

// ByPartialQuery auto-generates a feature meta-query from the partial query
// text and executes it, returning the matching stored queries.
func (x *Executor) ByPartialQuery(ctx context.Context, p storage.Principal, partialSQL string) ([]Match, error) {
	meta, err := GenerateMetaQuery(partialSQL)
	if err != nil {
		return nil, err
	}
	_, matches, err := x.SQLMetaQuery(ctx, p, meta)
	if err != nil && !errors.Is(err, ErrNoQIDColumn) {
		return nil, err
	}
	for i := range matches {
		matches[i].Why = "auto-generated feature meta-query"
	}
	return matches, nil
}

// ---------------------------------------------------------------------------
// Query-by-parse-tree: structural conditions
// ---------------------------------------------------------------------------

// StructuralCondition expresses conditions on the structure of logged
// queries (query-by-parse-tree, §2.2). Zero values mean "no condition".
type StructuralCondition struct {
	// RequireTables: every listed table must appear in the query's FROM.
	RequireTables []string
	// RequireJoinBetween: the query must join the two listed relations.
	RequireJoinBetween [2]string
	// RequirePredicateOn: the query must have a selection predicate on
	// rel.attr (any operator/constant).
	RequirePredicateOn [2]string
	// RequireAggregate: the query must use the given aggregate function.
	RequireAggregate string
	// RequireGroupBy: the query must group by the given column.
	RequireGroupBy string
	// RequireNested: the query must contain a nested sub-query.
	RequireNested bool
	// MinTables is the minimum number of distinct relations referenced.
	MinTables int
	// MaxResultRows, when > 0, requires the logged result cardinality to be
	// at most this value ("small result set", §1).
	MaxResultRows int
	// MaxExecTimeMillis, when > 0, requires the logged execution time to be
	// at most this many milliseconds ("fast execution time", §1).
	MaxExecTimeMillis int
}

// ByStructure returns the visible queries satisfying every condition.
func (x *Executor) ByStructure(ctx context.Context, p storage.Principal, cond StructuralCondition) ([]Match, error) {
	var out []Match
	x.store.Snapshot().Scan(p, withCtx(ctx, func(rec *storage.QueryRecord) bool {
		why, ok := matchStructure(rec, cond)
		if ok {
			out = append(out, Match{Record: rec, Score: 1, Why: why})
		}
		return true
	}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func matchStructure(rec *storage.QueryRecord, cond StructuralCondition) (string, bool) {
	var reasons []string
	hasTable := func(name string) bool {
		for _, t := range rec.Tables {
			if strings.EqualFold(t, name) {
				return true
			}
		}
		return false
	}
	for _, t := range cond.RequireTables {
		if !hasTable(t) {
			return "", false
		}
	}
	if len(cond.RequireTables) > 0 {
		reasons = append(reasons, "tables "+strings.Join(cond.RequireTables, ","))
	}
	if cond.RequireJoinBetween[0] != "" && cond.RequireJoinBetween[1] != "" {
		found := false
		for _, pr := range rec.Predicates {
			if !pr.IsJoin {
				continue
			}
			a, b := pr.Rel, pr.RightRel
			if (strings.EqualFold(a, cond.RequireJoinBetween[0]) && strings.EqualFold(b, cond.RequireJoinBetween[1])) ||
				(strings.EqualFold(a, cond.RequireJoinBetween[1]) && strings.EqualFold(b, cond.RequireJoinBetween[0])) {
				found = true
				break
			}
		}
		if !found {
			return "", false
		}
		reasons = append(reasons, "join "+cond.RequireJoinBetween[0]+"-"+cond.RequireJoinBetween[1])
	}
	if cond.RequirePredicateOn[1] != "" {
		found := false
		for _, pr := range rec.Predicates {
			if pr.IsJoin {
				continue
			}
			if strings.EqualFold(pr.Attr, cond.RequirePredicateOn[1]) &&
				(cond.RequirePredicateOn[0] == "" || strings.EqualFold(pr.Rel, cond.RequirePredicateOn[0])) {
				found = true
				break
			}
		}
		if !found {
			return "", false
		}
		reasons = append(reasons, "predicate on "+cond.RequirePredicateOn[0]+"."+cond.RequirePredicateOn[1])
	}
	if cond.RequireAggregate != "" {
		found := false
		for _, a := range rec.Aggregates {
			if strings.EqualFold(a, cond.RequireAggregate) {
				found = true
				break
			}
		}
		if !found {
			return "", false
		}
		reasons = append(reasons, "aggregate "+cond.RequireAggregate)
	}
	if cond.RequireGroupBy != "" {
		found := false
		for _, g := range rec.GroupBy {
			if strings.EqualFold(g, cond.RequireGroupBy) || strings.HasSuffix(strings.ToLower(g), "."+strings.ToLower(cond.RequireGroupBy)) {
				found = true
				break
			}
		}
		if !found {
			return "", false
		}
		reasons = append(reasons, "group by "+cond.RequireGroupBy)
	}
	if cond.RequireNested {
		stmt, err := sql.Parse(rec.Text)
		if err != nil {
			return "", false
		}
		sel, ok := stmt.(*sql.SelectStmt)
		if !ok || len(sql.Subqueries(sel)) == 0 {
			return "", false
		}
		reasons = append(reasons, "nested")
	}
	if cond.MinTables > 0 && len(rec.Tables) < cond.MinTables {
		return "", false
	}
	if cond.MaxResultRows > 0 {
		if rec.Stats.ResultRows > cond.MaxResultRows {
			return "", false
		}
		reasons = append(reasons, fmt.Sprintf("result rows <= %d", cond.MaxResultRows))
	}
	if cond.MaxExecTimeMillis > 0 {
		if rec.Stats.ExecTime.Milliseconds() > int64(cond.MaxExecTimeMillis) {
			return "", false
		}
		reasons = append(reasons, fmt.Sprintf("exec time <= %dms", cond.MaxExecTimeMillis))
	}
	return strings.Join(reasons, "; "), true
}

// ---------------------------------------------------------------------------
// Query-by-data
// ---------------------------------------------------------------------------

// ByData implements the query-by-data paradigm (§2.2): the user names values
// that should appear (include) and not appear (exclude) in a query's output;
// the executor returns logged queries whose output samples separate those
// examples. Queries without output samples never match.
func (x *Executor) ByData(ctx context.Context, p storage.Principal, include, exclude []string) ([]Match, error) {
	var out []Match
	x.store.Snapshot().Scan(p, withCtx(ctx, func(rec *storage.QueryRecord) bool {
		if rec.Sample == nil {
			return true
		}
		for _, want := range include {
			if !sampleContains(rec.Sample, want) {
				return true
			}
		}
		for _, not := range exclude {
			if sampleContains(rec.Sample, not) {
				return true
			}
		}
		why := fmt.Sprintf("output includes %v, excludes %v", include, exclude)
		out = append(out, Match{Record: rec, Score: 1, Why: why})
		return true
	}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func sampleContains(s *storage.OutputSample, value string) bool {
	needle := strings.ToLower(value)
	for _, row := range s.Rows {
		for _, cell := range row {
			if strings.ToLower(cell) == needle {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// kNN similarity queries
// ---------------------------------------------------------------------------

// KNN returns the k logged queries most similar to the given query text under
// the executor's composite similarity, visible to the principal. The query
// text must parse.
func (x *Executor) KNN(ctx context.Context, p storage.Principal, queryText string, k int) ([]Match, error) {
	probe, err := storage.NewRecordFromSQL(queryText)
	if err != nil {
		return nil, err
	}
	return x.knnRecord(ctx, p, probe, k, 0)
}

// KNNExcluding is KNN but skips the query with the given ID (used when
// recommending similar queries to one already logged).
func (x *Executor) KNNExcluding(ctx context.Context, p storage.Principal, probe *storage.QueryRecord, k int, exclude storage.QueryID) ([]Match, error) {
	return x.knnRecord(ctx, p, probe, k, exclude)
}

func (x *Executor) knnRecord(ctx context.Context, p storage.Principal, probe *storage.QueryRecord, k int, exclude storage.QueryID) ([]Match, error) {
	var out []Match
	x.store.Snapshot().Scan(p, withCtx(ctx, func(rec *storage.QueryRecord) bool {
		if rec.ID == exclude {
			return true
		}
		score := miner.CompositeSimilarity(x.weights, probe, rec)
		if score <= 0 {
			return true
		}
		out = append(out, Match{Record: rec, Score: score, Why: "similar query"})
		return true
	}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	SortMatches(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// SortMatches sorts by descending score, breaking ties by ascending query ID.
// The order is deterministic, which the HTTP layer relies on for stable
// cursor pagination over ranked results.
func SortMatches(matches []Match) {
	sort.SliceStable(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Record.ID < matches[j].Record.ID
	})
}
