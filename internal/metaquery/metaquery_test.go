package metaquery

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

// testCtx is the context every call in these tests runs under.
var testCtx = context.Background()

// must returns an unwrapper for two-valued search results that fails the
// test on error, so call sites stay one-liners.
func must(t *testing.T) func([]Match, error) []Match {
	return func(matches []Match, err error) []Match {
		t.Helper()
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		return matches
	}
}

var (
	admin = storage.Principal{Admin: true}
	alice = storage.Principal{User: "alice", Groups: []string{"limnology"}}
	carol = storage.Principal{User: "carol", Groups: []string{"astro"}}
)

func put(t testing.TB, s *storage.Store, text, user string, vis storage.Visibility) storage.QueryID {
	t.Helper()
	rec, err := storage.NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
	}
	rec.User = user
	rec.Group = "limnology"
	rec.Visibility = vis
	rec.IssuedAt = time.Date(2009, 1, 5, 12, 0, 0, 0, time.UTC)
	return s.Put(rec)
}

func newFixture(t testing.TB) (*Executor, *storage.Store, map[string]storage.QueryID) {
	t.Helper()
	s := storage.NewStore()
	ids := map[string]storage.QueryID{}
	ids["correlate"] = put(t, s,
		"SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18",
		"alice", storage.VisibilityPublic)
	ids["correlate2"] = put(t, s,
		"SELECT s.salinity, t.temp FROM WaterSalinity s JOIN WaterTemp t ON s.loc_x = t.loc_x WHERE s.depth > 5",
		"bob", storage.VisibilityPublic)
	ids["tempOnly"] = put(t, s, "SELECT temp FROM WaterTemp WHERE temp > 20", "alice", storage.VisibilityPublic)
	ids["cities"] = put(t, s, "SELECT city FROM CityLocations WHERE state = 'WA'", "bob", storage.VisibilityPublic)
	ids["agg"] = put(t, s, "SELECT lake, AVG(temp) FROM WaterTemp GROUP BY lake", "alice", storage.VisibilityPublic)
	ids["nested"] = put(t, s, "SELECT lake FROM WaterTemp WHERE temp > (SELECT AVG(temp) FROM WaterTemp)", "bob", storage.VisibilityPublic)
	ids["private"] = put(t, s, "SELECT secret FROM PrivateNotes", "alice", storage.VisibilityPrivate)

	if err := s.Annotate(ids["correlate"], storage.Principal{User: "alice"}, storage.Annotation{
		Text: "find temp and salinity of Seattle lakes",
	}); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	return New(s), s, ids
}

func matchIDs(matches []Match) map[storage.QueryID]bool {
	out := make(map[storage.QueryID]bool)
	for _, m := range matches {
		out[m.Record.ID] = true
	}
	return out
}

func TestKeywordSearch(t *testing.T) {
	x, _, ids := newFixture(t)
	matches := must(t)(x.Keyword(testCtx, admin, "salinity"))
	got := matchIDs(matches)
	if !got[ids["correlate"]] || !got[ids["correlate2"]] {
		t.Errorf("keyword search missing correlation queries: %v", got)
	}
	if got[ids["cities"]] {
		t.Errorf("keyword search should not match the cities query")
	}
	// Multiple keywords must all match; annotations count.
	matches = must(t)(x.Keyword(testCtx, admin, "Seattle", "salinity"))
	got = matchIDs(matches)
	if len(got) != 1 || !got[ids["correlate"]] {
		t.Errorf("annotation keyword search = %v, want only the annotated query", got)
	}
	// Annotation hits rank higher than text-only hits.
	matches = must(t)(x.Keyword(testCtx, admin, "salinity"))
	if matches[0].Record.ID != ids["correlate"] {
		t.Errorf("annotated query should rank first, got %d", matches[0].Record.ID)
	}
	if len(must(t)(x.Keyword(testCtx, admin))) != 0 {
		t.Errorf("no keywords should return no matches")
	}
}

func TestSubstringSearch(t *testing.T) {
	x, _, ids := newFixture(t)
	matches := must(t)(x.Substring(testCtx, admin, "state = 'wa'"))
	got := matchIDs(matches)
	if len(got) != 1 || !got[ids["cities"]] {
		t.Errorf("substring search = %v", got)
	}
}

func TestSearchRespectsAccessControl(t *testing.T) {
	x, _, ids := newFixture(t)
	matches := must(t)(x.Keyword(testCtx, carol, "secret"))
	if len(matches) != 0 {
		t.Errorf("carol should not find alice's private query")
	}
	matches = must(t)(x.Keyword(testCtx, alice, "secret"))
	if got := matchIDs(matches); !got[ids["private"]] {
		t.Errorf("alice should find her own private query")
	}
}

func TestSQLMetaQueryFigure1(t *testing.T) {
	x, _, ids := newFixture(t)
	metaSQL := `SELECT Q.qid, Q.qText
		FROM Queries Q, Attributes A1, Attributes A2
		WHERE Q.qid = A1.qid AND Q.qid = A2.qid
		AND A1.attrName = 'salinity' AND A1.relName = 'WaterSalinity'
		AND A2.attrName = 'temp' AND A2.relName = 'WaterTemp'`
	res, matches, err := x.SQLMetaQuery(testCtx, admin, metaSQL)
	if err != nil {
		t.Fatalf("SQLMetaQuery: %v", err)
	}
	if res == nil || len(res.Rows) == 0 {
		t.Fatalf("no raw rows")
	}
	got := matchIDs(matches)
	if len(got) != 2 || !got[ids["correlate"]] || !got[ids["correlate2"]] {
		t.Errorf("Figure 1 meta-query = %v, want the two correlation queries", got)
	}
}

func TestSQLMetaQueryWithoutQID(t *testing.T) {
	x, _, _ := newFixture(t)
	res, matches, err := x.SQLMetaQuery(testCtx, admin, "SELECT COUNT(*) FROM Queries")
	if !errors.Is(err, ErrNoQIDColumn) {
		t.Fatalf("err = %v, want ErrNoQIDColumn", err)
	}
	if res == nil || len(matches) != 0 {
		t.Errorf("raw result should still be returned")
	}
	if res.Rows[0][0].Int != 7 {
		t.Errorf("count = %v, want 7", res.Rows[0][0])
	}
}

func TestSQLMetaQueryInvalidSQL(t *testing.T) {
	x, _, _ := newFixture(t)
	if _, _, err := x.SQLMetaQuery(testCtx, admin, "SELEKT garbage"); err == nil {
		t.Error("expected error for invalid meta-query")
	}
}

func TestGenerateMetaQueryFromPartial(t *testing.T) {
	// The §2.2 example: the user has typed only the FROM clause.
	meta, err := GenerateMetaQuery("SELECT FROM WaterSalinity, WaterTemp")
	if err != nil {
		t.Fatalf("GenerateMetaQuery: %v", err)
	}
	for _, want := range []string{"DataSources", "relName = 'WaterSalinity'", "relName = 'WaterTemp'", "Q.qid"} {
		if !strings.Contains(meta, want) {
			t.Errorf("generated meta-query missing %q:\n%s", want, meta)
		}
	}
}

func TestGenerateMetaQueryEmpty(t *testing.T) {
	if _, err := GenerateMetaQuery("SELECT"); err == nil {
		t.Error("expected error for contentless partial query")
	}
}

func TestByPartialQueryEndToEnd(t *testing.T) {
	x, _, ids := newFixture(t)
	matches, err := x.ByPartialQuery(testCtx, admin, "SELECT FROM WaterSalinity, WaterTemp")
	if err != nil {
		t.Fatalf("ByPartialQuery: %v", err)
	}
	got := matchIDs(matches)
	if !got[ids["correlate"]] || !got[ids["correlate2"]] {
		t.Errorf("partial-query search = %v, want correlation queries", got)
	}
	if got[ids["cities"]] {
		t.Errorf("partial-query search should not return the cities query")
	}
}

func TestByStructure(t *testing.T) {
	x, _, ids := newFixture(t)

	// Queries joining WaterSalinity and WaterTemp.
	matches := must(t)(x.ByStructure(testCtx, admin, StructuralCondition{RequireJoinBetween: [2]string{"WaterSalinity", "WaterTemp"}}))
	got := matchIDs(matches)
	if len(got) != 2 || !got[ids["correlate"]] || !got[ids["correlate2"]] {
		t.Errorf("join condition = %v", got)
	}

	// Queries with a selection predicate on temp.
	matches = must(t)(x.ByStructure(testCtx, admin, StructuralCondition{RequirePredicateOn: [2]string{"WaterTemp", "temp"}}))
	got = matchIDs(matches)
	if !got[ids["correlate"]] || !got[ids["tempOnly"]] {
		t.Errorf("predicate condition = %v", got)
	}

	// Aggregate + group-by condition.
	matches = must(t)(x.ByStructure(testCtx, admin, StructuralCondition{RequireAggregate: "AVG", RequireGroupBy: "lake"}))
	got = matchIDs(matches)
	if len(got) != 1 || !got[ids["agg"]] {
		t.Errorf("aggregate condition = %v", got)
	}

	// Nested queries.
	matches = must(t)(x.ByStructure(testCtx, admin, StructuralCondition{RequireNested: true}))
	got = matchIDs(matches)
	if len(got) != 1 || !got[ids["nested"]] {
		t.Errorf("nested condition = %v", got)
	}

	// Minimum table count.
	matches = must(t)(x.ByStructure(testCtx, admin, StructuralCondition{MinTables: 2}))
	got = matchIDs(matches)
	if !got[ids["correlate"]] || got[ids["tempOnly"]] {
		t.Errorf("min-tables condition = %v", got)
	}

	// Required tables.
	matches = must(t)(x.ByStructure(testCtx, admin, StructuralCondition{RequireTables: []string{"CityLocations"}}))
	got = matchIDs(matches)
	if len(got) != 1 || !got[ids["cities"]] {
		t.Errorf("require-tables condition = %v", got)
	}
}

func TestByStructureRuntimeConditions(t *testing.T) {
	x, s, ids := newFixture(t)
	if err := s.UpdateStats(ids["tempOnly"], storage.RuntimeStats{ExecTime: 2 * time.Millisecond, ResultRows: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateStats(ids["cities"], storage.RuntimeStats{ExecTime: 900 * time.Millisecond, ResultRows: 100000}); err != nil {
		t.Fatal(err)
	}
	matches := must(t)(x.ByStructure(testCtx, admin, StructuralCondition{MaxResultRows: 10, MaxExecTimeMillis: 10}))
	got := matchIDs(matches)
	if !got[ids["tempOnly"]] {
		t.Errorf("fast small query should match: %v", got)
	}
	if got[ids["cities"]] {
		t.Errorf("slow large query should not match")
	}
}

func TestByData(t *testing.T) {
	x, s, ids := newFixture(t)
	// Attach output samples: the paper's example distinguishes Lake
	// Washington from Lake Union via 'temp < 18'.
	coldID := put(t, s, "SELECT lake FROM WaterTemp WHERE temp < 18", "alice", storage.VisibilityPublic)
	warmID := put(t, s, "SELECT lake FROM WaterTemp WHERE temp < 25", "alice", storage.VisibilityPublic)
	attachSample(t, s, coldID, [][]string{{"Lake Washington"}, {"Lake Sammamish"}})
	attachSample(t, s, warmID, [][]string{{"Lake Washington"}, {"Lake Union"}, {"Lake Sammamish"}})

	matches := must(t)(x.ByData(testCtx, admin, []string{"Lake Washington"}, []string{"Lake Union"}))
	got := matchIDs(matches)
	if !got[coldID] {
		t.Errorf("query separating the examples should match")
	}
	if got[warmID] {
		t.Errorf("query including the excluded tuple should not match")
	}
	// Queries without samples never match.
	if got[ids["tempOnly"]] {
		t.Errorf("sample-less query should not match")
	}
}

// attachSample sets a record's output sample (samples are normally written
// by the profiler at submission time).
func attachSample(t testing.TB, s *storage.Store, id storage.QueryID, rows [][]string) {
	t.Helper()
	sample := &storage.OutputSample{Columns: []string{"lake"}, Rows: rows, TotalRows: len(rows)}
	if err := s.SetSample(id, sample); err != nil {
		t.Fatal(err)
	}
}

func TestKNN(t *testing.T) {
	x, _, ids := newFixture(t)
	matches, err := x.KNN(testCtx, admin, "SELECT temp FROM WaterTemp WHERE temp > 15", 3)
	if err != nil {
		t.Fatalf("KNN: %v", err)
	}
	if len(matches) == 0 {
		t.Fatal("no neighbours")
	}
	if len(matches) > 3 {
		t.Errorf("k not respected: %d", len(matches))
	}
	// The most similar logged query should be the WaterTemp-only one.
	if matches[0].Record.ID != ids["tempOnly"] {
		t.Errorf("nearest neighbour = %d, want %d", matches[0].Record.ID, ids["tempOnly"])
	}
	// Scores are sorted descending.
	for i := 1; i < len(matches); i++ {
		if matches[i].Score > matches[i-1].Score {
			t.Errorf("matches not sorted")
		}
	}
}

func TestKNNInvalidQuery(t *testing.T) {
	x, _, _ := newFixture(t)
	if _, err := x.KNN(testCtx, admin, "SELEKT broken", 3); err == nil {
		t.Error("expected parse error")
	}
}

func TestKNNExcluding(t *testing.T) {
	x, s, ids := newFixture(t)
	probe, err := s.Get(ids["tempOnly"], admin)
	if err != nil {
		t.Fatal(err)
	}
	matches := must(t)(x.KNNExcluding(testCtx, admin, probe, 5, ids["tempOnly"]))
	for _, m := range matches {
		if m.Record.ID == ids["tempOnly"] {
			t.Errorf("excluded query returned")
		}
	}
}

func TestKNNAccessControl(t *testing.T) {
	x, _, ids := newFixture(t)
	matches, err := x.KNN(testCtx, carol, "SELECT secret FROM PrivateNotes", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.Record.ID == ids["private"] {
			t.Errorf("private query leaked to carol via KNN")
		}
	}
}

// ---------------------------------------------------------------------------
// Context cancellation
// ---------------------------------------------------------------------------

// cancelAfterCtx is a context whose Err flips to Canceled after the first
// call, making mid-scan abort deterministic to observe.
type cancelAfterCtx struct {
	context.Context
	calls int
}

func (c *cancelAfterCtx) Err() error {
	c.calls++
	return context.Canceled
}

func TestCancelledContextAbortsInFlightScan(t *testing.T) {
	store := storage.NewStore()
	const total = 10 * storage.ScanCheckEvery
	for i := 0; i < total; i++ {
		rec, err := storage.NewRecordFromSQL("SELECT lake FROM WaterTemp")
		if err != nil {
			t.Fatal(err)
		}
		rec.User = "alice"
		rec.Visibility = storage.VisibilityPublic
		store.Put(rec)
	}

	// White box: the periodic check stops the scan at the first check
	// boundary, long before the log is exhausted.
	ctx := &cancelAfterCtx{Context: context.Background()}
	visited := 0
	store.Snapshot().Scan(admin, withCtx(ctx, func(*storage.QueryRecord) bool {
		visited++
		return true
	}))
	if visited >= total {
		t.Fatalf("scan visited all %d records despite cancellation", visited)
	}
	if visited > storage.ScanCheckEvery {
		t.Fatalf("scan visited %d records, want <= %d (one check interval)", visited, storage.ScanCheckEvery)
	}

	// Black box: every search method reports the cancellation instead of a
	// partial result.
	x := New(store)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Keyword(cancelled, admin, "lake"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Keyword on cancelled ctx: err = %v", err)
	}
	if _, err := x.Substring(cancelled, admin, "watertemp"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Substring on cancelled ctx: err = %v", err)
	}
	if _, err := x.KNN(cancelled, admin, "SELECT lake FROM WaterTemp", 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("KNN on cancelled ctx: err = %v", err)
	}
	if _, err := x.ByData(cancelled, admin, []string{"x"}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ByData on cancelled ctx: err = %v", err)
	}
	if _, _, err := x.SQLMetaQuery(cancelled, admin, "SELECT qid FROM Queries"); !errors.Is(err, context.Canceled) {
		t.Fatalf("SQLMetaQuery on cancelled ctx: err = %v", err)
	}
}
