package miner

import (
	"sort"
	"strings"
)

// Rule is one mined association rule over query features (§4.3): "queries
// containing the antecedent features also contain the consequent feature".
// The recommender turns these into context-aware completion suggestions, e.g.
// {table:WaterSalinity} => table:WaterTemp.
type Rule struct {
	Antecedent []string
	Consequent string
	Support    float64 // fraction of transactions containing antecedent ∪ consequent
	Confidence float64 // support(antecedent ∪ consequent) / support(antecedent)
	Lift       float64 // confidence / support(consequent)
}

// Key returns a canonical identity for the rule, used for deduplication in
// tests and incremental re-mining.
func (r Rule) Key() string {
	ant := append([]string(nil), r.Antecedent...)
	sort.Strings(ant)
	return strings.Join(ant, ",") + " => " + r.Consequent
}

// AssocConfig controls Apriori mining.
type AssocConfig struct {
	// MinSupport is the minimum fraction of transactions an itemset must
	// appear in.
	MinSupport float64
	// MinConfidence is the minimum confidence for emitted rules.
	MinConfidence float64
	// MaxItemsetSize bounds the size of mined itemsets (antecedent size is at
	// most MaxItemsetSize-1).
	MaxItemsetSize int
}

// DefaultAssocConfig returns thresholds suitable for exploratory query logs.
func DefaultAssocConfig() AssocConfig {
	return AssocConfig{MinSupport: 0.01, MinConfidence: 0.3, MaxItemsetSize: 3}
}

// itemset is a sorted, comma-joined set of items used as a map key.
func itemsetKey(items []string) string {
	s := append([]string(nil), items...)
	sort.Strings(s)
	return strings.Join(s, ",")
}

// MineAssociationRules runs Apriori over the transactions (each transaction
// is one query's feature set) and derives rules with a single-item
// consequent.
func MineAssociationRules(transactions [][]string, cfg AssocConfig) []Rule {
	counts := countItemsets(transactions, cfg)
	return rulesFromCounts(counts, len(transactions), cfg)
}

// countItemsets performs the level-wise Apriori candidate generation and
// counting, returning the support counts of all frequent itemsets up to
// MaxItemsetSize.
func countItemsets(transactions [][]string, cfg AssocConfig) map[string]int {
	n := len(transactions)
	if n == 0 {
		return map[string]int{}
	}
	minCount := int(cfg.MinSupport * float64(n))
	if minCount < 1 {
		minCount = 1
	}
	maxSize := cfg.MaxItemsetSize
	if maxSize < 2 {
		maxSize = 2
	}

	// Normalise transactions to sorted unique feature slices.
	normalized := make([][]string, n)
	for i, t := range transactions {
		seen := make(map[string]bool, len(t))
		var items []string
		for _, item := range t {
			if !seen[item] {
				seen[item] = true
				items = append(items, item)
			}
		}
		sort.Strings(items)
		normalized[i] = items
	}

	counts := make(map[string]int)

	// Level 1.
	level1 := make(map[string]int)
	for _, t := range normalized {
		for _, item := range t {
			level1[item]++
		}
	}
	var frequent [][]string
	for item, c := range level1 {
		if c >= minCount {
			counts[item] = c
			frequent = append(frequent, []string{item})
		}
	}
	sort.Slice(frequent, func(i, j int) bool { return frequent[i][0] < frequent[j][0] })

	// Levels 2..maxSize.
	prev := frequent
	for size := 2; size <= maxSize && len(prev) > 1; size++ {
		candidates := generateCandidates(prev)
		if len(candidates) == 0 {
			break
		}
		candCounts := make(map[string]int, len(candidates))
		candItems := make(map[string][]string, len(candidates))
		for _, c := range candidates {
			candItems[itemsetKey(c)] = c
		}
		for _, t := range normalized {
			tset := make(map[string]bool, len(t))
			for _, item := range t {
				tset[item] = true
			}
			for key, items := range candItems {
				contained := true
				for _, item := range items {
					if !tset[item] {
						contained = false
						break
					}
				}
				if contained {
					candCounts[key]++
				}
			}
		}
		var next [][]string
		for key, c := range candCounts {
			if c >= minCount {
				counts[key] = c
				next = append(next, candItems[key])
			}
		}
		sort.Slice(next, func(i, j int) bool { return itemsetKey(next[i]) < itemsetKey(next[j]) })
		prev = next
	}
	return counts
}

// generateCandidates joins frequent (k-1)-itemsets sharing a common prefix to
// produce k-item candidates (classic Apriori-gen, without the prune step —
// infrequent candidates are simply not counted as frequent later).
func generateCandidates(prev [][]string) [][]string {
	var out [][]string
	seen := make(map[string]bool)
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i], prev[j]
			if len(a) != len(b) {
				continue
			}
			// Join when all but the last item agree.
			match := true
			for k := 0; k < len(a)-1; k++ {
				if a[k] != b[k] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			cand := append(append([]string{}, a...), b[len(b)-1])
			sort.Strings(cand)
			key := itemsetKey(cand)
			if !seen[key] {
				seen[key] = true
				out = append(out, cand)
			}
		}
	}
	return out
}

// rulesFromCounts derives single-consequent rules from itemset support
// counts.
func rulesFromCounts(counts map[string]int, numTransactions int, cfg AssocConfig) []Rule {
	if numTransactions == 0 {
		return nil
	}
	var rules []Rule
	for key, count := range counts {
		items := strings.Split(key, ",")
		if len(items) < 2 {
			continue
		}
		support := float64(count) / float64(numTransactions)
		for i, consequent := range items {
			antecedent := make([]string, 0, len(items)-1)
			antecedent = append(antecedent, items[:i]...)
			antecedent = append(antecedent, items[i+1:]...)
			antCount, ok := counts[itemsetKey(antecedent)]
			if !ok || antCount == 0 {
				continue
			}
			conf := float64(count) / float64(antCount)
			if conf < cfg.MinConfidence {
				continue
			}
			consCount := counts[consequent]
			lift := 0.0
			if consCount > 0 {
				lift = conf / (float64(consCount) / float64(numTransactions))
			}
			rules = append(rules, Rule{
				Antecedent: antecedent,
				Consequent: consequent,
				Support:    support,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Key() < rules[j].Key()
	})
	return rules
}

// ---------------------------------------------------------------------------
// Incremental mining (§4.3: "incremental mining algorithms ... will likely be
// necessary considering the possibly rapid growth of the query log").
// ---------------------------------------------------------------------------

// IncrementalMiner maintains itemset counts as transactions arrive and can
// produce rules at any time without rescanning past transactions. To bound
// state it counts only itemsets up to MaxItemsetSize built from items that
// were frequent among the first warm-up batch (a standard candidate-freezing
// approximation; RulesExact is available for comparison in the E6 ablation).
type IncrementalMiner struct {
	cfg        AssocConfig
	counts     map[string]int
	numTx      int
	vocabulary map[string]bool // items eligible for multi-item counting
	warmupTx   [][]string
	warmupSize int
	frozen     bool
}

// NewIncrementalMiner returns an incremental miner that freezes its candidate
// vocabulary after warmupSize transactions.
func NewIncrementalMiner(cfg AssocConfig, warmupSize int) *IncrementalMiner {
	if warmupSize <= 0 {
		warmupSize = 100
	}
	return &IncrementalMiner{
		cfg:        cfg,
		counts:     make(map[string]int),
		vocabulary: make(map[string]bool),
		warmupSize: warmupSize,
	}
}

// Add ingests one transaction.
func (im *IncrementalMiner) Add(transaction []string) {
	im.numTx++
	if !im.frozen {
		im.warmupTx = append(im.warmupTx, transaction)
		if len(im.warmupTx) >= im.warmupSize {
			im.freeze()
		}
		return
	}
	im.count(transaction)
}

// NumTransactions returns how many transactions have been ingested.
func (im *IncrementalMiner) NumTransactions() int { return im.numTx }

// freeze mines the warm-up batch with full Apriori, fixes the vocabulary to
// the items appearing in frequent itemsets, and replays the warm-up
// transactions through the counting path.
func (im *IncrementalMiner) freeze() {
	im.frozen = true
	counts := countItemsets(im.warmupTx, im.cfg)
	for key := range counts {
		for _, item := range strings.Split(key, ",") {
			im.vocabulary[item] = true
		}
	}
	for _, t := range im.warmupTx {
		im.count(t)
	}
	im.warmupTx = nil
}

// count updates itemset counts for one transaction using only vocabulary
// items.
func (im *IncrementalMiner) count(transaction []string) {
	seen := make(map[string]bool)
	var items []string
	for _, item := range transaction {
		if seen[item] {
			continue
		}
		seen[item] = true
		// Singletons are always counted so new items can become visible in
		// Rules' support denominators after a re-freeze.
		im.counts[item]++
		if im.vocabulary[item] {
			items = append(items, item)
		}
	}
	sort.Strings(items)
	maxSize := im.cfg.MaxItemsetSize
	if maxSize < 2 {
		maxSize = 2
	}
	// Pairs.
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			im.counts[itemsetKey([]string{items[i], items[j]})]++
			if maxSize >= 3 {
				for k := j + 1; k < len(items); k++ {
					im.counts[itemsetKey([]string{items[i], items[j], items[k]})]++
				}
			}
		}
	}
}

// Rules derives association rules from the maintained counts. Before the
// warm-up completes it falls back to exact mining over the buffered
// transactions.
func (im *IncrementalMiner) Rules() []Rule {
	return im.snapshotRules()()
}

// snapshotRules copies the state rule derivation needs and returns a closure
// that performs the (comparatively expensive) derivation without touching the
// miner, so a caller that guards the miner with a lock can snapshot under it
// and derive outside it.
func (im *IncrementalMiner) snapshotRules() func() []Rule {
	cfg := im.cfg
	if !im.frozen {
		tx := make([][]string, len(im.warmupTx))
		copy(tx, im.warmupTx)
		return func() []Rule { return MineAssociationRules(tx, cfg) }
	}
	minCount := int(cfg.MinSupport * float64(im.numTx))
	if minCount < 1 {
		minCount = 1
	}
	filtered := make(map[string]int, len(im.counts))
	for key, c := range im.counts {
		if c >= minCount {
			filtered[key] = c
		}
	}
	numTx := im.numTx
	return func() []Rule { return rulesFromCounts(filtered, numTx, cfg) }
}
