package miner

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperTransactions models the paper's §2.3 example: CityLocations is the
// globally most popular table, but among queries that use WaterSalinity the
// most common co-occurring table is WaterTemp.
func paperTransactions() [][]string {
	var tx [][]string
	// 40 queries over CityLocations alone.
	for i := 0; i < 40; i++ {
		tx = append(tx, []string{"table:CityLocations", "col:CityLocations.city"})
	}
	// 25 queries joining WaterSalinity with WaterTemp.
	for i := 0; i < 25; i++ {
		tx = append(tx, []string{"table:WaterSalinity", "table:WaterTemp", "col:WaterTemp.temp"})
	}
	// 5 queries joining WaterSalinity with CityLocations.
	for i := 0; i < 5; i++ {
		tx = append(tx, []string{"table:WaterSalinity", "table:CityLocations"})
	}
	// 30 queries over WaterTemp alone.
	for i := 0; i < 30; i++ {
		tx = append(tx, []string{"table:WaterTemp", "col:WaterTemp.temp", "pred:WaterTemp.temp < ?"})
	}
	return tx
}

func findRule(rules []Rule, antecedent, consequent string) (Rule, bool) {
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == antecedent && r.Consequent == consequent {
			return r, true
		}
	}
	return Rule{}, false
}

func TestMineAssociationRulesPaperExample(t *testing.T) {
	rules := MineAssociationRules(paperTransactions(), AssocConfig{MinSupport: 0.02, MinConfidence: 0.3, MaxItemsetSize: 3})
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	// The context-aware suggestion of §2.3: WaterSalinity => WaterTemp with
	// high confidence.
	r, ok := findRule(rules, "table:WaterSalinity", "table:WaterTemp")
	if !ok {
		t.Fatalf("rule WaterSalinity => WaterTemp not mined; rules = %v", rules)
	}
	if r.Confidence < 0.8 {
		t.Errorf("confidence = %v, want >= 0.8 (25 of 30 WaterSalinity queries)", r.Confidence)
	}
	// The competing rule WaterSalinity => CityLocations must have much lower
	// confidence (or be absent).
	if r2, ok := findRule(rules, "table:WaterSalinity", "table:CityLocations"); ok {
		if r2.Confidence >= r.Confidence {
			t.Errorf("CityLocations rule confidence %v should be below WaterTemp rule %v", r2.Confidence, r.Confidence)
		}
	}
}

func TestMineAssociationRulesSupportThreshold(t *testing.T) {
	tx := paperTransactions()
	// With a 50% support threshold almost nothing is frequent.
	rules := MineAssociationRules(tx, AssocConfig{MinSupport: 0.5, MinConfidence: 0.1, MaxItemsetSize: 2})
	for _, r := range rules {
		if r.Support < 0.5 {
			t.Errorf("rule %v violates support threshold", r)
		}
	}
}

func TestMineAssociationRulesConfidenceAndMetrics(t *testing.T) {
	rules := MineAssociationRules(paperTransactions(), DefaultAssocConfig())
	for _, r := range rules {
		if r.Confidence < DefaultAssocConfig().MinConfidence {
			t.Errorf("rule %v below confidence threshold", r)
		}
		if r.Support <= 0 || r.Support > 1 {
			t.Errorf("rule %v has invalid support", r)
		}
		if r.Confidence < r.Support-1e-9 {
			t.Errorf("rule %v: confidence %v cannot be below support %v", r.Key(), r.Confidence, r.Support)
		}
		if r.Lift <= 0 {
			t.Errorf("rule %v has non-positive lift", r)
		}
	}
	// Rules are sorted by descending confidence.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Errorf("rules not sorted by confidence")
			break
		}
	}
}

func TestMineAssociationRulesEmptyAndTiny(t *testing.T) {
	if rules := MineAssociationRules(nil, DefaultAssocConfig()); len(rules) != 0 {
		t.Errorf("empty input should give no rules")
	}
	rules := MineAssociationRules([][]string{{"a"}}, DefaultAssocConfig())
	if len(rules) != 0 {
		t.Errorf("single one-item transaction should give no rules, got %v", rules)
	}
}

func TestMineAssociationRulesThreeItemRules(t *testing.T) {
	var tx [][]string
	for i := 0; i < 50; i++ {
		tx = append(tx, []string{"a", "b", "c"})
	}
	for i := 0; i < 50; i++ {
		tx = append(tx, []string{"a", "d"})
	}
	rules := MineAssociationRules(tx, AssocConfig{MinSupport: 0.1, MinConfidence: 0.9, MaxItemsetSize: 3})
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 2 && r.Consequent == "c" {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("{a,b} => c confidence = %v, want 1.0", r.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("two-item antecedent rule not mined: %v", rules)
	}
}

func TestTopRulesFor(t *testing.T) {
	rules := MineAssociationRules(paperTransactions(), DefaultAssocConfig())
	// A query that already includes WaterSalinity: the top applicable rule
	// should suggest WaterTemp.
	top := TopRulesFor(rules, []string{"table:WaterSalinity"}, 3)
	if len(top) == 0 {
		t.Fatal("no applicable rules")
	}
	// Among the top suggestions, WaterTemp appears and ranks above
	// CityLocations (the §2.3 context-aware behaviour).
	rankOf := func(consequent string) int {
		for i, r := range top {
			if r.Consequent == consequent {
				return i
			}
		}
		return len(top)
	}
	if rankOf("table:WaterTemp") == len(top) {
		t.Fatalf("table:WaterTemp not among top suggestions: %+v", top)
	}
	if rankOf("table:CityLocations") < rankOf("table:WaterTemp") {
		t.Errorf("CityLocations ranked above WaterTemp: %+v", top)
	}
	// Already-present consequents are not suggested again.
	top = TopRulesFor(rules, []string{"table:WaterSalinity", "table:WaterTemp"}, 10)
	for _, r := range top {
		if r.Consequent == "table:WaterTemp" || r.Consequent == "table:WaterSalinity" {
			t.Errorf("suggested an already-present feature: %v", r)
		}
	}
	// Limit respected.
	top = TopRulesFor(rules, []string{"table:WaterTemp"}, 1)
	if len(top) > 1 {
		t.Errorf("limit not respected: %d", len(top))
	}
}

func TestIncrementalMinerMatchesBatchOnPairs(t *testing.T) {
	tx := paperTransactions()
	cfg := AssocConfig{MinSupport: 0.05, MinConfidence: 0.3, MaxItemsetSize: 2}
	batch := MineAssociationRules(tx, cfg)

	inc := NewIncrementalMiner(cfg, len(tx)) // warm-up covers everything: exact
	for _, t := range tx {
		inc.Add(t)
	}
	incRules := inc.Rules()

	batchKeys := make(map[string]bool)
	for _, r := range batch {
		batchKeys[r.Key()] = true
	}
	incKeys := make(map[string]bool)
	for _, r := range incRules {
		incKeys[r.Key()] = true
	}
	for k := range batchKeys {
		if !incKeys[k] {
			t.Errorf("incremental miner missing rule %s", k)
		}
	}
}

func TestIncrementalMinerAfterFreeze(t *testing.T) {
	cfg := AssocConfig{MinSupport: 0.05, MinConfidence: 0.3, MaxItemsetSize: 2}
	inc := NewIncrementalMiner(cfg, 50)
	tx := paperTransactions()
	for _, t := range tx {
		inc.Add(t)
	}
	// Keep streaming more of the same shape after the freeze point.
	for i := 0; i < 100; i++ {
		inc.Add([]string{"table:WaterSalinity", "table:WaterTemp"})
	}
	if inc.NumTransactions() != len(tx)+100 {
		t.Errorf("transactions = %d", inc.NumTransactions())
	}
	rules := inc.Rules()
	found := false
	for _, r := range rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == "table:WaterSalinity" && r.Consequent == "table:WaterTemp" {
			found = true
			if r.Confidence < 0.8 {
				t.Errorf("confidence = %v, want high", r.Confidence)
			}
		}
	}
	if !found {
		t.Errorf("incremental miner lost the WaterSalinity => WaterTemp rule")
	}
}

func TestIncrementalMinerBeforeFreezeFallsBackToExact(t *testing.T) {
	cfg := AssocConfig{MinSupport: 0.1, MinConfidence: 0.5, MaxItemsetSize: 2}
	inc := NewIncrementalMiner(cfg, 1000)
	for i := 0; i < 20; i++ {
		inc.Add([]string{"x", "y"})
	}
	rules := inc.Rules()
	if len(rules) == 0 {
		t.Errorf("expected rules from warm-up fallback")
	}
}

// Property: every rule's support and confidence lie in (0, 1], and confidence
// never falls below the configured threshold.
func TestPropertyRuleMetricsBounded(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e", "f"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(80)
		tx := make([][]string, n)
		for i := range tx {
			k := 1 + r.Intn(4)
			var row []string
			for j := 0; j < k; j++ {
				row = append(row, items[r.Intn(len(items))])
			}
			tx[i] = row
		}
		cfg := AssocConfig{MinSupport: 0.05, MinConfidence: 0.4, MaxItemsetSize: 3}
		for _, rule := range MineAssociationRules(tx, cfg) {
			if rule.Support <= 0 || rule.Support > 1 {
				return false
			}
			if rule.Confidence < cfg.MinConfidence || rule.Confidence > 1+1e-9 {
				return false
			}
			if len(rule.Antecedent) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
