package miner

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FeedCheckpointVersion is the serialization version of the feed's WAL
// snapshot sidecar. Restore rejects versions it does not understand and the
// mutation bus falls back to a full rebuild scan.
const FeedCheckpointVersion = 1

// feedState is the serializable state of a Feed: the incremental miner's
// counters, whether still buffering the warm-up batch or already frozen.
type feedState struct {
	NumTx int `json:"numTx"`

	Frozen     bool           `json:"frozen,omitempty"`
	Counts     map[string]int `json:"counts,omitempty"`
	Vocabulary []string       `json:"vocabulary,omitempty"`
	WarmupTx   [][]string     `json:"warmupTx,omitempty"`
}

// Checkpoint serialises the feed's state. It runs in the store's
// StateWithCheckpoints critical section, so the counts describe exactly the
// snapshotted records.
//
// A retired feed refuses to checkpoint: retirement means a full mining
// Result supersedes its rules, and that Result is in-memory only — it does
// not survive a restart. Restoring an empty retired feed would leave the
// recommender with no rule source at all until the next mining pass, which
// is strictly worse than the rebuild fallback (a fresh, active feed mined
// from the restored store). So retirement is deliberately not durable.
func (f *Feed) Checkpoint() (int, []byte, error) {
	f.mu.Lock()
	if f.retired {
		f.mu.Unlock()
		return 0, nil, fmt.Errorf("miner: feed is retired; recovery must rebuild an active feed")
	}
	st := feedState{NumTx: f.inc.numTx}
	st.Frozen = f.inc.frozen
	st.Counts = f.inc.counts
	st.WarmupTx = f.inc.warmupTx
	st.Vocabulary = make([]string, 0, len(f.inc.vocabulary))
	for item := range f.inc.vocabulary {
		st.Vocabulary = append(st.Vocabulary, item)
	}
	sort.Strings(st.Vocabulary)
	// Marshal under f.mu: the referenced maps stay shared with the live
	// miner, and only bus callbacks (serialised with this checkpoint by the
	// store's commit lock) ever write them — but Rules() snapshots and cache
	// invalidation also take f.mu, so holding it keeps the state coherent.
	data, err := json.Marshal(st)
	f.mu.Unlock()
	if err != nil {
		return 0, nil, fmt.Errorf("miner: encoding feed checkpoint: %w", err)
	}
	return FeedCheckpointVersion, data, nil
}

// Restore replaces the feed's state with a previously checkpointed one. An
// unknown version or decode failure is returned as an error so the caller
// falls back to the full rebuild scan.
func (f *Feed) Restore(version int, data []byte) error {
	if version != FeedCheckpointVersion {
		return fmt.Errorf("miner: unknown feed checkpoint version %d", version)
	}
	var st feedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("miner: decoding feed checkpoint: %w", err)
	}
	inc := NewIncrementalMiner(f.cfg, f.warmup)
	inc.numTx = st.NumTx
	inc.frozen = st.Frozen
	if st.Counts != nil {
		inc.counts = st.Counts
	}
	for _, item := range st.Vocabulary {
		inc.vocabulary[item] = true
	}
	inc.warmupTx = st.WarmupTx
	f.mu.Lock()
	f.inc = inc
	f.retired = false
	f.gen++
	f.rules, f.rulesValid, f.rulesAt = nil, false, 0
	f.mu.Unlock()
	return nil
}
