package miner

import (
	"reflect"
	"testing"
)

// feedTransactions pushes a mix of feature transactions through a feed.
func feedTransactions(f *Feed, n int) {
	txs := [][]string{
		{"table:WaterTemp", "attr:temp", "pred:temp<15"},
		{"table:WaterTemp", "table:WaterSalinity", "join:loc_x"},
		{"table:CityLocations", "attr:city"},
	}
	for i := 0; i < n; i++ {
		f.Add(txs[i%len(txs)])
	}
}

// TestFeedCheckpointRoundTrip proves a restored feed derives exactly the
// rules and transaction count of the original, both before and after the
// warm-up freeze.
func TestFeedCheckpointRoundTrip(t *testing.T) {
	for _, n := range []int{5, 50} { // 5 < warmup 20 < 50: buffered and frozen
		f := NewFeed(DefaultAssocConfig(), 20)
		feedTransactions(f, n)

		version, data, err := f.Checkpoint()
		if err != nil {
			t.Fatalf("Checkpoint: %v", err)
		}
		g := NewFeed(DefaultAssocConfig(), 20)
		if err := g.Restore(version, data); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if got, want := g.NumTransactions(), f.NumTransactions(); got != want {
			t.Errorf("n=%d: NumTransactions = %d, want %d", n, got, want)
		}
		if got, want := g.Rules(), f.Rules(); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: rules diverge\n got: %+v\nwant: %+v", n, got, want)
		}
		// The restored feed keeps counting.
		g.Add([]string{"table:WaterTemp", "attr:temp"})
		if got := g.NumTransactions(); got != f.NumTransactions()+1 {
			t.Errorf("n=%d: post-restore count = %d", n, got)
		}
	}
}

// TestFeedRetiredRefusesCheckpoint pins the retirement contract: a retired
// feed's rules are superseded by a mining Result that does not survive a
// restart, so it must not checkpoint — the omitted sidecar makes recovery
// rebuild a fresh, active feed that can serve rules immediately.
func TestFeedRetiredRefusesCheckpoint(t *testing.T) {
	f := NewFeed(DefaultAssocConfig(), 10)
	feedTransactions(f, 30)
	f.Retire()
	feedTransactions(f, 5)
	if _, _, err := f.Checkpoint(); err == nil {
		t.Fatal("retired feed produced a checkpoint")
	}
	// And restoring any checkpoint revives an active (non-retired) feed.
	g := NewFeed(DefaultAssocConfig(), 10)
	feedTransactions(g, 30)
	version, data, err := g.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	h := NewFeed(DefaultAssocConfig(), 10)
	h.Retire()
	if err := h.Restore(version, data); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	h.mu.Lock()
	retired := h.retired
	h.mu.Unlock()
	if retired {
		t.Error("restored feed is retired")
	}
	if len(h.Rules()) == 0 {
		t.Error("restored feed derives no rules")
	}
}

// TestFeedRestoreRejectsUnknownVersion pins the fallback contract.
func TestFeedRestoreRejectsUnknownVersion(t *testing.T) {
	f := NewFeed(DefaultAssocConfig(), 10)
	if err := f.Restore(FeedCheckpointVersion+1, []byte("{}")); err == nil {
		t.Fatal("Restore accepted an unknown version")
	}
	if err := f.Restore(FeedCheckpointVersion, []byte("not json")); err == nil {
		t.Fatal("Restore accepted malformed data")
	}
}
