package miner

import (
	"sort"

	"repro/internal/storage"
)

// Cluster is one group of similar queries produced by the clustering pass
// (§4.3): a medoid (the most central query) plus its members.
type Cluster struct {
	// Medoid is the index (into the clustered record slice) of the cluster's
	// representative query.
	Medoid int
	// Members are indexes of the cluster's queries, medoid included.
	Members []int
	// MedoidID is the stored query ID of the medoid.
	MedoidID storage.QueryID
	// Cohesion is the mean similarity of members to the medoid.
	Cohesion float64
}

// ClusterConfig controls the k-medoids clustering.
type ClusterConfig struct {
	K        int
	Measure  Measure
	MaxIters int
	// Seed drives the deterministic pseudo-random medoid initialisation.
	Seed int64
}

// DefaultClusterConfig returns a configuration suitable for a few thousand
// logged queries.
func DefaultClusterConfig(k int) ClusterConfig {
	return ClusterConfig{K: k, Measure: MeasureFeatures, MaxIters: 20, Seed: 1}
}

// KMedoids clusters the records into cfg.K clusters using the PAM-style
// alternating assignment/update heuristic over the chosen similarity measure.
// It returns the clusters sorted by descending size. When there are fewer
// records than K, each record forms its own cluster.
func KMedoids(records []*storage.QueryRecord, cfg ClusterConfig) []Cluster {
	n := len(records)
	if n == 0 || cfg.K <= 0 {
		return nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	sim := PairwiseMatrix(cfg.Measure, records)

	// Deterministic initialisation: spread medoids with a greedy max-min
	// distance sweep seeded by cfg.Seed.
	medoids := initialMedoids(sim, k, cfg.Seed)

	assign := make([]int, n)
	maxIters := cfg.MaxIters
	if maxIters <= 0 {
		maxIters = 20
	}
	for iter := 0; iter < maxIters; iter++ {
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best, bestSim := 0, -1.0
			for ci, m := range medoids {
				if sim[i][m] > bestSim {
					bestSim = sim[i][m]
					best = ci
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Update step: the new medoid maximises total similarity within the
		// cluster.
		newMedoids := make([]int, len(medoids))
		copy(newMedoids, medoids)
		for ci := range medoids {
			var members []int
			for i := 0; i < n; i++ {
				if assign[i] == ci {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			bestIdx, bestTotal := members[0], -1.0
			for _, cand := range members {
				total := 0.0
				for _, other := range members {
					total += sim[cand][other]
				}
				if total > bestTotal {
					bestTotal = total
					bestIdx = cand
				}
			}
			newMedoids[ci] = bestIdx
		}
		medoidsChanged := false
		for i := range medoids {
			if medoids[i] != newMedoids[i] {
				medoidsChanged = true
			}
		}
		medoids = newMedoids
		if !changed && !medoidsChanged {
			break
		}
	}

	// Build clusters.
	clusters := make([]Cluster, len(medoids))
	for ci, m := range medoids {
		clusters[ci] = Cluster{Medoid: m, MedoidID: records[m].ID}
	}
	for i := 0; i < n; i++ {
		clusters[assign[i]].Members = append(clusters[assign[i]].Members, i)
	}
	out := clusters[:0]
	for _, c := range clusters {
		if len(c.Members) == 0 {
			continue
		}
		total := 0.0
		for _, m := range c.Members {
			total += sim[c.Medoid][m]
		}
		c.Cohesion = total / float64(len(c.Members))
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].Members) > len(out[j].Members) })
	return out
}

// initialMedoids picks k well-spread points: the first is chosen by the seed,
// each subsequent one is the point least similar to the already-chosen set.
func initialMedoids(sim [][]float64, k int, seed int64) []int {
	n := len(sim)
	first := int(seed) % n
	if first < 0 {
		first += n
	}
	medoids := []int{first}
	chosen := map[int]bool{first: true}
	for len(medoids) < k {
		bestIdx, bestScore := -1, 2.0
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			// Score = max similarity to any chosen medoid; pick the minimum.
			maxSim := 0.0
			for _, m := range medoids {
				if sim[i][m] > maxSim {
					maxSim = sim[i][m]
				}
			}
			if maxSim < bestScore {
				bestScore = maxSim
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break
		}
		medoids = append(medoids, bestIdx)
		chosen[bestIdx] = true
	}
	return medoids
}

// SilhouetteScore evaluates clustering quality: the mean over all points of
// (a - b) / max(a, b) where a is the mean similarity to the own cluster and b
// the best mean similarity to another cluster (note: similarities, not
// distances, so higher is better; the score lies in [-1, 1]).
func SilhouetteScore(records []*storage.QueryRecord, clusters []Cluster, m Measure) float64 {
	if len(records) == 0 || len(clusters) < 2 {
		return 0
	}
	sim := PairwiseMatrix(m, records)
	clusterOf := make(map[int]int)
	for ci, c := range clusters {
		for _, i := range c.Members {
			clusterOf[i] = ci
		}
	}
	total, count := 0.0, 0
	for i := range records {
		own := clusters[clusterOf[i]]
		a := meanSim(sim, i, own.Members)
		b := -1.0
		for ci, c := range clusters {
			if ci == clusterOf[i] {
				continue
			}
			if v := meanSim(sim, i, c.Members); v > b {
				b = v
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den == 0 {
			continue
		}
		total += (a - b) / den
		count++
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func meanSim(sim [][]float64, i int, members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	total, n := 0.0, 0
	for _, j := range members {
		if j == i {
			continue
		}
		total += sim[i][j]
		n++
	}
	if n == 0 {
		return 1
	}
	return total / float64(n)
}

// AgglomerativeClusters performs average-linkage hierarchical clustering,
// stopping when the best inter-cluster similarity drops below threshold or
// when maxClusters remain. It is the alternative clustering strategy for the
// E7 ablation.
func AgglomerativeClusters(records []*storage.QueryRecord, m Measure, threshold float64, maxClusters int) []Cluster {
	n := len(records)
	if n == 0 {
		return nil
	}
	sim := PairwiseMatrix(m, records)
	// Start with singletons.
	groups := make([][]int, n)
	for i := range groups {
		groups[i] = []int{i}
	}
	linkage := func(a, b []int) float64 {
		total := 0.0
		for _, i := range a {
			for _, j := range b {
				total += sim[i][j]
			}
		}
		return total / float64(len(a)*len(b))
	}
	for len(groups) > 1 && (maxClusters <= 0 || len(groups) > maxClusters) {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if l := linkage(groups[i], groups[j]); l > best {
					best = l
					bi, bj = i, j
				}
			}
		}
		if bi < 0 || best < threshold {
			break
		}
		groups[bi] = append(groups[bi], groups[bj]...)
		groups = append(groups[:bj], groups[bj+1:]...)
	}
	// Convert to Cluster values, picking the member with the highest total
	// similarity as medoid.
	var out []Cluster
	for _, g := range groups {
		bestIdx, bestTotal := g[0], -1.0
		for _, cand := range g {
			total := 0.0
			for _, other := range g {
				total += sim[cand][other]
			}
			if total > bestTotal {
				bestTotal = total
				bestIdx = cand
			}
		}
		c := Cluster{Medoid: bestIdx, MedoidID: records[bestIdx].ID, Members: g}
		total := 0.0
		for _, mIdx := range g {
			total += sim[bestIdx][mIdx]
		}
		c.Cohesion = total / float64(len(g))
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i].Members) > len(out[j].Members) })
	return out
}
