package miner

import (
	"testing"

	"repro/internal/storage"
)

// twoTopicRecords builds queries over two clearly separated topics: lake
// water quality and star catalogs.
func twoTopicRecords(t testing.TB) []*storage.QueryRecord {
	t.Helper()
	lakeQueries := []string{
		"SELECT temp FROM WaterTemp WHERE temp < 18",
		"SELECT temp FROM WaterTemp WHERE temp < 22",
		"SELECT lake, temp FROM WaterTemp WHERE temp < 15",
		"SELECT lake, temp, salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x",
		"SELECT temp, salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND temp < 18",
		"SELECT AVG(temp) FROM WaterTemp GROUP BY lake",
	}
	starQueries := []string{
		"SELECT ra, dec FROM Stars WHERE magnitude < 6",
		"SELECT ra, dec FROM Stars WHERE magnitude < 4",
		"SELECT name FROM Stars WHERE dec > 40",
		"SELECT ra FROM Stars WHERE ra BETWEEN 10 AND 20",
	}
	var out []*storage.QueryRecord
	for _, q := range append(lakeQueries, starQueries...) {
		out = append(out, rec(t, q))
	}
	return out
}

func clusterOfRecord(clusters []Cluster, idx int) int {
	for ci, c := range clusters {
		for _, m := range c.Members {
			if m == idx {
				return ci
			}
		}
	}
	return -1
}

func TestKMedoidsSeparatesTopics(t *testing.T) {
	records := twoTopicRecords(t)
	clusters := KMedoids(records, DefaultClusterConfig(2))
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// All lake queries (indexes 0..5) in one cluster, all star queries
	// (6..9) in the other.
	lakeCluster := clusterOfRecord(clusters, 0)
	for i := 1; i <= 5; i++ {
		if clusterOfRecord(clusters, i) != lakeCluster {
			t.Errorf("lake query %d not in lake cluster", i)
		}
	}
	starCluster := clusterOfRecord(clusters, 6)
	if starCluster == lakeCluster {
		t.Fatalf("topics not separated")
	}
	for i := 7; i <= 9; i++ {
		if clusterOfRecord(clusters, i) != starCluster {
			t.Errorf("star query %d not in star cluster", i)
		}
	}
}

func TestKMedoidsEveryRecordAssignedOnce(t *testing.T) {
	records := twoTopicRecords(t)
	clusters := KMedoids(records, DefaultClusterConfig(3))
	seen := make(map[int]int)
	for _, c := range clusters {
		if len(c.Members) == 0 {
			t.Errorf("empty cluster returned")
		}
		for _, m := range c.Members {
			seen[m]++
		}
		if c.Cohesion < 0 || c.Cohesion > 1 {
			t.Errorf("cohesion out of range: %v", c.Cohesion)
		}
		// Medoid must be a member.
		isMember := false
		for _, m := range c.Members {
			if m == c.Medoid {
				isMember = true
			}
		}
		if !isMember {
			t.Errorf("medoid %d not among members", c.Medoid)
		}
	}
	if len(seen) != len(records) {
		t.Errorf("assigned records = %d, want %d", len(seen), len(records))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("record %d assigned %d times", idx, n)
		}
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	if c := KMedoids(nil, DefaultClusterConfig(3)); c != nil {
		t.Errorf("empty input should return nil")
	}
	all := twoTopicRecords(t)
	// Two structurally unrelated queries with K larger than the record count:
	// one cluster per record.
	records := []*storage.QueryRecord{all[0], all[6]}
	clusters := KMedoids(records, DefaultClusterConfig(10))
	if len(clusters) != 2 {
		t.Errorf("clusters = %d, want 2", len(clusters))
	}
	// Identical queries collapse into a single cluster even with K=10.
	dupes := []*storage.QueryRecord{all[0], all[1]}
	clusters = KMedoids(dupes, DefaultClusterConfig(10))
	if len(clusters) != 1 {
		t.Errorf("clusters over near-identical queries = %d, want 1", len(clusters))
	}
	if c := KMedoids(records, DefaultClusterConfig(0)); c != nil {
		t.Errorf("K=0 should return nil")
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	records := twoTopicRecords(t)
	a := KMedoids(records, DefaultClusterConfig(2))
	b := KMedoids(records, DefaultClusterConfig(2))
	if len(a) != len(b) {
		t.Fatalf("non-deterministic cluster count")
	}
	for i := range a {
		if a[i].Medoid != b[i].Medoid || len(a[i].Members) != len(b[i].Members) {
			t.Errorf("non-deterministic clustering at %d", i)
		}
	}
}

func TestSilhouetteScore(t *testing.T) {
	records := twoTopicRecords(t)
	good := KMedoids(records, DefaultClusterConfig(2))
	score := SilhouetteScore(records, good, MeasureFeatures)
	if score <= 0 {
		t.Errorf("well-separated clustering should have positive silhouette, got %v", score)
	}
	// A degenerate clustering that splits the lake topic arbitrarily scores
	// lower than the topical clustering.
	bad := []Cluster{
		{Medoid: 0, Members: []int{0, 6, 7}},
		{Medoid: 1, Members: []int{1, 2, 3, 4, 5, 8, 9}},
	}
	badScore := SilhouetteScore(records, bad, MeasureFeatures)
	if badScore >= score {
		t.Errorf("bad clustering silhouette %v should be below good %v", badScore, score)
	}
	if s := SilhouetteScore(records, good[:1], MeasureFeatures); s != 0 {
		t.Errorf("single-cluster silhouette should be 0")
	}
	if s := SilhouetteScore(nil, nil, MeasureFeatures); s != 0 {
		t.Errorf("empty silhouette should be 0")
	}
}

func TestAgglomerativeClusters(t *testing.T) {
	records := twoTopicRecords(t)
	clusters := AgglomerativeClusters(records, MeasureFeatures, 0.05, 2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	// Same separation property as k-medoids.
	lake := clusterOfRecord(clusters, 0)
	star := clusterOfRecord(clusters, 6)
	if lake == star {
		t.Errorf("agglomerative clustering did not separate topics")
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
	}
	if total != len(records) {
		t.Errorf("members = %d, want %d", total, len(records))
	}
	if c := AgglomerativeClusters(nil, MeasureFeatures, 0.1, 2); c != nil {
		t.Errorf("empty input should return nil")
	}
}

func TestAgglomerativeThresholdStopsMerging(t *testing.T) {
	records := twoTopicRecords(t)
	// A very high threshold prevents any merging beyond identical queries.
	clusters := AgglomerativeClusters(records, MeasureFeatures, 0.999, 0)
	if len(clusters) < 4 {
		t.Errorf("high threshold should keep many clusters, got %d", len(clusters))
	}
}
