package miner

import (
	"sync"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Feed keeps an IncrementalMiner fed from the storage mutation event bus, so
// association-rule counts stay warm until the first full background mining
// pass without re-scanning the log. The feed is append-only: logged queries
// enter it as they are committed (and as they are replayed during WAL
// recovery), while deletions and text repairs are not retracted — the
// periodic full mining pass re-baselines exact counts, and a RestoreState
// rebuilds the feed from scratch through the bus's Reset hook. Once a full
// pass has run, Retire turns the feed into a plain transaction counter.
type Feed struct {
	mu         sync.Mutex
	cfg        AssocConfig
	warmup     int
	inc        *IncrementalMiner
	gen        int  // bumped whenever inc is replaced; guards the rule cache
	retired    bool // set once a full mining pass supersedes the feed's rules
	rules      []Rule
	rulesValid bool
	rulesAt    int // inc.NumTransactions() when rules was derived
}

// NewFeed returns an un-attached feed; warmupSize is the incremental miner's
// vocabulary warm-up (see NewIncrementalMiner).
func NewFeed(cfg AssocConfig, warmupSize int) *Feed {
	return &Feed{cfg: cfg, warmup: warmupSize, inc: NewIncrementalMiner(cfg, warmupSize)}
}

// Attach seeds the feed from the store's current contents and subscribes it
// to the mutation bus; it returns the unsubscribe function. Seeding runs
// under the store's commit lock, so no submission can slip between the seed
// scan and the subscription.
func (f *Feed) Attach(store *storage.Store) (cancel func()) {
	rebuild := func() { f.rebuild(store) }
	return store.Subscribe("miner-feed", func(m *storage.Mutation) {
		if m.Op != storage.OpPut {
			return
		}
		if rec := m.Next(); rec != nil && len(rec.Features) > 0 {
			f.Add(rec.Features)
		}
	}, storage.SubscribeOptions{
		Init: rebuild, Reset: rebuild,
		Checkpoint: f.Checkpoint, Restore: f.Restore,
	})
}

// rebuild replaces the feed's miner with one seeded from the store.
func (f *Feed) rebuild(store *storage.Store) {
	f.mu.Lock()
	retired := f.retired
	f.mu.Unlock()
	inc := NewIncrementalMiner(f.cfg, f.warmup)
	store.Snapshot().Scan(storage.Principal{Admin: true}, func(rec *storage.QueryRecord) bool {
		if len(rec.Features) > 0 {
			if retired {
				inc.numTx++
			} else {
				inc.Add(rec.Features)
			}
		}
		return true
	})
	f.mu.Lock()
	f.inc = inc
	f.gen++
	f.rules, f.rulesValid, f.rulesAt = nil, false, 0
	f.mu.Unlock()
}

// Add ingests one feature transaction. This runs inside the store's
// commit-order fan-out, so after Retire only the transaction counter
// advances — the itemset counting exists solely to serve rules before the
// first full mining pass.
func (f *Feed) Add(features []string) {
	f.mu.Lock()
	if f.retired {
		f.inc.numTx++
	} else {
		f.inc.Add(features)
	}
	f.mu.Unlock()
}

// Retire stops itemset counting for good: once a full background mining pass
// has installed its Result the recommender never reads the feed's approximate
// rules again, so per-commit counting would be pure overhead under the
// store's commit lock. NumTransactions keeps advancing for the stats surface.
func (f *Feed) Retire() {
	f.mu.Lock()
	f.retired = true
	f.rules, f.rulesValid, f.rulesAt = nil, false, 0
	f.mu.Unlock()
}

// Rules derives association rules from the current counts. The derivation
// itself runs outside f.mu — bus callbacks block on f.mu while holding the
// store's commit lock, so holding it through an Apriori pass would stall
// every writer — and the result is cached until the next transaction arrives.
func (f *Feed) Rules() []Rule {
	f.mu.Lock()
	n, gen := f.inc.NumTransactions(), f.gen
	if f.rulesValid && f.rulesAt == n {
		rules := f.rules
		f.mu.Unlock()
		return rules
	}
	derive := f.inc.snapshotRules()
	f.mu.Unlock()

	rules := derive()

	f.mu.Lock()
	if f.gen == gen && (!f.rulesValid || f.rulesAt <= n) {
		f.rules, f.rulesValid, f.rulesAt = rules, true, n
	}
	f.mu.Unlock()
	return rules
}

// NumTransactions returns how many feature transactions the feed has seen.
func (f *Feed) NumTransactions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inc.NumTransactions()
}

// EnableMetrics registers scrape-time gauges over the feed's state. A nil
// registry is a no-op.
func (f *Feed) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cqms_miner_feed_transactions",
		"Feature transactions the incremental miner feed has seen.",
		func() float64 { return float64(f.NumTransactions()) })
	reg.GaugeFunc("cqms_miner_feed_retired",
		"1 once a full mining pass has retired the feed's itemset counting.",
		func() float64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			if f.retired {
				return 1
			}
			return 0
		})
}
