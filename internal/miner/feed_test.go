package miner

import (
	"testing"

	"repro/internal/storage"
)

func feedRecord(t *testing.T, text string) *storage.QueryRecord {
	t.Helper()
	rec, err := storage.NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	rec.User = "alice"
	return rec
}

// TestFeedFollowsBus verifies the incremental feed is seeded from existing
// contents at attach time, follows live submissions through the mutation
// bus, stops after unsubscribe, and rebuilds on RestoreState.
func TestFeedFollowsBus(t *testing.T) {
	store := storage.NewStore()
	store.Put(feedRecord(t, "SELECT temp FROM WaterTemp"))

	feed := NewFeed(DefaultAssocConfig(), 10)
	cancel := feed.Attach(store)
	if got := feed.NumTransactions(); got != 1 {
		t.Fatalf("seeded transactions = %d, want 1", got)
	}

	for i := 0; i < 5; i++ {
		store.Put(feedRecord(t, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x"))
	}
	if got := feed.NumTransactions(); got != 6 {
		t.Fatalf("transactions after puts = %d, want 6", got)
	}
	if rules := feed.Rules(); len(rules) == 0 {
		t.Error("feed derived no rules from co-occurring tables")
	}

	// RestoreState rebuilds the feed from the restored contents.
	st := store.State()
	store2 := storage.NewStore()
	feed2 := NewFeed(DefaultAssocConfig(), 10)
	feed2.Attach(store2)
	store2.RestoreState(st)
	if got := feed2.NumTransactions(); got != 6 {
		t.Fatalf("transactions after restore = %d, want 6", got)
	}

	cancel()
	store.Put(feedRecord(t, "SELECT city FROM CityLocations"))
	if got := feed.NumTransactions(); got != 6 {
		t.Errorf("unsubscribed feed kept counting: %d", got)
	}
}

// TestFeedRetire verifies that a retired feed stops maintaining itemset
// counts (its rules are never read once a full mining pass has run) while
// its transaction counter — the part the stats surface reads — keeps
// advancing, both on the live path and through a Reset rebuild.
func TestFeedRetire(t *testing.T) {
	store := storage.NewStore()
	feed := NewFeed(DefaultAssocConfig(), 10)
	feed.Attach(store)

	for i := 0; i < 4; i++ {
		store.Put(feedRecord(t, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x"))
	}
	feed.Retire()

	feed.mu.Lock()
	countsBefore := len(feed.inc.counts)
	feed.mu.Unlock()

	store.Put(feedRecord(t, "SELECT Stars.name, Observations.star FROM Stars, Observations WHERE Stars.id = Observations.star"))
	if got := feed.NumTransactions(); got != 5 {
		t.Fatalf("retired feed transactions = %d, want 5", got)
	}
	feed.mu.Lock()
	countsAfter := len(feed.inc.counts)
	feed.mu.Unlock()
	if countsAfter != countsBefore {
		t.Errorf("retired feed kept itemset counting: %d counts before, %d after", countsBefore, countsAfter)
	}

	// A Reset rebuild of a retired feed recounts transactions only.
	store2 := storage.NewStore()
	feed2 := NewFeed(DefaultAssocConfig(), 10)
	feed2.Attach(store2)
	feed2.Retire()
	store2.RestoreState(store.State())
	if got := feed2.NumTransactions(); got != 5 {
		t.Fatalf("retired feed transactions after restore = %d, want 5", got)
	}
	feed2.mu.Lock()
	rebuiltCounts := len(feed2.inc.counts)
	feed2.mu.Unlock()
	if rebuiltCounts != 0 {
		t.Errorf("retired feed rebuilt itemset counts: %d", rebuiltCounts)
	}
}

// TestFeedRulesCached verifies Rules() reuses its cached derivation while no
// new transactions arrive and re-derives once one does.
func TestFeedRulesCached(t *testing.T) {
	store := storage.NewStore()
	feed := NewFeed(DefaultAssocConfig(), 10)
	feed.Attach(store)
	for i := 0; i < 5; i++ {
		store.Put(feedRecord(t, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x"))
	}

	first := feed.Rules()
	if len(first) == 0 {
		t.Fatal("feed derived no rules from co-occurring tables")
	}
	feed.mu.Lock()
	valid, at := feed.rulesValid, feed.rulesAt
	feed.mu.Unlock()
	if !valid || at != 5 {
		t.Fatalf("rule cache not installed: valid=%v at=%d", valid, at)
	}

	store.Put(feedRecord(t, "SELECT city FROM CityLocations"))
	feed.mu.Lock()
	stale := feed.rulesAt != feed.inc.NumTransactions()
	feed.mu.Unlock()
	if !stale {
		t.Error("rule cache not invalidated by a new transaction")
	}
	if again := feed.Rules(); len(again) == 0 {
		t.Error("re-derived rules are empty")
	}
}
