package miner

import (
	"sort"
	"strings"

	"repro/internal/storage"
)

// EditPattern is a frequently occurring query modification mined from the
// session edge relation (§4.3: "by mining common edit patterns, the CQMS
// could provide better completion or correction suggestions").
type EditPattern struct {
	// Pattern is one diff entry with constants removed, e.g.
	// "+pred WaterTemp.temp < ?" or "+table WaterSalinity".
	Pattern string
	Count   int
}

// Popularity counts how often an item (a table, a column, a predicate
// template) occurs across the visible log; the recommender uses these as
// priors.
type Popularity struct {
	Item  string
	Count int
}

// Result is the output of one background mining pass, consumed by the
// recommender and the Meta-query Executor.
type Result struct {
	// Rules are the mined association rules over query features.
	Rules []Rule
	// Clusters are the query clusters (by feature similarity).
	Clusters []Cluster
	// ClusteredIDs are the query IDs in the order the clusters index into.
	ClusteredIDs []storage.QueryID
	// EditPatterns are frequent session edit patterns.
	EditPatterns []EditPattern
	// TablePopularity, ColumnPopularity and PredicatePopularity are global
	// occurrence counts.
	TablePopularity     []Popularity
	ColumnPopularity    []Popularity
	PredicatePopularity []Popularity
	// TransactionCount is the number of queries mined.
	TransactionCount int
}

// Config controls a mining pass.
type Config struct {
	Assoc   AssocConfig
	Cluster ClusterConfig
	// MinEditPatternCount is the minimum occurrence count for an edit pattern
	// to be reported.
	MinEditPatternCount int
	// MaxClusteredQueries bounds the number of (most recent) queries used for
	// clustering, because the pairwise similarity matrix is quadratic.
	MaxClusteredQueries int
}

// DefaultConfig returns mining parameters suitable for a few thousand logged
// queries.
func DefaultConfig() Config {
	return Config{
		Assoc:               DefaultAssocConfig(),
		Cluster:             DefaultClusterConfig(25),
		MinEditPatternCount: 2,
		MaxClusteredQueries: 2000,
	}
}

// Miner runs background analysis passes over the Query Storage.
type Miner struct {
	cfg Config
}

// New returns a miner with the given configuration.
func New(cfg Config) *Miner {
	return &Miner{cfg: cfg}
}

// Run performs a full mining pass over every query in the store (admin view):
// association rules, clustering, edit patterns and popularity counts.
func (m *Miner) Run(store *storage.Store) *Result {
	records := store.Snapshot().Records(storage.Principal{Admin: true})
	res := &Result{TransactionCount: len(records)}

	// Association rules over feature transactions.
	transactions := make([][]string, 0, len(records))
	for _, r := range records {
		if len(r.Features) > 0 {
			transactions = append(transactions, r.Features)
		}
	}
	res.Rules = MineAssociationRules(transactions, m.cfg.Assoc)

	// Clustering over the most recent MaxClusteredQueries queries.
	clusterRecords := records
	if m.cfg.MaxClusteredQueries > 0 && len(clusterRecords) > m.cfg.MaxClusteredQueries {
		clusterRecords = clusterRecords[len(clusterRecords)-m.cfg.MaxClusteredQueries:]
	}
	res.Clusters = KMedoids(clusterRecords, m.cfg.Cluster)
	res.ClusteredIDs = make([]storage.QueryID, len(clusterRecords))
	for i, r := range clusterRecords {
		res.ClusteredIDs[i] = r.ID
	}

	// Edit patterns from session edges.
	res.EditPatterns = MineEditPatterns(store.Edges(), m.cfg.MinEditPatternCount)

	// Popularity counts.
	res.TablePopularity, res.ColumnPopularity, res.PredicatePopularity = popularityCounts(records)
	return res
}

// MineEditPatterns counts constant-masked diff entries across session edges
// and returns those occurring at least minCount times, most frequent first.
func MineEditPatterns(edges []storage.SessionEdge, minCount int) []EditPattern {
	counts := make(map[string]int)
	for _, e := range edges {
		if e.Diff == "" || e.Diff == "none" {
			continue
		}
		for _, part := range strings.Split(e.Diff, ", ") {
			pattern := maskDiffConstant(part)
			counts[pattern]++
		}
	}
	var out []EditPattern
	for p, c := range counts {
		if c >= minCount {
			out = append(out, EditPattern{Pattern: p, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// maskDiffConstant replaces the trailing constant of a predicate diff entry
// ("+pred WaterTemp.temp < 18") with '?' so occurrences with different
// constants aggregate.
func maskDiffConstant(entry string) string {
	fields := strings.Fields(entry)
	if len(fields) < 2 {
		return entry
	}
	kind := fields[0]
	switch kind {
	case "+pred", "-pred", "~const":
		// Keep "column op" and mask the constant: the last field is the
		// constant unless the predicate is a join (contains a dot on both
		// sides of the operator, in which case keep it).
		if len(fields) >= 4 {
			last := fields[len(fields)-1]
			if !strings.Contains(last, ".") {
				fields[len(fields)-1] = "?"
			}
		}
		return strings.Join(fields, " ")
	default:
		return entry
	}
}

// popularityCounts computes table, column and predicate-template occurrence
// counts across the log.
func popularityCounts(records []*storage.QueryRecord) (tables, columns, predicates []Popularity) {
	tableCounts := make(map[string]int)
	colCounts := make(map[string]int)
	predCounts := make(map[string]int)
	for _, r := range records {
		seenT := make(map[string]bool)
		for _, t := range r.Tables {
			if !seenT[t] {
				seenT[t] = true
				tableCounts[t]++
			}
		}
		seenC := make(map[string]bool)
		for _, a := range r.Attributes {
			name := a.Attr
			if a.Rel != "" {
				name = a.Rel + "." + a.Attr
			}
			if !seenC[name] {
				seenC[name] = true
				colCounts[name]++
			}
		}
		seenP := make(map[string]bool)
		for _, p := range r.Predicates {
			key := predicateTemplate(p)
			if !seenP[key] {
				seenP[key] = true
				predCounts[key]++
			}
		}
	}
	return toPopularity(tableCounts), toPopularity(colCounts), toPopularity(predCounts)
}

// predicateTemplate renders a stored predicate with its constant masked.
func predicateTemplate(p storage.PredicateRow) string {
	col := p.Attr
	if p.Rel != "" {
		col = p.Rel + "." + p.Attr
	}
	if p.IsJoin {
		right := p.RightAttr
		if p.RightRel != "" {
			right = p.RightRel + "." + p.RightAttr
		}
		return col + " " + p.Op + " " + right
	}
	return col + " " + p.Op + " ?"
}

func toPopularity(counts map[string]int) []Popularity {
	out := make([]Popularity, 0, len(counts))
	for item, c := range counts {
		out = append(out, Popularity{Item: item, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// TopRulesFor returns the rules whose antecedent is satisfied by (a subset
// of) the given feature set, most confident first, limited to max entries.
// The recommender calls this with the features of the partially written
// query.
func TopRulesFor(rules []Rule, features []string, max int) []Rule {
	have := make(map[string]bool, len(features))
	for _, f := range features {
		have[f] = true
	}
	var out []Rule
	for _, r := range rules {
		// Skip rules whose consequent the user already has.
		if have[r.Consequent] {
			continue
		}
		satisfied := true
		for _, a := range r.Antecedent {
			if !have[a] {
				satisfied = false
				break
			}
		}
		if satisfied {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Support > out[j].Support
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}
