package miner

import (
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

var admin = storage.Principal{Admin: true}

func populateStore(t testing.TB) *storage.Store {
	t.Helper()
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	queries := []struct {
		user string
		sql  string
	}{
		{"alice", "SELECT temp FROM WaterTemp WHERE temp < 18"},
		{"alice", "SELECT temp FROM WaterTemp WHERE temp < 22"},
		{"alice", "SELECT temp, salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x"},
		{"bob", "SELECT salinity FROM WaterSalinity WHERE salinity > 2"},
		{"bob", "SELECT temp, salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND temp < 18"},
		{"bob", "SELECT city FROM CityLocations WHERE state = 'WA'"},
		{"carol", "SELECT city FROM CityLocations WHERE pop > 10000"},
		{"carol", "SELECT city, state FROM CityLocations"},
	}
	for i, q := range queries {
		rec, err := storage.NewRecordFromSQL(q.sql)
		if err != nil {
			t.Fatalf("NewRecordFromSQL: %v", err)
		}
		rec.User = q.user
		rec.Visibility = storage.VisibilityPublic
		rec.IssuedAt = base.Add(time.Duration(i) * time.Minute)
		store.Put(rec)
	}
	return store
}

func TestMinerRun(t *testing.T) {
	store := populateStore(t)
	cfg := DefaultConfig()
	cfg.Assoc = AssocConfig{MinSupport: 0.1, MinConfidence: 0.3, MaxItemsetSize: 3}
	cfg.Cluster = DefaultClusterConfig(3)
	cfg.MinEditPatternCount = 1
	res := New(cfg).Run(store)

	if res.TransactionCount != 8 {
		t.Errorf("transactions = %d, want 8", res.TransactionCount)
	}
	if len(res.Rules) == 0 {
		t.Errorf("no rules mined")
	}
	if len(res.Clusters) == 0 {
		t.Errorf("no clusters")
	}
	if len(res.ClusteredIDs) != 8 {
		t.Errorf("clustered IDs = %d", len(res.ClusteredIDs))
	}
	// Popularity: CityLocations and WaterTemp referenced most.
	if len(res.TablePopularity) == 0 {
		t.Fatalf("no table popularity")
	}
	top := res.TablePopularity[0]
	if top.Count < 3 {
		t.Errorf("top table popularity = %+v", top)
	}
	if len(res.ColumnPopularity) == 0 || len(res.PredicatePopularity) == 0 {
		t.Errorf("column/predicate popularity missing")
	}
}

func TestMinerClusterCapRespected(t *testing.T) {
	store := populateStore(t)
	cfg := DefaultConfig()
	cfg.MaxClusteredQueries = 3
	cfg.Cluster = DefaultClusterConfig(2)
	res := New(cfg).Run(store)
	if len(res.ClusteredIDs) != 3 {
		t.Errorf("clustered IDs = %d, want 3 (cap)", len(res.ClusteredIDs))
	}
}

func TestMineEditPatterns(t *testing.T) {
	edges := []storage.SessionEdge{
		{From: 1, To: 2, Diff: "+pred WaterTemp.temp < 18"},
		{From: 2, To: 3, Diff: "+pred WaterTemp.temp < 22"},
		{From: 3, To: 4, Diff: "+table WaterSalinity, +pred WaterSalinity.salinity > 2"},
		{From: 4, To: 5, Diff: "+table WaterSalinity"},
		{From: 5, To: 6, Diff: "none"},
		{From: 6, To: 7, Diff: ""},
	}
	patterns := MineEditPatterns(edges, 2)
	if len(patterns) == 0 {
		t.Fatal("no patterns")
	}
	// The two "+pred WaterTemp.temp < N" edges aggregate under a masked
	// constant.
	foundPred, foundTable := false, false
	for _, p := range patterns {
		if p.Pattern == "+pred WaterTemp.temp < ?" && p.Count == 2 {
			foundPred = true
		}
		if p.Pattern == "+table WaterSalinity" && p.Count == 2 {
			foundTable = true
		}
	}
	if !foundPred {
		t.Errorf("masked predicate pattern missing: %+v", patterns)
	}
	if !foundTable {
		t.Errorf("table pattern missing: %+v", patterns)
	}
	// Patterns below the threshold are dropped.
	for _, p := range patterns {
		if p.Count < 2 {
			t.Errorf("pattern %+v below min count", p)
		}
	}
}

func TestMineEditPatternsJoinPredicatesKeepColumns(t *testing.T) {
	edges := []storage.SessionEdge{
		{From: 1, To: 2, Diff: "+pred WaterSalinity.loc_x = WaterTemp.loc_x"},
		{From: 2, To: 3, Diff: "+pred WaterSalinity.loc_x = WaterTemp.loc_x"},
	}
	patterns := MineEditPatterns(edges, 2)
	if len(patterns) != 1 {
		t.Fatalf("patterns = %+v", patterns)
	}
	if !strings.Contains(patterns[0].Pattern, "WaterTemp.loc_x") {
		t.Errorf("join predicate constant should not be masked: %q", patterns[0].Pattern)
	}
}

func TestPopularityCountsDeduplicatePerQuery(t *testing.T) {
	store := storage.NewStore()
	// A query referencing the same table twice (self-join) counts once.
	rec, err := storage.NewRecordFromSQL("SELECT a.temp FROM WaterTemp a, WaterTemp b WHERE a.loc_x = b.loc_x")
	if err != nil {
		t.Fatal(err)
	}
	rec.User = "alice"
	rec.Visibility = storage.VisibilityPublic
	store.Put(rec)
	res := New(DefaultConfig()).Run(store)
	for _, p := range res.TablePopularity {
		if p.Item == "WaterTemp" && p.Count != 1 {
			t.Errorf("WaterTemp count = %d, want 1", p.Count)
		}
	}
}

func TestMinerEmptyStore(t *testing.T) {
	store := storage.NewStore()
	res := New(DefaultConfig()).Run(store)
	if res.TransactionCount != 0 || len(res.Rules) != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty store mining result = %+v", res)
	}
}
