// Package miner implements the CQMS Query Miner (Figure 4): the background
// component that analyses the Query Storage. It provides the query
// similarity measures discussed in §4.3 (string, feature-set, parse-tree
// template and output-overlap similarity), query clustering (k-medoids and
// agglomerative), association-rule mining over query features (Apriori, with
// an incremental variant), and edit-pattern mining over session edges.
package miner

import (
	"strings"

	"repro/internal/storage"
)

// Measure identifies one of the similarity measures of §4.3.
type Measure int

// Similarity measures.
const (
	// MeasureText is trigram similarity over the raw query text.
	MeasureText Measure = iota
	// MeasureFeatures is Jaccard similarity over the feature sets.
	MeasureFeatures
	// MeasureTemplate is similarity of the constant-masked templates (1.0 for
	// identical templates, otherwise trigram similarity of the templates —
	// "parse tree similarity after removing the constants" per §4.3).
	MeasureTemplate
	// MeasureOutput is Jaccard similarity over sampled output rows, comparing
	// queries as black boxes (§4.1).
	MeasureOutput
)

// String returns the measure's name.
func (m Measure) String() string {
	switch m {
	case MeasureText:
		return "text"
	case MeasureFeatures:
		return "features"
	case MeasureTemplate:
		return "template"
	case MeasureOutput:
		return "output"
	default:
		return "unknown"
	}
}

// Similarity computes the chosen measure between two stored queries. All
// measures return values in [0, 1], 1 meaning identical.
func Similarity(m Measure, a, b *storage.QueryRecord) float64 {
	switch m {
	case MeasureText:
		return trigramSimilarity(strings.ToLower(a.Canonical), strings.ToLower(b.Canonical))
	case MeasureFeatures:
		return jaccardStrings(a.Features, b.Features)
	case MeasureTemplate:
		if a.Fingerprint == b.Fingerprint {
			return 1
		}
		return trigramSimilarity(strings.ToLower(a.Template), strings.ToLower(b.Template))
	case MeasureOutput:
		return outputSimilarity(a.Sample, b.Sample)
	default:
		return 0
	}
}

// CompositeWeights holds the weights of a weighted combination of measures,
// the ranking-function composition question raised in §2.3.
type CompositeWeights struct {
	Text     float64
	Features float64
	Template float64
	Output   float64
}

// DefaultWeights emphasises structural similarity with a small contribution
// from output overlap.
func DefaultWeights() CompositeWeights {
	return CompositeWeights{Text: 0.1, Features: 0.5, Template: 0.3, Output: 0.1}
}

// CompositeSimilarity combines the individual measures with the given
// weights, normalising by the total weight.
func CompositeSimilarity(w CompositeWeights, a, b *storage.QueryRecord) float64 {
	total := w.Text + w.Features + w.Template + w.Output
	if total == 0 {
		return 0
	}
	sum := w.Text*Similarity(MeasureText, a, b) +
		w.Features*Similarity(MeasureFeatures, a, b) +
		w.Template*Similarity(MeasureTemplate, a, b) +
		w.Output*Similarity(MeasureOutput, a, b)
	return sum / total
}

// jaccardStrings is Jaccard similarity of two string sets.
func jaccardStrings(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	union := len(set)
	for _, y := range b {
		if set[y] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// trigramSimilarity is Jaccard similarity over character trigrams, a cheap
// and robust string similarity for SQL text.
func trigramSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	ta := trigrams(a)
	tb := trigrams(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	s = strings.Join(strings.Fields(s), " ")
	out := make(map[string]bool)
	if len(s) < 3 {
		if s != "" {
			out[s] = true
		}
		return out
	}
	for i := 0; i+3 <= len(s); i++ {
		out[s[i:i+3]] = true
	}
	return out
}

// outputSimilarity compares two output samples as sets of stringified rows.
// Queries without samples have zero output similarity to anything.
func outputSimilarity(a, b *storage.OutputSample) float64 {
	if a == nil || b == nil {
		return 0
	}
	if len(a.Rows) == 0 && len(b.Rows) == 0 {
		return 1
	}
	rowsA := make([]string, len(a.Rows))
	for i, r := range a.Rows {
		rowsA[i] = strings.Join(r, "\x1f")
	}
	rowsB := make([]string, len(b.Rows))
	for i, r := range b.Rows {
		rowsB[i] = strings.Join(r, "\x1f")
	}
	return jaccardStrings(rowsA, rowsB)
}

// PairwiseMatrix computes the full symmetric similarity matrix for the given
// records under one measure. It is used by the clustering algorithms and by
// the E7 similarity-measure ablation.
func PairwiseMatrix(m Measure, records []*storage.QueryRecord) [][]float64 {
	n := len(records)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := Similarity(m, records[i], records[j])
			out[i][j] = s
			out[j][i] = s
		}
	}
	return out
}
