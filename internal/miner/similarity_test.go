package miner

import (
	"testing"

	"repro/internal/storage"
)

func rec(t testing.TB, text string) *storage.QueryRecord {
	t.Helper()
	r, err := storage.NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
	}
	return r
}

func TestSimilaritySelfIsOne(t *testing.T) {
	q := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 18")
	for _, m := range []Measure{MeasureText, MeasureFeatures, MeasureTemplate} {
		if s := Similarity(m, q, q); s != 1.0 {
			t.Errorf("%v self-similarity = %v, want 1", m, s)
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	queries := []string{
		"SELECT temp FROM WaterTemp WHERE temp < 18",
		"SELECT temp FROM WaterTemp WHERE temp < 22",
		"SELECT salinity FROM WaterSalinity",
		"SELECT city, state FROM CityLocations WHERE pop > 10000",
	}
	var records []*storage.QueryRecord
	for _, q := range queries {
		records = append(records, rec(t, q))
	}
	for _, m := range []Measure{MeasureText, MeasureFeatures, MeasureTemplate, MeasureOutput} {
		for i := range records {
			for j := range records {
				s := Similarity(m, records[i], records[j])
				if s < 0 || s > 1 {
					t.Errorf("%v similarity out of range: %v", m, s)
				}
			}
		}
	}
}

func TestTemplateSimilarityIgnoresConstants(t *testing.T) {
	a := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 18")
	b := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 95")
	if s := Similarity(MeasureTemplate, a, b); s != 1.0 {
		t.Errorf("template similarity = %v, want 1 (same template)", s)
	}
	// Text similarity is below 1 because the constants differ.
	if s := Similarity(MeasureText, a, b); s >= 1.0 {
		t.Errorf("text similarity = %v, want < 1", s)
	}
}

func TestFeatureSimilarityOrdering(t *testing.T) {
	base := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 18")
	near := rec(t, "SELECT temp, lake FROM WaterTemp WHERE temp < 18")
	far := rec(t, "SELECT ra, dec FROM Stars WHERE magnitude < 6")
	sNear := Similarity(MeasureFeatures, base, near)
	sFar := Similarity(MeasureFeatures, base, far)
	if sNear <= sFar {
		t.Errorf("feature similarity ordering wrong: near=%v far=%v", sNear, sFar)
	}
	if sFar != 0 {
		t.Errorf("unrelated queries should have 0 feature similarity, got %v", sFar)
	}
}

func TestOutputSimilarity(t *testing.T) {
	a := rec(t, "SELECT lake FROM WaterTemp")
	b := rec(t, "SELECT lake FROM WaterTemp WHERE temp < 100")
	c := rec(t, "SELECT lake FROM WaterTemp WHERE temp < 0")
	a.Sample = &storage.OutputSample{Rows: [][]string{{"Lake Washington"}, {"Lake Union"}}}
	b.Sample = &storage.OutputSample{Rows: [][]string{{"Lake Washington"}, {"Lake Union"}}}
	c.Sample = &storage.OutputSample{Rows: [][]string{}}
	if s := Similarity(MeasureOutput, a, b); s != 1.0 {
		t.Errorf("identical samples similarity = %v, want 1", s)
	}
	if s := Similarity(MeasureOutput, a, c); s != 0.0 {
		t.Errorf("disjoint samples similarity = %v, want 0", s)
	}
	// Missing samples yield zero similarity rather than an error.
	d := rec(t, "SELECT lake FROM WaterTemp")
	if s := Similarity(MeasureOutput, a, d); s != 0.0 {
		t.Errorf("missing sample similarity = %v, want 0", s)
	}
}

func TestCompositeSimilarity(t *testing.T) {
	a := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 18")
	b := rec(t, "SELECT temp FROM WaterTemp WHERE temp < 22")
	c := rec(t, "SELECT ra FROM Stars")
	w := DefaultWeights()
	sab := CompositeSimilarity(w, a, b)
	sac := CompositeSimilarity(w, a, c)
	if sab <= sac {
		t.Errorf("composite ordering wrong: %v vs %v", sab, sac)
	}
	if sab < 0 || sab > 1 {
		t.Errorf("composite out of range: %v", sab)
	}
	if s := CompositeSimilarity(CompositeWeights{}, a, b); s != 0 {
		t.Errorf("zero weights should give 0, got %v", s)
	}
}

func TestPairwiseMatrixSymmetric(t *testing.T) {
	records := []*storage.QueryRecord{
		rec(t, "SELECT temp FROM WaterTemp"),
		rec(t, "SELECT salinity FROM WaterSalinity"),
		rec(t, "SELECT temp FROM WaterTemp WHERE temp < 18"),
	}
	m := PairwiseMatrix(MeasureFeatures, records)
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal[%d] = %v, want 1", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("matrix not symmetric at %d,%d", i, j)
			}
		}
	}
}

func TestMeasureString(t *testing.T) {
	names := map[Measure]string{
		MeasureText: "text", MeasureFeatures: "features",
		MeasureTemplate: "template", MeasureOutput: "output", Measure(99): "unknown",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Measure(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestTrigramSimilarityEdgeCases(t *testing.T) {
	if s := trigramSimilarity("", ""); s != 1 {
		t.Errorf("empty strings = %v, want 1", s)
	}
	if s := trigramSimilarity("ab", "ab"); s != 1 {
		t.Errorf("short equal strings = %v, want 1", s)
	}
	if s := trigramSimilarity("abc", ""); s != 0 {
		t.Errorf("one empty = %v, want 0", s)
	}
}
