package pgwire

import (
	"context"
	"net"
	"testing"
)

// benchProxy starts a fake backend and a proxy over it, returning a connected
// frontend. sink nil = pure splice (the overhead baseline).
func benchProxy(b *testing.B, sink Sink) *FrontendConn {
	b.Helper()
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(backend.Close)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	p := NewProxy(sink, Config{Backend: backend.Addr()})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Serve(ctx, ln)
	}()
	b.Cleanup(func() {
		cancel()
		<-done
		p.Close()
	})

	fe, err := DialFrontend(ln.Addr().String(), "bench", "benchdb")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { fe.Close() })
	return fe
}

const benchQuery = "SELECT lake, temp FROM WaterTemp WHERE temp > 5 AND loc_x = 10"

// BenchmarkProxySplice measures a full simple-query round trip through the
// proxy with capture disabled: the pure splice cost (codec, re-framing, two
// socket hops) on top of the client/backend round trip itself.
func BenchmarkProxySplice(b *testing.B) {
	fe := benchProxy(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fe.SimpleQuery(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProxyCaptureOverhead is the same round trip with capture on (a
// no-op sink behind the default async queue): the delta against
// BenchmarkProxySplice is what statement capture costs a proxied session.
func BenchmarkProxyCaptureOverhead(b *testing.B) {
	discard := SinkFunc(func(context.Context, []Captured) error { return nil })
	fe := benchProxy(b, discard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fe.SimpleQuery(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}
