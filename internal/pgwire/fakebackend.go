package pgwire

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
)

// FakeBackend is an in-process server speaking enough of the v3 protocol for
// the proxy's tests, benchmarks and demo mode: trust authentication, fixed
// parameter statuses, deterministic responses to simple and extended-protocol
// messages. It never inspects SQL semantics — every statement "succeeds" —
// so byte streams through the proxy can be compared against direct
// connections exactly.
type FakeBackend struct {
	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	// Statements counts statements the backend saw (Query messages count
	// once regardless of how many statements the string holds — the fake
	// backend answers per message, like a single CommandComplete server).
	Statements atomic.Int64
}

// NewFakeBackend starts a fake backend on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewFakeBackend(addr string) (*FakeBackend, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b := &FakeBackend{ln: ln}
	b.wg.Add(1)
	go b.acceptLoop()
	return b, nil
}

// Addr returns the backend's listen address.
func (b *FakeBackend) Addr() string { return b.ln.Addr().String() }

// Close stops the listener and waits for connection handlers to finish.
func (b *FakeBackend) Close() {
	b.closed.Store(true)
	b.ln.Close()
	b.wg.Wait()
}

func (b *FakeBackend) acceptLoop() {
	defer b.wg.Done()
	for {
		conn, err := b.ln.Accept()
		if err != nil {
			return
		}
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			defer conn.Close()
			b.serveConn(conn)
		}()
	}
}

// serveConn handles one connection: startup, a canned authentication
// exchange, then the command cycle.
func (b *FakeBackend) serveConn(conn net.Conn) {
	r := bufio.NewReader(conn)
	var startup *StartupMessage
	for {
		msg, err := ReadStartup(r)
		if err != nil {
			return
		}
		if msg.IsSSLRequest() || msg.IsGSSEncRequest() {
			if _, err := conn.Write([]byte{'N'}); err != nil {
				return
			}
			continue
		}
		if msg.IsCancelRequest() {
			return
		}
		startup = msg
		break
	}

	// Trust auth, a deterministic parameter set, a fixed cancellation key.
	var greeting []byte
	greeting = append(greeting, authenticationOK()...)
	greeting = append(greeting, parameterStatus("server_version", "15.0 (cqms-fake)")...)
	greeting = append(greeting, parameterStatus("client_encoding", "UTF8")...)
	greeting = append(greeting, parameterStatus("session_authorization", startup.User())...)
	greeting = append(greeting, backendKeyData(4242, 424242)...)
	greeting = append(greeting, readyForQuery('I')...)
	if _, err := conn.Write(greeting); err != nil {
		return
	}

	w := bufio.NewWriter(conn)
	for {
		msg, err := ReadMessage(r)
		if err != nil {
			return
		}
		switch msg.Type {
		case typeQuery:
			b.Statements.Add(1)
			sql, err := ParseQuery(msg.Payload)
			if err != nil {
				w.Write(errorResponse("ERROR", "08P01", "malformed Query"))
				w.Write(readyForQuery('I'))
			} else if strings.TrimSpace(sql) == "" {
				w.Write(buildMessage(typeEmptyQuery, nil))
				w.Write(readyForQuery('I'))
			} else {
				// One CommandComplete per statement in the string, as the
				// real backend does for multi-statement simple queries.
				for i, stmt := range SplitStatements(sql) {
					w.Write(commandComplete(completionTag(stmt, i)))
				}
				w.Write(readyForQuery('I'))
			}
		case typeParse:
			w.Write(buildMessage(typeParseComplete, nil))
		case typeBind:
			w.Write(buildMessage(typeBindComplete, nil))
		case typeDescribe:
			// NoData keeps drivers happy without modelling result shapes.
			w.Write(buildMessage(typeNoData, nil))
		case typeExecute:
			b.Statements.Add(1)
			w.Write(commandComplete("SELECT 0"))
		case typeClose:
			w.Write(buildMessage(typeCloseComplete, nil))
		case typeSync:
			w.Write(readyForQuery('I'))
		case typeFlush:
			// Nothing buffered beyond what the loop flushes anyway.
		case typeTerminate:
			w.Flush()
			return
		default:
			// Password messages and anything else during the session:
			// acknowledge nothing, keep the cycle alive.
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Additional frontend types only the backend needs to recognise.
const (
	typeDescribe = 'D'
	typeSync     = 'S'
	typeFlush    = 'H'
)

// completionTag derives a deterministic CommandComplete tag from the
// statement text.
func completionTag(stmt string, i int) string {
	verb := strings.ToUpper(stmt)
	if sp := strings.IndexAny(verb, " \t\r\n"); sp > 0 {
		verb = verb[:sp]
	}
	switch verb {
	case "SELECT":
		return "SELECT 1"
	case "INSERT":
		return "INSERT 0 1"
	case "UPDATE", "DELETE":
		return verb + " 1"
	default:
		return fmt.Sprintf("%s %d", verb, i)
	}
}
