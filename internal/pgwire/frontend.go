package pgwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// FrontendConn is a minimal Postgres-protocol client: enough of the v3
// frontend to drive the proxy from tests and from cqms-workload's proxy
// replay mode (startup, simple queries, extended-protocol prepare/execute).
// It is not a general driver — it assumes trust authentication, as the fake
// backend and typical local test setups provide.
type FrontendConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// DialFrontend connects, performs the startup handshake as user/database and
// waits for ReadyForQuery.
func DialFrontend(addr, user, database string) (*FrontendConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	f := &FrontendConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if err := f.startup(user, database); err != nil {
		conn.Close()
		return nil, err
	}
	return f, nil
}

// startup sends the startup packet and consumes the authentication /
// parameter exchange until ReadyForQuery.
func (f *FrontendConn) startup(user, database string) error {
	var body []byte
	body = binary.BigEndian.AppendUint32(body, ProtocolVersion3)
	appendParam := func(k, v string) {
		body = append(body, k...)
		body = append(body, 0)
		body = append(body, v...)
		body = append(body, 0)
	}
	appendParam("user", user)
	if database != "" {
		appendParam("database", database)
	}
	body = append(body, 0)
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(body)+4))
	if _, err := f.conn.Write(append(head[:], body...)); err != nil {
		return err
	}
	return f.waitReady()
}

// waitReady consumes backend messages until ReadyForQuery, surfacing any
// ErrorResponse on the way.
func (f *FrontendConn) waitReady() error {
	for {
		msg, err := ReadMessage(f.r)
		if err != nil {
			return err
		}
		switch msg.Type {
		case typeReadyForQuery:
			return nil
		case typeErrorResponse:
			return fmt.Errorf("pgwire: backend error: %s", errorMessageField(msg.Payload))
		}
	}
}

// SimpleQuery sends one simple-protocol Query message and consumes the
// response cycle through ReadyForQuery.
func (f *FrontendConn) SimpleQuery(sql string) error {
	payload := make([]byte, 0, len(sql)+1)
	payload = append(payload, sql...)
	payload = append(payload, 0)
	if _, err := (Message{Type: typeQuery, Payload: payload}).WriteTo(f.w); err != nil {
		return err
	}
	if err := f.w.Flush(); err != nil {
		return err
	}
	return f.waitReady()
}

// PrepareExec runs one extended-protocol round trip: Parse (under the given
// statement name), Bind to the unnamed portal, Execute, Sync — then consumes
// through ReadyForQuery. An empty name uses the unnamed statement. Passing
// parse=false skips the Parse message, re-executing a statement prepared
// earlier (how drivers reuse named statements).
func (f *FrontendConn) PrepareExec(name, sql string, parse bool) error {
	if parse {
		var p []byte
		p = append(p, name...)
		p = append(p, 0)
		p = append(p, sql...)
		p = append(p, 0)
		p = binary.BigEndian.AppendUint16(p, 0) // no parameter type OIDs
		if _, err := (Message{Type: typeParse, Payload: p}).WriteTo(f.w); err != nil {
			return err
		}
	}
	var b []byte
	b = append(b, 0) // unnamed portal
	b = append(b, name...)
	b = append(b, 0)
	b = binary.BigEndian.AppendUint16(b, 0) // no format codes
	b = binary.BigEndian.AppendUint16(b, 0) // no parameters
	b = binary.BigEndian.AppendUint16(b, 0) // no result format codes
	if _, err := (Message{Type: typeBind, Payload: b}).WriteTo(f.w); err != nil {
		return err
	}
	var e []byte
	e = append(e, 0)                        // unnamed portal
	e = binary.BigEndian.AppendUint32(e, 0) // no row limit
	if _, err := (Message{Type: typeExecute, Payload: e}).WriteTo(f.w); err != nil {
		return err
	}
	if _, err := (Message{Type: typeSync, Payload: nil}).WriteTo(f.w); err != nil {
		return err
	}
	if err := f.w.Flush(); err != nil {
		return err
	}
	return f.waitReady()
}

// CloseStatement sends Close for a named prepared statement followed by Sync.
func (f *FrontendConn) CloseStatement(name string) error {
	payload := make([]byte, 0, len(name)+2)
	payload = append(payload, 'S')
	payload = append(payload, name...)
	payload = append(payload, 0)
	if _, err := (Message{Type: typeClose, Payload: payload}).WriteTo(f.w); err != nil {
		return err
	}
	if _, err := (Message{Type: typeSync, Payload: nil}).WriteTo(f.w); err != nil {
		return err
	}
	if err := f.w.Flush(); err != nil {
		return err
	}
	return f.waitReady()
}

// Close sends Terminate and closes the socket.
func (f *FrontendConn) Close() error {
	_, _ = (Message{Type: typeTerminate, Payload: nil}).WriteTo(f.w)
	_ = f.w.Flush()
	return f.conn.Close()
}

// errorMessageField extracts the human-readable message ('M') field from an
// ErrorResponse payload.
func errorMessageField(payload []byte) string {
	rest := payload
	for len(rest) > 0 && rest[0] != 0 {
		t := rest[0]
		v, n, ok := cstring(rest[1:])
		if !ok {
			break
		}
		if t == 'M' {
			return v
		}
		rest = rest[1+n:]
	}
	return "unknown error"
}
