// Package pgwire implements a PostgreSQL wire-protocol (v3) man-in-the-middle
// proxy that captures the query log passively: clients connect to the proxy
// with any Postgres driver (psql, JDBC, a BI tool), the proxy splices bytes
// between client and backend unchanged, and every statement observed on the
// client-side stream — simple-protocol Query messages and extended-protocol
// Parse/Bind/Execute sequences — is submitted asynchronously into the CQMS
// through the batch path.
//
// This realises the paper's core premise that a CQMS "collects query logs as
// a side effect of normal DBMS use" (Khoussainova et al., CIDR 2009 §1):
// nothing about the client or the backend changes, and a blocked or slow CQMS
// can never stall the proxied session — capture is a bounded queue with
// drop-with-counter backpressure.
//
// The package is organised as:
//
//   - message.go: the v3 message codec (startup packet + typed framed
//     messages, plus the frontend/backend payload builders and parsers)
//   - tracker.go: per-connection statement tracking (multi-statement Query
//     splitting; named prepared statements so an Execute is attributed to
//     the SQL text of the statement its portal was bound from)
//   - sink.go: where captured statements go (embedded core.CQMS, remote
//     cqms-server via internal/client) behind an async bounded queue
//   - proxy.go: the accept/handshake/splice loops
//   - fakebackend.go, frontend.go: an in-process backend speaking enough of
//     the protocol for tests and demos, and a minimal frontend used by the
//     tests and cqms-workload's proxy replay mode
package pgwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol version numbers seen in startup packets (the int32 after the
// length). Regular startups carry the protocol version proper; the three
// magic values request SSL, GSSAPI encryption or query cancellation instead.
const (
	ProtocolVersion3 = 196608   // 3 << 16
	sslRequestCode   = 80877103 // (1234 << 16) | 5679
	cancelRequest    = 80877102 // (1234 << 16) | 5678
	gssEncRequest    = 80877104 // (1234 << 16) | 5680
)

// maxStartupBytes bounds a startup packet; the Postgres server uses 10000.
const maxStartupBytes = 10000

// maxMessageBytes bounds one framed message so a corrupt length prefix cannot
// make the proxy allocate unbounded memory. 1 GiB matches the backend's own
// message size ceiling.
const maxMessageBytes = 1 << 30

// Frontend message type bytes the proxy decodes. Everything else (password
// messages, CopyData, Describe, Flush, Sync, ...) is spliced through without
// interpretation.
const (
	typeQuery     = 'Q'
	typeParse     = 'P'
	typeBind      = 'B'
	typeExecute   = 'E'
	typeClose     = 'C'
	typeTerminate = 'X'
)

// Backend message type bytes used by the fake backend and the error writer.
const (
	typeAuth             = 'R'
	typeParameterStatus  = 'S'
	typeBackendKeyData   = 'K'
	typeReadyForQuery    = 'Z'
	typeRowDescription   = 'T'
	typeDataRow          = 'D'
	typeCommandComplete  = 'C'
	typeEmptyQuery       = 'I'
	typeErrorResponse    = 'E'
	typeParseComplete    = '1'
	typeBindComplete     = '2'
	typeCloseComplete    = '3'
	typeNoData           = 'n'
	typeParamDescription = 't'
)

// StartupMessage is the first packet of a connection: no type byte, an int32
// length (including itself), an int32 protocol version and, for a regular v3
// startup, a sequence of key\0value\0 parameter pairs closed by a final \0.
type StartupMessage struct {
	Protocol uint32
	// Params holds the startup parameters of a regular startup: at least
	// "user", usually "database", plus driver options.
	Params map[string]string
	// Raw is the packet exactly as read (length prefix included), so the
	// proxy can forward it to the backend byte-identically.
	Raw []byte
}

// IsSSLRequest reports whether the packet is an SSLRequest probe.
func (m *StartupMessage) IsSSLRequest() bool { return m.Protocol == sslRequestCode }

// IsGSSEncRequest reports whether the packet is a GSSENCRequest probe.
func (m *StartupMessage) IsGSSEncRequest() bool { return m.Protocol == gssEncRequest }

// IsCancelRequest reports whether the packet is a CancelRequest.
func (m *StartupMessage) IsCancelRequest() bool { return m.Protocol == cancelRequest }

// User returns the startup "user" parameter.
func (m *StartupMessage) User() string { return m.Params["user"] }

// Database returns the startup "database" parameter, defaulting to the user
// name as the backend itself does.
func (m *StartupMessage) Database() string {
	if db, ok := m.Params["database"]; ok && db != "" {
		return db
	}
	return m.Params["user"]
}

// ReadStartup reads one startup-phase packet. It handles short reads (the
// packet may arrive fragmented across TCP segments) and rejects lengths
// outside the protocol's bounds.
func ReadStartup(r io.Reader) (*StartupMessage, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(head[:])
	if length < 8 || length > maxStartupBytes {
		return nil, fmt.Errorf("pgwire: startup packet length %d out of range", length)
	}
	raw := make([]byte, length)
	copy(raw, head[:])
	if _, err := io.ReadFull(r, raw[4:]); err != nil {
		return nil, fmt.Errorf("pgwire: short startup packet: %w", err)
	}
	msg := &StartupMessage{
		Protocol: binary.BigEndian.Uint32(raw[4:8]),
		Raw:      raw,
	}
	switch msg.Protocol {
	case sslRequestCode, gssEncRequest, cancelRequest:
		return msg, nil
	}
	if msg.Protocol>>16 != 3 {
		return nil, fmt.Errorf("pgwire: unsupported protocol version %d.%d",
			msg.Protocol>>16, msg.Protocol&0xffff)
	}
	msg.Params = map[string]string{}
	rest := raw[8:]
	for len(rest) > 0 && rest[0] != 0 {
		key, n, ok := cstring(rest)
		if !ok {
			return nil, errors.New("pgwire: malformed startup parameter key")
		}
		rest = rest[n:]
		val, n, ok := cstring(rest)
		if !ok {
			return nil, errors.New("pgwire: malformed startup parameter value")
		}
		rest = rest[n:]
		msg.Params[key] = val
	}
	return msg, nil
}

// Message is one framed protocol message after the startup phase: a type
// byte, then an int32 length covering the length field and payload (not the
// type byte), then the payload.
type Message struct {
	Type    byte
	Payload []byte
}

// ReadMessage reads one framed message, handling fragmentation across reads.
// The payload buffer is reused by the caller's discretion; Read allocates a
// fresh slice per message.
func ReadMessage(r io.Reader) (Message, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return Message{}, err
	}
	length := binary.BigEndian.Uint32(head[1:5])
	if length < 4 || length > maxMessageBytes {
		return Message{}, fmt.Errorf("pgwire: message %q length %d out of range", head[0], length)
	}
	payload := make([]byte, length-4)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Message{}, fmt.Errorf("pgwire: short %q message: %w", head[0], err)
	}
	return Message{Type: head[0], Payload: payload}, nil
}

// WriteTo writes the message in wire framing. The frame written is exactly
// what ReadMessage consumed, so read-then-write splicing is byte-identical.
func (m Message) WriteTo(w io.Writer) (int64, error) {
	var head [5]byte
	head[0] = m.Type
	binary.BigEndian.PutUint32(head[1:5], uint32(len(m.Payload)+4))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	n, err := w.Write(m.Payload)
	return int64(n) + 5, err
}

// cstring extracts a NUL-terminated string from b, returning the string, the
// number of bytes consumed (terminator included) and whether a terminator was
// found.
func cstring(b []byte) (string, int, bool) {
	for i, c := range b {
		if c == 0 {
			return string(b[:i]), i + 1, true
		}
	}
	return "", 0, false
}

// ---------------------------------------------------------------------------
// Frontend payload parsers (what the proxy decodes off the client stream)
// ---------------------------------------------------------------------------

// ParseQuery decodes a simple-protocol Query ('Q') payload: the query string.
func ParseQuery(payload []byte) (string, error) {
	s, _, ok := cstring(payload)
	if !ok {
		return "", errors.New("pgwire: Query without terminator")
	}
	return s, nil
}

// ParseParse decodes a Parse ('P') payload: destination prepared-statement
// name (empty = the unnamed statement) and the query text. The parameter-type
// OIDs that follow are ignored.
func ParseParse(payload []byte) (name, query string, err error) {
	name, n, ok := cstring(payload)
	if !ok {
		return "", "", errors.New("pgwire: Parse without statement name terminator")
	}
	query, _, ok = cstring(payload[n:])
	if !ok {
		return "", "", errors.New("pgwire: Parse without query terminator")
	}
	return name, query, nil
}

// ParseBind decodes a Bind ('B') payload: destination portal name and source
// prepared-statement name. Parameter formats and values are ignored.
func ParseBind(payload []byte) (portal, statement string, err error) {
	portal, n, ok := cstring(payload)
	if !ok {
		return "", "", errors.New("pgwire: Bind without portal terminator")
	}
	statement, _, ok = cstring(payload[n:])
	if !ok {
		return "", "", errors.New("pgwire: Bind without statement terminator")
	}
	return portal, statement, nil
}

// ParseExecute decodes an Execute ('E') payload: the portal name. The row
// limit that follows is ignored.
func ParseExecute(payload []byte) (portal string, err error) {
	portal, _, ok := cstring(payload)
	if !ok {
		return "", errors.New("pgwire: Execute without portal terminator")
	}
	return portal, nil
}

// ParseClose decodes a Close ('C') payload: 'S' (statement) or 'P' (portal)
// and the name.
func ParseClose(payload []byte) (kind byte, name string, err error) {
	if len(payload) < 1 {
		return 0, "", errors.New("pgwire: empty Close payload")
	}
	name, _, ok := cstring(payload[1:])
	if !ok {
		return 0, "", errors.New("pgwire: Close without name terminator")
	}
	return payload[0], name, nil
}

// ---------------------------------------------------------------------------
// Backend payload builders (used by the fake backend and the proxy's own
// pre-splice error reporting)
// ---------------------------------------------------------------------------

// buildMessage frames a payload as a typed message.
func buildMessage(t byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	out[0] = t
	binary.BigEndian.PutUint32(out[1:5], uint32(len(payload)+4))
	copy(out[5:], payload)
	return out
}

// authenticationOK is the AuthenticationOk message ('R' with code 0).
func authenticationOK() []byte {
	var payload [4]byte
	return buildMessage(typeAuth, payload[:])
}

// parameterStatus reports one server parameter to the client.
func parameterStatus(key, value string) []byte {
	payload := make([]byte, 0, len(key)+len(value)+2)
	payload = append(payload, key...)
	payload = append(payload, 0)
	payload = append(payload, value...)
	payload = append(payload, 0)
	return buildMessage(typeParameterStatus, payload)
}

// backendKeyData carries the cancellation key (fixed in the fake backend so
// responses are deterministic).
func backendKeyData(pid, secret uint32) []byte {
	var payload [8]byte
	binary.BigEndian.PutUint32(payload[0:4], pid)
	binary.BigEndian.PutUint32(payload[4:8], secret)
	return buildMessage(typeBackendKeyData, payload[:])
}

// readyForQuery signals the end of a command cycle; status is 'I' (idle),
// 'T' (in transaction) or 'E' (failed transaction).
func readyForQuery(status byte) []byte {
	return buildMessage(typeReadyForQuery, []byte{status})
}

// commandComplete closes one command with its tag ("SELECT 1", ...).
func commandComplete(tag string) []byte {
	payload := make([]byte, 0, len(tag)+1)
	payload = append(payload, tag...)
	payload = append(payload, 0)
	return buildMessage(typeCommandComplete, payload)
}

// errorResponse builds a minimal ErrorResponse with severity, SQLSTATE code
// and message fields.
func errorResponse(severity, code, message string) []byte {
	var payload []byte
	appendField := func(t byte, v string) {
		payload = append(payload, t)
		payload = append(payload, v...)
		payload = append(payload, 0)
	}
	appendField('S', severity)
	appendField('V', severity)
	appendField('C', code)
	appendField('M', message)
	payload = append(payload, 0)
	return buildMessage(typeErrorResponse, payload)
}
