package pgwire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/iotest"
)

// buildStartup frames a regular v3 startup packet with the given parameters
// (in the order given, as key/value pairs).
func buildStartup(pairs ...string) []byte {
	var body []byte
	body = binary.BigEndian.AppendUint32(body, ProtocolVersion3)
	for i := 0; i+1 < len(pairs); i += 2 {
		body = append(body, pairs[i]...)
		body = append(body, 0)
		body = append(body, pairs[i+1]...)
		body = append(body, 0)
	}
	body = append(body, 0)
	out := binary.BigEndian.AppendUint32(nil, uint32(len(body)+4))
	return append(out, body...)
}

func TestReadStartupRegular(t *testing.T) {
	raw := buildStartup("user", "alice", "database", "limnology", "application_name", "psql")
	msg, err := ReadStartup(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadStartup: %v", err)
	}
	if msg.Protocol != ProtocolVersion3 {
		t.Errorf("protocol = %d, want %d", msg.Protocol, ProtocolVersion3)
	}
	if msg.User() != "alice" {
		t.Errorf("User() = %q, want alice", msg.User())
	}
	if msg.Database() != "limnology" {
		t.Errorf("Database() = %q, want limnology", msg.Database())
	}
	if msg.Params["application_name"] != "psql" {
		t.Errorf("application_name = %q, want psql", msg.Params["application_name"])
	}
	if !bytes.Equal(msg.Raw, raw) {
		t.Error("Raw does not round-trip the packet byte-identically")
	}
	if msg.IsSSLRequest() || msg.IsGSSEncRequest() || msg.IsCancelRequest() {
		t.Error("regular startup misclassified as a special request")
	}
}

func TestReadStartupDatabaseDefaultsToUser(t *testing.T) {
	msg, err := ReadStartup(bytes.NewReader(buildStartup("user", "bob")))
	if err != nil {
		t.Fatalf("ReadStartup: %v", err)
	}
	if msg.Database() != "bob" {
		t.Errorf("Database() = %q, want user fallback bob", msg.Database())
	}
}

func TestReadStartupSpecialRequests(t *testing.T) {
	special := []struct {
		name  string
		code  uint32
		check func(*StartupMessage) bool
	}{
		{"ssl", sslRequestCode, (*StartupMessage).IsSSLRequest},
		{"gss", gssEncRequest, (*StartupMessage).IsGSSEncRequest},
		{"cancel", cancelRequest, (*StartupMessage).IsCancelRequest},
	}
	for _, tc := range special {
		t.Run(tc.name, func(t *testing.T) {
			raw := binary.BigEndian.AppendUint32(nil, 8)
			raw = binary.BigEndian.AppendUint32(raw, tc.code)
			if tc.name == "cancel" {
				// CancelRequest carries pid+secret after the code.
				raw = binary.BigEndian.AppendUint32(raw[:0], 16)
				raw = binary.BigEndian.AppendUint32(raw, tc.code)
				raw = binary.BigEndian.AppendUint32(raw, 1234)
				raw = binary.BigEndian.AppendUint32(raw, 5678)
			}
			msg, err := ReadStartup(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadStartup: %v", err)
			}
			if !tc.check(msg) {
				t.Errorf("special request %s not recognised", tc.name)
			}
		})
	}
}

func TestReadStartupFragmented(t *testing.T) {
	// One byte per Read call: the reader must reassemble the packet.
	raw := buildStartup("user", "carol", "database", "oceanography")
	msg, err := ReadStartup(iotest.OneByteReader(bytes.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadStartup over fragmented stream: %v", err)
	}
	if msg.User() != "carol" || msg.Database() != "oceanography" {
		t.Errorf("fragmented startup decoded as user=%q db=%q", msg.User(), msg.Database())
	}
}

func TestReadStartupRejectsBadLengths(t *testing.T) {
	for _, length := range []uint32{0, 7, maxStartupBytes + 1} {
		raw := binary.BigEndian.AppendUint32(nil, length)
		raw = append(raw, make([]byte, 8)...)
		if _, err := ReadStartup(bytes.NewReader(raw)); err == nil {
			t.Errorf("length %d: want error, got nil", length)
		}
	}
}

func TestReadStartupRejectsUnknownProtocol(t *testing.T) {
	raw := binary.BigEndian.AppendUint32(nil, 8)
	raw = binary.BigEndian.AppendUint32(raw, 2<<16) // protocol 2.0
	if _, err := ReadStartup(bytes.NewReader(raw)); err == nil {
		t.Error("protocol 2.0: want error, got nil")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{Type: typeQuery, Payload: []byte("SELECT 1\x00")},
		{Type: typeTerminate, Payload: nil},
		{Type: typeParse, Payload: []byte("stmt\x00SELECT $1\x00\x00\x00")},
	}
	for _, m := range cases {
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != int64(buf.Len()) {
			t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
		}
		wire := append([]byte(nil), buf.Bytes()...)
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("ReadMessage: %v", err)
		}
		if got.Type != m.Type || !bytes.Equal(got.Payload, m.Payload) {
			t.Errorf("round trip mismatch: got %q/%q", got.Type, got.Payload)
		}
		// Re-framing the read message must reproduce the wire bytes exactly —
		// this is what makes the proxy's splice byte-identical.
		var again bytes.Buffer
		if _, err := got.WriteTo(&again); err != nil {
			t.Fatalf("re-frame: %v", err)
		}
		if !bytes.Equal(again.Bytes(), wire) {
			t.Error("re-framed message differs from original wire bytes")
		}
	}
}

func TestReadMessageFragmented(t *testing.T) {
	m := Message{Type: typeQuery, Payload: []byte("SELECT lake FROM WaterTemp\x00")}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(iotest.OneByteReader(&buf))
	if err != nil {
		t.Fatalf("ReadMessage over fragmented stream: %v", err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Error("fragmented message payload mismatch")
	}
}

func TestReadMessageRejectsBadLength(t *testing.T) {
	raw := []byte{typeQuery, 0, 0, 0, 3} // length 3 < 4
	if _, err := ReadMessage(bytes.NewReader(raw)); err == nil {
		t.Error("length 3: want error, got nil")
	}
	huge := []byte{typeQuery, 0xff, 0xff, 0xff, 0xff}
	if _, err := ReadMessage(bytes.NewReader(huge)); err == nil {
		t.Error("oversized length: want error, got nil")
	}
}

func TestParseFrontendPayloads(t *testing.T) {
	if q, err := ParseQuery([]byte("SELECT 1\x00")); err != nil || q != "SELECT 1" {
		t.Errorf("ParseQuery = %q, %v", q, err)
	}
	if _, err := ParseQuery([]byte("no terminator")); err == nil {
		t.Error("ParseQuery without terminator: want error")
	}

	name, query, err := ParseParse([]byte("s1\x00SELECT $1\x00\x00\x00"))
	if err != nil || name != "s1" || query != "SELECT $1" {
		t.Errorf("ParseParse = %q, %q, %v", name, query, err)
	}

	portal, stmt, err := ParseBind([]byte("p1\x00s1\x00rest"))
	if err != nil || portal != "p1" || stmt != "s1" {
		t.Errorf("ParseBind = %q, %q, %v", portal, stmt, err)
	}

	if p, err := ParseExecute([]byte("p1\x00\x00\x00\x00\x00")); err != nil || p != "p1" {
		t.Errorf("ParseExecute = %q, %v", p, err)
	}

	kind, n, err := ParseClose([]byte("Sstmt\x00"))
	if err != nil || kind != 'S' || n != "stmt" {
		t.Errorf("ParseClose = %c, %q, %v", kind, n, err)
	}
	if _, _, err := ParseClose(nil); err == nil {
		t.Error("ParseClose on empty payload: want error")
	}
}

func TestErrorResponseCarriesMessageField(t *testing.T) {
	raw := errorResponse("FATAL", "08001", "cannot reach backend")
	msg, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if msg.Type != typeErrorResponse {
		t.Fatalf("type = %c, want E", msg.Type)
	}
	if got := errorMessageField(msg.Payload); got != "cannot reach backend" {
		t.Errorf("message field = %q", got)
	}
}
