package pgwire

import "repro/internal/telemetry"

// Metrics bundles the proxy's telemetry instruments. All families live in
// the cqms_proxy_* namespace on whatever registry the embedder passes in, so
// a cqms-proxy process exposes them next to the embedded system's own
// families on one /v1/metrics endpoint.
type Metrics struct {
	ConnectionsActive *telemetry.Gauge
	ConnectionsTotal  *telemetry.Counter
	DialErrors        *telemetry.Counter
	HandshakeErrors   *telemetry.Counter

	// MessagesDecoded counts client-stream messages by decoded type
	// (query, parse, bind, execute, close, other).
	messagesDecoded *telemetry.CounterVec
	msgQuery        *telemetry.Counter
	msgParse        *telemetry.Counter
	msgBind         *telemetry.Counter
	msgExecute      *telemetry.Counter
	msgClose        *telemetry.Counter
	msgOther        *telemetry.Counter

	StatementsCaptured *telemetry.Counter
	StatementsDropped  *telemetry.Counter
	SubmitErrors       *telemetry.Counter
	SubmitLatency      *telemetry.Histogram

	// SpliceBytes counts payload bytes relayed, labelled by direction:
	// frontend (client → backend) and backend (backend → client).
	spliceBytes   *telemetry.CounterVec
	BytesFrontend *telemetry.Counter
	BytesBackend  *telemetry.Counter
}

// NewMetrics registers (or re-resolves) the cqms_proxy_* families on reg.
// A nil registry gets a private one, so instrumentation is always on.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &Metrics{
		ConnectionsActive: reg.Gauge("cqms_proxy_connections_active",
			"Currently proxied frontend connections."),
		ConnectionsTotal: reg.Counter("cqms_proxy_connections_total",
			"Frontend connections accepted since start."),
		DialErrors: reg.Counter("cqms_proxy_backend_dial_errors_total",
			"Failed backend dials (the client got an ErrorResponse)."),
		HandshakeErrors: reg.Counter("cqms_proxy_handshake_errors_total",
			"Connections dropped during the startup phase (bad packet, unsupported protocol)."),
		StatementsCaptured: reg.Counter("cqms_proxy_statements_captured_total",
			"Statements observed and enqueued for CQMS submission."),
		StatementsDropped: reg.Counter("cqms_proxy_statements_dropped_total",
			"Statements observed but dropped because the capture queue was full."),
		SubmitErrors: reg.Counter("cqms_proxy_submit_errors_total",
			"Capture batches the sink failed to submit (statements in them are lost)."),
		SubmitLatency: reg.Histogram("cqms_proxy_submit_seconds",
			"Sink submission latency per capture batch.", telemetry.DefBuckets),
	}
	m.messagesDecoded = reg.CounterVec("cqms_proxy_messages_decoded_total",
		"Client-stream protocol messages relayed, by decoded type.", "type")
	m.msgQuery = m.messagesDecoded.With("query")
	m.msgParse = m.messagesDecoded.With("parse")
	m.msgBind = m.messagesDecoded.With("bind")
	m.msgExecute = m.messagesDecoded.With("execute")
	m.msgClose = m.messagesDecoded.With("close")
	m.msgOther = m.messagesDecoded.With("other")
	m.spliceBytes = reg.CounterVec("cqms_proxy_splice_bytes_total",
		"Bytes relayed through the proxy, by direction (frontend: client to backend).", "direction")
	m.BytesFrontend = m.spliceBytes.With("frontend")
	m.BytesBackend = m.spliceBytes.With("backend")
	return m
}

// countMessage records one decoded client-stream message.
func (m *Metrics) countMessage(t byte) {
	switch t {
	case typeQuery:
		m.msgQuery.Inc()
	case typeParse:
		m.msgParse.Inc()
	case typeBind:
		m.msgBind.Inc()
	case typeExecute:
		m.msgExecute.Inc()
	case typeClose:
		m.msgClose.Inc()
	default:
		m.msgOther.Inc()
	}
}
