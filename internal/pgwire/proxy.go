package pgwire

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Config configures a Proxy.
type Config struct {
	// Backend is the address of the real Postgres-protocol server the proxy
	// forwards to.
	Backend string
	// DialTimeout bounds the backend dial. Default 5s.
	DialTimeout time.Duration
	// Map converts a session's startup user/database into the CQMS identity
	// its statements are logged under. Default DefaultPrincipalMapper. The
	// mapper is carried into every Captured statement's sink submission.
	Map PrincipalMapper
	// Capture tunes the async capture queue.
	Capture CaptureConfig
	// Metrics receives the cqms_proxy_* families; nil creates a private
	// registry so instrumentation is always on.
	Metrics *telemetry.Registry

	// now overrides the capture timestamp source in tests.
	now func() time.Time
}

// Proxy is a PostgreSQL wire-protocol man-in-the-middle: it accepts frontend
// connections, performs the startup phase (rejecting SSL/GSS encryption
// probes with 'N' so the session proceeds in cleartext against the proxy,
// and passing authentication through to the backend), then splices bytes in
// both directions while decoding the client-side stream for capture.
type Proxy struct {
	cfg     Config
	capture *AsyncCapture
	metrics *Metrics
	reg     *telemetry.Registry
	start   time.Time

	active sync.WaitGroup // live connection handlers
	conns  atomic.Int64   // active connection count for Status
}

// NewProxy returns a proxy capturing into sink. A nil sink disables capture
// entirely (the proxy becomes a pure splice — used by the overhead
// benchmark's baseline).
func NewProxy(sink Sink, cfg Config) *Proxy {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Map == nil {
		cfg.Map = DefaultPrincipalMapper
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	p := &Proxy{
		cfg:     cfg,
		metrics: NewMetrics(reg),
		reg:     reg,
		start:   time.Now(),
	}
	if sink != nil {
		p.capture = NewAsyncCapture(sink, cfg.Capture, p.metrics)
	}
	return p
}

// ProxyMetrics exposes the proxy's instrument bundle (for tests and Status).
func (p *Proxy) ProxyMetrics() *Metrics { return p.metrics }

// Registry returns the telemetry registry the proxy's families live on.
func (p *Proxy) Registry() *telemetry.Registry { return p.reg }

// Serve accepts connections from ln until the context is cancelled or the
// listener fails. It blocks; cancel the context (or close the listener) to
// stop. Live sessions are allowed to finish draining when the listener
// closes; Close flushes the capture pipeline.
func (p *Proxy) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		p.metrics.ConnectionsTotal.Inc()
		p.metrics.ConnectionsActive.Inc()
		p.conns.Add(1)
		p.active.Add(1)
		go func() {
			defer func() {
				p.metrics.ConnectionsActive.Dec()
				p.conns.Add(-1)
				p.active.Done()
			}()
			p.handleConn(ctx, conn)
		}()
	}
}

// Close waits for in-flight connection handlers to return and flushes the
// capture queue into the sink. Call after Serve has returned.
func (p *Proxy) Close() {
	p.active.Wait()
	if p.capture != nil {
		p.capture.Close()
	}
}

// handleConn runs one proxied session end to end.
func (p *Proxy) handleConn(ctx context.Context, client net.Conn) {
	defer client.Close()
	clientR := bufio.NewReader(client)

	// Startup phase: answer encryption probes with 'N' (the protocol allows
	// the client to continue in cleartext or disconnect), then expect a
	// regular startup or a cancel request.
	var startup *StartupMessage
	for {
		msg, err := ReadStartup(clientR)
		if err != nil {
			p.metrics.HandshakeErrors.Inc()
			return
		}
		if msg.IsSSLRequest() || msg.IsGSSEncRequest() {
			if _, err := client.Write([]byte{'N'}); err != nil {
				p.metrics.HandshakeErrors.Inc()
				return
			}
			continue
		}
		startup = msg
		break
	}

	backend, err := net.DialTimeout("tcp", p.cfg.Backend, p.cfg.DialTimeout)
	if err != nil {
		p.metrics.DialErrors.Inc()
		// 08001 = sqlclient_unable_to_establish_sqlconnection.
		client.Write(errorResponse("FATAL", "08001",
			fmt.Sprintf("cqms-proxy: cannot reach backend %s", p.cfg.Backend)))
		return
	}
	defer backend.Close()

	// Forward the startup packet (or cancel request) verbatim.
	if _, err := backend.Write(startup.Raw); err != nil {
		return
	}
	if startup.IsCancelRequest() {
		// A cancel connection carries no further frontend traffic; relay
		// whatever the backend sends (normally: nothing, then EOF).
		io.Copy(client, backend)
		return
	}

	// From here the connection is a live session: authentication exchanges,
	// queries and results all flow through the two splice loops below. The
	// client→backend loop decodes messages for capture; the backend→client
	// loop is a plain byte relay.
	var trk *tracker
	if p.capture != nil {
		trk = newTracker(startup.User(), startup.Database(), p.cfg.now)
	}

	// Cancellation breaks both reads; otherwise teardown is driven by TCP
	// half-close so no in-flight response bytes are ever cut off: when one
	// side's stream ends, the write side towards the other peer is closed,
	// the peer sees EOF, answers what it already read, and closes — at which
	// point the opposite relay ends naturally.
	stopWatch := context.AfterFunc(ctx, func() {
		client.SetDeadline(time.Now())
		backend.SetDeadline(time.Now())
	})
	defer stopWatch()

	relayDone := make(chan struct{})
	go func() {
		defer close(relayDone)
		// Count incrementally so Status reflects live sessions, not just
		// finished ones.
		io.Copy(&countingWriter{w: client, count: p.metrics.BytesBackend}, backend)
		closeWrite(client)
	}()
	p.spliceFrontend(clientR, backend, trk)
	closeWrite(backend)
	<-relayDone
}

// closeWrite half-closes a TCP connection (signals EOF to the peer while the
// read side keeps draining).
func closeWrite(c net.Conn) {
	if cw, ok := c.(interface{ CloseWrite() error }); ok {
		_ = cw.CloseWrite()
	}
}

// countingWriter adds every written byte to a counter.
type countingWriter struct {
	w     io.Writer
	count *telemetry.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.count.Add(uint64(n))
	return n, err
}

// spliceFrontend relays the client's message stream to the backend while
// decoding it for capture. Forwarding is byte-identical: each message is
// re-framed with exactly the header that was read.
func (p *Proxy) spliceFrontend(from io.Reader, to io.Writer, trk *tracker) {
	bw := bufio.NewWriter(to)
	for {
		msg, err := ReadMessage(from)
		if err != nil {
			bw.Flush()
			return
		}
		p.metrics.countMessage(msg.Type)
		n, err := msg.WriteTo(bw)
		p.metrics.BytesFrontend.Add(uint64(n))
		if err != nil {
			return
		}
		// Queries expect a response; flush before the backend can answer.
		// (Batched extended-protocol messages flush on Sync/Flush or any
		// other non-buffered type too — simpler than tracking pipelining,
		// and a flush per message is still cheap against a socket.)
		if err := bw.Flush(); err != nil {
			return
		}
		if trk != nil {
			for _, captured := range trk.observe(msg) {
				p.capture.Enqueue(captured)
			}
		}
		if msg.Type == typeTerminate {
			return
		}
	}
}

// Status is the proxy's admin-endpoint snapshot. Role and UptimeSeconds
// mirror the server's shared status document (see server.StatusDocDTO), so
// every status surface in the topology reads the same way.
type Status struct {
	// Role is this process's place in the topology; always "proxy" here.
	Role string `json:"role"`
	// UptimeSeconds since the proxy was created.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Backend       string  `json:"backend"`
	// ActiveConnections is the number of currently proxied sessions.
	ActiveConnections int64 `json:"activeConnections"`
	// TotalConnections accepted since start.
	TotalConnections uint64 `json:"totalConnections"`
	// StatementsCaptured / StatementsDropped are the capture totals; dropped
	// statements were observed while the capture queue was full.
	StatementsCaptured uint64 `json:"statementsCaptured"`
	StatementsDropped  uint64 `json:"statementsDropped"`
	SubmitErrors       uint64 `json:"submitErrors"`
	BackendDialErrors  uint64 `json:"backendDialErrors"`
	// SpliceBytes relayed in each direction.
	BytesFromClients uint64 `json:"bytesFromClients"`
	BytesFromBackend uint64 `json:"bytesFromBackend"`
	// CaptureEnabled is false when the proxy runs as a pure splice.
	CaptureEnabled bool `json:"captureEnabled"`
}

// Status returns the current counters.
func (p *Proxy) Status() Status {
	return Status{
		Role:               "proxy",
		UptimeSeconds:      time.Since(p.start).Seconds(),
		Backend:            p.cfg.Backend,
		ActiveConnections:  p.conns.Load(),
		TotalConnections:   p.metrics.ConnectionsTotal.Value(),
		StatementsCaptured: p.metrics.StatementsCaptured.Value(),
		StatementsDropped:  p.metrics.StatementsDropped.Value(),
		SubmitErrors:       p.metrics.SubmitErrors.Value(),
		BackendDialErrors:  p.metrics.DialErrors.Value(),
		BytesFromClients:   p.metrics.BytesFrontend.Value(),
		BytesFromBackend:   p.metrics.BytesBackend.Value(),
		CaptureEnabled:     p.capture != nil,
	}
}
