package pgwire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
)

// startProxy runs a proxy over an ephemeral listener; cleanup stops the
// accept loop and drains the capture pipeline.
func startProxy(t *testing.T, sink Sink, cfg Config) (addr string, p *Proxy) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	p = NewProxy(sink, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Serve(ctx, ln)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		p.Close()
	})
	return ln.Addr().String(), p
}

// openTestCQMS returns an in-memory CQMS with parse-error capture on, as
// cqms-proxy's embedded mode configures it.
func openTestCQMS(t *testing.T) *core.CQMS {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Profiler.CaptureParseErrors = true
	cqms, err := core.Open(cfg)
	if err != nil {
		t.Fatalf("opening CQMS: %v", err)
	}
	t.Cleanup(func() { cqms.Close() })
	return cqms
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestProxyEndToEndCapture drives a psql-like client through the proxy to a
// fake backend and asserts every statement — simple, multi-statement and
// extended-protocol — lands in the store via the batch path with the right
// principal.
func TestProxyEndToEndCapture(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	cqms := openTestCQMS(t)
	sink := &CoreSink{CQMS: cqms}
	addr, proxy := startProxy(t, sink, Config{
		Backend: backend.Addr(),
		Capture: CaptureConfig{FlushEvery: 5 * time.Millisecond},
	})

	fe, err := DialFrontend(addr, "alice", "limnology")
	if err != nil {
		t.Fatalf("dial through proxy: %v", err)
	}
	defer fe.Close()

	if err := fe.SimpleQuery("SELECT lake FROM WaterTemp WHERE temp > 5"); err != nil {
		t.Fatalf("simple query: %v", err)
	}
	// One Query message, two statements: both must be captured.
	if err := fe.SimpleQuery("SELECT depth FROM WaterTemp; SELECT sensor FROM SensorLog"); err != nil {
		t.Fatalf("multi-statement query: %v", err)
	}
	// Extended protocol: named statement prepared once, executed twice.
	if err := fe.PrepareExec("bydepth", "SELECT temp FROM WaterTemp WHERE depth = 10", true); err != nil {
		t.Fatalf("prepare/exec: %v", err)
	}
	if err := fe.PrepareExec("bydepth", "", false); err != nil {
		t.Fatalf("re-exec of named statement: %v", err)
	}
	// Unparsable by the internal SQL subset: raw capture, not silence.
	if err := fe.SimpleQuery("VACUUM ANALYZE WaterTemp"); err != nil {
		t.Fatalf("unparsable statement: %v", err)
	}

	const want = 6 // 1 + 2 + 2 + 1
	waitFor(t, "statements to reach the store", func() bool {
		return cqms.Store().Count() >= want
	})
	if got := cqms.Store().Count(); got != want {
		t.Errorf("store holds %d queries, want %d", got, want)
	}

	admin := storage.Principal{Admin: true}
	recs := cqms.Store().All(admin)
	byText := map[string]*storage.QueryRecord{}
	for _, r := range recs {
		byText[r.Text] = r
		if r.User != "alice" {
			t.Errorf("record %q logged as user %q, want alice", r.Text, r.User)
		}
		if r.Group != "limnology" {
			t.Errorf("record %q logged under group %q, want limnology (database)", r.Text, r.Group)
		}
		if r.Visibility != storage.VisibilityGroup {
			t.Errorf("record %q visibility %v, want group", r.Text, r.Visibility)
		}
	}
	for _, text := range []string{
		"SELECT lake FROM WaterTemp WHERE temp > 5",
		"SELECT depth FROM WaterTemp",
		"SELECT sensor FROM SensorLog",
		"VACUUM ANALYZE WaterTemp",
	} {
		if byText[text] == nil {
			t.Errorf("statement %q not captured", text)
		}
	}
	if rec := byText["SELECT lake FROM WaterTemp WHERE temp > 5"]; rec != nil {
		if !rec.Valid || rec.Canonical == "" || rec.Fingerprint == 0 {
			t.Errorf("parsable statement stored without canonicalisation: %+v", rec)
		}
	}
	// The raw-captured statement is marked invalid with the parse_error class.
	if rec := byText["VACUUM ANALYZE WaterTemp"]; rec != nil {
		if rec.Valid {
			t.Error("unparsable statement stored as valid")
		}
		found := false
		for _, f := range rec.Features {
			if f == storage.FeatureParseError {
				found = true
			}
		}
		if !found {
			t.Errorf("raw record features = %v, want parse_error class", rec.Features)
		}
	}
	// Both executions of the named statement were captured with identical
	// fingerprints (same SQL text attributed per execution).
	execs := 0
	var fp uint64
	for _, r := range recs {
		if r.Text == "SELECT temp FROM WaterTemp WHERE depth = 10" {
			execs++
			if fp == 0 {
				fp = r.Fingerprint
			} else if r.Fingerprint != fp {
				t.Error("re-execution fingerprint differs")
			}
		}
	}
	if execs != 2 {
		t.Errorf("named statement captured %d times, want 2 (one per Execute)", execs)
	}

	if got := proxy.ProxyMetrics().StatementsCaptured.Value(); got != want {
		t.Errorf("cqms_proxy_statements_captured_total = %d, want %d", got, want)
	}
	if got := proxy.ProxyMetrics().StatementsDropped.Value(); got != 0 {
		t.Errorf("cqms_proxy_statements_dropped_total = %d, want 0", got)
	}
	if backend.Statements.Load() == 0 {
		t.Error("fake backend saw no statements — proxy did not forward")
	}
}

// scriptedSession writes a fixed byte script to addr and returns every byte
// the server sends back until EOF.
func scriptedSession(t *testing.T, addr string, script []byte) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write(script); err != nil {
		t.Fatalf("write script: %v", err)
	}
	data, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("read responses: %v", err)
	}
	return data
}

// TestProxyByteIdenticalResponses replays the same session directly against
// the fake backend and through the proxy, and requires the response byte
// streams to be identical — the proxy must be invisible to the client.
func TestProxyByteIdenticalResponses(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	addr, _ := startProxy(t, &collectSink{}, Config{Backend: backend.Addr()})

	var script []byte
	script = append(script, buildStartup("user", "alice", "database", "limnology")...)
	appendMsg := func(m Message) {
		var buf bytes.Buffer
		m.WriteTo(&buf)
		script = append(script, buf.Bytes()...)
	}
	appendMsg(msg(typeQuery, "SELECT lake FROM WaterTemp; SELECT 2"))
	appendMsg(msg(typeParse, "s1", "SELECT temp FROM WaterTemp WHERE depth = $1", "\x00"))
	appendMsg(msg(typeBind, "", "s1"))
	appendMsg(Message{Type: typeDescribe, Payload: []byte{'P', 0}})
	appendMsg(Message{Type: typeExecute, Payload: append([]byte{0}, 0, 0, 0, 0)})
	appendMsg(Message{Type: typeSync})
	appendMsg(msg(typeQuery, ""))
	appendMsg(Message{Type: typeTerminate})

	direct := scriptedSession(t, backend.Addr(), script)
	proxied := scriptedSession(t, addr, script)
	if len(direct) == 0 {
		t.Fatal("direct session produced no response bytes")
	}
	if !bytes.Equal(direct, proxied) {
		t.Errorf("proxied response differs from direct response:\ndirect:  %x\nproxied: %x", direct, proxied)
	}
}

// TestProxyAnswersEncryptionProbes verifies the SSLRequest/GSSENCRequest
// handling: the proxy answers 'N' and the client can continue with a
// cleartext startup on the same connection (what psql does by default).
func TestProxyAnswersEncryptionProbes(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	addr, _ := startProxy(t, nil, Config{Backend: backend.Addr()})

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	for _, code := range []uint32{sslRequestCode, gssEncRequest} {
		probe := binary.BigEndian.AppendUint32(nil, 8)
		probe = binary.BigEndian.AppendUint32(probe, code)
		if _, err := conn.Write(probe); err != nil {
			t.Fatal(err)
		}
		var answer [1]byte
		if _, err := io.ReadFull(conn, answer[:]); err != nil {
			t.Fatalf("reading probe answer: %v", err)
		}
		if answer[0] != 'N' {
			t.Fatalf("probe answered %q, want 'N'", answer[0])
		}
	}

	// Cleartext startup proceeds on the same connection.
	if _, err := conn.Write(buildStartup("user", "alice")); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(conn)
	if err != nil {
		t.Fatalf("reading greeting after probes: %v", err)
	}
	if m.Type != typeAuth {
		t.Errorf("first greeting message %c, want AuthenticationOk", m.Type)
	}
}

// TestProxyStalledSinkNeverDelaysSession is the backpressure acceptance test:
// with the sink wedged and a tiny queue, the proxied session keeps answering
// at full speed and the overflow is counted in
// cqms_proxy_statements_dropped_total.
func TestProxyStalledSinkNeverDelaysSession(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()

	release := make(chan struct{})
	defer close(release) // unwedge before cleanup so Close can drain
	stalled := SinkFunc(func(context.Context, []Captured) error {
		<-release
		return nil
	})
	addr, proxy := startProxy(t, stalled, Config{
		Backend: backend.Addr(),
		Capture: CaptureConfig{Queue: 1, Batch: 1, FlushEvery: time.Millisecond},
	})

	fe, err := DialFrontend(addr, "bob", "limnology")
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()

	const queries = 50
	start := time.Now()
	for i := 0; i < queries; i++ {
		if err := fe.SimpleQuery("SELECT sensor FROM SensorLog"); err != nil {
			t.Fatalf("query %d through stalled-sink proxy: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	// 50 local round trips take milliseconds; any sink-induced stall (the
	// sink never returns until the test ends) would push this far beyond.
	if elapsed > 5*time.Second {
		t.Errorf("%d queries took %v — capture backpressure leaked into the session", queries, elapsed)
	}

	m := proxy.ProxyMetrics()
	if dropped := m.StatementsDropped.Value(); dropped == 0 {
		t.Error("cqms_proxy_statements_dropped_total = 0, want > 0 with a stalled sink")
	}
	if got := m.StatementsCaptured.Value() + m.StatementsDropped.Value(); got != queries {
		t.Errorf("captured+dropped = %d, want %d (every statement accounted for)", got, queries)
	}
}

// TestProxyBackendDown: the proxy reports a FATAL ErrorResponse when it
// cannot reach the backend, and counts the dial error.
func TestProxyBackendDown(t *testing.T) {
	// A listener we close immediately: guaranteed-refused port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	addr, proxy := startProxy(t, nil, Config{Backend: deadAddr, DialTimeout: time.Second})
	_, err = DialFrontend(addr, "alice", "limnology")
	if err == nil {
		t.Fatal("DialFrontend succeeded with the backend down")
	}
	if !strings.Contains(err.Error(), "cannot reach backend") {
		t.Errorf("error = %v, want the proxy's FATAL 08001 message", err)
	}
	if got := proxy.ProxyMetrics().DialErrors.Value(); got != 1 {
		t.Errorf("cqms_proxy_backend_dial_errors_total = %d, want 1", got)
	}
}

// TestProxyAdminEndpoints covers the status JSON and the Prometheus
// exposition the admin listener serves.
func TestProxyAdminEndpoints(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	addr, proxy := startProxy(t, &collectSink{}, Config{
		Backend: backend.Addr(),
		Capture: CaptureConfig{FlushEvery: 5 * time.Millisecond},
	})

	fe, err := DialFrontend(addr, "alice", "limnology")
	if err != nil {
		t.Fatal(err)
	}
	if err := fe.SimpleQuery("SELECT lake FROM WaterTemp"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "capture counter", func() bool {
		return proxy.ProxyMetrics().StatementsCaptured.Value() >= 1
	})

	srv := httptest.NewServer(proxy.AdminHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/v1/proxy/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.TotalConnections != 1 || st.StatementsCaptured != 1 || !st.CaptureEnabled {
		t.Errorf("status = %+v", st)
	}
	if st.ActiveConnections != 1 {
		t.Errorf("activeConnections = %d, want 1 (session still open)", st.ActiveConnections)
	}
	if st.BytesFromClients == 0 || st.BytesFromBackend == 0 {
		t.Errorf("splice byte counters empty: %+v", st)
	}
	fe.Close()

	mresp, err := srv.Client().Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, family := range []string{
		"cqms_proxy_connections_total",
		"cqms_proxy_statements_captured_total",
		"cqms_proxy_splice_bytes_total",
	} {
		if !strings.Contains(string(body), family) {
			t.Errorf("metrics exposition missing %s", family)
		}
	}
}

// TestProxyConnectionCountsSettle: sessions closing bring the active gauge
// back to zero.
func TestProxyConnectionCountsSettle(t *testing.T) {
	backend, err := NewFakeBackend("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	addr, proxy := startProxy(t, nil, Config{Backend: backend.Addr()})

	for i := 0; i < 3; i++ {
		fe, err := DialFrontend(addr, "alice", "db")
		if err != nil {
			t.Fatal(err)
		}
		if err := fe.SimpleQuery("SELECT 1"); err != nil {
			t.Fatal(err)
		}
		fe.Close()
	}
	waitFor(t, "handlers to finish", func() bool {
		return proxy.Status().ActiveConnections == 0
	})
	if got := proxy.Status().TotalConnections; got != 3 {
		t.Errorf("totalConnections = %d, want 3", got)
	}
}
