package pgwire

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/server"
	"repro/internal/storage"
)

// Identity is the CQMS principal a captured statement is logged under.
type Identity struct {
	User       string
	Group      string
	Visibility storage.Visibility
}

// PrincipalMapper maps a proxied session's startup user/database onto a CQMS
// identity. It runs once per captured statement on the capture (not the
// splice) path.
type PrincipalMapper func(user, database string) Identity

// DefaultPrincipalMapper logs statements under the session's startup user,
// with the database as the collaboration group and group visibility — the
// paper's setting where a shared scientific database maps to a collaborating
// group.
func DefaultPrincipalMapper(user, database string) Identity {
	return Identity{User: user, Group: database, Visibility: storage.VisibilityGroup}
}

// Sink receives batches of captured statements. Implementations submit them
// through the CQMS batch path; they may block, because the proxy always calls
// them from the async capture goroutine, never from a splice loop.
type Sink interface {
	SubmitBatch(ctx context.Context, stmts []Captured) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(ctx context.Context, stmts []Captured) error

// SubmitBatch implements Sink.
func (f SinkFunc) SubmitBatch(ctx context.Context, stmts []Captured) error { return f(ctx, stmts) }

// ---------------------------------------------------------------------------
// Embedded sink: capture straight into a core.CQMS
// ---------------------------------------------------------------------------

// CoreSink submits captured statements into an embedded CQMS through
// core.SubmitBatch: one commit-lock acquisition per batch, canonicalisation
// and fingerprinting via internal/sql, parse failures falling back to raw
// capture when the profiler's CaptureParseErrors is on.
type CoreSink struct {
	CQMS *core.CQMS
	// Map defaults to DefaultPrincipalMapper.
	Map PrincipalMapper
}

// SubmitBatch implements Sink.
func (s *CoreSink) SubmitBatch(ctx context.Context, stmts []Captured) error {
	mapper := s.Map
	if mapper == nil {
		mapper = DefaultPrincipalMapper
	}
	subs := make([]profiler.Submission, len(stmts))
	for i, st := range stmts {
		id := mapper(st.User, st.Database)
		subs[i] = profiler.Submission{
			User:       id.User,
			Group:      id.Group,
			Visibility: id.Visibility,
			SQL:        st.SQL,
			IssuedAt:   st.At,
		}
	}
	_, _, err := s.CQMS.SubmitBatch(ctx, subs)
	return err
}

// ---------------------------------------------------------------------------
// Remote sink: capture into a running cqms-server over the v1 API
// ---------------------------------------------------------------------------

// ClientSink submits captured statements to a remote cqms-server through
// POST /v1/queries:batch. The principal travels in headers, so statements are
// grouped by mapped identity and submitted with per-identity derived clients
// that all share the base client's HTTP transport (one connection pool).
type ClientSink struct {
	Base *client.Client
	// Map defaults to DefaultPrincipalMapper.
	Map PrincipalMapper

	mu      sync.Mutex
	derived map[Identity]*client.Client
}

// NewClientSink returns a remote sink over the given base client.
func NewClientSink(base *client.Client, mapper PrincipalMapper) *ClientSink {
	return &ClientSink{Base: base, Map: mapper, derived: map[Identity]*client.Client{}}
}

// clientFor returns (creating on first use) the derived client acting as id.
func (s *ClientSink) clientFor(id Identity) *client.Client {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.derived[id]; ok {
		return c
	}
	c := s.Base.As(id.User, id.Group)
	s.derived[id] = c
	return c
}

// SubmitBatch implements Sink.
func (s *ClientSink) SubmitBatch(ctx context.Context, stmts []Captured) error {
	mapper := s.Map
	if mapper == nil {
		mapper = DefaultPrincipalMapper
	}
	// Group by identity, preserving capture order within each identity.
	type bucket struct {
		id      Identity
		queries []server.SubmitParams
	}
	var order []Identity
	buckets := map[Identity]*bucket{}
	for _, st := range stmts {
		id := mapper(st.User, st.Database)
		b, ok := buckets[id]
		if !ok {
			b = &bucket{id: id}
			buckets[id] = b
			order = append(order, id)
		}
		b.queries = append(b.queries, server.SubmitParams{
			SQL: st.SQL, Group: id.Group, Visibility: id.Visibility.String(),
		})
	}
	var firstErr error
	for _, id := range order {
		b := buckets[id]
		c := s.clientFor(id)
		for start := 0; start < len(b.queries); start += server.MaxBatchQueries {
			end := start + server.MaxBatchQueries
			if end > len(b.queries) {
				end = len(b.queries)
			}
			if _, err := c.SubmitBatch(ctx, b.queries[start:end]); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("pgwire: remote submit as %s: %w", id.User, err)
			}
		}
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Async capture: the bounded queue between splice loops and the sink
// ---------------------------------------------------------------------------

// CaptureConfig tunes the async capture pipeline.
type CaptureConfig struct {
	// Queue is the bounded capture queue length. When the queue is full,
	// newly observed statements are dropped and counted — the proxied
	// session is never delayed. Default 4096.
	Queue int
	// Batch is the largest sink batch. Default 256.
	Batch int
	// FlushEvery bounds how long a captured statement waits before a partial
	// batch is flushed. Default 100ms.
	FlushEvery time.Duration
}

// withDefaults fills zero fields.
func (c CaptureConfig) withDefaults() CaptureConfig {
	if c.Queue <= 0 {
		c.Queue = 4096
	}
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Batch > c.Queue {
		c.Batch = c.Queue
	}
	if c.FlushEvery <= 0 {
		c.FlushEvery = 100 * time.Millisecond
	}
	return c
}

// AsyncCapture decouples statement capture from the proxied sessions: splice
// loops enqueue without ever blocking (drop-with-counter backpressure), one
// background goroutine drains the queue into the sink in batches.
type AsyncCapture struct {
	cfg     CaptureConfig
	sink    Sink
	metrics *Metrics
	ch      chan Captured
	done    chan struct{}

	closeOnce sync.Once
	closed    chan struct{}
}

// NewAsyncCapture starts the capture pipeline over the given sink. The
// metrics argument must not be nil (Proxy always passes its own).
func NewAsyncCapture(sink Sink, cfg CaptureConfig, metrics *Metrics) *AsyncCapture {
	if metrics == nil {
		metrics = NewMetrics(nil)
	}
	a := &AsyncCapture{
		cfg:     cfg.withDefaults(),
		sink:    sink,
		metrics: metrics,
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
	a.ch = make(chan Captured, a.cfg.Queue)
	go a.run()
	return a
}

// Enqueue offers one captured statement to the pipeline. It never blocks:
// when the queue is full the statement is dropped and counted in
// cqms_proxy_statements_dropped_total, returning false.
func (a *AsyncCapture) Enqueue(st Captured) bool {
	select {
	case <-a.closed:
		a.metrics.StatementsDropped.Inc()
		return false
	default:
	}
	select {
	case a.ch <- st:
		a.metrics.StatementsCaptured.Inc()
		return true
	default:
		a.metrics.StatementsDropped.Inc()
		return false
	}
}

// Close stops accepting statements, flushes what is already queued and waits
// for the drain goroutine to finish.
func (a *AsyncCapture) Close() {
	a.closeOnce.Do(func() {
		close(a.closed)
		close(a.ch)
	})
	<-a.done
}

// run drains the queue: a batch is flushed when it reaches cfg.Batch or when
// cfg.FlushEvery elapses with statements pending.
func (a *AsyncCapture) run() {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.FlushEvery)
	defer ticker.Stop()
	batch := make([]Captured, 0, a.cfg.Batch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		start := time.Now()
		err := a.sink.SubmitBatch(context.Background(), batch)
		a.metrics.SubmitLatency.Observe(time.Since(start))
		if err != nil {
			a.metrics.SubmitErrors.Inc()
		}
		batch = batch[:0]
	}
	for {
		select {
		case st, ok := <-a.ch:
			if !ok {
				flush()
				return
			}
			batch = append(batch, st)
			if len(batch) >= a.cfg.Batch {
				flush()
			}
		case <-ticker.C:
			flush()
		}
	}
}
