package pgwire

import (
	"context"
	"sync"
	"testing"
	"time"
)

// collectSink records everything submitted to it.
type collectSink struct {
	mu      sync.Mutex
	batches [][]Captured
}

func (s *collectSink) SubmitBatch(_ context.Context, stmts []Captured) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, append([]Captured(nil), stmts...))
	return nil
}

func (s *collectSink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.batches {
		n += len(b)
	}
	return n
}

func TestAsyncCaptureDeliversAndBatches(t *testing.T) {
	sink := &collectSink{}
	ac := NewAsyncCapture(sink, CaptureConfig{Queue: 64, Batch: 8, FlushEvery: 10 * time.Millisecond}, nil)
	for i := 0; i < 20; i++ {
		if !ac.Enqueue(Captured{SQL: "SELECT 1", User: "u"}) {
			t.Fatalf("Enqueue %d dropped with an empty queue", i)
		}
	}
	ac.Close()
	if got := sink.total(); got != 20 {
		t.Errorf("sink received %d statements, want 20", got)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, b := range sink.batches {
		if len(b) > 8 {
			t.Errorf("batch of %d exceeds configured Batch 8", len(b))
		}
	}
}

func TestAsyncCaptureDropsWhenFullWithoutBlocking(t *testing.T) {
	release := make(chan struct{})
	delivered := make(chan struct{}, 128)
	blocked := SinkFunc(func(context.Context, []Captured) error {
		delivered <- struct{}{}
		<-release // stall the sink: the queue can only drain once released
		return nil
	})
	metrics := NewMetrics(nil)
	ac := NewAsyncCapture(blocked, CaptureConfig{Queue: 2, Batch: 1, FlushEvery: time.Hour}, metrics)
	defer func() {
		close(release)
		ac.Close()
	}()

	// First statement reaches the sink and stalls it there.
	ac.Enqueue(Captured{SQL: "SELECT 0"})
	<-delivered

	// Fill the queue, then keep enqueuing: every extra must return false
	// immediately rather than block the caller.
	dropped := 0
	start := time.Now()
	for i := 0; i < 100; i++ {
		if !ac.Enqueue(Captured{SQL: "SELECT 1"}) {
			dropped++
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("100 enqueues against a stalled sink took %v — Enqueue blocked", elapsed)
	}
	if dropped < 98 {
		t.Errorf("dropped %d of 100, want >= 98 (queue holds 2)", dropped)
	}
	if got := metrics.StatementsDropped.Value(); got != uint64(dropped) {
		t.Errorf("cqms_proxy_statements_dropped_total = %d, want %d", got, dropped)
	}
}

func TestAsyncCaptureEnqueueAfterClose(t *testing.T) {
	ac := NewAsyncCapture(&collectSink{}, CaptureConfig{}, nil)
	ac.Close()
	if ac.Enqueue(Captured{SQL: "SELECT 1"}) {
		t.Error("Enqueue after Close returned true")
	}
}

func TestCoreSinkMapsPrincipal(t *testing.T) {
	// Covered end to end in proxy_test.go; here just the default mapper shape.
	id := DefaultPrincipalMapper("alice", "limnology")
	if id.User != "alice" || id.Group != "limnology" {
		t.Errorf("DefaultPrincipalMapper = %+v", id)
	}
}
