package pgwire

import (
	"encoding/json"
	"net/http"
)

// AdminHandler serves the proxy's small admin surface:
//
//	GET /v1/proxy/status — the Status JSON (uptime, connections, capture totals)
//	GET /v1/metrics      — Prometheus exposition of the proxy's registry
//
// The handler is intended for a loopback/ops listener, so the metrics
// exposition includes admin-only families.
func (p *Proxy) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/proxy/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(p.Status())
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = p.reg.WritePrometheus(w, true)
	})
	return mux
}
