package pgwire

import (
	"strings"
	"time"
)

// Captured is one statement observed on a proxied connection, ready for
// submission into the CQMS.
type Captured struct {
	// SQL is the statement text as the client sent it (one statement; a
	// multi-statement simple Query is split into its parts).
	SQL string
	// User and Database are the session's startup parameters.
	User     string
	Database string
	// Kind is "simple" for Query messages and "extended" for Execute
	// messages resolved through a prepared statement.
	Kind string
	// Statement is the prepared-statement name an extended-protocol
	// execution resolved through ("" for the unnamed statement and for
	// simple queries).
	Statement string
	// At is when the proxy observed the statement.
	At time.Time
}

// Capture kinds.
const (
	KindSimple   = "simple"
	KindExtended = "extended"
)

// tracker decodes the capture-relevant frontend messages of one connection
// and maintains the extended-protocol name tables: prepared statements
// (name → SQL) and portals (name → the SQL of the statement they were bound
// from), so that an Execute is attributed to the text it actually runs.
//
// A tracker belongs to a single connection's read loop and is not safe for
// concurrent use.
type tracker struct {
	user     string
	database string
	now      func() time.Time

	statements map[string]string // prepared-statement name → SQL
	portals    map[string]string // portal name → SQL
}

func newTracker(user, database string, now func() time.Time) *tracker {
	if now == nil {
		now = time.Now
	}
	return &tracker{
		user:       user,
		database:   database,
		now:        now,
		statements: map[string]string{},
		portals:    map[string]string{},
	}
}

// observe decodes one frontend message and returns the statements it
// captures, if any. Undecodable payloads are ignored (the backend will answer
// them with its own error; the proxy never injects one mid-session).
func (t *tracker) observe(m Message) []Captured {
	switch m.Type {
	case typeQuery:
		sql, err := ParseQuery(m.Payload)
		if err != nil {
			return nil
		}
		// The simple protocol implicitly closes the unnamed statement and
		// portal.
		delete(t.statements, "")
		delete(t.portals, "")
		parts := SplitStatements(sql)
		if len(parts) == 0 {
			return nil
		}
		out := make([]Captured, 0, len(parts))
		at := t.now()
		for _, part := range parts {
			out = append(out, Captured{
				SQL: part, User: t.user, Database: t.database,
				Kind: KindSimple, At: at,
			})
		}
		return out
	case typeParse:
		name, query, err := ParseParse(m.Payload)
		if err != nil {
			return nil
		}
		t.statements[name] = query
		return nil
	case typeBind:
		portal, statement, err := ParseBind(m.Payload)
		if err != nil {
			return nil
		}
		if sqlText, ok := t.statements[statement]; ok {
			t.portals[portal] = sqlText
		} else {
			// Bind against a statement this connection never Parsed (e.g. a
			// statement prepared before the proxy attached): nothing to
			// attribute, and the backend will error anyway.
			delete(t.portals, portal)
		}
		return nil
	case typeExecute:
		portal, err := ParseExecute(m.Payload)
		if err != nil {
			return nil
		}
		sqlText, ok := t.portals[portal]
		if !ok || strings.TrimSpace(sqlText) == "" {
			return nil
		}
		return []Captured{{
			SQL: sqlText, User: t.user, Database: t.database,
			Kind: KindExtended, At: t.now(),
		}}
	case typeClose:
		kind, name, err := ParseClose(m.Payload)
		if err != nil {
			return nil
		}
		switch kind {
		case 'S':
			delete(t.statements, name)
		case 'P':
			delete(t.portals, name)
		}
		return nil
	default:
		return nil
	}
}

// SplitStatements splits a simple-protocol query string into its individual
// statements at top-level semicolons, respecting single-quoted strings (with
// ” escapes), double-quoted identifiers, dollar-quoted strings, line
// comments and nested block comments. Empty statements are dropped, so
// "SELECT 1;;" yields one statement, like the backend's own parser.
func SplitStatements(sql string) []string {
	var out []string
	start := 0
	i := 0
	n := len(sql)
	flush := func(end int) {
		if s := strings.TrimSpace(sql[start:end]); s != "" {
			out = append(out, s)
		}
	}
	for i < n {
		c := sql[i]
		switch {
		case c == ';':
			flush(i)
			i++
			start = i
		case c == '\'':
			// Single-quoted string; '' is an escaped quote.
			i++
			for i < n {
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == '"':
			// Double-quoted identifier; "" is an escaped quote.
			i++
			for i < n {
				if sql[i] == '"' {
					if i+1 < n && sql[i+1] == '"' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
		case c == '$':
			// Possible dollar-quote opener: $tag$ ... $tag$.
			if end, ok := skipDollarQuote(sql, i); ok {
				i = end
			} else {
				i++
			}
		case c == '-' && i+1 < n && sql[i+1] == '-':
			// Line comment.
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && sql[i+1] == '*':
			// Block comment, nested per the SQL standard.
			depth := 1
			i += 2
			for i < n && depth > 0 {
				if i+1 < n && sql[i] == '/' && sql[i+1] == '*' {
					depth++
					i += 2
				} else if i+1 < n && sql[i] == '*' && sql[i+1] == '/' {
					depth--
					i += 2
				} else {
					i++
				}
			}
		default:
			i++
		}
	}
	flush(n)
	return out
}

// skipDollarQuote scans a dollar-quoted string starting at i (which must
// point at '$'). It returns the index just past the closing tag and true, or
// (0, false) if i does not open a dollar quote. An unterminated dollar quote
// consumes the rest of the string, matching the backend's lexer.
func skipDollarQuote(sql string, i int) (int, bool) {
	j := i + 1
	for j < len(sql) && (isTagChar(sql[j])) {
		j++
	}
	if j >= len(sql) || sql[j] != '$' {
		return 0, false
	}
	tag := sql[i : j+1] // "$tag$" including both dollars
	closing := strings.Index(sql[j+1:], tag)
	if closing < 0 {
		return len(sql), true
	}
	return j + 1 + closing + len(tag), true
}

// isTagChar reports whether c may appear in a dollar-quote tag (letters,
// digits and underscores; the backend also allows some unicode, which we
// don't need for capture fidelity — a miss just means no split inside an
// exotic literal).
func isTagChar(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}
