package pgwire

import (
	"reflect"
	"testing"
	"time"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT 1", []string{"SELECT 1"}},
		{"SELECT 1; SELECT 2", []string{"SELECT 1", "SELECT 2"}},
		{"SELECT 1;;", []string{"SELECT 1"}},
		{"  ;  ; ", nil},
		{"", nil},
		// Semicolons inside string literals and identifiers don't split.
		{"SELECT 'a;b'; SELECT 2", []string{"SELECT 'a;b'", "SELECT 2"}},
		{"SELECT 'it''s; fine'", []string{"SELECT 'it''s; fine'"}},
		{`SELECT ";" FROM "t;u"`, []string{`SELECT ";" FROM "t;u"`}},
		// Dollar quoting, tagged and untagged.
		{"SELECT $$a;b$$; SELECT 2", []string{"SELECT $$a;b$$", "SELECT 2"}},
		{"SELECT $tag$ ; $notyet$ ; $tag$; SELECT 2",
			[]string{"SELECT $tag$ ; $notyet$ ; $tag$", "SELECT 2"}},
		// $ that isn't a dollar quote (positional parameter).
		{"SELECT $1; SELECT $2", []string{"SELECT $1", "SELECT $2"}},
		// Comments hide semicolons.
		{"SELECT 1 -- one; two\n; SELECT 2", []string{"SELECT 1 -- one; two", "SELECT 2"}},
		{"SELECT 1 /* a;b /* nested; */ still */; SELECT 2",
			[]string{"SELECT 1 /* a;b /* nested; */ still */", "SELECT 2"}},
		// Unterminated constructs consume the rest, like the backend's lexer.
		{"SELECT 'unterminated; SELECT 2", []string{"SELECT 'unterminated; SELECT 2"}},
		{"SELECT $q$never closed; SELECT 2", []string{"SELECT $q$never closed; SELECT 2"}},
	}
	for _, tc := range cases {
		if got := SplitStatements(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitStatements(%q) = %#v, want %#v", tc.in, got, tc.want)
		}
	}
}

// msg builds a frontend message from NUL-joined string parts.
func msg(t byte, parts ...string) Message {
	var payload []byte
	for _, p := range parts {
		payload = append(payload, p...)
		payload = append(payload, 0)
	}
	return Message{Type: t, Payload: payload}
}

func testTracker() *tracker {
	at := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return newTracker("alice", "limnology", func() time.Time { return at })
}

func TestTrackerSimpleQuery(t *testing.T) {
	trk := testTracker()
	got := trk.observe(msg(typeQuery, "SELECT 1; SELECT 2"))
	if len(got) != 2 {
		t.Fatalf("captured %d statements, want 2", len(got))
	}
	for i, want := range []string{"SELECT 1", "SELECT 2"} {
		c := got[i]
		if c.SQL != want || c.User != "alice" || c.Database != "limnology" || c.Kind != KindSimple {
			t.Errorf("captured[%d] = %+v", i, c)
		}
	}
	if got := trk.observe(msg(typeQuery, "  ")); got != nil {
		t.Errorf("empty query captured %v, want nothing", got)
	}
}

func TestTrackerExtendedNamedStatement(t *testing.T) {
	trk := testTracker()

	// Parse a named statement; Parse itself captures nothing.
	if got := trk.observe(msg(typeParse, "getlakes", "SELECT lake FROM WaterTemp WHERE temp > $1", "\x00")); got != nil {
		t.Fatalf("Parse captured %v", got)
	}
	// Bind it to the unnamed portal and execute — captured as extended.
	trk.observe(msg(typeBind, "", "getlakes"))
	got := trk.observe(msg(typeExecute, ""))
	if len(got) != 1 {
		t.Fatalf("captured %d, want 1", len(got))
	}
	if got[0].SQL != "SELECT lake FROM WaterTemp WHERE temp > $1" || got[0].Kind != KindExtended {
		t.Errorf("captured = %+v", got[0])
	}

	// Re-bind and re-execute without a new Parse (driver statement reuse):
	// each execution is captured.
	trk.observe(msg(typeBind, "", "getlakes"))
	if got := trk.observe(msg(typeExecute, "")); len(got) != 1 {
		t.Errorf("re-execution captured %d, want 1", len(got))
	}

	// Close the statement; binding it afterwards attributes nothing.
	trk.observe(msg(typeClose, "Sgetlakes"))
	trk.observe(msg(typeBind, "", "getlakes"))
	if got := trk.observe(msg(typeExecute, "")); got != nil {
		t.Errorf("execute after Close captured %v", got)
	}
}

func TestTrackerUnnamedStatementLifecycle(t *testing.T) {
	trk := testTracker()
	trk.observe(msg(typeParse, "", "SELECT 1", "\x00"))
	trk.observe(msg(typeBind, "", ""))

	// A simple Query implicitly destroys the unnamed statement and portal.
	trk.observe(msg(typeQuery, "SELECT 2"))
	if got := trk.observe(msg(typeExecute, "")); got != nil {
		t.Errorf("execute of destroyed unnamed portal captured %v", got)
	}
}

func TestTrackerBindUnknownStatement(t *testing.T) {
	trk := testTracker()
	// Bind against a statement never Parsed on this connection (e.g. prepared
	// before the proxy attached): nothing to attribute.
	trk.observe(msg(typeBind, "p", "ghost"))
	if got := trk.observe(msg(typeExecute, "p")); got != nil {
		t.Errorf("execute of unattributable portal captured %v", got)
	}
}

func TestTrackerNamedPortal(t *testing.T) {
	trk := testTracker()
	trk.observe(msg(typeParse, "s", "SELECT 3", "\x00"))
	trk.observe(msg(typeBind, "cursor1", "s"))
	if got := trk.observe(msg(typeExecute, "cursor1")); len(got) != 1 || got[0].SQL != "SELECT 3" {
		t.Errorf("named portal execute = %+v", got)
	}
	// Closing the portal ends attribution; the statement survives.
	trk.observe(msg(typeClose, "Pcursor1"))
	if got := trk.observe(msg(typeExecute, "cursor1")); got != nil {
		t.Errorf("execute after portal close captured %v", got)
	}
	trk.observe(msg(typeBind, "cursor2", "s"))
	if got := trk.observe(msg(typeExecute, "cursor2")); len(got) != 1 {
		t.Errorf("statement gone after portal close: %v", got)
	}
}
