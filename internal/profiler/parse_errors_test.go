package profiler

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

func newCapturingProfiler(t testing.TB) (*Profiler, *storage.Store, *telemetry.Registry) {
	t.Helper()
	store := storage.NewStore()
	cfg := DefaultConfig()
	cfg.CaptureParseErrors = true
	p := New(newTestEngine(t), store, cfg)
	reg := telemetry.NewRegistry()
	p.EnableMetrics(reg)
	return p, store, reg
}

func TestSubmitCapturesParseErrorAsRawRecord(t *testing.T) {
	p, store, _ := newCapturingProfiler(t)
	out, err := p.Submit(Submission{
		User: "alice", Group: "limnology", Visibility: storage.VisibilityGroup,
		SQL: "VACUUM ANALYZE WaterTemp",
	})
	if err != nil {
		t.Fatalf("Submit with CaptureParseErrors: %v", err)
	}
	if out.ExecError == nil {
		t.Error("outcome should carry the parse error")
	}
	if store.Count() != 1 {
		t.Fatalf("store count = %d, want 1 raw record", store.Count())
	}
	rec, err := store.Get(out.QueryID, storage.Principal{User: "alice"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.Text != "VACUUM ANALYZE WaterTemp" {
		t.Errorf("raw text = %q", rec.Text)
	}
	if rec.Valid {
		t.Error("raw record stored as valid")
	}
	if rec.InvalidReason == "" {
		t.Error("raw record has no invalid reason")
	}
	if rec.Stats.Error == "" {
		t.Error("raw record has no runtime error recorded")
	}
	if rec.User != "alice" || rec.Group != "limnology" {
		t.Errorf("principal = %s/%s", rec.User, rec.Group)
	}
	found := false
	for _, f := range rec.Features {
		if f == storage.FeatureParseError {
			found = true
		}
	}
	if !found {
		t.Errorf("features = %v, want %s class", rec.Features, storage.FeatureParseError)
	}
	if rec.Fingerprint == 0 || rec.Template == "" || rec.Canonical == "" {
		t.Errorf("raw record missing parse-free canonicalisation: %+v", rec)
	}
}

func TestSubmitBatchMixedParseErrors(t *testing.T) {
	p, store, _ := newCapturingProfiler(t)
	outs, errs := p.SubmitBatch([]Submission{
		{User: "u", SQL: "SELECT temp FROM WaterTemp"},
		{User: "u", SQL: "SET search_path TO public"},
		{User: "u", SQL: "SELECT lake FROM WaterSalinity"},
	})
	for i, err := range errs {
		if err != nil {
			t.Errorf("errs[%d] = %v, want nil (raw capture on)", i, err)
		}
	}
	if store.Count() != 3 {
		t.Fatalf("store count = %d, want 3", store.Count())
	}
	for i, out := range outs {
		if out == nil || out.QueryID == 0 {
			t.Fatalf("outs[%d] = %+v, want a logged outcome", i, out)
		}
	}
	rec, _ := store.Get(outs[1].QueryID, storage.Principal{User: "u"})
	if rec.Valid || rec.Text != "SET search_path TO public" {
		t.Errorf("raw batch record = %+v", rec)
	}
	// Parsable neighbours are unaffected.
	for _, i := range []int{0, 2} {
		rec, _ := store.Get(outs[i].QueryID, storage.Principal{User: "u"})
		if !rec.Valid {
			t.Errorf("parsable record %d marked invalid", i)
		}
	}
}

func TestParseErrorCounters(t *testing.T) {
	p, _, reg := newCapturingProfiler(t)
	if _, err := p.Submit(Submission{User: "u", SQL: "VACUUM"}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "cqms_profiler_parse_errors_total", "outcome", "captured"); got != 1 {
		t.Errorf("captured counter = %d, want 1", got)
	}

	// With capture off, the same submission is rejected and counted as such.
	store := storage.NewStore()
	rej := New(newTestEngine(t), store, DefaultConfig())
	rej.EnableMetrics(reg)
	if _, err := rej.Submit(Submission{User: "u", SQL: "VACUUM"}); err == nil {
		t.Fatal("expected rejection with CaptureParseErrors off")
	}
	if store.Count() != 0 {
		t.Error("rejected submission was logged")
	}
	if got := counterValue(t, reg, "cqms_profiler_parse_errors_total", "outcome", "rejected"); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
}

// counterValue reads one labelled counter back through the registry.
func counterValue(t *testing.T, reg *telemetry.Registry, name, label, value string) uint64 {
	t.Helper()
	return reg.CounterVec(name, "", label).With(value).Value()
}
