// Package profiler implements the CQMS Query Profiler (Figure 4): the online
// component that receives user SQL, forwards it to the underlying DBMS and,
// before doing so, logs the query — its text, syntactic features, runtime
// statistics and a bounded sample of its output — in the Query Storage.
//
// The paper's key requirements for this component (§2.1, §4.1) are that it
// must not impose significant runtime overhead, and that output samples must
// be sized adaptively: a query that runs for two hours and outputs ten rows
// should have its whole output stored, while a two-second query producing
// two million rows needs no large sample. SamplePolicy implements that rule.
package profiler

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// SamplePolicy controls how many output rows the profiler stores for a query
// (§4.1 "Profiling query results").
type SamplePolicy struct {
	// Adaptive enables the execution-time-proportional budget. When false,
	// every query stores at most FixedRows rows.
	Adaptive bool
	// FixedRows is the sample cap used when Adaptive is false.
	FixedRows int
	// MinRows is the smallest adaptive budget (cheap queries).
	MinRows int
	// MaxRows is the largest adaptive budget (expensive queries).
	MaxRows int
	// TimePerExtraRow is how much execution time buys one additional sample
	// row beyond MinRows.
	TimePerExtraRow time.Duration
}

// DefaultSamplePolicy mirrors the paper's example: cheap queries keep a small
// sample, expensive queries may store their entire (small) output.
func DefaultSamplePolicy() SamplePolicy {
	return SamplePolicy{
		Adaptive:        true,
		FixedRows:       20,
		MinRows:         5,
		MaxRows:         500,
		TimePerExtraRow: 2 * time.Millisecond,
	}
}

// Budget returns the number of output rows to store for a query with the
// given execution time.
func (p SamplePolicy) Budget(execTime time.Duration) int {
	if !p.Adaptive {
		return p.FixedRows
	}
	extra := int(execTime / p.TimePerExtraRow)
	budget := p.MinRows + extra
	if budget > p.MaxRows {
		budget = p.MaxRows
	}
	if budget < p.MinRows {
		budget = p.MinRows
	}
	return budget
}

// Config configures a Profiler.
type Config struct {
	// Sample is the output sampling policy.
	Sample SamplePolicy
	// AnnotationPromptTableThreshold is the number of referenced tables above
	// which the profiler suggests that the user annotate the query (§2.1:
	// the CQMS should request annotations for complex queries).
	AnnotationPromptTableThreshold int
	// AnnotationPromptOnNesting requests an annotation for nested queries.
	AnnotationPromptOnNesting bool
	// CaptureParseErrors logs statements whose text fails to parse as raw
	// records (storage.NewRawRecord: raw text, parse-free template and
	// fingerprint, the parse_error feature class) instead of rejecting them.
	// Passive capture paths (the wire-protocol proxy) enable this so no
	// observed statement is silently dropped; the HTTP API keeps it off by
	// default, preserving the v1 contract that unparsable SQL is an
	// invalid_argument error.
	CaptureParseErrors bool
}

// DefaultConfig returns the default profiler configuration.
func DefaultConfig() Config {
	return Config{
		Sample:                         DefaultSamplePolicy(),
		AnnotationPromptTableThreshold: 3,
		AnnotationPromptOnNesting:      true,
	}
}

// Submission is one user query entering the CQMS in Traditional Interaction
// Mode.
type Submission struct {
	User       string
	Group      string
	Visibility storage.Visibility
	SQL        string
	// IssuedAt defaults to the current time; the workload generator sets it
	// explicitly to replay historical traces.
	IssuedAt time.Time
}

// Outcome is what the profiler returns to the client: the DBMS result, the
// logged record's ID and whether the CQMS suggests annotating the query.
type Outcome struct {
	Result            *engine.Result
	QueryID           storage.QueryID
	SuggestAnnotation bool
	// ExecError holds the DBMS execution error, if any. The query is still
	// logged (with the error recorded as a runtime feature) so that the
	// correction assistant can learn from failing queries.
	ExecError error
}

// Profiler forwards queries to the engine and logs them in the store.
type Profiler struct {
	eng   *engine.Engine
	store *storage.Store
	cfg   Config
	clock func() time.Time

	// parseErrors counts parse failures by outcome ("captured": logged as a
	// raw record under CaptureParseErrors; "rejected": returned as an
	// error). Nil until EnableMetrics runs.
	parseErrCaptured *telemetry.Counter
	parseErrRejected *telemetry.Counter
}

// New returns a profiler over the given engine and store.
func New(eng *engine.Engine, store *storage.Store, cfg Config) *Profiler {
	return &Profiler{eng: eng, store: store, cfg: cfg, clock: time.Now}
}

// EnableMetrics registers the profiler's instruments on reg:
// cqms_profiler_parse_errors_total{outcome="captured"|"rejected"} counts
// submissions whose text failed to parse, split by whether the raw-capture
// fallback logged them anyway.
func (p *Profiler) EnableMetrics(reg *telemetry.Registry) {
	vec := reg.CounterVec("cqms_profiler_parse_errors_total",
		"Submissions whose SQL failed to parse, by outcome (captured: logged as a raw record; rejected: returned as an error).",
		"outcome")
	p.parseErrCaptured = vec.With("captured")
	p.parseErrRejected = vec.With("rejected")
}

// countParseError records one parse failure.
func (p *Profiler) countParseError(captured bool) {
	if p.parseErrCaptured == nil {
		return
	}
	if captured {
		p.parseErrCaptured.Inc()
	} else {
		p.parseErrRejected.Inc()
	}
}

// rawRecord builds the raw-capture fallback record for an unparsable
// submission: the statement is logged with the parse error as its runtime
// error and the parse_error feature class, and never executed (the engine
// would only re-fail the same parse).
func (p *Profiler) rawRecord(sub Submission, parseErr error) (*storage.QueryRecord, *Outcome) {
	rec := storage.NewRawRecord(sub.SQL, parseErr)
	rec.User = sub.User
	rec.Group = sub.Group
	rec.Visibility = sub.Visibility
	if !sub.IssuedAt.IsZero() {
		rec.IssuedAt = sub.IssuedAt
	} else {
		rec.IssuedAt = p.clock()
	}
	rec.Stats = storage.RuntimeStats{
		SchemaVersion: p.eng.Catalog().Version(),
		ExecutedAt:    rec.IssuedAt,
		Error:         rec.InvalidReason,
	}
	return rec, &Outcome{ExecError: parseErr}
}

// SetClock overrides the profiler's time source.
func (p *Profiler) SetClock(now func() time.Time) { p.clock = now }

// Engine returns the underlying engine.
func (p *Profiler) Engine() *engine.Engine { return p.eng }

// Store returns the underlying query store.
func (p *Profiler) Store() *storage.Store { return p.store }

// Submit executes the query and logs it. Parse errors are returned without
// logging (the text never became a query) unless CaptureParseErrors is on,
// in which case the text is logged as a raw record with the parse error in
// the Outcome; execution errors are always logged with the error recorded
// and returned in the Outcome.
func (p *Profiler) Submit(sub Submission) (*Outcome, error) {
	rec, err := storage.NewRecordFromSQL(sub.SQL)
	if err != nil {
		if p.cfg.CaptureParseErrors {
			p.countParseError(true)
			raw, out := p.rawRecord(sub, err)
			out.QueryID = p.store.Put(raw)
			return out, nil
		}
		p.countParseError(false)
		return nil, fmt.Errorf("profiler: %w", err)
	}
	rec.User = sub.User
	rec.Group = sub.Group
	rec.Visibility = sub.Visibility
	if !sub.IssuedAt.IsZero() {
		rec.IssuedAt = sub.IssuedAt
	} else {
		rec.IssuedAt = p.clock()
	}

	res, execErr := p.eng.Execute(sub.SQL)

	stats := storage.RuntimeStats{
		SchemaVersion: p.eng.Catalog().Version(),
		ExecutedAt:    rec.IssuedAt,
	}
	if execErr != nil {
		stats.Error = execErr.Error()
	} else {
		stats.ExecTime = res.Elapsed
		stats.ResultRows = res.Cardinality()
		stats.ResultColumns = len(res.Columns)
		rec.Sample = p.sampleOutput(res)
	}
	rec.Stats = stats

	id := p.store.Put(rec)
	out := &Outcome{
		Result:            res,
		QueryID:           id,
		SuggestAnnotation: p.shouldSuggestAnnotation(sub.SQL, rec),
		ExecError:         execErr,
	}
	return out, nil
}

// SubmitBatch executes many submissions and logs every successfully parsed
// one under a single storage commit-lock acquisition (storage.PutBatch),
// amortising the per-write lock round trip that Submit pays once per query.
// outs[i] and errs[i] mirror Submit's return values for subs[i]: a parse
// error leaves outs[i] nil with errs[i] set; execution errors are reported
// in-band in the Outcome and still logged. Queries execute in slice order, so
// DDL earlier in the batch is visible to later entries.
func (p *Profiler) SubmitBatch(subs []Submission) (outs []*Outcome, errs []error) {
	outs = make([]*Outcome, len(subs))
	errs = make([]error, len(subs))
	recs := make([]*storage.QueryRecord, 0, len(subs))
	logged := make([]int, 0, len(subs)) // recs[j] belongs to subs[logged[j]]
	for i, sub := range subs {
		rec, err := storage.NewRecordFromSQL(sub.SQL)
		if err != nil {
			if p.cfg.CaptureParseErrors {
				p.countParseError(true)
				raw, out := p.rawRecord(sub, err)
				outs[i] = out
				recs = append(recs, raw)
				logged = append(logged, i)
			} else {
				p.countParseError(false)
				errs[i] = fmt.Errorf("profiler: %w", err)
			}
			continue
		}
		rec.User = sub.User
		rec.Group = sub.Group
		rec.Visibility = sub.Visibility
		if !sub.IssuedAt.IsZero() {
			rec.IssuedAt = sub.IssuedAt
		} else {
			rec.IssuedAt = p.clock()
		}
		res, execErr := p.eng.Execute(sub.SQL)
		stats := storage.RuntimeStats{
			SchemaVersion: p.eng.Catalog().Version(),
			ExecutedAt:    rec.IssuedAt,
		}
		if execErr != nil {
			stats.Error = execErr.Error()
		} else {
			stats.ExecTime = res.Elapsed
			stats.ResultRows = res.Cardinality()
			stats.ResultColumns = len(res.Columns)
			rec.Sample = p.sampleOutput(res)
		}
		rec.Stats = stats
		outs[i] = &Outcome{
			Result:            res,
			SuggestAnnotation: p.shouldSuggestAnnotation(sub.SQL, rec),
			ExecError:         execErr,
		}
		recs = append(recs, rec)
		logged = append(logged, i)
	}
	ids := p.store.PutBatch(recs)
	for j, id := range ids {
		outs[logged[j]].QueryID = id
	}
	return outs, errs
}

// ExecuteUnprofiled runs the query directly against the engine without any
// logging. It is the baseline for the profiling-overhead experiment (E4).
func (p *Profiler) ExecuteUnprofiled(query string) (*engine.Result, error) {
	return p.eng.Execute(query)
}

// sampleOutput produces a bounded, stringified sample of the result per the
// adaptive sampling policy.
func (p *Profiler) sampleOutput(res *engine.Result) *storage.OutputSample {
	if res == nil {
		return nil
	}
	budget := p.cfg.Sample.Budget(res.Elapsed)
	n := len(res.Rows)
	take := n
	if take > budget {
		take = budget
	}
	sample := &storage.OutputSample{
		Columns:   append([]string(nil), res.Columns...),
		TotalRows: n,
		Truncated: take < n,
	}
	sample.Rows = make([][]string, 0, take)
	for i := 0; i < take; i++ {
		sample.Rows = append(sample.Rows, res.Rows[i].Strings())
	}
	return sample
}

// shouldSuggestAnnotation applies §2.1's rule: prompt for documentation when
// the query is complex (many tables or nesting).
func (p *Profiler) shouldSuggestAnnotation(text string, rec *storage.QueryRecord) bool {
	if p.cfg.AnnotationPromptTableThreshold > 0 && len(rec.Tables) >= p.cfg.AnnotationPromptTableThreshold {
		return true
	}
	if p.cfg.AnnotationPromptOnNesting {
		if stmt, err := sql.Parse(text); err == nil {
			if sel, ok := stmt.(*sql.SelectStmt); ok && len(sql.Subqueries(sel)) > 0 {
				return true
			}
		}
	}
	return false
}
