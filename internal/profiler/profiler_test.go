package profiler

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/storage"
)

func newTestEngine(t testing.TB) *engine.Engine {
	t.Helper()
	e := engine.New()
	setup := []string{
		"CREATE TABLE WaterTemp (id INT, lake TEXT, loc_x INT, temp FLOAT)",
		"CREATE TABLE WaterSalinity (id INT, lake TEXT, loc_x INT, salinity FLOAT)",
		"INSERT INTO WaterTemp VALUES (1, 'Lake Washington', 10, 14.5), (2, 'Lake Union', 11, 19.0), (3, 'Lake Sammamish', 12, 17.2)",
		"INSERT INTO WaterSalinity VALUES (1, 'Lake Washington', 10, 2.5), (2, 'Lake Union', 11, 3.1)",
	}
	for _, s := range setup {
		e.MustExecute(s)
	}
	return e
}

func newProfiler(t testing.TB) (*Profiler, *storage.Store) {
	t.Helper()
	store := storage.NewStore()
	p := New(newTestEngine(t), store, DefaultConfig())
	return p, store
}

func TestSubmitLogsQueryAndReturnsResult(t *testing.T) {
	p, store := newProfiler(t)
	out, err := p.Submit(Submission{
		User: "alice", Group: "limnology", Visibility: storage.VisibilityGroup,
		SQL: "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if out.ExecError != nil {
		t.Fatalf("unexpected exec error: %v", out.ExecError)
	}
	if out.Result.Cardinality() != 2 {
		t.Errorf("result rows = %d, want 2", out.Result.Cardinality())
	}
	if store.Count() != 1 {
		t.Fatalf("store count = %d, want 1", store.Count())
	}
	rec, err := store.Get(out.QueryID, storage.Principal{User: "alice"})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.Stats.ResultRows != 2 || rec.Stats.ResultColumns != 2 {
		t.Errorf("stats = %+v", rec.Stats)
	}
	if rec.Stats.ExecTime <= 0 {
		t.Errorf("exec time not recorded")
	}
	if rec.Sample == nil || rec.Sample.TotalRows != 2 {
		t.Errorf("sample = %+v", rec.Sample)
	}
	if len(rec.Tables) != 1 || rec.Tables[0] != "WaterTemp" {
		t.Errorf("features not extracted: %+v", rec.Tables)
	}
}

func TestSubmitParseErrorNotLogged(t *testing.T) {
	p, store := newProfiler(t)
	if _, err := p.Submit(Submission{User: "alice", SQL: "SELEKT * FROM t"}); err == nil {
		t.Fatal("expected parse error")
	}
	if store.Count() != 0 {
		t.Errorf("parse errors should not be logged")
	}
}

func TestSubmitExecErrorStillLogged(t *testing.T) {
	p, store := newProfiler(t)
	out, err := p.Submit(Submission{User: "alice", SQL: "SELECT * FROM NoSuchTable"})
	if err != nil {
		t.Fatalf("Submit should not fail for execution errors: %v", err)
	}
	if out.ExecError == nil {
		t.Fatal("expected an execution error in the outcome")
	}
	if store.Count() != 1 {
		t.Fatalf("failing query should still be logged")
	}
	rec, _ := store.Get(out.QueryID, storage.Principal{User: "alice"})
	if rec.Stats.Error == "" || !strings.Contains(rec.Stats.Error, "table not found") {
		t.Errorf("stats error = %q", rec.Stats.Error)
	}
	if rec.Sample != nil {
		t.Errorf("failed queries should have no output sample")
	}
}

func TestAnnotationSuggestions(t *testing.T) {
	p, _ := newProfiler(t)
	// Simple single-table query: no suggestion.
	out, err := p.Submit(Submission{User: "alice", SQL: "SELECT temp FROM WaterTemp"})
	if err != nil {
		t.Fatal(err)
	}
	if out.SuggestAnnotation {
		t.Errorf("simple query should not prompt for annotation")
	}
	// A query with a nested sub-query prompts for annotation (§2.1).
	out, err = p.Submit(Submission{User: "alice",
		SQL: "SELECT lake FROM WaterTemp WHERE temp > (SELECT AVG(temp) FROM WaterTemp)"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.SuggestAnnotation {
		t.Errorf("nested query should prompt for annotation")
	}
	// A three-table query prompts for annotation.
	p.Engine().MustExecute("CREATE TABLE CityLocations (city TEXT, loc_x INT)")
	out, err = p.Submit(Submission{User: "alice",
		SQL: "SELECT * FROM WaterTemp, WaterSalinity, CityLocations"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.SuggestAnnotation {
		t.Errorf("wide join should prompt for annotation")
	}
}

func TestSamplePolicyFixed(t *testing.T) {
	pol := SamplePolicy{Adaptive: false, FixedRows: 7}
	if got := pol.Budget(time.Hour); got != 7 {
		t.Errorf("fixed budget = %d, want 7", got)
	}
	if got := pol.Budget(0); got != 7 {
		t.Errorf("fixed budget = %d, want 7", got)
	}
}

func TestSamplePolicyAdaptive(t *testing.T) {
	pol := SamplePolicy{Adaptive: true, MinRows: 5, MaxRows: 500, TimePerExtraRow: time.Millisecond}
	if got := pol.Budget(0); got != 5 {
		t.Errorf("zero-time budget = %d, want MinRows", got)
	}
	if got := pol.Budget(20 * time.Millisecond); got != 25 {
		t.Errorf("20ms budget = %d, want 25", got)
	}
	// The paper's example: a two-hour query may store its whole (small)
	// output; the budget saturates at MaxRows.
	if got := pol.Budget(2 * time.Hour); got != 500 {
		t.Errorf("expensive-query budget = %d, want MaxRows", got)
	}
}

func TestAdaptiveSamplingAppliedToOutput(t *testing.T) {
	store := storage.NewStore()
	eng := newTestEngine(t)
	// Insert many rows so the result exceeds the minimum budget.
	for i := 0; i < 300; i++ {
		eng.MustExecute("INSERT INTO WaterTemp VALUES (99, 'Bulk Lake', 50, 10.0)")
	}
	cfg := DefaultConfig()
	cfg.Sample = SamplePolicy{Adaptive: true, MinRows: 5, MaxRows: 500, TimePerExtraRow: time.Hour}
	p := New(eng, store, cfg)
	out, err := p.Submit(Submission{User: "alice", SQL: "SELECT * FROM WaterTemp"})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := store.Get(out.QueryID, storage.Principal{User: "alice"})
	// The query is fast, so only MinRows rows are kept even though the
	// result has 300+ rows.
	if len(rec.Sample.Rows) != 5 {
		t.Errorf("sample rows = %d, want 5 (min budget)", len(rec.Sample.Rows))
	}
	if !rec.Sample.Truncated {
		t.Errorf("sample should be marked truncated")
	}
	if rec.Sample.TotalRows != out.Result.Cardinality() {
		t.Errorf("TotalRows = %d, want %d", rec.Sample.TotalRows, out.Result.Cardinality())
	}
}

func TestFullOutputKeptWhenWithinBudget(t *testing.T) {
	p, store := newProfiler(t)
	out, err := p.Submit(Submission{User: "alice", SQL: "SELECT * FROM WaterTemp"})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := store.Get(out.QueryID, storage.Principal{User: "alice"})
	if rec.Sample.Truncated {
		t.Errorf("small result should not be truncated")
	}
	if len(rec.Sample.Rows) != 3 {
		t.Errorf("sample rows = %d, want 3", len(rec.Sample.Rows))
	}
}

func TestSchemaVersionRecorded(t *testing.T) {
	p, store := newProfiler(t)
	before, _ := p.Submit(Submission{User: "alice", SQL: "SELECT temp FROM WaterTemp"})
	p.Engine().MustExecute("ALTER TABLE WaterTemp ADD COLUMN sensor TEXT")
	after, _ := p.Submit(Submission{User: "alice", SQL: "SELECT temp FROM WaterTemp"})
	recBefore, _ := store.Get(before.QueryID, storage.Principal{User: "alice"})
	recAfter, _ := store.Get(after.QueryID, storage.Principal{User: "alice"})
	if recAfter.Stats.SchemaVersion <= recBefore.Stats.SchemaVersion {
		t.Errorf("schema version should increase after DDL: %d vs %d",
			recBefore.Stats.SchemaVersion, recAfter.Stats.SchemaVersion)
	}
}

func TestIssuedAtOverride(t *testing.T) {
	p, store := newProfiler(t)
	ts := time.Date(2009, 1, 5, 10, 0, 0, 0, time.UTC)
	out, err := p.Submit(Submission{User: "alice", SQL: "SELECT temp FROM WaterTemp", IssuedAt: ts})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := store.Get(out.QueryID, storage.Principal{User: "alice"})
	if !rec.IssuedAt.Equal(ts) {
		t.Errorf("IssuedAt = %v, want %v", rec.IssuedAt, ts)
	}
}

func TestExecuteUnprofiledDoesNotLog(t *testing.T) {
	p, store := newProfiler(t)
	if _, err := p.ExecuteUnprofiled("SELECT temp FROM WaterTemp"); err != nil {
		t.Fatal(err)
	}
	if store.Count() != 0 {
		t.Errorf("unprofiled execution should not log")
	}
}
