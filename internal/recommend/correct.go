package recommend

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Corrections analyses a (possibly complete) query and suggests corrections
// in the spirit of a spell checker (§2.3): unknown relation or attribute
// names are matched against the schema catalog and the names seen in the
// query log, and the closest candidates are proposed.
func (r *Recommender) Corrections(ctx context.Context, p storage.Principal, querySQL string) []Correction {
	qc := r.contextOf(querySQL)
	schemas := r.schemaSnapshot()
	mined := r.miningSnapshot()

	knownTables := make(map[string]string) // lower -> canonical
	for t := range schemas {
		knownTables[strings.ToLower(t)] = t
	}
	for _, pop := range mined.TablePopularity {
		if _, ok := knownTables[strings.ToLower(pop.Item)]; !ok {
			knownTables[strings.ToLower(pop.Item)] = pop.Item
		}
	}
	knownColumns := make(map[string]string)
	for t, cols := range schemas {
		for _, c := range cols {
			knownColumns[strings.ToLower(c)] = t + "." + c
		}
	}
	for _, pop := range mined.ColumnPopularity {
		name := pop.Item
		bare := name
		if idx := strings.LastIndex(name, "."); idx >= 0 {
			bare = name[idx+1:]
		}
		if _, ok := knownColumns[strings.ToLower(bare)]; !ok {
			knownColumns[strings.ToLower(bare)] = name
		}
	}

	var out []Correction
	seen := make(map[string]bool)
	addCorrection := func(c Correction) {
		key := c.Kind + "|" + strings.ToLower(c.Original) + "|" + strings.ToLower(c.Suggestion)
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, c)
	}
	for _, t := range qc.tables {
		if _, ok := knownTables[strings.ToLower(t)]; ok {
			continue
		}
		if best, dist := closestName(t, keysOf(knownTables)); best != "" && dist <= maxEditDistance(t) {
			addCorrection(Correction{
				Kind: "table", Original: t, Suggestion: knownTables[best],
				Reason:     fmt.Sprintf("unknown relation; %q is %d edit(s) away", knownTables[best], dist),
				Confidence: 1 - float64(dist)/float64(len(t)+1),
			})
		}
	}
	for _, c := range qc.columns {
		bare := c
		if idx := strings.LastIndex(c, "."); idx >= 0 {
			bare = c[idx+1:]
		}
		if _, ok := knownColumns[strings.ToLower(bare)]; ok {
			continue
		}
		if best, dist := closestName(bare, keysOf(knownColumns)); best != "" && dist <= maxEditDistance(bare) {
			addCorrection(Correction{
				Kind: "column", Original: c, Suggestion: knownColumns[best],
				Reason:     fmt.Sprintf("unknown attribute; %q is %d edit(s) away", knownColumns[best], dist),
				Confidence: 1 - float64(dist)/float64(len(bare)+1),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// EmptyResultSuggestions implements the §2.3 behaviour "if a predicate causes
// a query to return the empty set, the CQMS could suggest similar, previously
// issued predicates that return a non-empty set": for each selection
// predicate of the query, it finds logged queries with a predicate on the
// same column whose recorded result cardinality was positive, and suggests
// those predicate instances.
func (r *Recommender) EmptyResultSuggestions(ctx context.Context, p storage.Principal, querySQL string, k int) ([]Correction, error) {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	stmt, err := sql.Parse(querySQL)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("recommend: empty-result correction applies to SELECT queries")
	}
	analysis := sql.Analyze(sel)

	type candidate struct {
		text  string
		count int
	}
	var out []Correction
	view := r.store.Snapshot()
	for _, pred := range analysis.Predicates {
		if pred.IsJoin {
			continue
		}
		original := pred.Column + " " + pred.Op + " " + pred.Value
		if pred.Table != "" {
			original = pred.Table + "." + original
		}
		counts := make(map[string]int)
		collect := func(rec *storage.QueryRecord) bool {
			if rec.Stats.ResultRows == 0 {
				return true
			}
			for _, pr := range rec.Predicates {
				if pr.IsJoin || !strings.EqualFold(pr.Attr, pred.Column) {
					continue
				}
				if pred.Table != "" && pr.Rel != "" && !strings.EqualFold(pr.Rel, pred.Table) {
					continue
				}
				text := stats.PredicateText(pr)
				if text == original {
					continue
				}
				counts[text]++
			}
			return true
		}
		if pred.Table != "" {
			view.ScanByTable(pred.Table, p, scanCtx(ctx, collect))
		} else {
			view.Scan(p, scanCtx(ctx, collect))
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var cands []candidate
		for text, c := range counts {
			cands = append(cands, candidate{text: text, count: c})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].count != cands[j].count {
				return cands[i].count > cands[j].count
			}
			return cands[i].text < cands[j].text
		})
		if len(cands) > k {
			cands = cands[:k]
		}
		maxCount := 1
		if len(cands) > 0 {
			maxCount = cands[0].count
		}
		for _, c := range cands {
			out = append(out, Correction{
				Kind: "predicate", Original: original, Suggestion: c.text,
				Reason:     fmt.Sprintf("predicate returned non-empty results in %d logged queries", c.count),
				Confidence: float64(c.count) / float64(maxCount),
			})
		}
	}
	return out, nil
}

// keysOf returns the keys of a string map.
func keysOf(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// closestName returns the candidate with the smallest edit distance to name
// (case-insensitive) and that distance.
func closestName(name string, candidates []string) (string, int) {
	lower := strings.ToLower(name)
	best, bestDist := "", 1<<30
	for _, cand := range candidates {
		d := editDistance(lower, cand)
		if d < bestDist {
			bestDist = d
			best = cand
		}
	}
	if best == "" {
		return "", 0
	}
	return best, bestDist
}

// maxEditDistance scales the accepted distance with the identifier length,
// matching typical spell-checker behaviour.
func maxEditDistance(name string) int {
	switch {
	case len(name) <= 4:
		return 1
	case len(name) <= 8:
		return 2
	default:
		return 3
	}
}

// editDistance is the Damerau-Levenshtein (optimal string alignment)
// distance between two strings: insertions, deletions, substitutions and
// adjacent transpositions each cost one edit. Transpositions matter because
// they are the most common typo in identifier names ("tmep" for "temp").
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	d := make([][]int, la+1)
	for i := range d {
		d[i] = make([]int, lb+1)
		d[i][0] = i
	}
	for j := 0; j <= lb; j++ {
		d[0][j] = j
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d[i][j] = min3(d[i-1][j]+1, d[i][j-1]+1, d[i-1][j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := d[i-2][j-2] + 1; t < d[i][j] {
					d[i][j] = t
				}
			}
		}
	}
	return d[la][lb]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
