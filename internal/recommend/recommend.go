// Package recommend implements the CQMS Assisted Interaction Mode (§2.3,
// Figure 3): context-aware query completion (tables, columns, predicates,
// joins), automated query correction (misspelled names, empty-result
// predicates), ranked similar-query recommendation with the Figure 3
// score/diff/annotation columns, and automatic tutorial generation for new
// users.
//
// The recommender consumes the Query Miner's output (association rules,
// popularity counts) and the Meta-query Executor's kNN search, so its
// suggestions improve as the query log grows.
package recommend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
)

// scanCtx makes a store-scan callback abort soon after the requesting client
// goes away; see storage.ScanWithContext. Callers inspect ctx.Err()
// afterwards; a partial result from an aborted scan is discarded by the core
// layer.
func scanCtx(ctx context.Context, fn func(*storage.QueryRecord) bool) func(*storage.QueryRecord) bool {
	return storage.ScanWithContext(ctx, fn)
}

// CompletionKind classifies a completion suggestion.
type CompletionKind int

// Completion kinds.
const (
	CompleteTable CompletionKind = iota
	CompleteColumn
	CompletePredicate
	CompleteJoin
)

// String returns a readable label.
func (k CompletionKind) String() string {
	switch k {
	case CompleteTable:
		return "table"
	case CompleteColumn:
		return "column"
	case CompletePredicate:
		return "predicate"
	case CompleteJoin:
		return "join"
	default:
		return "unknown"
	}
}

// Completion is one suggestion in the Figure 3 "Completions" drop-down.
type Completion struct {
	Kind   CompletionKind
	Text   string
	Score  float64
	Reason string
}

// Correction is one suggestion in the Figure 3 "Corrections" pane.
type Correction struct {
	Kind       string // "table", "column", "predicate"
	Original   string
	Suggestion string
	Reason     string
	Confidence float64
}

// SimilarQuery is one row of the Figure 3 "Similar Queries" pane: a score, the
// query, the diff relative to the user's query and its annotations.
type SimilarQuery struct {
	Record      *storage.QueryRecord
	Score       float64
	Diff        string
	Annotations []string
}

// RankingWeights combines similarity with the "other desired properties"
// mentioned in §2.3 (popularity, efficient runtime, small result
// cardinality).
type RankingWeights struct {
	Similarity  float64
	Popularity  float64
	Runtime     float64
	Cardinality float64
}

// DefaultRankingWeights emphasises similarity.
func DefaultRankingWeights() RankingWeights {
	return RankingWeights{Similarity: 0.7, Popularity: 0.15, Runtime: 0.1, Cardinality: 0.05}
}

// Config controls the recommender.
type Config struct {
	Ranking RankingWeights
	// MaxSuggestions is the default cap on suggestions per category.
	MaxSuggestions int
	// ContextAware enables association-rule-driven suggestions; when false
	// the recommender falls back to global popularity only (the E3 ablation
	// baseline).
	ContextAware bool
}

// DefaultConfig returns the default recommender configuration.
func DefaultConfig() Config {
	return Config{Ranking: DefaultRankingWeights(), MaxSuggestions: 5, ContextAware: true}
}

// Recommender produces assisted-interaction suggestions.
type Recommender struct {
	store *storage.Store
	exec  *metaquery.Executor
	cfg   Config

	mu       sync.RWMutex
	mined    *miner.Result
	schemas  map[string][]string // table -> column names, from the DBMS catalog
	stats    *stats.Tracker      // nil falls back to per-suggestion log scans
	ruleFeed func() []miner.Rule // live rules before the first mining pass
}

// New returns a recommender over the store and meta-query executor.
func New(store *storage.Store, exec *metaquery.Executor, cfg Config) *Recommender {
	return &Recommender{store: store, exec: exec, cfg: cfg, schemas: map[string][]string{}}
}

// UseStats installs the incremental aggregates tracker. With it, the
// completion and popularity paths read O(candidates) counters kept current
// by the storage mutation bus instead of re-scanning the log per call, so
// per-suggestion cost stays flat as the log grows. Without it the
// recommender falls back to the scan-based paths.
func (r *Recommender) UseStats(t *stats.Tracker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = t
}

func (r *Recommender) statsTracker() *stats.Tracker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// UseRuleFeed installs a live association-rule source (the miner's
// bus-driven incremental feed). Until the first full mining pass installs a
// Result, context-aware suggestions are served from it, so completions are
// not popularity-only during cold start.
func (r *Recommender) UseRuleFeed(feed func() []miner.Rule) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ruleFeed = feed
}

// UpdateMining installs a fresh mining result (called after each background
// miner pass).
func (r *Recommender) UpdateMining(res *miner.Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mined = res
}

// SetSchemas installs the DBMS schema catalog used for name completion and
// correction.
func (r *Recommender) SetSchemas(schemas map[string][]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.schemas = schemas
}

func (r *Recommender) miningSnapshot() *miner.Result {
	r.mu.RLock()
	mined, feed := r.mined, r.ruleFeed
	r.mu.RUnlock()
	if mined != nil {
		return mined
	}
	if feed != nil {
		return &miner.Result{Rules: feed()}
	}
	return &miner.Result{}
}

func (r *Recommender) schemaSnapshot() map[string][]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][]string, len(r.schemas))
	for k, v := range r.schemas {
		out[k] = v
	}
	return out
}

// ---------------------------------------------------------------------------
// Context extraction from the partially written query
// ---------------------------------------------------------------------------

// context describes what the user has typed so far.
type queryContext struct {
	tables   []string
	columns  []string
	features []string
}

func (r *Recommender) contextOf(partialSQL string) queryContext {
	qc := queryContext{}
	// Prefer a full parse; fall back to token-level extraction for partial
	// queries.
	if stmt, err := sql.Parse(partialSQL); err == nil {
		if sel, ok := stmt.(*sql.SelectStmt); ok {
			a := sql.Analyze(sel)
			qc.tables = a.Tables
			for _, c := range a.Columns {
				name := c.Column
				if c.Table != "" {
					name = c.Table + "." + c.Column
				}
				qc.columns = append(qc.columns, name)
			}
			qc.features = a.FeatureSet()
			return qc
		}
	}
	tables, attrs := partialFeatures(partialSQL)
	qc.tables = tables
	qc.columns = attrs
	for _, t := range tables {
		qc.features = append(qc.features, "table:"+t)
	}
	for _, a := range attrs {
		qc.features = append(qc.features, "col:"+a)
	}
	return qc
}

// partialFeatures tokenises an incomplete query to find table and column
// identifiers.
func partialFeatures(partial string) (tables, attrs []string) {
	toks, err := sql.Tokenize(partial)
	if err != nil {
		return nil, nil
	}
	clause := ""
	seenT := map[string]bool{}
	seenA := map[string]bool{}
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == sql.TokenKeyword {
			switch t.Text {
			case "SELECT", "FROM", "WHERE", "GROUP", "HAVING", "ORDER":
				clause = t.Text
			}
			continue
		}
		if t.Kind != sql.TokenIdent && t.Kind != sql.TokenQuotedIdent {
			continue
		}
		if i+2 < len(toks) && toks[i+1].Kind == sql.TokenDot {
			if toks[i+2].Kind == sql.TokenIdent || toks[i+2].Kind == sql.TokenQuotedIdent {
				if !seenA[toks[i+2].Text] {
					seenA[toks[i+2].Text] = true
					attrs = append(attrs, toks[i+2].Text)
				}
				i += 2
				continue
			}
		}
		if clause == "FROM" {
			if i > 0 && (toks[i-1].Kind == sql.TokenIdent || toks[i-1].Kind == sql.TokenQuotedIdent) {
				continue // alias
			}
			if !seenT[t.Text] {
				seenT[t.Text] = true
				tables = append(tables, t.Text)
			}
		} else if !seenA[t.Text] {
			seenA[t.Text] = true
			attrs = append(attrs, t.Text)
		}
	}
	return tables, attrs
}

// ---------------------------------------------------------------------------
// Completion
// ---------------------------------------------------------------------------

// SuggestTables suggests tables to add to the FROM clause of the partially
// written query. Context-aware suggestions from association rules rank above
// global popularity (the §2.3 example: given WaterSalinity, suggest WaterTemp
// over the globally more popular CityLocations).
func (r *Recommender) SuggestTables(ctx context.Context, p storage.Principal, partialSQL string, k int) []Completion {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	qc := r.contextOf(partialSQL)
	mined := r.miningSnapshot()
	have := make(map[string]bool)
	for _, t := range qc.tables {
		have[strings.ToLower(t)] = true
	}

	var out []Completion
	seen := make(map[string]bool)
	add := func(table string, score float64, reason string) {
		key := strings.ToLower(table)
		if have[key] || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Completion{Kind: CompleteTable, Text: table, Score: score, Reason: reason})
	}

	if r.cfg.ContextAware && len(qc.features) > 0 {
		for _, rule := range miner.TopRulesFor(mined.Rules, qc.features, 0) {
			if !strings.HasPrefix(rule.Consequent, "table:") {
				continue
			}
			// Context-aware scores occupy (1, 2] so they always outrank the
			// popularity fallback below.
			add(strings.TrimPrefix(rule.Consequent, "table:"), 1+rule.Confidence,
				fmt.Sprintf("co-occurs with current tables (confidence %.0f%%)", rule.Confidence*100))
		}
	}
	// Global popularity fallback, normalised to (0, 1].
	maxCount := 1
	for _, pop := range mined.TablePopularity {
		if pop.Count > maxCount {
			maxCount = pop.Count
		}
	}
	for _, pop := range mined.TablePopularity {
		add(pop.Item, float64(pop.Count)/float64(maxCount),
			fmt.Sprintf("popular table (%d queries)", pop.Count))
	}
	// Schema fallback for cold starts.
	for table := range r.schemaSnapshot() {
		add(table, 0.1, "table in schema")
	}
	sortCompletions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// SuggestColumns suggests columns for the tables already referenced by the
// partial query, ranked by how often they are used in logged queries over
// those tables.
func (r *Recommender) SuggestColumns(ctx context.Context, p storage.Principal, partialSQL string, k int) []Completion {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	qc := r.contextOf(partialSQL)
	have := make(map[string]bool)
	for _, c := range qc.columns {
		have[strings.ToLower(c)] = true
		if idx := strings.LastIndex(c, "."); idx >= 0 {
			have[strings.ToLower(c[idx+1:])] = true
		}
	}
	counts := r.columnCounts(ctx, p, qc.tables)
	var out []Completion
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for name, c := range counts {
		bare := name
		if idx := strings.LastIndex(name, "."); idx >= 0 {
			bare = name[idx+1:]
		}
		if have[strings.ToLower(name)] || have[strings.ToLower(bare)] {
			continue
		}
		out = append(out, Completion{
			Kind: CompleteColumn, Text: name,
			Score:  float64(c) / float64(maxCount),
			Reason: fmt.Sprintf("used in %d logged queries over these tables", c),
		})
	}
	// Schema columns as a cold-start fallback.
	schemas := r.schemaSnapshot()
	for _, t := range qc.tables {
		for _, col := range schemas[t] {
			full := t + "." + col
			if have[strings.ToLower(full)] || have[strings.ToLower(col)] {
				continue
			}
			dup := false
			for _, existing := range out {
				if strings.EqualFold(existing.Text, full) {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, Completion{Kind: CompleteColumn, Text: full, Score: 0.05, Reason: "column in schema"})
			}
		}
	}
	sortCompletions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// columnCounts counts attribute usage across the visible queries referencing
// the context tables: O(candidates) from the stats counters when a tracker
// is installed, a per-table index scan otherwise.
func (r *Recommender) columnCounts(ctx context.Context, p storage.Principal, tables []string) map[string]int {
	if t := r.statsTracker(); t != nil {
		return t.ColumnCounts(p, tables)
	}
	set := stats.LowerSet(tables)
	counts := make(map[string]int)
	view := r.store.Snapshot()
	for _, t := range tables {
		view.ScanByTable(t, p, scanCtx(ctx, func(rec *storage.QueryRecord) bool {
			for _, attr := range rec.Attributes {
				if attr.Rel != "" && !set[strings.ToLower(attr.Rel)] {
					continue
				}
				name := attr.Attr
				if attr.Rel != "" {
					name = attr.Rel + "." + attr.Attr
				}
				counts[name]++
			}
			return true
		}))
	}
	return counts
}

// SuggestPredicates suggests WHERE predicates for the partial query from the
// predicate templates most frequently applied to the referenced tables.
func (r *Recommender) SuggestPredicates(ctx context.Context, p storage.Principal, partialSQL string, k int) []Completion {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	qc := r.contextOf(partialSQL)
	counts := r.predicateCounts(ctx, p, qc.tables)
	existing := r.existingPredicates(partialSQL)
	var out []Completion
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for text, c := range counts {
		if existing[text] {
			continue
		}
		out = append(out, Completion{
			Kind: CompletePredicate, Text: text,
			Score:  float64(c) / float64(maxCount),
			Reason: fmt.Sprintf("used in %d logged queries", c),
		})
	}
	sortCompletions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// predicateCounts counts concrete (non-join) predicates — with their
// constants, so a suggestion is immediately usable as in Figure 3's
// drop-down — across the visible queries referencing the context tables.
func (r *Recommender) predicateCounts(ctx context.Context, p storage.Principal, tables []string) map[string]int {
	if t := r.statsTracker(); t != nil {
		return t.PredicateCounts(p, tables)
	}
	set := stats.LowerSet(tables)
	counts := make(map[string]int)
	view := r.store.Snapshot()
	for _, t := range tables {
		view.ScanByTable(t, p, scanCtx(ctx, func(rec *storage.QueryRecord) bool {
			for _, pr := range rec.Predicates {
				if pr.IsJoin {
					continue
				}
				if pr.Rel != "" && !set[strings.ToLower(pr.Rel)] {
					continue
				}
				counts[stats.PredicateText(pr)]++
			}
			return true
		}))
	}
	return counts
}

func (r *Recommender) existingPredicates(partialSQL string) map[string]bool {
	out := make(map[string]bool)
	stmt, err := sql.Parse(partialSQL)
	if err != nil {
		return out
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return out
	}
	for _, pr := range sql.Analyze(sel).Predicates {
		col := pr.Column
		if pr.Table != "" {
			col = pr.Table + "." + pr.Column
		}
		out[col+" "+pr.Op+" "+pr.Value] = true
	}
	return out
}

// SuggestJoins suggests join conditions connecting the tables referenced by
// the partial query, taken from the join predicates of logged queries.
func (r *Recommender) SuggestJoins(ctx context.Context, p storage.Principal, partialSQL string, k int) []Completion {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	qc := r.contextOf(partialSQL)
	if len(qc.tables) < 2 {
		return nil
	}
	counts := r.joinCounts(ctx, p, qc.tables)
	var out []Completion
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for text, c := range counts {
		out = append(out, Completion{
			Kind: CompleteJoin, Text: text,
			Score:  float64(c) / float64(maxCount),
			Reason: fmt.Sprintf("join used in %d logged queries", c),
		})
	}
	sortCompletions(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// joinCounts counts canonical join predicates (stats.CanonicalJoin orders
// the sides of an equi-join so A.x = B.x and B.x = A.x aggregate) whose two
// sides are both context tables, across the visible queries referencing
// them.
func (r *Recommender) joinCounts(ctx context.Context, p storage.Principal, tables []string) map[string]int {
	if t := r.statsTracker(); t != nil {
		return t.JoinCounts(p, tables)
	}
	set := stats.LowerSet(tables)
	counts := make(map[string]int)
	view := r.store.Snapshot()
	for _, t := range tables {
		view.ScanByTable(t, p, scanCtx(ctx, func(rec *storage.QueryRecord) bool {
			for _, pr := range rec.Predicates {
				if !pr.IsJoin {
					continue
				}
				if !set[strings.ToLower(pr.Rel)] || !set[strings.ToLower(pr.RightRel)] {
					continue
				}
				counts[stats.CanonicalJoin(pr)]++
			}
			return true
		}))
	}
	return counts
}

// Complete merges table, column, predicate and join suggestions for the
// partial query, capped at k entries per kind.
func (r *Recommender) Complete(ctx context.Context, p storage.Principal, partialSQL string, k int) []Completion {
	var out []Completion
	out = append(out, r.SuggestTables(ctx, p, partialSQL, k)...)
	out = append(out, r.SuggestColumns(ctx, p, partialSQL, k)...)
	out = append(out, r.SuggestPredicates(ctx, p, partialSQL, k)...)
	out = append(out, r.SuggestJoins(ctx, p, partialSQL, k)...)
	return out
}

func sortCompletions(cs []Completion) {
	sort.SliceStable(cs, func(i, j int) bool {
		if cs[i].Score != cs[j].Score {
			return cs[i].Score > cs[j].Score
		}
		return cs[i].Text < cs[j].Text
	})
}
