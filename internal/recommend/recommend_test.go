package recommend

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metaquery"
	"repro/internal/miner"
	"repro/internal/stats"
	"repro/internal/storage"
)

var admin = storage.Principal{Admin: true}

// fixture builds a store shaped like the paper's §2.3 example: CityLocations
// is globally the most popular table, but queries over WaterSalinity almost
// always also reference WaterTemp.
func fixture(t testing.TB) (*Recommender, *storage.Store) {
	t.Helper()
	store := storage.NewStore()
	put := func(text string, rows int) storage.QueryID {
		rec, err := storage.NewRecordFromSQL(text)
		if err != nil {
			t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
		}
		rec.User = "alice"
		rec.Visibility = storage.VisibilityPublic
		rec.Stats = storage.RuntimeStats{ResultRows: rows, ExecTime: 3 * time.Millisecond}
		return store.Put(rec)
	}
	// 12 CityLocations-only queries (globally most popular table).
	for i := 0; i < 6; i++ {
		put("SELECT city FROM CityLocations WHERE state = 'WA'", 30)
		put("SELECT city FROM CityLocations WHERE pop > 10000", 45)
	}
	// 8 WaterSalinity+WaterTemp queries (context rule).
	for i := 0; i < 8; i++ {
		put("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18", 12)
	}
	// 1 WaterSalinity+CityLocations query.
	put("SELECT WaterSalinity.salinity FROM WaterSalinity, CityLocations WHERE WaterSalinity.loc_x = CityLocations.loc_x", 4)
	// 5 WaterTemp-only queries with varied predicates.
	put("SELECT temp FROM WaterTemp WHERE temp < 18", 10)
	put("SELECT temp FROM WaterTemp WHERE temp < 18", 10)
	put("SELECT temp FROM WaterTemp WHERE temp < 22", 25)
	put("SELECT lake, temp FROM WaterTemp WHERE temp > 30", 0) // empty result
	put("SELECT AVG(temp) FROM WaterTemp GROUP BY lake", 3)

	// Annotate one correlation query (shows up in the Figure 3 pane).
	ids := store.Snapshot().Records(admin)
	for _, rec := range ids {
		if strings.Contains(rec.Text, "WaterSalinity.loc_x = WaterTemp.loc_x") {
			if err := store.Annotate(rec.ID, storage.Principal{User: "alice"}, storage.Annotation{
				Text: "find temp and salinity of Seattle lakes"}); err != nil {
				t.Fatal(err)
			}
			break
		}
	}

	exec := metaquery.New(store)
	rec := New(store, exec, DefaultConfig())
	rec.UpdateMining(miner.New(miner.Config{
		Assoc:               miner.AssocConfig{MinSupport: 0.03, MinConfidence: 0.3, MaxItemsetSize: 3},
		Cluster:             miner.DefaultClusterConfig(5),
		MinEditPatternCount: 1,
		MaxClusteredQueries: 1000,
	}).Run(store))
	rec.SetSchemas(map[string][]string{
		"WaterTemp":     {"id", "lake", "loc_x", "loc_y", "temp"},
		"WaterSalinity": {"id", "lake", "loc_x", "loc_y", "salinity", "depth"},
		"CityLocations": {"city", "state", "loc_x", "loc_y", "pop"},
	})
	return rec, store
}

func TestSuggestTablesContextAware(t *testing.T) {
	r, _ := fixture(t)
	// The paper's example: the user has already included WaterSalinity, so
	// WaterTemp must be suggested above CityLocations even though the latter
	// is globally more popular.
	got := r.SuggestTables(context.Background(), admin, "SELECT * FROM WaterSalinity", 3)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	if got[0].Text != "WaterTemp" {
		t.Errorf("top suggestion = %q, want WaterTemp (context-aware)", got[0].Text)
	}
	rankCity := -1
	for i, c := range got {
		if c.Text == "CityLocations" {
			rankCity = i
		}
		if c.Text == "WaterSalinity" {
			t.Errorf("should not suggest a table already in the query")
		}
	}
	if rankCity == 0 {
		t.Errorf("CityLocations should not outrank WaterTemp")
	}
}

func TestSuggestTablesGlobalPopularityWithoutContext(t *testing.T) {
	r, _ := fixture(t)
	// An empty query has no context: the globally most popular table
	// (CityLocations) is suggested first.
	got := r.SuggestTables(context.Background(), admin, "SELECT ", 3)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	if got[0].Text != "CityLocations" {
		t.Errorf("top suggestion = %q, want CityLocations (most popular)", got[0].Text)
	}
}

func TestSuggestTablesContextAwareDisabled(t *testing.T) {
	r, store := fixture(t)
	cfg := DefaultConfig()
	cfg.ContextAware = false
	r2 := New(store, metaquery.New(store), cfg)
	r2.UpdateMining(r.miningSnapshot())
	got := r2.SuggestTables(context.Background(), admin, "SELECT * FROM WaterSalinity", 3)
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	// Without context rules the globally popular CityLocations wins: this is
	// the E3 ablation baseline.
	if got[0].Text != "CityLocations" {
		t.Errorf("popularity-only top suggestion = %q, want CityLocations", got[0].Text)
	}
}

func TestSuggestColumns(t *testing.T) {
	r, _ := fixture(t)
	got := r.SuggestColumns(context.Background(), admin, "SELECT FROM WaterTemp", 5)
	if len(got) == 0 {
		t.Fatal("no column suggestions")
	}
	foundTemp := false
	for _, c := range got {
		if strings.HasSuffix(c.Text, "temp") {
			foundTemp = true
		}
	}
	if !foundTemp {
		t.Errorf("temp should be suggested for WaterTemp: %+v", got)
	}
	// Already-referenced columns are not suggested.
	got = r.SuggestColumns(context.Background(), admin, "SELECT temp FROM WaterTemp", 5)
	for _, c := range got {
		if c.Text == "WaterTemp.temp" || c.Text == "temp" {
			t.Errorf("already-present column suggested: %+v", c)
		}
	}
}

func TestSuggestPredicates(t *testing.T) {
	r, _ := fixture(t)
	got := r.SuggestPredicates(context.Background(), admin, "SELECT temp FROM WaterTemp WHERE ", 5)
	if len(got) == 0 {
		t.Fatal("no predicate suggestions")
	}
	// 'temp < 18' is the most frequent predicate over WaterTemp in the log
	// (8 correlation queries + 2 direct).
	if !strings.Contains(got[0].Text, "temp < 18") {
		t.Errorf("top predicate = %q, want temp < 18", got[0].Text)
	}
	// An existing predicate is not re-suggested.
	got = r.SuggestPredicates(context.Background(), admin, "SELECT temp FROM WaterTemp WHERE WaterTemp.temp < 18", 5)
	for _, c := range got {
		if strings.Contains(c.Text, "temp < 18") {
			t.Errorf("existing predicate suggested again: %+v", c)
		}
	}
}

func TestSuggestJoins(t *testing.T) {
	r, _ := fixture(t)
	got := r.SuggestJoins(context.Background(), admin, "SELECT * FROM WaterSalinity, WaterTemp", 5)
	if len(got) == 0 {
		t.Fatal("no join suggestions")
	}
	if !strings.Contains(got[0].Text, "loc_x") {
		t.Errorf("top join = %q, want the loc_x equi-join", got[0].Text)
	}
	// A single-table query yields no join suggestions.
	if got := r.SuggestJoins(context.Background(), admin, "SELECT * FROM WaterTemp", 5); got != nil {
		t.Errorf("join suggestions for single table = %+v, want none", got)
	}
}

func TestCompleteMergesKinds(t *testing.T) {
	r, _ := fixture(t)
	got := r.Complete(context.Background(), admin, "SELECT * FROM WaterSalinity, WaterTemp WHERE ", 3)
	kinds := map[CompletionKind]bool{}
	for _, c := range got {
		kinds[c.Kind] = true
	}
	for _, want := range []CompletionKind{CompleteTable, CompleteColumn, CompletePredicate, CompleteJoin} {
		if !kinds[want] {
			t.Errorf("Complete missing kind %v", want)
		}
	}
}

func TestCompletionKindString(t *testing.T) {
	if CompleteTable.String() != "table" || CompleteColumn.String() != "column" ||
		CompletePredicate.String() != "predicate" || CompleteJoin.String() != "join" ||
		CompletionKind(99).String() != "unknown" {
		t.Error("CompletionKind labels wrong")
	}
}

func TestCorrectionsMisspelledNames(t *testing.T) {
	r, _ := fixture(t)
	got := r.Corrections(context.Background(), admin, "SELECT tmep FROM WaterTemps WHERE tmep < 18")
	var tableFix, colFix bool
	for _, c := range got {
		if c.Kind == "table" && c.Original == "WaterTemps" && c.Suggestion == "WaterTemp" {
			tableFix = true
		}
		if c.Kind == "column" && strings.Contains(c.Suggestion, "temp") {
			colFix = true
		}
	}
	if !tableFix {
		t.Errorf("missing table correction: %+v", got)
	}
	if !colFix {
		t.Errorf("missing column correction: %+v", got)
	}
}

func TestCorrectionsDeduplicated(t *testing.T) {
	r, _ := fixture(t)
	// The same typo appears in SELECT and WHERE; only one correction should
	// be emitted.
	got := r.Corrections(context.Background(), admin, "SELECT tmep FROM WaterTemp WHERE tmep < 18")
	seen := map[string]int{}
	for _, c := range got {
		seen[c.Kind+"|"+c.Original+"|"+c.Suggestion]++
	}
	for key, n := range seen {
		if n > 1 {
			t.Errorf("correction %q emitted %d times", key, n)
		}
	}
}

func TestCorrectionsNoFalsePositives(t *testing.T) {
	r, _ := fixture(t)
	got := r.Corrections(context.Background(), admin, "SELECT temp FROM WaterTemp WHERE temp < 18")
	if len(got) != 0 {
		t.Errorf("correct query should produce no corrections: %+v", got)
	}
}

func TestEmptyResultSuggestions(t *testing.T) {
	r, _ := fixture(t)
	// 'temp > 30' returned the empty set in the log; the assistant suggests
	// previously issued predicates on temp that returned data.
	got, err := r.EmptyResultSuggestions(context.Background(), admin, "SELECT lake, temp FROM WaterTemp WHERE temp > 30", 3)
	if err != nil {
		t.Fatalf("EmptyResultSuggestions: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no suggestions")
	}
	found := false
	for _, c := range got {
		if strings.Contains(c.Suggestion, "temp < 18") {
			found = true
		}
		if strings.Contains(c.Suggestion, "temp > 30") {
			t.Errorf("the failing predicate itself was suggested")
		}
	}
	if !found {
		t.Errorf("expected 'temp < 18' among suggestions: %+v", got)
	}
}

func TestEmptyResultSuggestionsErrors(t *testing.T) {
	r, _ := fixture(t)
	if _, err := r.EmptyResultSuggestions(context.Background(), admin, "not sql", 3); err == nil {
		t.Error("expected parse error")
	}
	if _, err := r.EmptyResultSuggestions(context.Background(), admin, "DELETE FROM WaterTemp", 3); err == nil {
		t.Error("expected error for non-SELECT")
	}
}

func TestSimilarQueriesRankingAndColumns(t *testing.T) {
	r, _ := fixture(t)
	got, err := r.SimilarQueries(context.Background(), admin, "SELECT temp FROM WaterTemp WHERE temp < 20", 3)
	if err != nil {
		t.Fatalf("SimilarQueries: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no similar queries")
	}
	if len(got) > 3 {
		t.Errorf("k not respected")
	}
	// The most similar query must be a WaterTemp query, not CityLocations.
	if !contains(got[0].Record.Tables, "WaterTemp") {
		t.Errorf("top similar query tables = %v", got[0].Record.Tables)
	}
	// Scores descending; diff column populated.
	for i, s := range got {
		if i > 0 && s.Score > got[i-1].Score {
			t.Errorf("similar queries not sorted")
		}
		if s.Diff == "" {
			t.Errorf("diff column empty")
		}
	}
}

func TestSimilarQueriesFromPartial(t *testing.T) {
	r, _ := fixture(t)
	// An unparsable partial query falls back to feature matching.
	got, err := r.SimilarQueries(context.Background(), admin, "SELECT FROM WaterSalinity, WaterTemp WHERE", 5)
	if err != nil {
		t.Fatalf("SimilarQueries(partial): %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no matches for partial query")
	}
	for _, s := range got {
		if !contains(s.Record.Tables, "WaterSalinity") {
			t.Errorf("partial match without WaterSalinity: %v", s.Record.Tables)
		}
	}
}

func TestSimilarQueriesIncludeAnnotations(t *testing.T) {
	r, _ := fixture(t)
	got, err := r.SimilarQueries(context.Background(), admin, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x", 5)
	if err != nil {
		t.Fatal(err)
	}
	foundAnn := false
	for _, s := range got {
		for _, a := range s.Annotations {
			if strings.Contains(a, "Seattle lakes") {
				foundAnn = true
			}
		}
	}
	if !foundAnn {
		t.Errorf("annotation should surface in the similar-queries pane")
	}
}

func TestTutorial(t *testing.T) {
	r, _ := fixture(t)
	steps := r.Tutorial(context.Background(), admin, 2)
	if len(steps) == 0 {
		t.Fatal("no tutorial steps")
	}
	// The first step introduces the most popular relation.
	if steps[0].Table != "CityLocations" {
		t.Errorf("first tutorial relation = %q, want CityLocations", steps[0].Table)
	}
	for _, s := range steps {
		if len(s.PopularQueries) == 0 || len(s.PopularQueries) > 2 {
			t.Errorf("step %s has %d example queries, want 1..2", s.Table, len(s.PopularQueries))
		}
		if len(s.Columns) == 0 {
			t.Errorf("step %s has no columns", s.Table)
		}
	}
	text := RenderTutorial(steps)
	if !strings.Contains(text, "Relation CityLocations") || !strings.Contains(text, "example:") {
		t.Errorf("tutorial rendering missing content:\n%s", text)
	}
}

func TestRenderAssistPane(t *testing.T) {
	r, _ := fixture(t)
	partial := "SELECT * FROM WaterSalinity, WaterTemp WHERE "
	completions := r.Complete(context.Background(), admin, partial, 2)
	similar, err := r.SimilarQueries(context.Background(), admin, partial, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAssistPane(completions, similar)
	for _, want := range []string{"Suggest:", "Similar Queries", "Score", "Diff", "Annotations"} {
		if !strings.Contains(out, want) {
			t.Errorf("pane missing %q:\n%s", want, out)
		}
	}
	if RenderAssistPane(nil, nil) == "" {
		t.Errorf("empty pane should still render headers")
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"watertemp", "watertemps", 1},
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"tmep", "temp", 1}, // adjacent transposition counts as one edit
		{"salintiy", "salinity", 1},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

// TestCounterPathMatchesScanPath proves the stats-counter completion paths
// produce exactly the suggestions the scan paths did, for an admin and for
// principals whose visible set the public+own bucket merge covers exactly.
func TestCounterPathMatchesScanPath(t *testing.T) {
	scanRec, store := fixture(t)
	// Mix in private queries of a second user so the bucket merge is
	// exercised (alice's fixture queries are public).
	put := func(text, user string, vis storage.Visibility) {
		rec, err := storage.NewRecordFromSQL(text)
		if err != nil {
			t.Fatal(err)
		}
		rec.User = user
		rec.Visibility = vis
		store.Put(rec)
	}
	put("SELECT temp FROM WaterTemp WHERE temp < 7", "bob", storage.VisibilityPrivate)
	put("SELECT WaterTemp.lake FROM WaterTemp WHERE WaterTemp.temp > 12", "bob", storage.VisibilityPrivate)
	put("SELECT WaterSalinity.depth, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
		"bob", storage.VisibilityPrivate)

	tracker := stats.Attach(store)
	counterRec := New(store, metaquery.New(store), DefaultConfig())
	counterRec.UseStats(tracker)
	counterRec.UpdateMining(scanRec.miningSnapshot())
	counterRec.SetSchemas(scanRec.schemaSnapshot())

	ctx := context.Background()
	partials := []string{
		"SELECT FROM WaterTemp",
		"SELECT temp FROM WaterTemp WHERE ",
		"SELECT * FROM WaterSalinity, WaterTemp",
		"SELECT * FROM WaterSalinity, WaterTemp WHERE ",
		"SELECT * FROM CityLocations, WaterSalinity WHERE ",
	}
	principals := []storage.Principal{
		admin,
		{User: "alice"},
		{User: "bob"},
		{User: "eve"}, // sees only public queries
	}
	for _, p := range principals {
		for _, partial := range partials {
			if got, want := counterRec.SuggestColumns(ctx, p, partial, 50), scanRec.SuggestColumns(ctx, p, partial, 50); !reflect.DeepEqual(got, want) {
				t.Errorf("SuggestColumns(%+v, %q)\n got: %+v\nwant: %+v", p, partial, got, want)
			}
			if got, want := counterRec.SuggestPredicates(ctx, p, partial, 50), scanRec.SuggestPredicates(ctx, p, partial, 50); !reflect.DeepEqual(got, want) {
				t.Errorf("SuggestPredicates(%+v, %q)\n got: %+v\nwant: %+v", p, partial, got, want)
			}
			if got, want := counterRec.SuggestJoins(ctx, p, partial, 50), scanRec.SuggestJoins(ctx, p, partial, 50); !reflect.DeepEqual(got, want) {
				t.Errorf("SuggestJoins(%+v, %q)\n got: %+v\nwant: %+v", p, partial, got, want)
			}
		}
	}
}
