package recommend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sql"
	"repro/internal/storage"
)

// SimilarQueries returns the Figure 3 similar-queries pane for the user's
// (complete or partial) query: the k most relevant logged queries, each with
// a composite score, the structural diff relative to the user's query and
// its annotations. The composite ranking combines kNN similarity with query
// popularity, runtime efficiency and result-cardinality preferences (§2.3).
func (r *Recommender) SimilarQueries(ctx context.Context, p storage.Principal, querySQL string, k int) ([]SimilarQuery, error) {
	if k <= 0 {
		k = r.cfg.MaxSuggestions
	}
	probe, err := storage.NewRecordFromSQL(querySQL)
	if err != nil {
		// Fall back to the longest parsable prefix: partial queries are the
		// norm in assisted mode, so degrade to a feature-based search.
		return r.similarFromPartial(ctx, p, querySQL, k)
	}
	// Over-fetch neighbours, then re-rank with the composite function.
	neighbours, err := r.exec.KNNExcluding(ctx, p, probe, k*4, 0)
	if err != nil {
		return nil, err
	}
	probeAnalysis := probe.Analysis()

	// Popularity prior: per-fingerprint occurrence counts visible to the
	// principal. With the incremental stats counters available, only the
	// neighbours' own fingerprints are probed — O(neighbours), independent
	// of how many distinct templates the log holds — and the normaliser
	// comes from the tracker's bounded top-fingerprint summary. Without a
	// tracker, fall back to a full log scan.
	var popByFingerprint map[uint64]int
	maxPop := 1
	if t := r.statsTracker(); t != nil {
		fps := make([]uint64, 0, len(neighbours))
		for _, n := range neighbours {
			fps = append(fps, n.Record.Fingerprint)
		}
		popByFingerprint = t.FingerprintCountsFor(p, fps)
		if m := t.MaxFingerprintCount(p); m > maxPop {
			maxPop = m
		}
	} else {
		popByFingerprint = make(map[uint64]int)
		r.store.Snapshot().Scan(p, scanCtx(ctx, func(rec *storage.QueryRecord) bool {
			popByFingerprint[rec.Fingerprint]++
			return true
		}))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	for _, c := range popByFingerprint {
		if c > maxPop {
			maxPop = c
		}
	}

	w := r.cfg.Ranking
	out := make([]SimilarQuery, 0, len(neighbours))
	for _, n := range neighbours {
		rec := n.Record
		score := w.Similarity * n.Score
		score += w.Popularity * float64(popByFingerprint[rec.Fingerprint]) / float64(maxPop)
		score += w.Runtime * runtimeScore(rec.Stats.ExecTime)
		score += w.Cardinality * cardinalityScore(rec.Stats.ResultRows)
		diff := sql.ComputeDiff(probeAnalysis, rec.Analysis())
		var anns []string
		for _, a := range rec.Annotations {
			anns = append(anns, a.Text)
		}
		out = append(out, SimilarQuery{Record: rec, Score: score, Diff: diff.Summary(), Annotations: anns})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// similarFromPartial handles unparsable partial queries by matching on the
// tables and attributes typed so far.
func (r *Recommender) similarFromPartial(ctx context.Context, p storage.Principal, partialSQL string, k int) ([]SimilarQuery, error) {
	matches, err := r.exec.ByPartialQuery(ctx, p, partialSQL)
	if err != nil {
		return nil, err
	}
	out := make([]SimilarQuery, 0, len(matches))
	for _, m := range matches {
		var anns []string
		for _, a := range m.Record.Annotations {
			anns = append(anns, a.Text)
		}
		out = append(out, SimilarQuery{Record: m.Record, Score: m.Score, Diff: "partial match", Annotations: anns})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Record.ID < out[j].Record.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// runtimeScore rewards fast queries: 1 at 0ms decaying towards 0 for slow
// queries.
func runtimeScore(d time.Duration) float64 {
	ms := float64(d.Milliseconds())
	return 1 / (1 + ms/100)
}

// cardinalityScore rewards small result sets.
func cardinalityScore(rows int) float64 {
	return 1 / (1 + float64(rows)/1000)
}

// ---------------------------------------------------------------------------
// Tutorial generation (§2.3)
// ---------------------------------------------------------------------------

// TutorialStep introduces one relation by its schema (as observed in the
// log) and the most popular logged queries over it.
type TutorialStep struct {
	Table          string
	Columns        []string
	PopularQueries []*storage.QueryRecord
	Annotations    []string
}

// Tutorial generates a data-set tutorial for new users by introducing each
// relation with the most popular queries that include it (§2.3: "the system
// could introduce each relation and its schema by showing the user the most
// popular queries that include the relation").
func (r *Recommender) Tutorial(ctx context.Context, p storage.Principal, queriesPerTable int) []TutorialStep {
	if queriesPerTable <= 0 {
		queriesPerTable = 3
	}
	mined := r.miningSnapshot()
	schemas := r.schemaSnapshot()
	view := r.store.Snapshot()
	var steps []TutorialStep
	for _, pop := range mined.TablePopularity {
		if ctx.Err() != nil {
			return nil
		}
		table := pop.Item
		var records []*storage.QueryRecord
		view.ScanByTable(table, p, scanCtx(ctx, func(rec *storage.QueryRecord) bool {
			records = append(records, rec)
			return true
		}))
		if len(records) == 0 {
			continue
		}
		// Popularity of individual queries: identical templates count as one
		// query with higher weight.
		byTemplate := make(map[uint64][]*storage.QueryRecord)
		for _, rec := range records {
			byTemplate[rec.Fingerprint] = append(byTemplate[rec.Fingerprint], rec)
		}
		type ranked struct {
			rec   *storage.QueryRecord
			count int
		}
		var rankedQueries []ranked
		for _, group := range byTemplate {
			rankedQueries = append(rankedQueries, ranked{rec: group[0], count: len(group)})
		}
		sort.Slice(rankedQueries, func(i, j int) bool {
			if rankedQueries[i].count != rankedQueries[j].count {
				return rankedQueries[i].count > rankedQueries[j].count
			}
			return rankedQueries[i].rec.ID < rankedQueries[j].rec.ID
		})
		step := TutorialStep{Table: table}
		if cols, ok := schemas[table]; ok {
			step.Columns = append(step.Columns, cols...)
		} else {
			seen := map[string]bool{}
			for _, rec := range records {
				for _, a := range rec.Attributes {
					if strings.EqualFold(a.Rel, table) && !seen[a.Attr] {
						seen[a.Attr] = true
						step.Columns = append(step.Columns, a.Attr)
					}
				}
			}
			sort.Strings(step.Columns)
		}
		for i, rq := range rankedQueries {
			if i >= queriesPerTable {
				break
			}
			step.PopularQueries = append(step.PopularQueries, rq.rec)
			for _, a := range rq.rec.Annotations {
				step.Annotations = append(step.Annotations, a.Text)
			}
		}
		steps = append(steps, step)
	}
	return steps
}

// ---------------------------------------------------------------------------
// Figure 3 rendering
// ---------------------------------------------------------------------------

// RenderAssistPane renders the assisted-interaction pane of Figure 3 as text:
// the completion suggestions followed by the similar-queries table with
// Score, Query, Diff and Annotations columns.
func RenderAssistPane(completions []Completion, similar []SimilarQuery) string {
	var sb strings.Builder
	sb.WriteString("Suggest:\n")
	if len(completions) == 0 {
		sb.WriteString("  (no suggestions)\n")
	}
	for _, c := range completions {
		fmt.Fprintf(&sb, "  [%-9s] %-45s %s\n", c.Kind, c.Text, c.Reason)
	}
	sb.WriteString("Similar Queries\n")
	fmt.Fprintf(&sb, "  %-7s| %-50s| %-20s| %s\n", "Score", "Query", "Diff", "Annotations")
	for _, s := range similar {
		text := s.Record.Canonical
		if len(text) > 48 {
			text = text[:45] + "..."
		}
		ann := strings.Join(s.Annotations, "; ")
		if len(ann) > 40 {
			ann = ann[:37] + "..."
		}
		fmt.Fprintf(&sb, "  [%3.0f%%] | %-50s| %-20s| %s\n", s.Score*100, text, s.Diff, ann)
	}
	return sb.String()
}

// RenderTutorial renders the generated tutorial as readable text.
func RenderTutorial(steps []TutorialStep) string {
	var sb strings.Builder
	sb.WriteString("Data set tutorial (generated from the query log)\n")
	for i, step := range steps {
		fmt.Fprintf(&sb, "\n%d. Relation %s\n", i+1, step.Table)
		if len(step.Columns) > 0 {
			fmt.Fprintf(&sb, "   columns: %s\n", strings.Join(step.Columns, ", "))
		}
		for _, q := range step.PopularQueries {
			fmt.Fprintf(&sb, "   example: %s\n", q.Canonical)
		}
		for _, a := range step.Annotations {
			fmt.Fprintf(&sb, "   note:    %s\n", a)
		}
	}
	return sb.String()
}
