package server

import (
	"encoding/base64"
	"encoding/json"

	"repro/internal/metaquery"
	"repro/internal/storage"
)

// Pagination bounds: every v1 list endpoint returns at most maxPageLimit
// items per page, defaultPageLimit when the client does not ask.
const (
	defaultPageLimit = 50
	maxPageLimit     = 500
)

// effectiveLimit clamps a client-supplied page size into [1, maxPageLimit],
// applying the default when unset.
func effectiveLimit(n int) int {
	switch {
	case n <= 0:
		return defaultPageLimit
	case n > maxPageLimit:
		return maxPageLimit
	default:
		return n
	}
}

// pageCursor is the decoded form of the opaque cursor string. Kind binds a
// cursor to the endpoint family that minted it; High pins the listing's
// membership at the store's ID high-water mark observed on the first page,
// so later pages exclude queries inserted since (storage.SnapshotAt
// semantics); After/Score record the position of the last item returned.
type pageCursor struct {
	Kind  string  `json:"k"`
	High  int64   `json:"h,omitempty"`
	After int64   `json:"a,omitempty"`
	Score float64 `json:"s,omitempty"`
	Pos   bool    `json:"p,omitempty"`
	// Seen counts items already returned, for listings with a total cap
	// (the similar search's k) enforced across pages.
	Seen int `json:"n,omitempty"`
}

// encode serialises the cursor into the opaque wire form.
func (c pageCursor) encode() string {
	b, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(b)
}

// decodePageCursor parses an opaque cursor and checks it was minted by the
// given endpoint family. An empty cursor starts a fresh listing.
func decodePageCursor(raw, kind string) (pageCursor, error) {
	if raw == "" {
		return pageCursor{Kind: kind}, nil
	}
	b, err := base64.RawURLEncoding.DecodeString(raw)
	if err != nil {
		return pageCursor{}, Errorf(CodeInvalidArgument, "malformed cursor")
	}
	var c pageCursor
	if err := json.Unmarshal(b, &c); err != nil {
		return pageCursor{}, Errorf(CodeInvalidArgument, "malformed cursor")
	}
	if c.Kind != kind {
		return pageCursor{}, Errorf(CodeInvalidArgument,
			"cursor was issued by %q, not by %q", c.Kind, kind)
	}
	return c, nil
}

// paginateMatches pages a ranked match list. Matches are filtered to the
// cursor's pinned membership (ID <= High), put into the deterministic
// (score desc, ID asc) order, and the page resumes strictly after the
// cursor's position — so a deletion between pages drops only the deleted
// item and concurrent inserts never appear mid-listing. The input must be
// the full (untruncated) match set over a superset of the pinned membership,
// otherwise pinned records can silently drop out; a listing-wide cap (the
// similar search's k) is applied here, via totalCap (0 = uncapped), so the
// cap never interacts with the membership filter. Returns the page and the
// encoded next cursor ("" when the listing is exhausted).
func paginateMatches(matches []metaquery.Match, cur pageCursor, limit, totalCap int) ([]metaquery.Match, string) {
	kept := matches[:0]
	for _, m := range matches {
		if int64(m.Record.ID) <= cur.High {
			kept = append(kept, m)
		}
	}
	metaquery.SortMatches(kept)
	start := 0
	if cur.Pos {
		for start < len(kept) {
			m := kept[start]
			if m.Score < cur.Score ||
				(m.Score == cur.Score && int64(m.Record.ID) > cur.After) {
				break
			}
			start++
		}
	}
	page := kept[start:]
	if totalCap > 0 {
		left := totalCap - cur.Seen
		if left <= 0 {
			return nil, ""
		}
		if len(page) > left {
			page = page[:left]
		}
	}
	more := len(page) > limit
	if more {
		page = page[:limit]
	}
	if !more || len(page) == 0 {
		return page, ""
	}
	last := page[len(page)-1]
	next := pageCursor{
		Kind: cur.Kind, High: cur.High,
		After: int64(last.Record.ID), Score: last.Score, Pos: true,
		Seen: cur.Seen + len(page),
	}
	return page, next.encode()
}

// newMatchCursor mints the first-page cursor for a ranked listing, pinning
// membership at the store's current high-water mark.
func newMatchCursor(kind string, high storage.QueryID) pageCursor {
	return pageCursor{Kind: kind, High: int64(high)}
}
