package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/storage"
)

// ErrorCode is a machine-readable error class carried in every error
// envelope. Codes are part of the v1 wire contract: clients branch on the
// code, not on the message text.
type ErrorCode string

// Error codes and their HTTP statuses (see httpStatus).
const (
	CodeInvalidArgument  ErrorCode = "invalid_argument"
	CodeNotFound         ErrorCode = "not_found"
	CodePermissionDenied ErrorCode = "permission_denied"
	CodeMethodNotAllowed ErrorCode = "method_not_allowed"
	CodePayloadTooLarge  ErrorCode = "payload_too_large"
	CodeCanceled         ErrorCode = "canceled"
	CodeDeadlineExceeded ErrorCode = "deadline_exceeded"
	CodeUnavailable      ErrorCode = "unavailable"
	CodeInternal         ErrorCode = "internal"
	// CodeReadOnly marks a write refused by a read replica; the envelope's
	// details name the primary to send the write to.
	CodeReadOnly ErrorCode = "read_only"
)

// APIError is the structured error envelope payload of every failed request:
// a stable machine-readable code, a human-readable message and optional
// per-field details.
type APIError struct {
	Code    ErrorCode         `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

// Error implements the error interface.
func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errorf builds an APIError with a formatted message.
func Errorf(code ErrorCode, format string, args ...interface{}) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// readOnlyError is the structured refusal a read replica returns for any
// mutating route; primary names the process that does accept writes.
func readOnlyError(primary string) *APIError {
	err := Errorf(CodeReadOnly, "this server is a read replica; writes go to the primary")
	err.Details = map[string]string{"role": "follower"}
	if primary != "" {
		err.Details["primary"] = primary
	}
	return err
}

// ErrorResponse is the error envelope returned for every failed request.
type ErrorResponse struct {
	Error APIError `json:"error"`
}

// httpStatus maps an error code onto its HTTP status. 499 follows the
// widespread "client closed request" convention for requests whose caller
// disconnected mid-scan.
func httpStatus(code ErrorCode) int {
	switch code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodePermissionDenied:
		return http.StatusForbidden
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeCanceled:
		return 499
	case CodeDeadlineExceeded:
		return http.StatusGatewayTimeout
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	case CodeReadOnly:
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

// coerceAPIError normalises any error the stack produces into an APIError:
// typed envelope errors pass through, sentinel errors from storage and
// context map onto their codes, everything else is internal.
func coerceAPIError(err error) *APIError {
	var apiErr *APIError
	switch {
	case errors.As(err, &apiErr):
		return apiErr
	case errors.Is(err, storage.ErrNotFound):
		return &APIError{Code: CodeNotFound, Message: err.Error()}
	case errors.Is(err, storage.ErrAccessDenied):
		return &APIError{Code: CodePermissionDenied, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		return &APIError{Code: CodeCanceled, Message: "request canceled by client"}
	case errors.Is(err, context.DeadlineExceeded):
		return &APIError{Code: CodeDeadlineExceeded, Message: "request deadline exceeded"}
	default:
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &APIError{Code: CodePayloadTooLarge,
				Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return &APIError{Code: CodeInternal, Message: err.Error()}
	}
}

// writeError writes the error envelope for err with its mapped status.
func writeError(w http.ResponseWriter, err error) {
	apiErr := coerceAPIError(err)
	writeJSON(w, httpStatus(apiErr.Code), ErrorResponse{Error: *apiErr})
}
