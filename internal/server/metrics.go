package server

import (
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// httpMetrics bundles the HTTP-layer instruments. Per-route series are wired
// at route-registration time (Server.handleFunc) rather than looked up per
// request: Go 1.22's http.Request has no matched-pattern field, and a
// registration-time closure is cheaper than a map lookup anyway.
type httpMetrics struct {
	reg       *telemetry.Registry
	inFlight  *telemetry.Gauge
	requests  *telemetry.CounterVec   // route, class
	latency   *telemetry.HistogramVec // route
	reqBytes  *telemetry.Counter
	respBytes *telemetry.Counter
	unmatched *telemetry.Counter
}

func newHTTPMetrics(reg *telemetry.Registry) *httpMetrics {
	if reg == nil {
		return nil
	}
	return &httpMetrics{
		reg: reg,
		inFlight: reg.Gauge("cqms_http_in_flight_requests",
			"Requests currently being served."),
		requests: reg.CounterVec("cqms_http_requests_total",
			"Completed requests by route pattern and status class.",
			"route", "class"),
		latency: reg.HistogramVec("cqms_http_request_seconds",
			"Handler latency by route pattern.",
			telemetry.DefBuckets, "route"),
		reqBytes: reg.Counter("cqms_http_request_bytes_total",
			"Request body bytes received (Content-Length sum)."),
		respBytes: reg.Counter("cqms_http_response_bytes_total",
			"Response body bytes written."),
		unmatched: reg.Counter("cqms_http_unmatched_total",
			"Requests that matched no route (404/405 envelopes)."),
	}
}

// statusClasses indexes routeMetrics.classes: status/100 clamped to [0,5],
// where 0 is the never-happens fallback.
var statusClasses = [6]string{"unknown", "1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics holds one route's cached series. The latency child is created
// eagerly (one histogram per registered route); the per-class counters are
// created on first hit so the exposition only carries classes a route has
// actually returned.
type routeMetrics struct {
	m       *httpMetrics
	route   string
	latency *telemetry.Histogram
	classes [6]atomic.Pointer[telemetry.Counter]
}

func (m *httpMetrics) route(pattern string) *routeMetrics {
	return &routeMetrics{m: m, route: pattern, latency: m.latency.With(pattern)}
}

// done records one completed request. Creating a missing class counter twice
// under a race is harmless: CounterVec.With is idempotent, both racers get
// the same child.
func (rt *routeMetrics) done(status int, d time.Duration) {
	idx := status / 100
	if idx < 1 || idx > 5 {
		idx = 0
	}
	ctr := rt.classes[idx].Load()
	if ctr == nil {
		ctr = rt.m.requests.With(rt.route, statusClasses[idx])
		rt.classes[idx].Store(ctr)
	}
	ctr.Inc()
	rt.latency.Observe(d)
}

// Instrument maintains the request-scoped HTTP instruments: the in-flight
// gauge and the request/response byte counters. It installs the shared
// statusWriter that the per-route wrappers, AccessLog, SlowRequestLog and
// Recover all reuse. A nil httpMetrics disables it.
func Instrument(m *httpMetrics) Middleware {
	return func(next http.Handler) http.Handler {
		if m == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m.inFlight.Inc()
			defer m.inFlight.Dec()
			if r.ContentLength > 0 {
				m.reqBytes.Add(uint64(r.ContentLength))
			}
			sw := ensureStatusWriter(w)
			before := sw.bytes
			next.ServeHTTP(sw, r)
			m.respBytes.Add(uint64(sw.bytes - before))
		})
	}
}

// handleV1Metrics serves the Prometheus text exposition. Any principal may
// scrape; families marked admin-only (per-shard gauges and the like) appear
// only for admin principals.
func (s *Server) handleV1Metrics(w http.ResponseWriter, r *http.Request) {
	reg := s.cqms.Metrics()
	if reg == nil {
		writeError(w, Errorf(CodeInternal, "telemetry registry unavailable"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WritePrometheus(w, PrincipalFrom(r.Context()).Admin)
}

// handleV1Pprof gates net/http/pprof behind the admin flag and dispatches on
// the path tail under /v1/admin/debug/pprof/. Profiles expose query text and
// internal addresses, so they get the same protection as the rest of the
// admin surface.
func (s *Server) handleV1Pprof(w http.ResponseWriter, r *http.Request) {
	if !PrincipalFrom(r.Context()).Admin {
		writeError(w, Errorf(CodePermissionDenied, "pprof requires the admin flag"))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/v1/admin/debug/pprof/")
	switch name {
	case "":
		// pprof.Index links relative to the request path, so the directory
		// listing works unchanged under the /v1 prefix.
		pprof.Index(w, r)
	case "cmdline":
		pprof.Cmdline(w, r)
	case "profile":
		pprof.Profile(w, r)
	case "symbol":
		pprof.Symbol(w, r)
	case "trace":
		pprof.Trace(w, r)
	default:
		// Named runtime profiles: heap, goroutine, block, mutex, allocs,
		// threadcreate. Unknown names get pprof's own 404.
		pprof.Handler(name).ServeHTTP(w, r)
	}
}
