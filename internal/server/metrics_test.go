package server_test

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// metricValue finds one sample in a Prometheus text exposition: the series
// whose name matches and whose label block contains every given k="v" pair.
// The value sits after the last space, so label values holding spaces (route
// patterns) parse fine.
func metricValue(t *testing.T, text, name string, labels map[string]string) (float64, bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		id, valStr := line[:i], line[i+1:]
		base := id
		if j := strings.IndexByte(id, '{'); j >= 0 {
			base = id[:j]
		}
		if base != name {
			continue
		}
		match := true
		for k, v := range labels {
			if !strings.Contains(id, fmt.Sprintf("%s=%q", k, v)) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", line, err)
		}
		return val, true
	}
	return 0, false
}

func mustMetric(t *testing.T, text, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := metricValue(t, text, name, labels)
	if !ok {
		t.Fatalf("metric %s %v not found in exposition", name, labels)
	}
	return v
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestV1MetricsContract checks the exposition's wire contract: the format
// parses line by line, the cross-layer families are present, and admin-only
// families appear only for admin principals.
func TestV1MetricsContract(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	text, err := alice.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}

	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unexpected comment line %q", line)
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("sample line without value: %q", line)
			continue
		}
		id := line[:i]
		base := id
		if j := strings.IndexByte(id, '{'); j >= 0 {
			base = id[:j]
		}
		if !metricNameRe.MatchString(base) {
			t.Errorf("invalid metric name in %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparsable value in %q: %v", line, err)
		}
	}

	// One family per layer: HTTP, storage, bus, derived state, assist.
	for _, family := range []string{
		"# TYPE cqms_http_requests_total counter",
		"# TYPE cqms_http_request_seconds histogram",
		"# TYPE cqms_http_in_flight_requests gauge",
		"# TYPE cqms_store_mutations_total counter",
		"# TYPE cqms_store_commit_lock_hold_seconds histogram",
		"# TYPE cqms_bus_callback_seconds histogram",
		"# TYPE cqms_store_records gauge",
		"# TYPE cqms_sessions_live gauge",
		"# TYPE cqms_assist_seconds histogram",
		"# TYPE cqms_miner_feed_transactions gauge",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition is missing %q", family)
		}
	}

	if put := mustMetric(t, text, "cqms_store_mutations_total", map[string]string{"op": "put"}); put < 1 {
		t.Errorf("cqms_store_mutations_total{op=put} = %v, want >= 1", put)
	}
	for _, sub := range []string{"wal", "stats", "miner-feed", "sessions"} {
		if n := mustMetric(t, text, "cqms_bus_callback_seconds_count", map[string]string{"subscriber": sub}); sub != "wal" && n < 1 {
			t.Errorf("cqms_bus_callback_seconds_count{subscriber=%s} = %v, want >= 1", sub, n)
		}
	}
	if n := mustMetric(t, text, "cqms_store_commit_lock_hold_seconds_count", nil); n < 1 {
		t.Errorf("commit lock hold count = %v, want >= 1", n)
	}

	// Admin-only families are withheld from ordinary principals.
	if strings.Contains(text, "cqms_store_shard_records") {
		t.Error("non-admin scrape exposes cqms_store_shard_records")
	}
	adminText, err := admin.Metrics(ctx)
	if err != nil {
		t.Fatalf("admin Metrics: %v", err)
	}
	if !strings.Contains(adminText, "cqms_store_shard_records") {
		t.Error("admin scrape is missing cqms_store_shard_records")
	}
}

// TestMetricsMoveEndToEnd drives a durable system over HTTP and checks the
// instruments across every layer moved: HTTP route counters, store mutation
// counters, WAL append/fsync series and the assist latency histogram.
func TestMetricsMoveEndToEnd(t *testing.T) {
	eng := engine.New()
	if err := workload.Populate(eng, 100, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Durability = wal.DefaultConfig(t.TempDir())
	cfg.Durability.SyncPolicy = "always"
	cqms, err := core.OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	defer cqms.Close()
	ts := httptest.NewServer(server.New(cqms).Handler())
	defer ts.Close()
	alice := client.New(ts.URL, client.WithUser("alice", "limnology"))
	admin := client.New(ts.URL, client.WithUser("root"), client.WithAdmin())

	if _, err := alice.Submit(ctx, "SELECT lake, temp FROM WaterTemp WHERE temp < 20", client.Group("limnology")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := alice.Complete(ctx, "SELECT temp FROM", 5); err != nil {
		t.Fatalf("Complete: %v", err)
	}

	text, err := admin.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	checks := []struct {
		name   string
		labels map[string]string
		min    float64
	}{
		{"cqms_http_requests_total", map[string]string{"route": "POST /v1/queries", "class": "2xx"}, 1},
		{"cqms_http_request_seconds_count", map[string]string{"route": "POST /v1/queries"}, 1},
		{"cqms_http_request_bytes_total", nil, 1},
		{"cqms_http_response_bytes_total", nil, 1},
		{"cqms_store_mutations_total", map[string]string{"op": "put"}, 1},
		{"cqms_store_commit_lock_hold_seconds_count", nil, 1},
		{"cqms_bus_callback_seconds_count", map[string]string{"subscriber": "wal"}, 1},
		{"cqms_bus_callback_seconds_count", map[string]string{"subscriber": "stats"}, 1},
		{"cqms_wal_append_seconds_count", nil, 1},
		{"cqms_wal_fsync_seconds_count", nil, 1},
		{"cqms_wal_fsyncs_total", map[string]string{"policy": "always"}, 1},
		{"cqms_wal_segments", nil, 1},
		{"cqms_assist_seconds_count", map[string]string{"op": "complete"}, 1},
		{"cqms_store_records", nil, 1},
	}
	for _, c := range checks {
		if v := mustMetric(t, text, c.name, c.labels); v < c.min {
			t.Errorf("%s %v = %v, want >= %v", c.name, c.labels, v, c.min)
		}
	}
	// The in-flight gauge must count this very scrape.
	if v := mustMetric(t, text, "cqms_http_in_flight_requests", nil); v < 1 {
		t.Errorf("cqms_http_in_flight_requests = %v during a scrape, want >= 1", v)
	}
}

// TestPprofAdminGated checks the pprof subtree rejects non-admin principals
// with the permission_denied envelope and serves admins.
func TestPprofAdminGated(t *testing.T) {
	ts, _, _, _ := newTestServer(t)

	get := func(path string, admin bool) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(server.HeaderUser, "probe")
		if admin {
			req.Header.Set(server.HeaderAdmin, "true")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := get("/v1/admin/debug/pprof/", false)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("non-admin pprof index: status %d, want 403", resp.StatusCode)
	}
	if !strings.Contains(string(body), "permission_denied") {
		t.Errorf("non-admin pprof index body = %q, want permission_denied envelope", body)
	}

	resp = get("/v1/admin/debug/pprof/", true)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("admin pprof index: status %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("admin pprof index does not list profiles: %q", body)
	}

	resp = get("/v1/admin/debug/pprof/goroutine?debug=1", true)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine profile") {
		t.Errorf("admin goroutine profile: status %d body %.80q", resp.StatusCode, body)
	}
}

// TestRecoverSkipsEnvelopeAfterStatus pins the panic-mid-response fix: a
// handler that panics after sending a status must not get a second JSON
// document appended to its half-written body, while a handler that panics
// before writing still gets the internal-error envelope.
func TestRecoverSkipsEnvelopeAfterStatus(t *testing.T) {
	logger := log.New(io.Discard, "", 0)

	late := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"partial":`)
		panic("mid-response")
	}), server.Recover(logger))
	rec := httptest.NewRecorder()
	late.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d, want the already-sent 200", rec.Code)
	}
	if got := rec.Body.String(); got != `{"partial":` {
		t.Errorf("body = %q, want only the bytes the handler wrote", got)
	}

	early := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("before any write")
	}), server.Recover(logger))
	rec = httptest.NewRecorder()
	early.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "internal") {
		t.Errorf("body = %q, want the internal-error envelope", rec.Body.String())
	}
}

// TestAccessLogUsesContextPrincipal pins the satellite fix: the access log
// reports the principal installed in the request context, not a re-parse of
// the identity headers.
func TestAccessLogUsesContextPrincipal(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	install := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx := server.WithPrincipal(r.Context(), storage.Principal{User: "from-context"})
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
	h := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}), server.Middleware(install), server.AccessLog(logger))

	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	req.Header.Set(server.HeaderUser, "from-header")
	h.ServeHTTP(httptest.NewRecorder(), req)

	if !strings.Contains(buf.String(), `user="from-context"`) {
		t.Errorf("access log = %q, want the context principal", buf.String())
	}
	if strings.Contains(buf.String(), "from-header") {
		t.Errorf("access log = %q, must not re-parse identity headers", buf.String())
	}
}

// TestSlowRequestLog checks the slow-request line fires past the threshold
// and carries the request ID.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	h := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}), server.RequestID(), server.SlowRequestLog(logger, time.Millisecond))

	req := httptest.NewRequest(http.MethodGet, "/slow", nil)
	req.Header.Set(server.HeaderRequestID, "req-123")
	h.ServeHTTP(httptest.NewRecorder(), req)
	if !strings.Contains(buf.String(), "slow request") || !strings.Contains(buf.String(), "request=req-123") {
		t.Errorf("slow-request log = %q, want line with request ID", buf.String())
	}

	buf.Reset()
	fast := server.Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), server.RequestID(), server.SlowRequestLog(logger, time.Minute))
	fast.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/fast", nil))
	if buf.Len() != 0 {
		t.Errorf("fast request logged: %q", buf.String())
	}
}
