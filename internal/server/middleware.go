package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/storage"
)

// Middleware wraps an http.Handler with cross-cutting behaviour.
type Middleware func(http.Handler) http.Handler

// Chain applies the middlewares to h so that the first one listed is the
// outermost (first to see the request).
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

type ctxKey int

const (
	ctxKeyPrincipal ctxKey = iota
	ctxKeyRequestID
)

// WithPrincipal stashes the request's authenticated-as-declared principal in
// the context (see the package comment: authentication proper is out of
// scope, identity is declared).
func WithPrincipal(ctx context.Context, p storage.Principal) context.Context {
	return context.WithValue(ctx, ctxKeyPrincipal, p)
}

// PrincipalFrom returns the principal installed by WithPrincipal, or the
// zero (anonymous) principal.
func PrincipalFrom(ctx context.Context) storage.Principal {
	p, _ := ctx.Value(ctxKeyPrincipal).(storage.Principal)
	return p
}

// Principal headers of the v1 API. The caller's identity travels in headers
// on every request — never in query parameters or request bodies.
const (
	HeaderUser      = "X-CQMS-User"
	HeaderGroups    = "X-CQMS-Groups"
	HeaderAdmin     = "X-CQMS-Admin"
	HeaderRequestID = "X-Request-Id"
)

// principalFromHeaders builds the principal from the X-CQMS-* request
// headers: user name, comma-separated groups, and an admin flag ("true" or
// "1").
func principalFromHeaders(r *http.Request) storage.Principal {
	p := storage.Principal{User: strings.TrimSpace(r.Header.Get(HeaderUser))}
	if g := r.Header.Get(HeaderGroups); g != "" {
		for _, group := range strings.Split(g, ",") {
			if group = strings.TrimSpace(group); group != "" {
				p.Groups = append(p.Groups, group)
			}
		}
	}
	switch strings.ToLower(strings.TrimSpace(r.Header.Get(HeaderAdmin))) {
	case "true", "1":
		p.Admin = true
	}
	return p
}

// HeaderPrincipal installs the X-CQMS-* header principal into the request
// context for every v1 handler.
func HeaderPrincipal() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			next.ServeHTTP(w, r.WithContext(WithPrincipal(r.Context(), principalFromHeaders(r))))
		})
	}
}

// RequestID echoes the client's X-Request-Id (or generates one) on the
// response and the request context, so one ID ties a client retry, the
// access log line and any error report together.
func RequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := r.Header.Get(HeaderRequestID)
			if id == "" {
				var buf [8]byte
				if _, err := rand.Read(buf[:]); err == nil {
					id = hex.EncodeToString(buf[:])
				}
			}
			if id != "" {
				w.Header().Set(HeaderRequestID, id)
				r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))
			}
			next.ServeHTTP(w, r)
		})
	}
}

// requestIDFrom returns the request ID installed by RequestID, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// Recover converts handler panics into an internal-error envelope instead of
// tearing down the connection, and logs the panic when a logger is set. When
// the handler already sent a status before panicking, the envelope is
// skipped: appending a second JSON document to a half-written response would
// corrupt it for clients, while the log line still records the panic.
func Recover(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := ensureStatusWriter(w)
			defer func() {
				if rec := recover(); rec != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s (request %s): %v",
							r.Method, r.URL.Path, requestIDFrom(r.Context()), rec)
					}
					if sw.status == 0 {
						writeError(sw, Errorf(CodeInternal, "internal server error"))
					}
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// ensureStatusWriter reuses the statusWriter an outer middleware already
// installed, so the whole chain shares one status/byte record per request,
// or wraps w in a fresh one.
func ensureStatusWriter(w http.ResponseWriter) *statusWriter {
	if sw, ok := w.(*statusWriter); ok {
		return sw
	}
	return &statusWriter{ResponseWriter: w}
}

// AccessLog writes one line per request: method, path, status, bytes,
// duration, principal and request ID. The principal comes from the request
// context (HeaderPrincipal must run outside this middleware), so the logged
// identity is exactly the one the handlers authorised with. A nil logger
// disables it.
func AccessLog(logger *log.Logger) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := ensureStatusWriter(w)
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			logger.Printf("%s %s %d %dB %s user=%q request=%s",
				r.Method, r.URL.RequestURI(), sw.status, sw.bytes,
				time.Since(start).Round(time.Microsecond),
				PrincipalFrom(r.Context()).User, requestIDFrom(r.Context()))
		})
	}
}

// SlowRequestLog logs one line for every request slower than threshold,
// carrying the request ID so the slow call can be tied to its access-log
// line and client retry. A nil logger or non-positive threshold disables it.
func SlowRequestLog(logger *log.Logger, threshold time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if logger == nil || threshold <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			next.ServeHTTP(w, r)
			if elapsed := time.Since(start); elapsed >= threshold {
				logger.Printf("slow request: %s %s took %s (threshold %s) user=%q request=%s",
					r.Method, r.URL.RequestURI(),
					elapsed.Round(time.Microsecond), threshold,
					PrincipalFrom(r.Context()).User, requestIDFrom(r.Context()))
			}
		})
	}
}
