package server

import (
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/wal"
)

// /v1/replication: the primary's WAL shipping surface. A follower bootstraps
// from GET /v1/replication/snapshot (the newest snapshot document, raw CRC
// frames), then tails GET /v1/replication/wal?after=<seq> — the last frame's
// sequence is the resume cursor, passed back verbatim on the next request.
// GET /v1/replication/status reports either side's position. Snapshot and WAL
// are admin-gated: they expose the entire log regardless of per-record
// visibility, exactly like the pprof surface exposes process internals.

// Replication response headers. The WAL tail announces the primary's current
// last sequence so the follower can compute lag; frames are self-describing,
// so the cursor advances from the frames themselves, not from a header.
const (
	headerReplSnapshotSeq = "X-CQMS-Repl-Snapshot-Seq"
	headerReplLogSeq      = "X-CQMS-Repl-Log-Seq"
)

// WAL tail limits: responses stay bounded (the read holds the log's I/O
// lock), and long-polls end before proxies time the connection out.
const (
	replDefaultMaxBytes = 4 << 20
	replMaxMaxBytes     = 8 << 20
	replMaxWait         = 55 * time.Second
	replPollInterval    = 50 * time.Millisecond
)

// replicationManager returns the WAL manager serving the stream, or writes
// the standard unavailable envelope: only a durable primary has a log to ship.
func (s *Server) replicationManager(w http.ResponseWriter) *wal.Manager {
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeError(w, Errorf(CodeUnavailable,
			"replication requires a durable primary (start the server with -data-dir)"))
	}
	return mgr
}

func (s *Server) handleV1ReplicationStatus(w http.ResponseWriter, r *http.Request) {
	st := s.cqms.ReplicationStatus()
	writeJSON(w, http.StatusOK, ReplicationStatusResponse{
		StatusDocDTO:     s.statusDoc(),
		Primary:          st.Primary,
		PrimarySeq:       st.PrimarySeq,
		SnapshotSeq:      st.SnapshotSeq,
		LagRecords:       st.LagRecords,
		LagSeconds:       st.LagSeconds,
		StalenessSeconds: st.StalenessSeconds,
		LastError:        st.LastError,
	})
}

func (s *Server) handleV1ReplicationSnapshot(w http.ResponseWriter, r *http.Request) {
	if !PrincipalFrom(r.Context()).Admin {
		writeError(w, Errorf(CodePermissionDenied, "replication snapshot requires an admin principal"))
		return
	}
	mgr := s.replicationManager(w)
	if mgr == nil {
		return
	}
	f, seq, ok, err := mgr.OpenLatestSnapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplSnapshotSeq, strconv.FormatUint(seq, 10))
	w.Header().Set(headerReplLogSeq, strconv.FormatUint(mgr.LastSeq(), 10))
	if !ok {
		// No snapshot yet: an empty body with seq 0 tells the follower to
		// replay the whole log from the start.
		w.WriteHeader(http.StatusOK)
		return
	}
	defer f.Close()
	n, _ := io.Copy(w, f) // client disconnects surface as copy errors; nothing to send
	s.cqms.ReplStreamBytes().Add(uint64(n))
}

func (s *Server) handleV1ReplicationWAL(w http.ResponseWriter, r *http.Request) {
	if !PrincipalFrom(r.Context()).Admin {
		writeError(w, Errorf(CodePermissionDenied, "replication stream requires an admin principal"))
		return
	}
	mgr := s.replicationManager(w)
	if mgr == nil {
		return
	}
	q := r.URL.Query()
	var after uint64
	if v := q.Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, Errorf(CodeInvalidArgument, "after must be an unsigned integer: %q", v))
			return
		}
		after = n
	}
	maxBytes := int64(replDefaultMaxBytes)
	if v := q.Get("max_bytes"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			writeError(w, Errorf(CodeInvalidArgument, "max_bytes must be a positive integer: %q", v))
			return
		}
		maxBytes = min(n, replMaxMaxBytes)
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, Errorf(CodeInvalidArgument, "wait must be a non-negative duration: %q", v))
			return
		}
		wait = min(d, replMaxWait)
	}

	// Long-poll: when the cursor is already at the log's tip, hold the
	// request until a new record lands or the window closes, so an idle
	// follower stays one cheap parked request instead of a busy poll.
	deadline := time.Now().Add(wait)
	for mgr.LastSeq() <= after && wait > 0 && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(replPollInterval):
		}
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerReplLogSeq, strconv.FormatUint(mgr.LastSeq(), 10))
	cw := &countingWriter{w: w}
	_, _, err := mgr.ReadTail(after, maxBytes, cw)
	s.cqms.ReplStreamBytes().Add(uint64(cw.n))
	if err != nil && cw.n == 0 {
		// Nothing streamed yet, so the envelope can still go out. A compacted
		// cursor maps to not_found with a machine-readable reason; the client
		// translates it back to wal.ErrCompacted and re-bootstraps.
		if errors.Is(err, wal.ErrCompacted) {
			apiErr := Errorf(CodeNotFound, "records after sequence %d have been compacted away", after)
			apiErr.Details = map[string]string{
				"reason":      "compacted",
				"snapshotSeq": strconv.FormatUint(mgr.SnapshotSeq(), 10),
			}
			writeError(w, apiErr)
			return
		}
		writeError(w, err)
		return
	}
	// Mid-stream errors (client gone, disk fault) can only truncate the body;
	// the follower's CRC framing rejects the torn tail and it refetches.
}

// countingWriter tracks bytes written through to the response.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
