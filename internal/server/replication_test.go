package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/workload"
)

// newDurableServer starts an httptest server over a durable CQMS with small
// segments, so a handful of submissions spans several WAL segments and
// compaction actually removes some.
func newDurableServer(t *testing.T) (*httptest.Server, *client.Client, *client.Client) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Durability = wal.DefaultConfig(t.TempDir())
	cfg.Durability.SyncPolicy = "off"
	cfg.Durability.SegmentBytes = 256
	cqms, err := core.OpenWithEngine(eng, cfg)
	if err != nil {
		t.Fatalf("OpenWithEngine: %v", err)
	}
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { cqms.Close() })
	alice := client.New(ts.URL, client.WithUser("alice", "limnology"))
	admin := client.New(ts.URL, client.WithAdmin())
	return ts, alice, admin
}

// TestReplicationStreamEndpoints drives the primary's replication surface
// through the client implementation of core.ReplicationSource: snapshot
// bootstrap, WAL tail, cursor resume and the compacted-cursor signal.
func TestReplicationStreamEndpoints(t *testing.T) {
	_, alice, admin := newDurableServer(t)
	for i := 0; i < 8; i++ {
		if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology")); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}

	// Before any snapshot: bootstrap reports "replay from 0".
	if _, _, _, ok, err := admin.FetchSnapshot(ctx); err != nil || ok {
		t.Fatalf("FetchSnapshot before backup = ok %v, err %v; want no snapshot", ok, err)
	}

	// The WAL tail streams every record and resumes from a cursor.
	var seqs []uint64
	primarySeq, n, err := admin.FetchWAL(ctx, 0, 0, func(seq uint64, payload []byte) error {
		if _, err := storage.DecodeMutation(payload); err != nil {
			return err
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("FetchWAL: %v", err)
	}
	if len(seqs) == 0 || n == 0 {
		t.Fatalf("FetchWAL streamed %d records, %d bytes", len(seqs), n)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, seq)
		}
	}
	if primarySeq != seqs[len(seqs)-1] {
		t.Fatalf("primarySeq = %d, want %d", primarySeq, seqs[len(seqs)-1])
	}
	// Cursor at the tip: an empty response, same primary sequence.
	if _, _, err := admin.FetchWAL(ctx, primarySeq, 0, func(uint64, []byte) error {
		t.Fatal("no records expected past the tip")
		return nil
	}); err != nil {
		t.Fatalf("FetchWAL at tip: %v", err)
	}

	// Snapshot + compaction: bootstrap works, stale cursors turn compacted.
	compacted, err := admin.LogCompact(ctx)
	if err != nil {
		t.Fatalf("LogCompact: %v", err)
	}
	if compacted.RemovedSegments == 0 {
		t.Fatal("compaction removed no segments; segment size too large for this test")
	}
	seq, state, checkpoints, ok, err := admin.FetchSnapshot(ctx)
	if err != nil || !ok {
		t.Fatalf("FetchSnapshot = ok %v, err %v", ok, err)
	}
	if seq != compacted.Seq {
		t.Fatalf("snapshot seq = %d, want %d", seq, compacted.Seq)
	}
	var st storage.StoreState
	if err := json.Unmarshal(state, &st); err != nil {
		t.Fatalf("snapshot state does not decode: %v", err)
	}
	if len(st.Records) == 0 || len(checkpoints) == 0 {
		t.Fatalf("snapshot carries %d records, %d checkpoints", len(st.Records), len(checkpoints))
	}
	if _, _, err := admin.FetchWAL(ctx, 0, 0, func(uint64, []byte) error { return nil }); !errors.Is(err, wal.ErrCompacted) {
		t.Fatalf("FetchWAL(0) after compaction err = %v, want ErrCompacted", err)
	}
	// Resuming from the snapshot's covered sequence still works.
	if _, _, err := admin.FetchWAL(ctx, seq, 0, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("FetchWAL(%d): %v", seq, err)
	}
}

// TestReplicationWALLongPoll: a waiting tail fetch returns once a concurrent
// write lands, instead of waiting out the whole window.
func TestReplicationWALLongPoll(t *testing.T) {
	_, alice, admin := newDurableServer(t)
	if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp"); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := admin.ReplicationStatus(ctx)
	if err != nil {
		t.Fatalf("ReplicationStatus: %v", err)
	}
	go func() {
		time.Sleep(150 * time.Millisecond)
		alice.Submit(context.Background(), "SELECT depth FROM WaterTemp")
	}()
	start := time.Now()
	var got int
	if _, _, err := admin.FetchWAL(ctx, st.AppliedSeq, 10*time.Second, func(uint64, []byte) error {
		got++
		return nil
	}); err != nil {
		t.Fatalf("FetchWAL: %v", err)
	}
	if got == 0 {
		t.Fatal("long-poll returned no records")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("long-poll waited %v; should return as soon as the write lands", waited)
	}
}

// TestReplicationAccessAndAvailability: the stream endpoints are admin-only
// and need a durable log; status is open on every server.
func TestReplicationAccessAndAvailability(t *testing.T) {
	_, alice, admin := newDurableServer(t)
	if _, _, _, _, err := alice.FetchSnapshot(ctx); errCode(err) != server.CodePermissionDenied {
		t.Fatalf("non-admin FetchSnapshot code = %v, want permission_denied", errCode(err))
	}
	if _, _, err := alice.FetchWAL(ctx, 0, 0, nil); errCode(err) != server.CodePermissionDenied {
		t.Fatalf("non-admin FetchWAL code = %v, want permission_denied", errCode(err))
	}
	st, err := alice.ReplicationStatus(ctx)
	if err != nil {
		t.Fatalf("non-admin ReplicationStatus: %v", err)
	}
	if st.Role != "primary" {
		t.Fatalf("role = %q, want primary", st.Role)
	}
	if st.AppliedSeq != st.PrimarySeq || st.LagRecords != 0 || st.LagSeconds != 0 {
		t.Fatalf("primary status = %+v; a primary is never behind itself", st)
	}
	stats, err := admin.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Status.Role != st.Role || stats.Status.AppliedSeq != st.AppliedSeq {
		t.Fatalf("stats status %+v != replication status %+v", stats.Status, st.StatusDocDTO)
	}

	// In-memory server: the stream is unavailable, status still answers.
	tsMem, _, _, adminMem := newTestServer(t)
	_ = tsMem
	if _, _, _, _, err := adminMem.FetchSnapshot(ctx); errCode(err) != server.CodeUnavailable {
		t.Fatalf("in-memory FetchSnapshot code = %v, want unavailable", errCode(err))
	}
	if _, _, err := adminMem.FetchWAL(ctx, 0, 0, nil); errCode(err) != server.CodeUnavailable {
		t.Fatalf("in-memory FetchWAL code = %v, want unavailable", errCode(err))
	}
	if st, err := adminMem.ReplicationStatus(ctx); err != nil || st.Role != "primary" || st.AppliedSeq != 0 {
		t.Fatalf("in-memory status = %+v, err %v", st, err)
	}
}

// errCode extracts the envelope code from a client error ("" otherwise).
func errCode(err error) server.ErrorCode {
	var apiErr *client.Error
	if errors.As(err, &apiErr) {
		return apiErr.Code()
	}
	return ""
}

// staticSource is an in-process ReplicationSource holding no records: enough
// to build a follower and exercise its HTTP write gating.
type staticSource struct{}

func (staticSource) FetchSnapshot(context.Context) (uint64, []byte, []storage.SubscriberCheckpoint, bool, error) {
	return 0, nil, nil, false, nil
}

func (staticSource) FetchWAL(ctx context.Context, after uint64, wait time.Duration, fn func(uint64, []byte) error) (uint64, int64, error) {
	return after, 0, nil
}

func (staticSource) Primary() string { return "http://primary.example:8080" }

// TestFollowerRefusesWrites: every mutating route on a follower returns the
// structured read_only envelope naming the primary; reads still serve.
func TestFollowerRefusesWrites(t *testing.T) {
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cqms, err := core.OpenFollower(eng, core.DefaultConfig(), staticSource{})
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(ts.Close)
	alice := client.New(ts.URL, client.WithUser("alice", "limnology"))
	admin := client.New(ts.URL, client.WithAdmin())

	checkReadOnly := func(what string, err error) {
		t.Helper()
		var apiErr *client.Error
		if !errors.As(err, &apiErr) || apiErr.Code() != server.CodeReadOnly {
			t.Fatalf("%s err = %v, want code read_only", what, err)
		}
		if apiErr.Status != 403 {
			t.Errorf("%s status = %d, want 403", what, apiErr.Status)
		}
		if got := apiErr.Detail("primary"); got != "http://primary.example:8080" {
			t.Errorf("%s primary detail = %q", what, got)
		}
		if got := apiErr.Detail("role"); got != "follower" {
			t.Errorf("%s role detail = %q", what, got)
		}
	}
	_, err = alice.Submit(ctx, "SELECT lake FROM WaterTemp")
	checkReadOnly("Submit", err)
	_, err = alice.SubmitBatch(ctx, []server.SubmitParams{{SQL: "SELECT lake FROM WaterTemp"}})
	checkReadOnly("SubmitBatch", err)
	checkReadOnly("Annotate", alice.Annotate(ctx, 1, "note"))
	checkReadOnly("SetVisibility", alice.SetVisibility(ctx, 1, "public"))
	checkReadOnly("DeleteQuery", alice.DeleteQuery(ctx, 1))
	_, err = admin.Mine(ctx)
	checkReadOnly("Mine", err)
	_, err = admin.Maintain(ctx)
	checkReadOnly("Maintain", err)
	_, err = admin.LogBackup(ctx)
	checkReadOnly("LogBackup", err)
	_, err = admin.LogCompact(ctx)
	checkReadOnly("LogCompact", err)

	// Reads serve normally and the status surfaces report the follower role.
	if _, err := alice.SearchKeyword(ctx, "salinity").All(); err != nil {
		t.Fatalf("follower search: %v", err)
	}
	st, err := alice.ReplicationStatus(ctx)
	if err != nil {
		t.Fatalf("ReplicationStatus: %v", err)
	}
	if st.Role != "follower" || st.Primary != "http://primary.example:8080" {
		t.Fatalf("follower status = %+v", st)
	}
	if st.StalenessSeconds != -1 {
		t.Fatalf("staleness before first catch-up = %v, want -1", st.StalenessSeconds)
	}
	stats, err := alice.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Status.Role != "follower" {
		t.Fatalf("stats role = %q, want follower", stats.Status.Role)
	}
}
