package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metaquery"
	"repro/internal/profiler"
	"repro/internal/session"
	"repro/internal/storage"
)

// maxInlineRows bounds how many result rows a Traditional-mode response
// carries back to the client; full results stay server-side as in the paper's
// shared-data-center setting.
const maxInlineRows = 100

// Request-body caps: malformed or hostile payloads fail loudly instead of
// half-applying. The batch endpoint gets a larger budget because it carries
// many queries per round trip.
const (
	maxBodyBytes      = 1 << 20 // 1 MiB
	maxBatchBodyBytes = 8 << 20 // 8 MiB
)

// MaxBatchQueries is the most queries one POST /v1/queries:batch may carry;
// larger batches are rejected whole with invalid_argument. Exported so
// clients can clamp before sending.
const MaxBatchQueries = 500

// Server is the CQMS HTTP server: the versioned /v1/ API plus thin legacy
// /api/ compatibility shims over the same handler logic.
type Server struct {
	cqms        *core.CQMS
	mux         *http.ServeMux
	logger      *log.Logger
	handler     http.Handler
	metrics     *httpMetrics
	slowRequest time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithLogger enables access logging and panic reporting on the given logger.
func WithLogger(logger *log.Logger) Option {
	return func(s *Server) { s.logger = logger }
}

// WithSlowRequests logs any request slower than threshold (with its request
// ID) on the server's logger. Zero or negative disables the slow-request log.
func WithSlowRequests(threshold time.Duration) Option {
	return func(s *Server) { s.slowRequest = threshold }
}

// New returns a server over the given CQMS instance with the standard
// middleware chain installed: request IDs, header principals, HTTP
// instrumentation, panic recovery and (when a logger is configured) access
// and slow-request logging.
func New(c *core.CQMS, opts ...Option) *Server {
	s := &Server{cqms: c, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.metrics = newHTTPMetrics(c.Metrics())
	s.routes()
	// HeaderPrincipal runs before AccessLog so the log line carries the
	// context principal; Instrument installs the shared statusWriter that the
	// logging and recovery middlewares (and the per-route wrappers) reuse.
	s.handler = Chain(s.jsonFallback(s.mux),
		RequestID(),
		HeaderPrincipal(),
		Instrument(s.metrics),
		AccessLog(s.logger),
		SlowRequestLog(s.logger, s.slowRequest),
		Recover(s.logger),
	)
	return s
}

// Handler returns the http.Handler for the server (middleware included).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) routes() {
	// Versioned v1 API: method-pattern routing, principal in X-CQMS-*
	// headers, cursor pagination on list endpoints.
	s.handleFunc("POST /v1/queries", s.handleV1Submit)
	s.handleFunc("POST /v1/queries:batch", s.handleV1SubmitBatch)
	s.handleFunc("GET /v1/queries/{id}", s.handleV1GetQuery)
	s.handleFunc("DELETE /v1/queries/{id}", s.handleV1DeleteQuery)
	s.handleFunc("POST /v1/queries/{id}/annotations", s.handleV1Annotate)
	s.handleFunc("PUT /v1/queries/{id}/visibility", s.handleV1Visibility)
	s.handleFunc("GET /v1/history", s.handleV1History)
	s.handleFunc("GET /v1/sessions", s.handleV1Sessions)
	s.handleFunc("GET /v1/sessions/{id}/graph", s.handleV1SessionGraph)
	s.handleFunc("POST /v1/search/keyword", s.handleV1Search("keyword"))
	s.handleFunc("POST /v1/search/substring", s.handleV1Search("substring"))
	s.handleFunc("POST /v1/search/metaquery", s.handleV1Search("metaquery"))
	s.handleFunc("POST /v1/search/partial", s.handleV1Search("partial"))
	s.handleFunc("POST /v1/search/bydata", s.handleV1Search("bydata"))
	s.handleFunc("POST /v1/search/similar", s.handleV1Search("similar"))
	s.handleFunc("POST /v1/assist/complete", s.handleV1Complete)
	s.handleFunc("POST /v1/assist/corrections", s.handleV1Corrections)
	s.handleFunc("POST /v1/assist/similar", s.handleV1SimilarQueries)
	s.handleFunc("GET /v1/assist/tutorial", s.handleV1Tutorial)
	s.handleFunc("POST /v1/admin/mine", s.handleV1Mine)
	s.handleFunc("POST /v1/admin/maintain", s.handleV1Maintain)
	s.handleFunc("GET /v1/admin/log", s.handleV1LogInfo)
	s.handleFunc("POST /v1/admin/log/snapshot", s.handleV1LogSnapshot)
	s.handleFunc("POST /v1/admin/log/compact", s.handleV1LogCompact)
	s.handleFunc("GET /v1/stats", s.handleV1Stats)
	s.handleFunc("GET /v1/metrics", s.handleV1Metrics)
	// The trailing-slash pattern matches the whole pprof subtree (index,
	// named profiles, cmdline/profile/trace); symbol additionally accepts
	// POST bodies per the pprof protocol.
	s.handleFunc("GET /v1/admin/debug/pprof/", s.handleV1Pprof)
	s.handleFunc("POST /v1/admin/debug/pprof/symbol", s.handleV1Pprof)

	// Legacy unversioned routes: kept as thin shims over the same handler
	// logic. They still accept the principal in the request body (POST) or
	// query parameters (GET) and return full, unpaginated arrays.
	s.handleFunc("POST /api/query", s.handleLegacySubmit)
	s.handleFunc("POST /api/annotate", s.handleLegacyAnnotate)
	s.handleFunc("POST /api/search/keyword", s.handleLegacySearch("keyword"))
	s.handleFunc("POST /api/search/substring", s.handleLegacySearch("substring"))
	s.handleFunc("POST /api/search/metaquery", s.handleLegacySearch("metaquery"))
	s.handleFunc("POST /api/search/partial", s.handleLegacySearch("partial"))
	s.handleFunc("POST /api/search/bydata", s.handleLegacySearch("bydata"))
	s.handleFunc("POST /api/search/similar", s.handleLegacySearch("similar"))
	s.handleFunc("GET /api/history", s.handleLegacyHistory)
	s.handleFunc("GET /api/sessions", s.handleLegacySessions)
	s.handleFunc("GET /api/sessions/graph", s.handleLegacySessionGraph)
	s.handleFunc("POST /api/assist/complete", s.handleLegacyComplete)
	s.handleFunc("POST /api/assist/corrections", s.handleLegacyCorrections)
	s.handleFunc("POST /api/assist/similar", s.handleLegacySimilarQueries)
	s.handleFunc("GET /api/assist/tutorial", s.handleLegacyTutorial)
	s.handleFunc("POST /api/admin/visibility", s.handleLegacyVisibility)
	s.handleFunc("POST /api/admin/delete", s.handleLegacyDelete)
	s.handleFunc("POST /api/admin/mine", s.handleV1Mine)
	s.handleFunc("POST /api/admin/maintain", s.handleV1Maintain)
	s.handleFunc("GET /api/admin/log/info", s.handleV1LogInfo)
	s.handleFunc("POST /api/admin/log/snapshot", s.handleV1LogSnapshot)
	s.handleFunc("POST /api/admin/log/compact", s.handleV1LogCompact)
	s.handleFunc("GET /api/stats", s.handleV1Stats)
}

// handleFunc registers one route, wrapping the handler so its latency and
// status class land in the per-route HTTP metrics. The route label is the
// registration pattern, so path parameters ({id}) stay unexpanded and the
// label set is bounded by the route table. The wrapper deliberately records
// only on normal return: a panicking handler is counted by nothing here and
// surfaces through Recover's log line instead.
func (s *Server) handleFunc(pattern string, fn http.HandlerFunc) {
	if s.metrics == nil {
		s.mux.HandleFunc(pattern, fn)
		return
	}
	rt := s.metrics.route(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := ensureStatusWriter(w)
		start := time.Now()
		fn(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.done(status, time.Since(start))
	})
}

// jsonFallback wraps the mux so that unmatched requests produce the JSON
// error envelope instead of net/http's plain-text defaults: unknown routes
// get a 404 envelope, method mismatches a 405 envelope with the Allow header
// listing the methods the path does support.
func (s *Server) jsonFallback(mux *http.ServeMux) http.Handler {
	probeMethods := []string{
		http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete,
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		if s.metrics != nil {
			s.metrics.unmatched.Inc()
		}
		var allowed []string
		for _, m := range probeMethods {
			probe := &http.Request{Method: m, URL: r.URL, Host: r.Host}
			if _, pattern := mux.Handler(probe); pattern != "" {
				allowed = append(allowed, m)
			}
		}
		if len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeError(w, Errorf(CodeMethodNotAllowed,
				"method %s not allowed for %s", r.Method, r.URL.Path))
			return
		}
		writeError(w, Errorf(CodeNotFound, "no route for %s", r.URL.Path))
	})
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body. Unknown fields and oversized bodies are
// rejected so malformed client payloads fail loudly instead of half-applying.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) error {
	return decodeCapped(w, r, v, maxBodyBytes)
}

func decodeCapped(w http.ResponseWriter, r *http.Request, v interface{}, cap int64) error {
	body := http.MaxBytesReader(w, r.Body, cap)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err // coerced to payload_too_large by writeError
		}
		return Errorf(CodeInvalidArgument, "decoding request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Errorf(CodeInvalidArgument, "request body holds more than one JSON value")
	}
	return nil
}

// asInvalidArgument maps a user-input error onto the invalid_argument code,
// letting cancellation and typed envelope errors keep their own codes.
func asInvalidArgument(err error) error {
	var apiErr *APIError
	if errors.As(err, &apiErr) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, storage.ErrNotFound) || errors.Is(err, storage.ErrAccessDenied) {
		return err
	}
	return Errorf(CodeInvalidArgument, "%v", err)
}

// pathID parses the {id} path segment.
func pathID(r *http.Request) (int64, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return 0, Errorf(CodeInvalidArgument, "invalid id %q", r.PathValue("id"))
	}
	return id, nil
}

func matchesToDTO(matches []metaquery.Match) []MatchDTO {
	out := make([]MatchDTO, 0, len(matches))
	for _, m := range matches {
		out = append(out, MatchDTO{Query: queryDTO(m.Record), Score: m.Score, Why: m.Why})
	}
	return out
}

// principalFromQuery builds a principal from URL query parameters (legacy
// GET endpoints only; v1 uses the X-CQMS-* headers).
func principalFromQuery(r *http.Request) storage.Principal {
	p := storage.Principal{User: r.URL.Query().Get("user")}
	if g := r.URL.Query().Get("groups"); g != "" {
		p.Groups = strings.Split(g, ",")
	}
	p.Admin = r.URL.Query().Get("admin") == "true"
	return p
}

// ---------------------------------------------------------------------------
// Shared handler logic: the v1 handlers and the legacy shims both call these.
// ---------------------------------------------------------------------------

func (s *Server) doSubmit(ctx context.Context, p storage.Principal, req SubmitParams) (*SubmitResponse, error) {
	if strings.TrimSpace(req.SQL) == "" {
		return nil, Errorf(CodeInvalidArgument, "sql is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	group := req.Group
	if group == "" && len(p.Groups) > 0 {
		group = p.Groups[0]
	}
	out, err := s.cqms.Submit(profiler.Submission{
		User:       p.User,
		Group:      group,
		Visibility: parseVisibility(req.Visibility),
		SQL:        req.SQL,
	})
	if err != nil {
		return nil, asInvalidArgument(err)
	}
	resp := submitResponse(out)
	return &resp, nil
}

// submitResponse converts a profiler outcome into the wire response,
// truncating inline rows at maxInlineRows.
func submitResponse(out *profiler.Outcome) SubmitResponse {
	resp := SubmitResponse{
		QueryID:           int64(out.QueryID),
		SuggestAnnotation: out.SuggestAnnotation,
	}
	if out.ExecError != nil {
		resp.ExecError = out.ExecError.Error()
	} else if out.Result != nil {
		resp.Columns = out.Result.Columns
		resp.RowCount = out.Result.Cardinality()
		resp.ExecMillis = float64(out.Result.Elapsed.Microseconds()) / 1000.0
		limit := len(out.Result.Rows)
		if limit > maxInlineRows {
			limit = maxInlineRows
		}
		for i := 0; i < limit; i++ {
			resp.Rows = append(resp.Rows, out.Result.Rows[i].Strings())
		}
	}
	return resp
}

// runSearch dispatches one search kind. The returned matches are unpaged;
// the v1 handler pages them, the legacy shims return them whole.
func (s *Server) runSearch(ctx context.Context, p storage.Principal, kind string, req SearchParams) ([]metaquery.Match, error) {
	switch kind {
	case "keyword":
		return s.cqms.Search(ctx, p, req.Keywords...)
	case "substring":
		return s.cqms.SearchSubstring(ctx, p, req.Substring)
	case "metaquery":
		_, matches, err := s.cqms.MetaQuery(ctx, p, req.MetaSQL)
		if err != nil && !errors.Is(err, metaquery.ErrNoQIDColumn) {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	case "partial":
		matches, err := s.cqms.SearchByPartialQuery(ctx, p, req.Partial)
		if err != nil {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	case "bydata":
		return s.cqms.SearchByData(ctx, p, req.Include, req.Exclude)
	case "similar":
		k := req.K
		if k < 0 {
			k = 0
		}
		matches, err := s.cqms.SimilarTo(ctx, p, req.SQL, k)
		if err != nil {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	default:
		return nil, Errorf(CodeInternal, "unknown search kind %q", kind)
	}
}

func (s *Server) doAnnotate(ctx context.Context, p storage.Principal, id int64, req AnnotateParams) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.cqms.Annotate(storage.QueryID(id), p, storage.Annotation{
		Author: p.User, Text: req.Text, Fragment: req.Fragment,
	})
}

func (s *Server) sessionDTOs(sums []session.Summary) []SessionDTO {
	out := make([]SessionDTO, 0, len(sums))
	for _, sum := range sums {
		out = append(out, SessionDTO{
			ID: sum.ID, User: sum.User, QueryCount: sum.QueryCount,
			Start: sum.Start, End: sum.End, Tables: sum.Tables,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Legacy /api/ shims
// ---------------------------------------------------------------------------

func (s *Server) handleLegacySubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.doSubmit(r.Context(), req.Principal.principal(), SubmitParams{
		SQL: req.SQL, Group: req.Group, Visibility: req.Visibility,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLegacyAnnotate(w http.ResponseWriter, r *http.Request) {
	var req AnnotateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	err := s.doAnnotate(r.Context(), req.Principal.principal(), req.QueryID, AnnotateParams{
		Text: req.Text, Fragment: req.Fragment,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleLegacySearch adapts one search kind to the legacy contract: the
// principal rides in the body and the full match list is returned.
func (s *Server) handleLegacySearch(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if err := decode(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		params := SearchParams{
			Keywords: req.Keywords, Substring: req.Substring, MetaSQL: req.MetaSQL,
			Partial: req.Partial, Include: req.Include, Exclude: req.Exclude,
			K: req.K, SQL: req.SQL,
		}
		if kind == "similar" && params.K <= 0 {
			params.K = 5 // historical default
		}
		matches, err := s.runSearch(r.Context(), req.Principal.principal(), kind, params)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
	}
}

func (s *Server) handleLegacyHistory(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	user := r.URL.Query().Get("of")
	if user == "" {
		user = p.User
	}
	records, err := s.cqms.History(r.Context(), p, user)
	if err != nil {
		writeError(w, err)
		return
	}
	matches := make([]MatchDTO, 0, len(records))
	for _, rec := range records {
		matches = append(matches, MatchDTO{Query: queryDTO(rec), Score: 1})
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matches})
}

func (s *Server) handleLegacySessions(w http.ResponseWriter, r *http.Request) {
	summaries, err := s.cqms.Sessions(r.Context(), principalFromQuery(r))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SessionsResponse{Sessions: s.sessionDTOs(summaries)})
}

func (s *Server) handleLegacySessionGraph(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, Errorf(CodeInvalidArgument, "invalid session id"))
		return
	}
	graph, err := s.cqms.SessionGraph(r.Context(), p, id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, GraphResponse{Graph: graph})
}

func (s *Server) handleLegacyComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveComplete(w, r, req.Principal.principal(), CompleteParams{Partial: req.Partial, K: req.K})
}

func (s *Server) handleLegacyCorrections(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCorrections(w, r, req.Principal.principal(), CompleteParams{Partial: req.Partial})
}

func (s *Server) handleLegacySimilarQueries(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveSimilarQueries(w, r, req.Principal.principal(), CompleteParams{Partial: req.Partial, K: req.K})
}

func (s *Server) handleLegacyTutorial(w http.ResponseWriter, r *http.Request) {
	s.serveTutorial(w, r, principalFromQuery(r), 3)
}

func (s *Server) handleLegacyVisibility(w http.ResponseWriter, r *http.Request) {
	var req VisibilityRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	err := s.cqms.SetVisibility(storage.QueryID(req.QueryID), req.Principal.principal(), parseVisibility(req.Visibility))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleLegacyDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.cqms.DeleteQuery(storage.QueryID(req.QueryID), req.Principal.principal()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}
