package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/metaquery"
	"repro/internal/profiler"
	"repro/internal/storage"
)

// maxInlineRows bounds how many result rows a Traditional-mode response
// carries back to the client; full results stay server-side as in the paper's
// shared-data-center setting.
const maxInlineRows = 100

// Server is the CQMS HTTP server.
type Server struct {
	cqms *core.CQMS
	mux  *http.ServeMux
}

// New returns a server over the given CQMS instance.
func New(c *core.CQMS) *Server {
	s := &Server{cqms: c, mux: http.NewServeMux()}
	s.routes()
	return s
}

// Handler returns the http.Handler for the server.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	s.mux.HandleFunc("/api/query", s.handleSubmit)
	s.mux.HandleFunc("/api/annotate", s.handleAnnotate)
	s.mux.HandleFunc("/api/search/keyword", s.handleKeyword)
	s.mux.HandleFunc("/api/search/substring", s.handleSubstring)
	s.mux.HandleFunc("/api/search/metaquery", s.handleMetaQuery)
	s.mux.HandleFunc("/api/search/partial", s.handlePartial)
	s.mux.HandleFunc("/api/search/bydata", s.handleByData)
	s.mux.HandleFunc("/api/search/similar", s.handleSimilarSearch)
	s.mux.HandleFunc("/api/history", s.handleHistory)
	s.mux.HandleFunc("/api/sessions", s.handleSessions)
	s.mux.HandleFunc("/api/sessions/graph", s.handleSessionGraph)
	s.mux.HandleFunc("/api/assist/complete", s.handleComplete)
	s.mux.HandleFunc("/api/assist/corrections", s.handleCorrections)
	s.mux.HandleFunc("/api/assist/similar", s.handleSimilarQueries)
	s.mux.HandleFunc("/api/assist/tutorial", s.handleTutorial)
	s.mux.HandleFunc("/api/admin/visibility", s.handleVisibility)
	s.mux.HandleFunc("/api/admin/delete", s.handleDelete)
	s.mux.HandleFunc("/api/admin/mine", s.handleMine)
	s.mux.HandleFunc("/api/admin/maintain", s.handleMaintain)
	s.mux.HandleFunc("/api/admin/log/info", s.handleLogInfo)
	s.mux.HandleFunc("/api/admin/log/snapshot", s.handleLogSnapshot)
	s.mux.HandleFunc("/api/admin/log/compact", s.handleLogCompact)
	s.mux.HandleFunc("/api/stats", s.handleStats)
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, storage.ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, storage.ErrAccessDenied):
		status = http.StatusForbidden
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

var errBadRequest = errors.New("bad request")

func decode(r *http.Request, v interface{}) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "method not allowed"})
		return false
	}
	return true
}

func matchesToDTO(matches []metaquery.Match) []MatchDTO {
	out := make([]MatchDTO, 0, len(matches))
	for _, m := range matches {
		out = append(out, MatchDTO{Query: queryDTO(m.Record), Score: m.Score, Why: m.Why})
	}
	return out
}

// principalFromQuery builds a principal from URL query parameters (used by
// GET endpoints).
func principalFromQuery(r *http.Request) storage.Principal {
	p := storage.Principal{User: r.URL.Query().Get("user")}
	if g := r.URL.Query().Get("groups"); g != "" {
		p.Groups = strings.Split(g, ",")
	}
	p.Admin = r.URL.Query().Get("admin") == "true"
	return p
}

// ---------------------------------------------------------------------------
// Traditional Interaction Mode
// ---------------------------------------------------------------------------

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SubmitRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeError(w, fmt.Errorf("%w: sql is required", errBadRequest))
		return
	}
	group := req.Group
	if group == "" && len(req.Principal.Groups) > 0 {
		group = req.Principal.Groups[0]
	}
	out, err := s.cqms.Submit(profiler.Submission{
		User:       req.Principal.User,
		Group:      group,
		Visibility: parseVisibility(req.Visibility),
		SQL:        req.SQL,
	})
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	resp := SubmitResponse{
		QueryID:           int64(out.QueryID),
		SuggestAnnotation: out.SuggestAnnotation,
	}
	if out.ExecError != nil {
		resp.ExecError = out.ExecError.Error()
	} else if out.Result != nil {
		resp.Columns = out.Result.Columns
		resp.RowCount = out.Result.Cardinality()
		resp.ExecMillis = float64(out.Result.Elapsed.Microseconds()) / 1000.0
		limit := len(out.Result.Rows)
		if limit > maxInlineRows {
			limit = maxInlineRows
		}
		for i := 0; i < limit; i++ {
			resp.Rows = append(resp.Rows, out.Result.Rows[i].Strings())
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req AnnotateRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	err := s.cqms.Annotate(storage.QueryID(req.QueryID), req.Principal.principal(), storage.Annotation{
		Author: req.Principal.User, Text: req.Text, Fragment: req.Fragment,
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

// ---------------------------------------------------------------------------
// Search & Browse Interaction Mode
// ---------------------------------------------------------------------------

func (s *Server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	matches := s.cqms.Search(req.Principal.principal(), req.Keywords...)
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handleSubstring(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	matches := s.cqms.SearchSubstring(req.Principal.principal(), req.Substring)
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handleMetaQuery(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	_, matches, err := s.cqms.MetaQuery(req.Principal.principal(), req.MetaSQL)
	if err != nil && !errors.Is(err, metaquery.ErrNoQIDColumn) {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	matches, err := s.cqms.SearchByPartialQuery(req.Principal.principal(), req.Partial)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handleByData(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	matches := s.cqms.SearchByData(req.Principal.principal(), req.Include, req.Exclude)
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handleSimilarSearch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req SearchRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	k := req.K
	if k <= 0 {
		k = 5
	}
	matches, err := s.cqms.SimilarTo(req.Principal.principal(), req.SQL, k)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(matches)})
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	user := r.URL.Query().Get("of")
	if user == "" {
		user = p.User
	}
	records := s.cqms.History(p, user)
	matches := make([]MatchDTO, 0, len(records))
	for _, rec := range records {
		matches = append(matches, MatchDTO{Query: queryDTO(rec), Score: 1})
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matches})
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	summaries := s.cqms.Sessions(p)
	resp := SessionsResponse{}
	for _, sum := range summaries {
		resp.Sessions = append(resp.Sessions, SessionDTO{
			ID: sum.ID, User: sum.User, QueryCount: sum.QueryCount,
			Start: sum.Start, End: sum.End, Tables: sum.Tables,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionGraph(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("%w: invalid session id", errBadRequest))
		return
	}
	graph, err := s.cqms.SessionGraph(p, id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, GraphResponse{Graph: graph})
}

// ---------------------------------------------------------------------------
// Assisted Interaction Mode
// ---------------------------------------------------------------------------

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req CompleteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p := req.Principal.principal()
	resp := AssistResponse{}
	for _, c := range s.cqms.Complete(p, req.Partial, req.K) {
		resp.Completions = append(resp.Completions, CompletionDTO{
			Kind: c.Kind.String(), Text: c.Text, Score: c.Score, Reason: c.Reason,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCorrections(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req CompleteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p := req.Principal.principal()
	resp := AssistResponse{}
	for _, c := range s.cqms.Corrections(p, req.Partial) {
		resp.Corrections = append(resp.Corrections, CorrectionDTO{
			Kind: c.Kind, Original: c.Original, Suggestion: c.Suggestion,
			Reason: c.Reason, Confidence: c.Confidence,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSimilarQueries(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req CompleteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p := req.Principal.principal()
	similar, err := s.cqms.SimilarQueries(p, req.Partial, req.K)
	if err != nil {
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	resp := AssistResponse{}
	for _, sim := range similar {
		resp.Similar = append(resp.Similar, SimilarQueryDTO{
			Query: queryDTO(sim.Record), Score: sim.Score, Diff: sim.Diff, Annotations: sim.Annotations,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTutorial(w http.ResponseWriter, r *http.Request) {
	p := principalFromQuery(r)
	steps := s.cqms.Tutorial(p, 3)
	type stepDTO struct {
		Table   string   `json:"table"`
		Columns []string `json:"columns,omitempty"`
		Queries []string `json:"queries,omitempty"`
	}
	out := make([]stepDTO, 0, len(steps))
	for _, step := range steps {
		dto := stepDTO{Table: step.Table, Columns: step.Columns}
		for _, q := range step.PopularQueries {
			dto.Queries = append(dto.Queries, q.Canonical)
		}
		out = append(out, dto)
	}
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Administrative Interaction Mode
// ---------------------------------------------------------------------------

func (s *Server) handleVisibility(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req VisibilityRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	err := s.cqms.SetVisibility(storage.QueryID(req.QueryID), req.Principal.principal(), parseVisibility(req.Visibility))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req DeleteRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.cqms.DeleteQuery(storage.QueryID(req.QueryID), req.Principal.principal()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	res := s.cqms.RunMiner()
	writeJSON(w, http.StatusOK, MineResponse{
		Transactions: res.TransactionCount,
		Rules:        len(res.Rules),
		Clusters:     len(res.Clusters),
		Sessions:     len(s.cqms.Sessions(storage.Principal{Admin: true})),
	})
}

func (s *Server) handleMaintain(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	report, err := s.cqms.RunMaintenance()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := MaintainResponse{Checked: report.Checked, StatsRefreshed: len(report.StatsRefreshed)}
	for _, inv := range report.Invalidated {
		resp.Invalidated = append(resp.Invalidated, fmt.Sprintf("q%d: %s", inv.ID, inv.Reason))
	}
	for _, rep := range report.Repaired {
		resp.Repaired = append(resp.Repaired, fmt.Sprintf("q%d: %s", rep.ID, rep.Change))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLogInfo(w http.ResponseWriter, r *http.Request) {
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeJSON(w, http.StatusOK, LogInfoResponse{Enabled: false})
		return
	}
	info, err := mgr.Info()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := LogInfoResponse{
		Enabled:              true,
		Dir:                  info.Dir,
		SyncPolicy:           info.SyncPolicy,
		LastSeq:              info.LastSeq,
		SnapshotSeq:          info.SnapshotSeq,
		AppendsSinceSnapshot: info.AppendsSinceSnapshot,
		AppendError:          info.AppendError,
	}
	for _, seg := range info.Segments {
		resp.Segments = append(resp.Segments, LogSegmentDTO{
			Name: seg.Name, FirstSeq: seg.FirstSeq, Bytes: seg.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLogSnapshot(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeError(w, fmt.Errorf("%w: durability is disabled (start the server with -data-dir)", errBadRequest))
		return
	}
	path, seq, err := mgr.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LogSnapshotResponse{Path: path, Seq: seq})
}

func (s *Server) handleLogCompact(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeError(w, fmt.Errorf("%w: durability is disabled (start the server with -data-dir)", errBadRequest))
		return
	}
	path, seq, removed, err := mgr.Compact()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LogSnapshotResponse{Path: path, Seq: seq, RemovedSegments: removed})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	store := s.cqms.Store()
	var tables []string
	for _, tc := range store.TableCounts() {
		tables = append(tables, tc.Table)
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Queries:  store.Count(),
		Users:    store.Users(),
		Tables:   tables,
		Sessions: len(store.SessionIDs()),
	})
}
