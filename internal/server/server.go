package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metaquery"
	"repro/internal/profiler"
	"repro/internal/session"
	"repro/internal/storage"
)

// maxInlineRows bounds how many result rows a Traditional-mode response
// carries back to the client; full results stay server-side as in the paper's
// shared-data-center setting.
const maxInlineRows = 100

// Request-body caps: malformed or hostile payloads fail loudly instead of
// half-applying. The batch endpoint gets a larger budget because it carries
// many queries per round trip.
const (
	maxBodyBytes      = 1 << 20 // 1 MiB
	maxBatchBodyBytes = 8 << 20 // 8 MiB
)

// MaxBatchQueries is the most queries one POST /v1/queries:batch may carry;
// larger batches are rejected whole with invalid_argument. Exported so
// clients can clamp before sending.
const MaxBatchQueries = 500

// Server is the CQMS HTTP server: the versioned /v1/ API. The legacy
// unversioned /api/ shims are gone; requests there receive a 404 envelope
// with an `upgrade` hint naming the v1 surface.
type Server struct {
	cqms        *core.CQMS
	mux         *http.ServeMux
	logger      *log.Logger
	handler     http.Handler
	metrics     *httpMetrics
	slowRequest time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithLogger enables access logging and panic reporting on the given logger.
func WithLogger(logger *log.Logger) Option {
	return func(s *Server) { s.logger = logger }
}

// WithSlowRequests logs any request slower than threshold (with its request
// ID) on the server's logger. Zero or negative disables the slow-request log.
func WithSlowRequests(threshold time.Duration) Option {
	return func(s *Server) { s.slowRequest = threshold }
}

// New returns a server over the given CQMS instance with the standard
// middleware chain installed: request IDs, header principals, HTTP
// instrumentation, panic recovery and (when a logger is configured) access
// and slow-request logging.
func New(c *core.CQMS, opts ...Option) *Server {
	s := &Server{cqms: c, mux: http.NewServeMux()}
	for _, opt := range opts {
		opt(s)
	}
	s.metrics = newHTTPMetrics(c.Metrics())
	s.routes()
	// HeaderPrincipal runs before AccessLog so the log line carries the
	// context principal; Instrument installs the shared statusWriter that the
	// logging and recovery middlewares (and the per-route wrappers) reuse.
	s.handler = Chain(s.jsonFallback(s.mux),
		RequestID(),
		HeaderPrincipal(),
		Instrument(s.metrics),
		AccessLog(s.logger),
		SlowRequestLog(s.logger, s.slowRequest),
		Recover(s.logger),
	)
	return s
}

// Handler returns the http.Handler for the server (middleware included).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) routes() {
	// Versioned v1 API: method-pattern routing, principal in X-CQMS-*
	// headers, cursor pagination on list endpoints. Mutating routes go
	// through writable(), which refuses them with read_only on a follower.
	s.handleFunc("POST /v1/queries", s.writable(s.handleV1Submit))
	s.handleFunc("POST /v1/queries:batch", s.writable(s.handleV1SubmitBatch))
	s.handleFunc("GET /v1/queries/{id}", s.handleV1GetQuery)
	s.handleFunc("DELETE /v1/queries/{id}", s.writable(s.handleV1DeleteQuery))
	s.handleFunc("POST /v1/queries/{id}/annotations", s.writable(s.handleV1Annotate))
	s.handleFunc("PUT /v1/queries/{id}/visibility", s.writable(s.handleV1Visibility))
	s.handleFunc("GET /v1/history", s.handleV1History)
	s.handleFunc("GET /v1/sessions", s.handleV1Sessions)
	s.handleFunc("GET /v1/sessions/{id}/graph", s.handleV1SessionGraph)
	s.handleFunc("POST /v1/search/keyword", s.handleV1Search("keyword"))
	s.handleFunc("POST /v1/search/substring", s.handleV1Search("substring"))
	s.handleFunc("POST /v1/search/metaquery", s.handleV1Search("metaquery"))
	s.handleFunc("POST /v1/search/partial", s.handleV1Search("partial"))
	s.handleFunc("POST /v1/search/bydata", s.handleV1Search("bydata"))
	s.handleFunc("POST /v1/search/similar", s.handleV1Search("similar"))
	s.handleFunc("POST /v1/assist/complete", s.handleV1Complete)
	s.handleFunc("POST /v1/assist/corrections", s.handleV1Corrections)
	s.handleFunc("POST /v1/assist/similar", s.handleV1SimilarQueries)
	s.handleFunc("GET /v1/assist/tutorial", s.handleV1Tutorial)
	s.handleFunc("POST /v1/admin/mine", s.writable(s.handleV1Mine))
	s.handleFunc("POST /v1/admin/maintain", s.writable(s.handleV1Maintain))
	s.handleFunc("GET /v1/admin/log", s.handleV1LogInfo)
	s.handleFunc("POST /v1/admin/log/snapshot", s.writable(s.handleV1LogSnapshot))
	s.handleFunc("POST /v1/admin/log/compact", s.writable(s.handleV1LogCompact))
	s.handleFunc("GET /v1/stats", s.handleV1Stats)
	s.handleFunc("GET /v1/metrics", s.handleV1Metrics)
	// Replication: snapshot bootstrap and the CRC-framed WAL tail are
	// admin-gated (they expose the whole log regardless of visibility);
	// status is open like /v1/stats.
	s.handleFunc("GET /v1/replication/status", s.handleV1ReplicationStatus)
	s.handleFunc("GET /v1/replication/snapshot", s.handleV1ReplicationSnapshot)
	s.handleFunc("GET /v1/replication/wal", s.handleV1ReplicationWAL)
	// The trailing-slash pattern matches the whole pprof subtree (index,
	// named profiles, cmdline/profile/trace); symbol additionally accepts
	// POST bodies per the pprof protocol.
	s.handleFunc("GET /v1/admin/debug/pprof/", s.handleV1Pprof)
	s.handleFunc("POST /v1/admin/debug/pprof/symbol", s.handleV1Pprof)
}

// writable gates a mutating route: on a follower it refuses with the
// structured read_only error naming the primary, before the handler reads
// the body.
func (s *Server) writable(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cqms.Role() == core.RoleFollower {
			writeError(w, readOnlyError(s.cqms.PrimaryURL()))
			return
		}
		fn(w, r)
	}
}

// handleFunc registers one route, wrapping the handler so its latency and
// status class land in the per-route HTTP metrics. The route label is the
// registration pattern, so path parameters ({id}) stay unexpanded and the
// label set is bounded by the route table. The wrapper deliberately records
// only on normal return: a panicking handler is counted by nothing here and
// surfaces through Recover's log line instead.
func (s *Server) handleFunc(pattern string, fn http.HandlerFunc) {
	if s.metrics == nil {
		s.mux.HandleFunc(pattern, fn)
		return
	}
	rt := s.metrics.route(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		sw := ensureStatusWriter(w)
		start := time.Now()
		fn(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rt.done(status, time.Since(start))
	})
}

// jsonFallback wraps the mux so that unmatched requests produce the JSON
// error envelope instead of net/http's plain-text defaults: unknown routes
// get a 404 envelope, method mismatches a 405 envelope with the Allow header
// listing the methods the path does support.
func (s *Server) jsonFallback(mux *http.ServeMux) http.Handler {
	probeMethods := []string{
		http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodPatch, http.MethodDelete,
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		if s.metrics != nil {
			s.metrics.unmatched.Inc()
		}
		var allowed []string
		for _, m := range probeMethods {
			probe := &http.Request{Method: m, URL: r.URL, Host: r.Host}
			if _, pattern := mux.Handler(probe); pattern != "" {
				allowed = append(allowed, m)
			}
		}
		if len(allowed) > 0 {
			w.Header().Set("Allow", strings.Join(allowed, ", "))
			writeError(w, Errorf(CodeMethodNotAllowed,
				"method %s not allowed for %s", r.Method, r.URL.Path))
			return
		}
		// The retired legacy surface gets an upgrade hint: every /api/*
		// operation has a v1 equivalent with the principal in headers.
		if strings.HasPrefix(r.URL.Path, "/api/") {
			err := Errorf(CodeNotFound, "the unversioned /api surface has been retired")
			err.Details = map[string]string{
				"upgrade": "use the versioned /v1 API (principal in X-CQMS-* headers); see API.md",
			}
			writeError(w, err)
			return
		}
		writeError(w, Errorf(CodeNotFound, "no route for %s", r.URL.Path))
	})
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body. Unknown fields and oversized bodies are
// rejected so malformed client payloads fail loudly instead of half-applying.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) error {
	return decodeCapped(w, r, v, maxBodyBytes)
}

func decodeCapped(w http.ResponseWriter, r *http.Request, v interface{}, cap int64) error {
	body := http.MaxBytesReader(w, r.Body, cap)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return err // coerced to payload_too_large by writeError
		}
		return Errorf(CodeInvalidArgument, "decoding request body: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return Errorf(CodeInvalidArgument, "request body holds more than one JSON value")
	}
	return nil
}

// asInvalidArgument maps a user-input error onto the invalid_argument code,
// letting cancellation and typed envelope errors keep their own codes.
func asInvalidArgument(err error) error {
	var apiErr *APIError
	if errors.As(err, &apiErr) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, storage.ErrNotFound) || errors.Is(err, storage.ErrAccessDenied) {
		return err
	}
	return Errorf(CodeInvalidArgument, "%v", err)
}

// pathID parses the {id} path segment.
func pathID(r *http.Request) (int64, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return 0, Errorf(CodeInvalidArgument, "invalid id %q", r.PathValue("id"))
	}
	return id, nil
}

func matchesToDTO(matches []metaquery.Match) []MatchDTO {
	out := make([]MatchDTO, 0, len(matches))
	for _, m := range matches {
		out = append(out, MatchDTO{Query: queryDTO(m.Record), Score: m.Score, Why: m.Why})
	}
	return out
}

// ---------------------------------------------------------------------------
// Shared handler logic used by the v1 handlers.
// ---------------------------------------------------------------------------

func (s *Server) doSubmit(ctx context.Context, p storage.Principal, req SubmitParams) (*SubmitResponse, error) {
	if strings.TrimSpace(req.SQL) == "" {
		return nil, Errorf(CodeInvalidArgument, "sql is required")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	group := req.Group
	if group == "" && len(p.Groups) > 0 {
		group = p.Groups[0]
	}
	out, err := s.cqms.Submit(profiler.Submission{
		User:       p.User,
		Group:      group,
		Visibility: parseVisibility(req.Visibility),
		SQL:        req.SQL,
	})
	if err != nil {
		return nil, asInvalidArgument(err)
	}
	resp := submitResponse(out)
	return &resp, nil
}

// submitResponse converts a profiler outcome into the wire response,
// truncating inline rows at maxInlineRows.
func submitResponse(out *profiler.Outcome) SubmitResponse {
	resp := SubmitResponse{
		QueryID:           int64(out.QueryID),
		SuggestAnnotation: out.SuggestAnnotation,
	}
	if out.ExecError != nil {
		resp.ExecError = out.ExecError.Error()
	} else if out.Result != nil {
		resp.Columns = out.Result.Columns
		resp.RowCount = out.Result.Cardinality()
		resp.ExecMillis = float64(out.Result.Elapsed.Microseconds()) / 1000.0
		limit := len(out.Result.Rows)
		if limit > maxInlineRows {
			limit = maxInlineRows
		}
		for i := 0; i < limit; i++ {
			resp.Rows = append(resp.Rows, out.Result.Rows[i].Strings())
		}
	}
	return resp
}

// runSearch dispatches one search kind. The returned matches are unpaged;
// the v1 handler pages them, the legacy shims return them whole.
func (s *Server) runSearch(ctx context.Context, p storage.Principal, kind string, req SearchParams) ([]metaquery.Match, error) {
	switch kind {
	case "keyword":
		return s.cqms.Search(ctx, p, req.Keywords...)
	case "substring":
		return s.cqms.SearchSubstring(ctx, p, req.Substring)
	case "metaquery":
		_, matches, err := s.cqms.MetaQuery(ctx, p, req.MetaSQL)
		if err != nil && !errors.Is(err, metaquery.ErrNoQIDColumn) {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	case "partial":
		matches, err := s.cqms.SearchByPartialQuery(ctx, p, req.Partial)
		if err != nil {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	case "bydata":
		return s.cqms.SearchByData(ctx, p, req.Include, req.Exclude)
	case "similar":
		k := req.K
		if k < 0 {
			k = 0
		}
		matches, err := s.cqms.SimilarTo(ctx, p, req.SQL, k)
		if err != nil {
			return nil, asInvalidArgument(err)
		}
		return matches, nil
	default:
		return nil, Errorf(CodeInternal, "unknown search kind %q", kind)
	}
}

func (s *Server) doAnnotate(ctx context.Context, p storage.Principal, id int64, req AnnotateParams) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.cqms.Annotate(storage.QueryID(id), p, storage.Annotation{
		Author: p.User, Text: req.Text, Fragment: req.Fragment,
	})
}

func (s *Server) sessionDTOs(sums []session.Summary) []SessionDTO {
	out := make([]SessionDTO, 0, len(sums))
	for _, sum := range sums {
		out = append(out, SessionDTO{
			ID: sum.ID, User: sum.User, QueryCount: sum.QueryCount,
			Start: sum.Start, End: sum.End, Tables: sum.Tables,
		})
	}
	return out
}
