package server_test

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

// newTestServer starts an httptest server over a populated CQMS and returns
// clients for a limnologist, an astronomer and an admin.
func newTestServer(t testing.TB) (*httptest.Server, *client.Client, *client.Client, *client.Client) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cqms := core.NewWithEngine(eng, core.DefaultConfig())
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(ts.Close)
	alice := client.New(ts.URL, "alice", []string{"limnology"}, false)
	carol := client.New(ts.URL, "carol", []string{"astro"}, false)
	admin := client.New(ts.URL, "root", nil, true)
	return ts, alice, carol, admin
}

func TestSubmitAndHistoryOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	resp, err := alice.Submit("SELECT lake, temp FROM WaterTemp WHERE temp < 18", "limnology", "group")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.QueryID == 0 || resp.RowCount == 0 || len(resp.Columns) != 2 {
		t.Errorf("submit response = %+v", resp)
	}
	if resp.ExecError != "" {
		t.Errorf("unexpected exec error %q", resp.ExecError)
	}
	hist, err := alice.History("")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 1 || hist[0].Query.User != "alice" {
		t.Errorf("history = %+v", hist)
	}
}

func TestSubmitInvalidSQLOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	if _, err := alice.Submit("SELEKT nonsense", "limnology", "group"); err == nil {
		t.Error("expected an error for unparsable SQL")
	}
	if _, err := alice.Submit("", "limnology", "group"); err == nil {
		t.Error("expected an error for empty SQL")
	}
	// Execution errors (valid SQL, missing table) are reported in-band.
	resp, err := alice.Submit("SELECT * FROM NoSuchTable", "limnology", "group")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.ExecError == "" {
		t.Errorf("expected execError for missing table")
	}
}

func TestAnnotateAndKeywordSearchOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	resp, err := alice.Submit("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x", "limnology", "group")
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Annotate(resp.QueryID, "Seattle lakes correlation"); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	matches, err := alice.SearchKeyword("Seattle", "salinity")
	if err != nil {
		t.Fatalf("SearchKeyword: %v", err)
	}
	if len(matches) != 1 || matches[0].Query.ID != resp.QueryID {
		t.Errorf("keyword matches = %+v", matches)
	}
	if len(matches[0].Query.Annotations) != 1 {
		t.Errorf("annotations not returned: %+v", matches[0].Query)
	}
}

func TestMetaQueryOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	if _, err := alice.Submit("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x", "limnology", "public"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Submit("SELECT city FROM CityLocations", "limnology", "public"); err != nil {
		t.Fatal(err)
	}
	matches, err := admin.MetaQuery(`SELECT Q.qid FROM Queries Q, DataSources D1, DataSources D2
		WHERE Q.qid = D1.qid AND Q.qid = D2.qid AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`)
	if err != nil {
		t.Fatalf("MetaQuery: %v", err)
	}
	if len(matches) != 1 {
		t.Errorf("meta-query matches = %d, want 1", len(matches))
	}
	// Invalid meta-SQL is a client error.
	if _, err := admin.MetaQuery("SELEKT"); err == nil {
		t.Error("expected error for invalid meta-query")
	}
}

func TestAccessControlOverHTTP(t *testing.T) {
	_, alice, carol, _ := newTestServer(t)
	resp, err := alice.Submit("SELECT temp FROM WaterTemp WHERE temp < 18", "limnology", "group")
	if err != nil {
		t.Fatal(err)
	}
	// Carol (different group) cannot see alice's query via keyword search.
	matches, err := carol.SearchKeyword("WaterTemp")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("carol sees %d of alice's group queries, want 0", len(matches))
	}
	// Carol cannot change its visibility either.
	if err := carol.SetVisibility(resp.QueryID, "public"); err == nil {
		t.Error("expected forbidden error")
	}
	// Alice can.
	if err := alice.SetVisibility(resp.QueryID, "public"); err != nil {
		t.Errorf("owner SetVisibility: %v", err)
	}
	matches, err = carol.SearchKeyword("WaterTemp")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("after publication carol sees %d, want 1", len(matches))
	}
}

func TestAssistEndpointsOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	for i := 0; i < 5; i++ {
		if _, err := alice.Submit("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18", "limnology", "group"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Mine(); err != nil {
		t.Fatalf("Mine: %v", err)
	}
	completions, err := alice.Complete("SELECT * FROM WaterSalinity", 3)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	foundWaterTemp := false
	for _, c := range completions {
		if c.Kind == "table" && c.Text == "WaterTemp" {
			foundWaterTemp = true
		}
	}
	if !foundWaterTemp {
		t.Errorf("completions = %+v, want WaterTemp table suggestion", completions)
	}
	corrections, err := alice.Corrections("SELECT tmep FROM WaterTemp")
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	if len(corrections) == 0 {
		t.Errorf("no corrections over HTTP")
	}
	similar, err := alice.SimilarQueries("SELECT WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 20", 3)
	if err != nil {
		t.Fatalf("SimilarQueries: %v", err)
	}
	if len(similar) == 0 {
		t.Errorf("no similar queries over HTTP")
	}
	if similar[0].Diff == "" {
		t.Errorf("similar query missing diff column")
	}
}

func TestSessionsAndGraphOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	queries := []string{
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18",
	}
	for _, q := range queries {
		if _, err := alice.Submit(q, "limnology", "group"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Mine(); err != nil {
		t.Fatal(err)
	}
	sessions, err := alice.Sessions()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(sessions) != 1 || sessions[0].QueryCount != 3 {
		t.Fatalf("sessions = %+v", sessions)
	}
	graph, err := alice.SessionGraph(sessions[0].ID)
	if err != nil {
		t.Fatalf("SessionGraph: %v", err)
	}
	if !strings.Contains(graph, "+table WaterSalinity") {
		t.Errorf("graph missing edge label:\n%s", graph)
	}
	if _, err := alice.SessionGraph(99999); err == nil {
		t.Error("expected not-found error")
	}
}

func TestMaintainAndStatsOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	if _, err := alice.Submit("SELECT temp FROM WaterTemp WHERE temp < 18", "limnology", "group"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Submit("ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature", "limnology", "group"); err != nil {
		t.Fatal(err)
	}
	report, err := admin.Maintain()
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	if len(report.Repaired) != 1 {
		t.Errorf("repaired = %+v, want one repair", report.Repaired)
	}
	stats, err := admin.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Queries != 2 || len(stats.Users) != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeleteOverHTTP(t *testing.T) {
	_, alice, carol, _ := newTestServer(t)
	resp, err := alice.Submit("SELECT temp FROM WaterTemp", "limnology", "group")
	if err != nil {
		t.Fatal(err)
	}
	if err := carol.DeleteQuery(resp.QueryID); err == nil {
		t.Error("non-owner delete should fail")
	}
	if err := alice.DeleteQuery(resp.QueryID); err != nil {
		t.Errorf("owner delete: %v", err)
	}
	if err := alice.DeleteQuery(99999); err == nil {
		t.Error("deleting a missing query should fail")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /api/query status = %d, want 405", resp.StatusCode)
	}
}
