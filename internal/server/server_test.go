package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

var ctx = context.Background()

// newTestServer starts an httptest server over a populated CQMS and returns
// clients for a limnologist, an astronomer and an admin.
func newTestServer(t testing.TB) (*httptest.Server, *client.Client, *client.Client, *client.Client) {
	t.Helper()
	eng := engine.New()
	if err := workload.Populate(eng, 200, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	cqms := core.NewWithEngine(eng, core.DefaultConfig())
	ts := httptest.NewServer(server.New(cqms).Handler())
	t.Cleanup(ts.Close)
	alice := client.New(ts.URL, client.WithUser("alice", "limnology"))
	carol := client.New(ts.URL, client.WithUser("carol", "astro"))
	admin := client.New(ts.URL, client.WithUser("root"), client.WithAdmin())
	return ts, alice, carol, admin
}

func TestSubmitAndHistoryOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	resp, err := alice.Submit(ctx, "SELECT lake, temp FROM WaterTemp WHERE temp < 18",
		client.Group("limnology"), client.Visibility("group"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.QueryID == 0 || resp.RowCount == 0 || len(resp.Columns) != 2 {
		t.Errorf("submit response = %+v", resp)
	}
	if resp.ExecError != "" {
		t.Errorf("unexpected exec error %q", resp.ExecError)
	}
	hist, err := alice.History(ctx, "").All()
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 1 || hist[0].Query.User != "alice" {
		t.Errorf("history = %+v", hist)
	}
}

func TestSubmitInvalidSQLOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	if _, err := alice.Submit(ctx, "SELEKT nonsense", client.Group("limnology")); err == nil {
		t.Error("expected an error for unparsable SQL")
	}
	if _, err := alice.Submit(ctx, "", client.Group("limnology")); err == nil {
		t.Error("expected an error for empty SQL")
	}
	// Execution errors (valid SQL, missing table) are reported in-band.
	resp, err := alice.Submit(ctx, "SELECT * FROM NoSuchTable", client.Group("limnology"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if resp.ExecError == "" {
		t.Errorf("expected execError for missing table")
	}
}

func TestAnnotateAndKeywordSearchOverHTTP(t *testing.T) {
	_, alice, _, _ := newTestServer(t)
	resp, err := alice.Submit(ctx, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
		client.Group("limnology"))
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.Annotate(ctx, resp.QueryID, "Seattle lakes correlation"); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	matches, err := alice.SearchKeyword(ctx, "Seattle", "salinity").All()
	if err != nil {
		t.Fatalf("SearchKeyword: %v", err)
	}
	if len(matches) != 1 || matches[0].Query.ID != resp.QueryID {
		t.Errorf("keyword matches = %+v", matches)
	}
	if len(matches[0].Query.Annotations) != 1 {
		t.Errorf("annotations not returned: %+v", matches[0].Query)
	}
}

func TestMetaQueryOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	if _, err := alice.Submit(ctx, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x",
		client.Group("limnology"), client.Visibility("public")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Submit(ctx, "SELECT city FROM CityLocations",
		client.Group("limnology"), client.Visibility("public")); err != nil {
		t.Fatal(err)
	}
	matches, err := admin.MetaQuery(ctx, `SELECT Q.qid FROM Queries Q, DataSources D1, DataSources D2
		WHERE Q.qid = D1.qid AND Q.qid = D2.qid AND D1.relName = 'WaterSalinity' AND D2.relName = 'WaterTemp'`).All()
	if err != nil {
		t.Fatalf("MetaQuery: %v", err)
	}
	if len(matches) != 1 {
		t.Errorf("meta-query matches = %d, want 1", len(matches))
	}
	// Invalid meta-SQL is a client error.
	if _, err := admin.MetaQuery(ctx, "SELEKT").All(); err == nil {
		t.Error("expected error for invalid meta-query")
	}
}

func TestAccessControlOverHTTP(t *testing.T) {
	_, alice, carol, _ := newTestServer(t)
	resp, err := alice.Submit(ctx, "SELECT temp FROM WaterTemp WHERE temp < 18",
		client.Group("limnology"))
	if err != nil {
		t.Fatal(err)
	}
	// Carol (different group) cannot see alice's query via keyword search.
	matches, err := carol.SearchKeyword(ctx, "WaterTemp").All()
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("carol sees %d of alice's group queries, want 0", len(matches))
	}
	// Carol cannot change its visibility either.
	if err := carol.SetVisibility(ctx, resp.QueryID, "public"); err == nil {
		t.Error("expected forbidden error")
	}
	// Alice can.
	if err := alice.SetVisibility(ctx, resp.QueryID, "public"); err != nil {
		t.Errorf("owner SetVisibility: %v", err)
	}
	matches, err = carol.SearchKeyword(ctx, "WaterTemp").All()
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("after publication carol sees %d, want 1", len(matches))
	}
}

func TestAssistEndpointsOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	for i := 0; i < 5; i++ {
		if _, err := alice.Submit(ctx, "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < 18",
			client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Mine(ctx); err != nil {
		t.Fatalf("Mine: %v", err)
	}
	completions, err := alice.Complete(ctx, "SELECT * FROM WaterSalinity", 3)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	foundWaterTemp := false
	for _, c := range completions {
		if c.Kind == "table" && c.Text == "WaterTemp" {
			foundWaterTemp = true
		}
	}
	if !foundWaterTemp {
		t.Errorf("completions = %+v, want WaterTemp table suggestion", completions)
	}
	corrections, err := alice.Corrections(ctx, "SELECT tmep FROM WaterTemp")
	if err != nil {
		t.Fatalf("Corrections: %v", err)
	}
	if len(corrections) == 0 {
		t.Errorf("no corrections over HTTP")
	}
	similar, err := alice.SimilarQueries(ctx, "SELECT WaterTemp.temp FROM WaterTemp WHERE WaterTemp.temp < 20", 3)
	if err != nil {
		t.Fatalf("SimilarQueries: %v", err)
	}
	if len(similar) == 0 {
		t.Errorf("no similar queries over HTTP")
	}
	if similar[0].Diff == "" {
		t.Errorf("similar query missing diff column")
	}
}

func TestSessionsAndGraphOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	queries := []string{
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18",
	}
	for _, q := range queries {
		if _, err := alice.Submit(ctx, q, client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Mine(ctx); err != nil {
		t.Fatal(err)
	}
	sessions, err := alice.Sessions(ctx).All()
	if err != nil {
		t.Fatalf("Sessions: %v", err)
	}
	if len(sessions) != 1 || sessions[0].QueryCount != 3 {
		t.Fatalf("sessions = %+v", sessions)
	}
	graph, err := alice.SessionGraph(ctx, sessions[0].ID)
	if err != nil {
		t.Fatalf("SessionGraph: %v", err)
	}
	if !strings.Contains(graph, "+table WaterSalinity") {
		t.Errorf("graph missing edge label:\n%s", graph)
	}
	if _, err := alice.SessionGraph(ctx, 99999); err == nil {
		t.Error("expected not-found error")
	}
}

func TestMaintainAndStatsOverHTTP(t *testing.T) {
	_, alice, _, admin := newTestServer(t)
	if _, err := alice.Submit(ctx, "SELECT temp FROM WaterTemp WHERE temp < 18",
		client.Group("limnology")); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Submit(ctx, "ALTER TABLE WaterTemp RENAME COLUMN temp TO temperature",
		client.Group("limnology")); err != nil {
		t.Fatal(err)
	}
	report, err := admin.Maintain(ctx)
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	if len(report.Repaired) != 1 {
		t.Errorf("repaired = %+v, want one repair", report.Repaired)
	}
	stats, err := admin.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.Queries != 2 || len(stats.Users) != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestDeleteOverHTTP(t *testing.T) {
	_, alice, carol, _ := newTestServer(t)
	resp, err := alice.Submit(ctx, "SELECT temp FROM WaterTemp", client.Group("limnology"))
	if err != nil {
		t.Fatal(err)
	}
	if err := carol.DeleteQuery(ctx, resp.QueryID); err == nil {
		t.Error("non-owner delete should fail")
	}
	if err := alice.DeleteQuery(ctx, resp.QueryID); err != nil {
		t.Errorf("owner delete: %v", err)
	}
	if err := alice.DeleteQuery(ctx, 99999); err == nil {
		t.Error("deleting a missing query should fail")
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("DELETE /v1/stats status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow header = %q, want GET listed", allow)
	}
}
