// Package server exposes the CQMS over HTTP/JSON, realising the
// client-server architecture of Figure 4: the CQMS client communicates with
// the CQMS server through standard SQL queries (the Traditional mode
// endpoint) and meta-queries (the Search & Browse and Assisted mode
// endpoints), plus the administrative endpoints of §2.4.
//
// The service contract is the versioned /v1/ API (see API.md): Go 1.22
// method-pattern routing, the caller's principal in X-CQMS-* headers, a
// structured error envelope with machine-readable codes, cursor pagination
// on every list endpoint, and a batch submit endpoint that amortises the
// store's commit lock. The unversioned /api/ surface has been retired; any
// request under it gets a not_found envelope with an upgrade hint.
//
// Authentication is out of scope for the paper and for this reproduction:
// each request declares its principal (user, groups, admin flag), and the
// storage layer enforces the visibility rules on that declared identity.
package server

import (
	"time"

	"repro/internal/storage"
)

// SubmitParams is the v1 Traditional-mode request body (POST /v1/queries);
// the principal travels in the X-CQMS-* headers.
type SubmitParams struct {
	SQL        string `json:"sql"`
	Group      string `json:"group,omitempty"`
	Visibility string `json:"visibility,omitempty"` // private, group, public
}

// BatchSubmitRequest submits many queries in one round trip
// (POST /v1/queries:batch), amortising the store's commit lock.
type BatchSubmitRequest struct {
	Queries []SubmitParams `json:"queries"`
}

// BatchItemResult is one entry of a batch response: exactly one of Result
// and Error is set, in the order the queries were submitted.
type BatchItemResult struct {
	Result *SubmitResponse `json:"result,omitempty"`
	Error  *APIError       `json:"error,omitempty"`
}

// BatchSubmitResponse mirrors BatchSubmitRequest.Queries index by index.
type BatchSubmitResponse struct {
	Results []BatchItemResult `json:"results"`
}

// SubmitResponse returns the execution result and logging metadata.
type SubmitResponse struct {
	QueryID           int64      `json:"queryId"`
	Columns           []string   `json:"columns,omitempty"`
	Rows              [][]string `json:"rows,omitempty"`
	RowCount          int        `json:"rowCount"`
	ExecMillis        float64    `json:"execMillis"`
	ExecError         string     `json:"execError,omitempty"`
	SuggestAnnotation bool       `json:"suggestAnnotation"`
}

// AnnotateParams is the v1 annotation body
// (POST /v1/queries/{id}/annotations); the query ID rides in the path.
type AnnotateParams struct {
	Text     string `json:"text"`
	Fragment string `json:"fragment,omitempty"`
}

// VisibilityParams is the v1 visibility body
// (PUT /v1/queries/{id}/visibility).
type VisibilityParams struct {
	Visibility string `json:"visibility"`
}

// SearchParams is the v1 search body (POST /v1/search/{kind}), covering the
// keyword, substring, meta-query, partial-query and query-by-data searches;
// exactly one payload field group is used per kind, plus pagination controls.
type SearchParams struct {
	Keywords  []string `json:"keywords,omitempty"`
	Substring string   `json:"substring,omitempty"`
	MetaSQL   string   `json:"metaSql,omitempty"`
	Partial   string   `json:"partial,omitempty"`
	Include   []string `json:"include,omitempty"`
	Exclude   []string `json:"exclude,omitempty"`
	K         int      `json:"k,omitempty"`
	SQL       string   `json:"sql,omitempty"`
	// Limit caps the page size (default 50, max 500); Cursor resumes a
	// previous listing. The response's nextCursor feeds the next request.
	Limit  int    `json:"limit,omitempty"`
	Cursor string `json:"cursor,omitempty"`
}

// QueryDTO is the wire representation of a logged query.
type QueryDTO struct {
	ID          int64     `json:"id"`
	Text        string    `json:"text"`
	User        string    `json:"user"`
	Group       string    `json:"group,omitempty"`
	IssuedAt    time.Time `json:"issuedAt"`
	Tables      []string  `json:"tables,omitempty"`
	ResultRows  int       `json:"resultRows"`
	ExecMillis  float64   `json:"execMillis"`
	SessionID   int64     `json:"sessionId,omitempty"`
	Valid       bool      `json:"valid"`
	Annotations []string  `json:"annotations,omitempty"`
	Quality     float64   `json:"quality,omitempty"`
}

// MatchDTO is one search result.
type MatchDTO struct {
	Query QueryDTO `json:"query"`
	Score float64  `json:"score"`
	Why   string   `json:"why,omitempty"`
}

// SearchResponse carries search results. NextCursor is set on paginated v1
// responses when another page exists; pass it back as the cursor to resume.
type SearchResponse struct {
	Matches    []MatchDTO `json:"matches"`
	NextCursor string     `json:"nextCursor,omitempty"`
}

// CompleteParams is the v1 assist body (POST /v1/assist/*).
type CompleteParams struct {
	Partial string `json:"partial"`
	K       int    `json:"k,omitempty"`
}

// CompletionDTO is one completion suggestion.
type CompletionDTO struct {
	Kind   string  `json:"kind"`
	Text   string  `json:"text"`
	Score  float64 `json:"score"`
	Reason string  `json:"reason,omitempty"`
}

// CorrectionDTO is one correction suggestion.
type CorrectionDTO struct {
	Kind       string  `json:"kind"`
	Original   string  `json:"original"`
	Suggestion string  `json:"suggestion"`
	Reason     string  `json:"reason,omitempty"`
	Confidence float64 `json:"confidence"`
}

// SimilarQueryDTO is one row of the Figure 3 similar-queries pane.
type SimilarQueryDTO struct {
	Query       QueryDTO `json:"query"`
	Score       float64  `json:"score"`
	Diff        string   `json:"diff"`
	Annotations []string `json:"annotations,omitempty"`
}

// AssistResponse bundles everything the assisted-interaction client pane
// needs.
type AssistResponse struct {
	Completions []CompletionDTO   `json:"completions,omitempty"`
	Corrections []CorrectionDTO   `json:"corrections,omitempty"`
	Similar     []SimilarQueryDTO `json:"similar,omitempty"`
}

// SessionDTO summarises one detected session.
type SessionDTO struct {
	ID         int64     `json:"id"`
	User       string    `json:"user"`
	QueryCount int       `json:"queryCount"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end"`
	Tables     []string  `json:"tables,omitempty"`
}

// SessionsResponse lists sessions. NextCursor is set on paginated v1
// responses when another page exists.
type SessionsResponse struct {
	Sessions   []SessionDTO `json:"sessions"`
	NextCursor string       `json:"nextCursor,omitempty"`
}

// TutorialStepDTO is one step of the generated data-set tutorial.
type TutorialStepDTO struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns,omitempty"`
	Queries []string `json:"queries,omitempty"`
}

// GraphResponse carries the rendered Figure 2 session graph.
type GraphResponse struct {
	Graph string `json:"graph"`
}

// MaintainResponse summarises a maintenance scan.
type MaintainResponse struct {
	Checked        int      `json:"checked"`
	Invalidated    []string `json:"invalidated,omitempty"`
	Repaired       []string `json:"repaired,omitempty"`
	StatsRefreshed int      `json:"statsRefreshed"`
}

// MineResponse summarises a mining pass.
type MineResponse struct {
	Transactions int `json:"transactions"`
	Rules        int `json:"rules"`
	Clusters     int `json:"clusters"`
	Sessions     int `json:"sessions"`
}

// ItemCountDTO is one (item, count) pair of an aggregate listing.
type ItemCountDTO struct {
	Item  string `json:"item"`
	Count int    `json:"count"`
}

// StatsResponse reports server-wide counters. The queries/users/tables/
// sessions fields describe the whole log (legacy shape); the remaining
// fields are read from the incrementally maintained stats subsystem and are
// principal-aware — a non-admin caller sees public queries merged with their
// own.
type StatsResponse struct {
	Queries  int      `json:"queries"`
	Users    []string `json:"users"`
	Tables   []string `json:"tables"`
	Sessions int      `json:"sessions"`

	// VisibleQueries is how many logged queries the caller's counters cover.
	VisibleQueries int `json:"visibleQueries"`
	// TableCounts are per-table reference counts visible to the caller,
	// sorted by descending count.
	TableCounts []ItemCountDTO `json:"tableCounts,omitempty"`
	// UserActivity is per-user query counts visible to the caller, sorted by
	// descending count.
	UserActivity []ItemCountDTO `json:"userActivity,omitempty"`
	// TopPredicates are the most used concrete predicates visible to the
	// caller, sorted by descending count (capped).
	TopPredicates []ItemCountDTO `json:"topPredicates,omitempty"`
	// Approx describes the approximation contract of the listings above.
	// They are served from bounded per-bucket top-K summaries: every count
	// reported is exact, but a listing may omit items whose true count is at
	// or below the corresponding bound. A zero bound means that listing is
	// complete for the caller. Absent when no stats tracker is attached.
	Approx *StatsApproxDTO `json:"approx,omitempty"`
	// MinedTransactions is how many queries the incremental association-rule
	// feed has ingested.
	MinedTransactions int `json:"minedTransactions"`
	// Status is the shared status document (role, applied sequence, uptime,
	// derived-state provenance) every status surface embeds.
	Status StatusDocDTO `json:"status"`
}

// StatusDocDTO is the status-document shape shared by every status surface:
// /v1/stats, /v1/replication/status and the capture proxy's /v1/proxy/status
// all report the same core fields, so operators and cqmsctl read one shape
// everywhere.
type StatusDocDTO struct {
	// Role is this process's place in the topology: "primary", "follower" or
	// "proxy".
	Role string `json:"role"`
	// AppliedSeq is the highest WAL sequence applied locally: appended on a
	// primary, replicated on a follower, 0 when durability is off.
	AppliedSeq uint64 `json:"appliedSeq"`
	// UptimeSeconds is how long this process has been serving.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// Provenance reports, per derived-state subsystem (stats counters, miner
	// feed, session detector), where its state came from after the last
	// start: "checkpoint" (restored from a WAL snapshot sidecar — local on a
	// primary, the primary's on a follower), "rebuilt" (snapshot loaded but
	// the sidecar was unusable, full rebuild) or "live" (built incrementally,
	// no snapshot restore involved).
	Provenance []DerivedStateDTO `json:"provenance,omitempty"`
}

// ReplicationStatusResponse reports a process's replication position
// (GET /v1/replication/status): the shared status document plus the
// stream-position fields. On a primary only the sequences are meaningful; on
// a follower the lag and staleness fields bound how far behind its reads are.
type ReplicationStatusResponse struct {
	StatusDocDTO
	// Primary is the upstream base URL (followers only).
	Primary string `json:"primary,omitempty"`
	// PrimarySeq is the primary's last sequence as this process knows it
	// (equal to appliedSeq on the primary itself).
	PrimarySeq uint64 `json:"primarySeq"`
	// SnapshotSeq is the sequence the newest snapshot covers (the bootstrap
	// snapshot on a follower).
	SnapshotSeq uint64 `json:"snapshotSeq"`
	// LagRecords is max(primarySeq-appliedSeq, 0).
	LagRecords uint64 `json:"lagRecords"`
	// LagSeconds is 0 when caught up, otherwise seconds since the follower
	// last was; -1 before the first catch-up. Always 0 on a primary.
	LagSeconds float64 `json:"lagSeconds"`
	// StalenessSeconds bounds how far behind the primary a read served now
	// can be: seconds since the follower last knew it had everything the
	// primary reported (-1 before the first catch-up, 0 on a primary).
	StalenessSeconds float64 `json:"stalenessSeconds"`
	// LastError is the apply loop's most recent failure ("" when healthy).
	LastError string `json:"lastError,omitempty"`
}

// StatsApproxDTO reports the error bounds of the bounded stats listings:
// per dimension, the count threshold under which an item may be missing from
// the caller's listing (counts that ARE listed are always exact). Capacity
// is the per-bucket per-dimension summary size in effect.
type StatsApproxDTO struct {
	Capacity         int `json:"capacity"`
	TableBound       int `json:"tableBound"`
	UserBound        int `json:"userBound"`
	PredicateBound   int `json:"predicateBound"`
	FingerprintBound int `json:"fingerprintBound"`
}

// DerivedStateDTO is one derived-state subsystem's restore provenance.
type DerivedStateDTO struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// LogSegmentDTO describes one on-disk WAL segment.
type LogSegmentDTO struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"firstSeq"`
	Bytes    int64  `json:"bytes"`
}

// SidecarDTO describes one derived-state checkpoint section of a snapshot.
type SidecarDTO struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Bytes   int    `json:"bytes"`
}

// LogInfoResponse reports the durable query-log state.
type LogInfoResponse struct {
	Enabled              bool            `json:"enabled"`
	Dir                  string          `json:"dir,omitempty"`
	SyncPolicy           string          `json:"syncPolicy,omitempty"`
	LastSeq              uint64          `json:"lastSeq,omitempty"`
	SnapshotSeq          uint64          `json:"snapshotSeq,omitempty"`
	AppendsSinceSnapshot int64           `json:"appendsSinceSnapshot,omitempty"`
	Segments             []LogSegmentDTO `json:"segments,omitempty"`
	// SnapshotSidecars lists the derived-state checkpoint sections carried
	// by the newest snapshot (name, format version, payload size).
	SnapshotSidecars []SidecarDTO `json:"snapshotSidecars,omitempty"`
	// AppendError is set when the durability pipeline has failed: mutations
	// after it are acknowledged but not durable.
	AppendError string `json:"appendError,omitempty"`
}

// LogSnapshotResponse reports a snapshot (backup) or compaction run.
type LogSnapshotResponse struct {
	Path            string `json:"path"`
	Seq             uint64 `json:"seq"`
	RemovedSegments int    `json:"removedSegments,omitempty"`
}

// parseVisibility maps the wire value onto the storage constant, defaulting
// to group visibility.
func parseVisibility(s string) storage.Visibility {
	switch s {
	case "private":
		return storage.VisibilityPrivate
	case "public":
		return storage.VisibilityPublic
	default:
		return storage.VisibilityGroup
	}
}

func queryDTO(rec *storage.QueryRecord) QueryDTO {
	var anns []string
	for _, a := range rec.Annotations {
		anns = append(anns, a.Text)
	}
	return QueryDTO{
		ID:          int64(rec.ID),
		Text:        rec.Text,
		User:        rec.User,
		Group:       rec.Group,
		IssuedAt:    rec.IssuedAt,
		Tables:      rec.Tables,
		ResultRows:  rec.Stats.ResultRows,
		ExecMillis:  float64(rec.Stats.ExecTime.Microseconds()) / 1000.0,
		SessionID:   rec.SessionID,
		Valid:       rec.Valid,
		Annotations: anns,
		Quality:     rec.QualityScore,
	}
}
