package server

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/storage"
)

// This file holds the /v1/ handlers. Conventions shared by all of them:
//
//   - the principal comes from the X-CQMS-* headers (HeaderPrincipal
//     middleware), never from bodies or query parameters;
//   - every failure is an error envelope ({error: {code, message, details}})
//     with a machine-readable code;
//   - list endpoints take limit + an opaque cursor and never return
//     unbounded arrays; paginating to exhaustion yields the membership of
//     the snapshot observed on the first page (no duplicates or gaps under
//     concurrent inserts);
//   - the request context is threaded into every core call, so a client
//     disconnect aborts in-flight scans.

// ---------------------------------------------------------------------------
// Traditional mode: submit, batch submit, fetch, annotate
// ---------------------------------------------------------------------------

func (s *Server) handleV1Submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.doSubmit(r.Context(), PrincipalFrom(r.Context()), req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1SubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSubmitRequest
	if err := decodeCapped(w, r, &req, maxBatchBodyBytes); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, Errorf(CodeInvalidArgument, "queries is required"))
		return
	}
	if len(req.Queries) > MaxBatchQueries {
		writeError(w, Errorf(CodeInvalidArgument,
			"batch holds %d queries, the maximum is %d", len(req.Queries), MaxBatchQueries))
		return
	}
	p := PrincipalFrom(r.Context())
	subs := make([]profiler.Submission, len(req.Queries))
	for i, q := range req.Queries {
		group := q.Group
		if group == "" && len(p.Groups) > 0 {
			group = p.Groups[0]
		}
		subs[i] = profiler.Submission{
			User:       p.User,
			Group:      group,
			Visibility: parseVisibility(q.Visibility),
			SQL:        q.SQL,
		}
	}
	outs, errs, err := s.cqms.SubmitBatch(r.Context(), subs)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := BatchSubmitResponse{Results: make([]BatchItemResult, len(subs))}
	for i := range subs {
		if errs[i] != nil {
			resp.Results[i].Error = coerceAPIError(asInvalidArgument(errs[i]))
			continue
		}
		item := submitResponse(outs[i])
		resp.Results[i].Result = &item
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1GetQuery(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, err)
		return
	}
	rec, err := s.cqms.GetQuery(r.Context(), PrincipalFrom(r.Context()), storage.QueryID(id))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryDTO(rec))
}

func (s *Server) handleV1DeleteQuery(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.cqms.DeleteQuery(storage.QueryID(id), PrincipalFrom(r.Context())); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleV1Annotate(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req AnnotateParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.doAnnotate(r.Context(), PrincipalFrom(r.Context()), id, req); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleV1Visibility(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req VisibilityParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	err = s.cqms.SetVisibility(storage.QueryID(id), PrincipalFrom(r.Context()), parseVisibility(req.Visibility))
	if err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------------
// Search & browse: paginated searches, history, sessions
// ---------------------------------------------------------------------------

// handleV1Search serves one search kind with cursor pagination over the
// ranked result. The first page pins the store's high-water mark in the
// cursor; later pages recompute the search on a view filtered to that mark,
// resuming strictly after the last (score, id) position returned.
func (s *Server) handleV1Search(kind string) http.HandlerFunc {
	cursorKind := "search:" + kind
	return func(w http.ResponseWriter, r *http.Request) {
		var req SearchParams
		if err := decode(w, r, &req); err != nil {
			writeError(w, err)
			return
		}
		cur, err := decodePageCursor(req.Cursor, cursorKind)
		if err != nil {
			writeError(w, err)
			return
		}
		if cur.High == 0 {
			cur = newMatchCursor(cursorKind, s.cqms.Store().HighWater())
		}
		// The similar search's k is a listing-wide cap, enforced across
		// pages by the cursor (Seen); the underlying k-NN must run
		// untruncated so the membership pin can never drop a pinned record
		// in favour of one inserted after the first page.
		totalCap := 0
		if kind == "similar" {
			if totalCap = req.K; totalCap < 0 {
				totalCap = 0
			}
			req.K = 0
		}
		matches, err := s.runSearch(r.Context(), PrincipalFrom(r.Context()), kind, req)
		if err != nil {
			writeError(w, err)
			return
		}
		page, next := paginateMatches(matches, cur, effectiveLimit(req.Limit), totalCap)
		writeJSON(w, http.StatusOK, SearchResponse{Matches: matchesToDTO(page), NextCursor: next})
	}
}

func (s *Server) handleV1History(w http.ResponseWriter, r *http.Request) {
	p := PrincipalFrom(r.Context())
	user := r.URL.Query().Get("of")
	if user == "" {
		user = p.User
	}
	limit, err := queryLimit(r)
	if err != nil {
		writeError(w, err)
		return
	}
	cur, err := decodePageCursor(r.URL.Query().Get("cursor"), "history")
	if err != nil {
		writeError(w, err)
		return
	}
	// Fetch one extra record to learn whether another page exists.
	records, nextCur, err := s.cqms.HistoryPage(r.Context(), p, user, core.HistoryCursor{
		At: storage.QueryID(cur.High), After: storage.QueryID(cur.After),
	}, limit+1)
	if err != nil {
		writeError(w, err)
		return
	}
	next := ""
	if len(records) > limit {
		records = records[:limit]
		next = pageCursor{Kind: "history", High: int64(nextCur.At), After: int64(records[limit-1].ID)}.encode()
	}
	matches := make([]MatchDTO, 0, len(records))
	for _, rec := range records {
		matches = append(matches, MatchDTO{Query: queryDTO(rec), Score: 1})
	}
	writeJSON(w, http.StatusOK, SearchResponse{Matches: matches, NextCursor: next})
}

func (s *Server) handleV1Sessions(w http.ResponseWriter, r *http.Request) {
	limit, err := queryLimit(r)
	if err != nil {
		writeError(w, err)
		return
	}
	cur, err := decodePageCursor(r.URL.Query().Get("cursor"), "sessions")
	if err != nil {
		writeError(w, err)
		return
	}
	summaries, err := s.cqms.SessionsPage(r.Context(), PrincipalFrom(r.Context()), cur.After, limit+1)
	if err != nil {
		writeError(w, err)
		return
	}
	next := ""
	if len(summaries) > limit {
		summaries = summaries[:limit]
		next = pageCursor{Kind: "sessions", After: summaries[limit-1].ID}.encode()
	}
	writeJSON(w, http.StatusOK, SessionsResponse{Sessions: s.sessionDTOs(summaries), NextCursor: next})
}

func (s *Server) handleV1SessionGraph(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeError(w, err)
		return
	}
	graph, err := s.cqms.SessionGraph(r.Context(), PrincipalFrom(r.Context()), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, GraphResponse{Graph: graph})
}

// queryLimit parses the limit query parameter, applying the default and max.
func queryLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return defaultPageLimit, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, Errorf(CodeInvalidArgument, "invalid limit %q", raw)
	}
	return effectiveLimit(n), nil
}

// ---------------------------------------------------------------------------
// Assisted mode
// ---------------------------------------------------------------------------

func (s *Server) handleV1Complete(w http.ResponseWriter, r *http.Request) {
	var req CompleteParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveComplete(w, r, PrincipalFrom(r.Context()), req)
}

func (s *Server) serveComplete(w http.ResponseWriter, r *http.Request, p storage.Principal, req CompleteParams) {
	completions, err := s.cqms.Complete(r.Context(), p, req.Partial, boundedK(req.K))
	if err != nil {
		writeError(w, err)
		return
	}
	resp := AssistResponse{}
	for _, c := range completions {
		resp.Completions = append(resp.Completions, CompletionDTO{
			Kind: c.Kind.String(), Text: c.Text, Score: c.Score, Reason: c.Reason,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1Corrections(w http.ResponseWriter, r *http.Request) {
	var req CompleteParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveCorrections(w, r, PrincipalFrom(r.Context()), req)
}

func (s *Server) serveCorrections(w http.ResponseWriter, r *http.Request, p storage.Principal, req CompleteParams) {
	corrections, err := s.cqms.Corrections(r.Context(), p, req.Partial)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := AssistResponse{}
	for _, c := range corrections {
		resp.Corrections = append(resp.Corrections, CorrectionDTO{
			Kind: c.Kind, Original: c.Original, Suggestion: c.Suggestion,
			Reason: c.Reason, Confidence: c.Confidence,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1SimilarQueries(w http.ResponseWriter, r *http.Request) {
	var req CompleteParams
	if err := decode(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	s.serveSimilarQueries(w, r, PrincipalFrom(r.Context()), req)
}

func (s *Server) serveSimilarQueries(w http.ResponseWriter, r *http.Request, p storage.Principal, req CompleteParams) {
	similar, err := s.cqms.SimilarQueries(r.Context(), p, req.Partial, boundedK(req.K))
	if err != nil {
		writeError(w, asInvalidArgument(err))
		return
	}
	resp := AssistResponse{}
	for _, sim := range similar {
		resp.Similar = append(resp.Similar, SimilarQueryDTO{
			Query: queryDTO(sim.Record), Score: sim.Score, Diff: sim.Diff, Annotations: sim.Annotations,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1Tutorial(w http.ResponseWriter, r *http.Request) {
	perTable := 3
	if raw := r.URL.Query().Get("per_table"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeError(w, Errorf(CodeInvalidArgument, "invalid per_table %q", raw))
			return
		}
		perTable = boundedK(n)
	}
	s.serveTutorial(w, r, PrincipalFrom(r.Context()), perTable)
}

func (s *Server) serveTutorial(w http.ResponseWriter, r *http.Request, p storage.Principal, perTable int) {
	steps, err := s.cqms.Tutorial(r.Context(), p, perTable)
	if err != nil {
		writeError(w, err)
		return
	}
	out := make([]TutorialStepDTO, 0, len(steps))
	for _, step := range steps {
		dto := TutorialStepDTO{Table: step.Table, Columns: step.Columns}
		for _, q := range step.PopularQueries {
			dto.Queries = append(dto.Queries, q.Canonical)
		}
		out = append(out, dto)
	}
	writeJSON(w, http.StatusOK, out)
}

// boundedK clamps suggestion counts so assist responses stay bounded like
// every other list payload.
func boundedK(k int) int {
	if k > maxPageLimit {
		return maxPageLimit
	}
	return k
}

// ---------------------------------------------------------------------------
// Administrative mode
// ---------------------------------------------------------------------------

func (s *Server) handleV1Mine(w http.ResponseWriter, r *http.Request) {
	res := s.cqms.RunMiner()
	sessions, err := s.cqms.Sessions(r.Context(), storage.Principal{Admin: true})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MineResponse{
		Transactions: res.TransactionCount,
		Rules:        len(res.Rules),
		Clusters:     len(res.Clusters),
		Sessions:     len(sessions),
	})
}

func (s *Server) handleV1Maintain(w http.ResponseWriter, r *http.Request) {
	report, err := s.cqms.RunMaintenance()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := MaintainResponse{Checked: report.Checked, StatsRefreshed: len(report.StatsRefreshed)}
	for _, inv := range report.Invalidated {
		resp.Invalidated = append(resp.Invalidated, fmt.Sprintf("q%d: %s", inv.ID, inv.Reason))
	}
	for _, rep := range report.Repaired {
		resp.Repaired = append(resp.Repaired, fmt.Sprintf("q%d: %s", rep.ID, rep.Change))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1LogInfo(w http.ResponseWriter, r *http.Request) {
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeJSON(w, http.StatusOK, LogInfoResponse{Enabled: false})
		return
	}
	info, err := mgr.Info()
	if err != nil {
		writeError(w, err)
		return
	}
	resp := LogInfoResponse{
		Enabled:              true,
		Dir:                  info.Dir,
		SyncPolicy:           info.SyncPolicy,
		LastSeq:              info.LastSeq,
		SnapshotSeq:          info.SnapshotSeq,
		AppendsSinceSnapshot: info.AppendsSinceSnapshot,
		AppendError:          info.AppendError,
	}
	for _, seg := range info.Segments {
		resp.Segments = append(resp.Segments, LogSegmentDTO{
			Name: seg.Name, FirstSeq: seg.FirstSeq, Bytes: seg.Bytes,
		})
	}
	for _, sc := range info.SnapshotSidecars {
		resp.SnapshotSidecars = append(resp.SnapshotSidecars, SidecarDTO{
			Name: sc.Name, Version: sc.Version, Bytes: sc.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1LogSnapshot(w http.ResponseWriter, r *http.Request) {
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeError(w, Errorf(CodeUnavailable, "durability is disabled (start the server with -data-dir)"))
		return
	}
	path, seq, err := mgr.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LogSnapshotResponse{Path: path, Seq: seq})
}

func (s *Server) handleV1LogCompact(w http.ResponseWriter, r *http.Request) {
	mgr := s.cqms.Durability()
	if mgr == nil {
		writeError(w, Errorf(CodeUnavailable, "durability is disabled (start the server with -data-dir)"))
		return
	}
	path, seq, removed, err := mgr.Compact()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, LogSnapshotResponse{Path: path, Seq: seq, RemovedSegments: removed})
}

// maxStatsItems caps each aggregate listing in the stats response, keeping
// the payload bounded like every other list endpoint.
const maxStatsItems = 20

// statusDoc builds the status document every status surface shares: role,
// applied WAL sequence, uptime and derived-state provenance (sorted by name
// for a stable wire order).
func (s *Server) statusDoc() StatusDocDTO {
	doc := StatusDocDTO{
		Role:          s.cqms.Role(),
		AppliedSeq:    s.cqms.ReplicationStatus().AppliedSeq,
		UptimeSeconds: s.cqms.Uptime().Seconds(),
	}
	prov := s.cqms.DerivedStateProvenance()
	names := make([]string, 0, len(prov))
	for name := range prov {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc.Provenance = append(doc.Provenance, DerivedStateDTO{Name: name, Source: prov[name]})
	}
	return doc
}

func (s *Server) handleV1Stats(w http.ResponseWriter, r *http.Request) {
	p := PrincipalFrom(r.Context())
	store := s.cqms.Store()
	var tables []string
	for _, tc := range store.TableCounts() {
		tables = append(tables, tc.Table)
	}
	resp := StatsResponse{
		Queries:  store.Count(),
		Users:    store.Users(),
		Tables:   tables,
		Sessions: s.cqms.SessionCount(),
	}
	resp.Status = s.statusDoc()
	if t := s.cqms.StatsTracker(); t != nil {
		// Every listing below is served from the tracker's bounded top-K
		// summaries: O(summary capacity), flat in log and user-population
		// size. resp.Approx carries the listings' error bounds.
		resp.VisibleQueries = t.QueryCount(p)
		for i, tc := range t.TableCounts(p) {
			if i >= maxStatsItems {
				break
			}
			resp.TableCounts = append(resp.TableCounts, ItemCountDTO{Item: tc.Table, Count: tc.Count})
		}
		for i, ua := range t.UserActivity(p) {
			if i >= maxStatsItems {
				break
			}
			resp.UserActivity = append(resp.UserActivity, ItemCountDTO{Item: ua.User, Count: ua.Queries})
		}
		for _, tp := range t.TopPredicates(p, maxStatsItems) {
			resp.TopPredicates = append(resp.TopPredicates, ItemCountDTO{Item: tp.Item, Count: tp.Count})
		}
		bounds := t.Bounds(p)
		resp.Approx = &StatsApproxDTO{
			Capacity:         bounds.Capacity,
			TableBound:       bounds.Tables,
			UserBound:        bounds.Users,
			PredicateBound:   bounds.Predicates,
			FingerprintBound: bounds.Fingerprints,
		}
	}
	if f := s.cqms.MinerFeed(); f != nil {
		resp.MinedTransactions = f.NumTransactions()
	}
	writeJSON(w, http.StatusOK, resp)
}
