package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/client"
	"repro/internal/server"
)

// doRaw sends a raw request and decodes the JSON body into out (when out is
// non-nil), returning the response for header/status assertions.
func doRaw(t *testing.T, method, url string, headers map[string]string, body string, out interface{}) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding body: %v", method, url, err)
		}
	}
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) server.ErrorResponse {
	t.Helper()
	var envelope server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("decoding error envelope: %v", err)
	}
	return envelope
}

func TestV1ErrorEnvelopeCodes(t *testing.T) {
	ts, alice, _, _ := newTestServer(t)
	aliceHeaders := map[string]string{server.HeaderUser: "alice", server.HeaderGroups: "limnology"}

	// Unknown route: 404 with a JSON envelope, not net/http's HTML.
	resp := doRaw(t, http.MethodGet, ts.URL+"/v1/nope", nil, "", nil)
	if resp.StatusCode != 404 || !strings.Contains(resp.Header.Get("Content-Type"), "json") {
		t.Fatalf("unknown route: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != server.CodeNotFound {
		t.Fatalf("unknown route code = %q", env.Error.Code)
	}

	// Method mismatch: 405 envelope with the Allow header set.
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/queries", nil, "", nil)
	if resp.StatusCode != 405 {
		t.Fatalf("GET /v1/queries status = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("Allow = %q", allow)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != server.CodeMethodNotAllowed {
		t.Fatalf("405 code = %q", env.Error.Code)
	}

	// Missing query: not_found.
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/queries/99999", aliceHeaders, "", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("missing query status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != server.CodeNotFound {
		t.Fatalf("missing query code = %q", env.Error.Code)
	}

	// Unparsable SQL: invalid_argument.
	resp = doRaw(t, http.MethodPost, ts.URL+"/v1/queries", aliceHeaders, `{"sql":"SELEKT"}`, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("bad SQL status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("bad SQL code = %q", env.Error.Code)
	}

	// Foreign visibility change: permission_denied.
	sub, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology"))
	if err != nil {
		t.Fatal(err)
	}
	resp = doRaw(t, http.MethodPut, fmt.Sprintf("%s/v1/queries/%d/visibility", ts.URL, sub.QueryID),
		map[string]string{server.HeaderUser: "mallory"}, `{"visibility":"public"}`, nil)
	if resp.StatusCode != 403 {
		t.Fatalf("foreign visibility status = %d", resp.StatusCode)
	}
	if env := decodeEnvelope(t, resp); env.Error.Code != server.CodePermissionDenied {
		t.Fatalf("foreign visibility code = %q", env.Error.Code)
	}

	// Malformed cursor: invalid_argument.
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/history?cursor=%21%21garbage", aliceHeaders, "", nil)
	if env := decodeEnvelope(t, resp); resp.StatusCode != 400 || env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("garbage cursor: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// A cursor minted by another endpoint family is rejected.
	if _, err := alice.Submit(ctx, "SELECT temp FROM WaterTemp", client.Group("limnology")); err != nil {
		t.Fatal(err)
	}
	var page server.SearchResponse
	resp = doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword", aliceHeaders, `{"keywords":["watertemp"],"limit":1}`, &page)
	if resp.StatusCode != 200 {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	if page.NextCursor == "" {
		t.Fatal("two matches with limit 1 must mint a next cursor")
	}
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/history?cursor="+page.NextCursor, aliceHeaders, "", nil)
	if env := decodeEnvelope(t, resp); resp.StatusCode != 400 || env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("cross-endpoint cursor: status %d code %q", resp.StatusCode, env.Error.Code)
	}
}

func TestV1DecodeHardening(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	headers := map[string]string{server.HeaderUser: "alice"}

	// Unknown fields fail loudly instead of being silently dropped.
	resp := doRaw(t, http.MethodPost, ts.URL+"/v1/queries", headers,
		`{"sql":"SELECT lake FROM WaterTemp","nonsense":true}`, nil)
	if env := decodeEnvelope(t, resp); resp.StatusCode != 400 || env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("unknown field: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// Trailing garbage after the JSON value is rejected.
	resp = doRaw(t, http.MethodPost, ts.URL+"/v1/queries", headers,
		`{"sql":"SELECT lake FROM WaterTemp"}{"again":1}`, nil)
	if env := decodeEnvelope(t, resp); resp.StatusCode != 400 || env.Error.Code != server.CodeInvalidArgument {
		t.Fatalf("trailing garbage: status %d code %q", resp.StatusCode, env.Error.Code)
	}

	// Oversized bodies map to payload_too_large.
	huge := `{"sql":"` + strings.Repeat("x", 2<<20) + `"}`
	resp = doRaw(t, http.MethodPost, ts.URL+"/v1/queries", headers, huge, nil)
	if env := decodeEnvelope(t, resp); resp.StatusCode != http.StatusRequestEntityTooLarge ||
		env.Error.Code != server.CodePayloadTooLarge {
		t.Fatalf("oversized body: status %d code %q", resp.StatusCode, env.Error.Code)
	}
}

func TestV1HeaderPrincipalParsing(t *testing.T) {
	ts, _, _, _ := newTestServer(t)

	// Submit a group-visible query as alice.
	resp := doRaw(t, http.MethodPost, ts.URL+"/v1/queries",
		map[string]string{server.HeaderUser: "alice", server.HeaderGroups: " limnology , fieldwork "},
		`{"sql":"SELECT lake FROM WaterTemp","visibility":"group"}`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// A member of the same group (messy header spacing) sees it.
	var found server.SearchResponse
	resp = doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword",
		map[string]string{server.HeaderUser: "bob", server.HeaderGroups: "limnology"},
		`{"keywords":["watertemp"]}`, &found)
	if resp.StatusCode != 200 || len(found.Matches) != 1 {
		t.Fatalf("group member search: status %d matches %d", resp.StatusCode, len(found.Matches))
	}

	// A stranger does not.
	var hidden server.SearchResponse
	doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword",
		map[string]string{server.HeaderUser: "mallory"},
		`{"keywords":["watertemp"]}`, &hidden)
	if len(hidden.Matches) != 0 {
		t.Fatalf("stranger sees %d matches", len(hidden.Matches))
	}

	// X-CQMS-Admin: 1 grants the admin bypass.
	var asAdmin server.SearchResponse
	doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword",
		map[string]string{server.HeaderUser: "ops", server.HeaderAdmin: "1"},
		`{"keywords":["watertemp"]}`, &asAdmin)
	if len(asAdmin.Matches) != 1 {
		t.Fatalf("admin header ignored: %d matches", len(asAdmin.Matches))
	}
}

// TestV1SearchPaginationStable pages a keyword search one item at a time
// while new matching queries are submitted between pages: the listing must
// return exactly the first page's snapshot membership, no duplicates, no
// gaps.
func TestV1SearchPaginationStable(t *testing.T) {
	ts, alice, _, _ := newTestServer(t)
	const initial = 9
	for i := 0; i < initial; i++ {
		if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	headers := map[string]string{server.HeaderUser: "alice", server.HeaderGroups: "limnology"}

	seen := map[int64]bool{}
	cursor := ""
	pages := 0
	for {
		body := `{"keywords":["watertemp"],"limit":2`
		if cursor != "" {
			body += `,"cursor":"` + cursor + `"`
		}
		body += `}`
		var page server.SearchResponse
		resp := doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword", headers, body, &page)
		if resp.StatusCode != 200 {
			t.Fatalf("page status = %d", resp.StatusCode)
		}
		if len(page.Matches) > 2 {
			t.Fatalf("page holds %d matches, limit was 2", len(page.Matches))
		}
		for _, m := range page.Matches {
			if seen[m.Query.ID] {
				t.Fatalf("duplicate query %d across pages", m.Query.ID)
			}
			seen[m.Query.ID] = true
		}
		// New queries between pages must not leak into this listing.
		if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		if pages > 50 {
			t.Fatal("pagination never terminated")
		}
		cursor = page.NextCursor
	}
	if len(seen) != initial {
		t.Fatalf("paginated %d distinct matches, want %d", len(seen), initial)
	}
}

// TestLegacyAPIRetired is the contract test for the retired unversioned
// surface: every /api/* request — any method, any depth, with or without a
// body — gets a structured not_found envelope whose details carry an upgrade
// hint pointing at /v1, and never reaches a handler.
func TestLegacyAPIRetired(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	cases := []struct {
		method, path, body string
	}{
		{http.MethodPost, "/api/query", `{"principal":{"user":"alice"},"sql":"SELECT lake FROM WaterTemp"}`},
		{http.MethodPost, "/api/search/keyword", `{"principal":{"user":"alice"},"keywords":["salinity"]}`},
		{http.MethodGet, "/api/history?user=alice", ""},
		{http.MethodGet, "/api/sessions?user=alice", ""},
		{http.MethodPost, "/api/complete", `{"principal":{"user":"alice"},"partial":"SELECT"}`},
		{http.MethodPost, "/api/visibility", `{"principal":{"user":"alice"},"queryId":1,"visibility":"public"}`},
		{http.MethodDelete, "/api/delete", ""},
		{http.MethodGet, "/api/", ""},
	}
	admin := client.New(ts.URL, client.WithAdmin())
	before, err := admin.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		resp := doRaw(t, tc.method, ts.URL+tc.path, nil, tc.body, nil)
		env := decodeEnvelope(t, resp)
		if resp.StatusCode != 404 {
			t.Errorf("%s %s status = %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
		if env.Error.Code != server.CodeNotFound {
			t.Errorf("%s %s code = %q, want %q", tc.method, tc.path, env.Error.Code, server.CodeNotFound)
		}
		if hint := env.Error.Details["upgrade"]; !strings.Contains(hint, "/v1") {
			t.Errorf("%s %s upgrade hint = %q, want a pointer to /v1", tc.method, tc.path, hint)
		}
	}
	// The queries the retired routes would have run never executed.
	after, err := admin.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Queries != before.Queries {
		t.Errorf("query count changed %d -> %d after retired-route requests", before.Queries, after.Queries)
	}
}

func TestV1RequestIDEcho(t *testing.T) {
	ts, _, _, _ := newTestServer(t)
	resp := doRaw(t, http.MethodGet, ts.URL+"/v1/stats",
		map[string]string{server.HeaderRequestID: "my-trace-42"}, "", nil)
	if got := resp.Header.Get(server.HeaderRequestID); got != "my-trace-42" {
		t.Fatalf("request id echo = %q", got)
	}
	resp = doRaw(t, http.MethodGet, ts.URL+"/v1/stats", nil, "", nil)
	if got := resp.Header.Get(server.HeaderRequestID); got == "" {
		t.Fatal("no generated request id")
	}
}

func TestV1SessionsPagination(t *testing.T) {
	ts, alice, _, admin := newTestServer(t)
	// Three sessions: bursts separated by > the session gap.
	base := []string{
		"SELECT lake FROM WaterTemp",
		"SELECT salinity FROM WaterSalinity",
		"SELECT city FROM CityLocations",
	}
	for _, q := range base {
		if _, err := alice.Submit(ctx, q, client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := admin.Mine(ctx); err != nil {
		t.Fatal(err)
	}
	// Page sessions one at a time through the raw endpoint.
	headers := map[string]string{server.HeaderUser: "root", server.HeaderAdmin: "true"}
	var (
		cursor string
		total  int
		lastID int64 = -1
	)
	for {
		url := ts.URL + "/v1/sessions?limit=1"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page server.SessionsResponse
		resp := doRaw(t, http.MethodGet, url, headers, "", &page)
		if resp.StatusCode != 200 {
			t.Fatalf("sessions page status = %d", resp.StatusCode)
		}
		for _, s := range page.Sessions {
			if s.ID <= lastID {
				t.Fatalf("session order regressed: %d after %d", s.ID, lastID)
			}
			lastID = s.ID
			total++
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if total == 0 {
		t.Fatal("no sessions paginated")
	}
}

func TestV1NoUnboundedArrays(t *testing.T) {
	ts, alice, _, _ := newTestServer(t)
	for i := 0; i < 60; i++ {
		if _, err := alice.Submit(ctx, "SELECT lake FROM WaterTemp", client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	headers := map[string]string{server.HeaderUser: "alice", server.HeaderGroups: "limnology"}
	// Default limit bounds the page even when the client asks for nothing.
	var page server.SearchResponse
	doRaw(t, http.MethodPost, ts.URL+"/v1/search/keyword", headers, `{"keywords":["watertemp"]}`, &page)
	if len(page.Matches) > 50 {
		t.Fatalf("default page holds %d matches, want <= 50", len(page.Matches))
	}
	if page.NextCursor == "" {
		t.Fatal("60 matches with default limit must produce a next cursor")
	}
	var hist server.SearchResponse
	doRaw(t, http.MethodGet, ts.URL+"/v1/history", headers, "", &hist)
	if len(hist.Matches) > 50 || hist.NextCursor == "" {
		t.Fatalf("history page: %d matches, cursor %q", len(hist.Matches), hist.NextCursor)
	}
}

// TestV1SimilarPaginationCapsTotal: the similar search's k caps the listing
// across pages (carried in the cursor), while limit sizes each page.
func TestV1SimilarPaginationCapsTotal(t *testing.T) {
	ts, alice, _, _ := newTestServer(t)
	for i := 0; i < 6; i++ {
		if _, err := alice.Submit(ctx, "SELECT lake, temp FROM WaterTemp WHERE temp < 18", client.Group("limnology")); err != nil {
			t.Fatal(err)
		}
	}
	headers := map[string]string{server.HeaderUser: "alice", server.HeaderGroups: "limnology"}
	body := `{"sql":"SELECT lake, temp FROM WaterTemp WHERE temp < 20","k":4,"limit":2}`
	var total int
	cursor := ""
	for pages := 0; ; pages++ {
		b := body
		if cursor != "" {
			b = strings.TrimSuffix(body, "}") + `,"cursor":"` + cursor + `"}`
		}
		var page server.SearchResponse
		resp := doRaw(t, http.MethodPost, ts.URL+"/v1/search/similar", headers, b, &page)
		if resp.StatusCode != 200 {
			t.Fatalf("similar page status = %d", resp.StatusCode)
		}
		total += len(page.Matches)
		if page.NextCursor == "" {
			break
		}
		if pages > 10 {
			t.Fatal("similar pagination never terminated")
		}
		cursor = page.NextCursor
	}
	if total != 4 {
		t.Fatalf("similar listing returned %d matches across pages, want k=4", total)
	}
}

// TestV1StatsCounters covers the principal-aware incremental counters on
// GET /v1/stats: admins see the whole log, other callers see public queries
// merged with their own.
func TestV1StatsCounters(t *testing.T) {
	_, alice, carol, admin := newTestServer(t)
	if _, err := alice.Submit(ctx, "SELECT temp FROM WaterTemp WHERE temp < 18",
		client.Visibility("public")); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.Submit(ctx, "SELECT city FROM CityLocations",
		client.Visibility("private")); err != nil {
		t.Fatal(err)
	}

	adminStats, err := admin.Stats(ctx)
	if err != nil {
		t.Fatalf("admin Stats: %v", err)
	}
	if adminStats.VisibleQueries != 2 || adminStats.MinedTransactions != 2 {
		t.Errorf("admin visible=%d mined=%d, want 2/2", adminStats.VisibleQueries, adminStats.MinedTransactions)
	}
	if len(adminStats.TableCounts) != 2 || len(adminStats.UserActivity) != 2 {
		t.Errorf("admin tableCounts=%+v userActivity=%+v", adminStats.TableCounts, adminStats.UserActivity)
	}
	if len(adminStats.TopPredicates) == 0 || adminStats.TopPredicates[0].Item != "WaterTemp.temp < 18" {
		t.Errorf("admin topPredicates = %+v", adminStats.TopPredicates)
	}

	// Alice sees only the public query (her own).
	aliceStats, err := alice.Stats(ctx)
	if err != nil {
		t.Fatalf("alice Stats: %v", err)
	}
	if aliceStats.VisibleQueries != 1 || len(aliceStats.TableCounts) != 1 {
		t.Errorf("alice visible=%d tableCounts=%+v, want public only", aliceStats.VisibleQueries, aliceStats.TableCounts)
	}
	if aliceStats.Queries != 2 {
		t.Errorf("alice global queries = %d, want 2 (legacy shape is log-wide)", aliceStats.Queries)
	}

	// Carol sees the public query plus her own private one.
	carolStats, err := carol.Stats(ctx)
	if err != nil {
		t.Fatalf("carol Stats: %v", err)
	}
	if carolStats.VisibleQueries != 2 || len(carolStats.TableCounts) != 2 {
		t.Errorf("carol visible=%d tableCounts=%+v, want public+own", carolStats.VisibleQueries, carolStats.TableCounts)
	}
}
