package session

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Live is the bus-driven incremental session detector: it maintains session
// windows from the storage mutation event bus, so session and graph reads
// are served from always-current state instead of re-segmenting the full
// query log on every mining pass. It applies exactly the batch segmenter's
// rules (shared segmentUser/boundary helpers): appends in chronological
// order extend or open a window in O(1), while out-of-order inserts,
// deletions and text repairs fall back to re-segmenting just the affected
// user's stream. It is safe for concurrent use: mutations arrive serialised
// under the store's commit lock, reads come from request-serving goroutines.
type Live struct {
	det   *Detector
	store *storage.Store

	mu     sync.RWMutex
	users  map[string][]*Session        // chronological windows per user
	byID   map[int64]*Session           // session lookup for graph reads
	loc    map[storage.QueryID]*Session // record → owning session
	nextID int64

	// resegments counts per-user re-segmentation fallbacks (out-of-order
	// inserts, deletions, text repairs) — the detector's slow path. Nil when
	// uninstrumented; guarded by mu like the state it describes.
	resegments *telemetry.Counter
}

// AttachLive builds a live detector over the store's current contents and
// subscribes it to the mutation event bus. Registration and the initial
// segmentation run under the store's commit lock, so no mutation can slip
// between them; WAL replay maintains the windows incrementally, and the
// Checkpoint/Restore pair lets WAL snapshots carry the detected sessions so
// recovery skips re-segmentation.
func AttachLive(store *storage.Store, cfg Config) *Live {
	l := &Live{
		det:   NewDetector(cfg),
		store: store,
		users: make(map[string][]*Session),
		byID:  make(map[int64]*Session),
		loc:   make(map[storage.QueryID]*Session),
	}
	rebuild := func() { l.rebuild() }
	store.Subscribe("sessions", l.onMutation, storage.SubscribeOptions{
		Init: rebuild, Reset: rebuild,
		Checkpoint: l.checkpoint, Restore: l.restore,
	})
	return l
}

// rebuild re-segments the whole store from scratch (initial seeding and the
// fallback after a RestoreState without a usable checkpoint).
func (l *Live) rebuild() {
	byUser := make(map[string][]*storage.QueryRecord)
	var maxPersisted int64
	l.store.Snapshot().Scan(storage.Principal{Admin: true}, func(rec *storage.QueryRecord) bool {
		byUser[rec.User] = append(byUser[rec.User], rec)
		if rec.SessionID > maxPersisted {
			maxPersisted = rec.SessionID
		}
		return true
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	l.users = make(map[string][]*Session, len(byUser))
	l.byID = make(map[int64]*Session)
	l.loc = make(map[storage.QueryID]*Session)
	// Seed the ID counter past every session ID persisted on the records
	// (written into Queries.sessionId by an earlier mining pass): a rebuild
	// reissues IDs, and reusing a persisted one would make /v1/sessions and
	// a `WHERE Queries.sessionId = N` meta-query name different partitions
	// with the same N. Disjoint IDs keep the stale feature relation merely
	// stale — as it always is between mining passes — never contradictory.
	l.nextID = maxPersisted
	for user, recs := range byUser {
		sortChrono(recs)
		for _, s := range l.det.segmentUser(user, recs) {
			sess := s
			l.registerLocked(&sess)
		}
	}
}

// registerLocked assigns the next session ID and indexes the session.
// Callers must hold l.mu.
func (l *Live) registerLocked(sess *Session) {
	l.nextID++
	sess.ID = l.nextID
	l.users[sess.User] = append(l.users[sess.User], sess)
	l.byID[sess.ID] = sess
	for _, q := range sess.Queries {
		l.loc[q.ID] = sess
	}
}

// dropUserLocked forgets every session of one user and returns the records
// they held. Callers must hold l.mu.
func (l *Live) dropUserLocked(user string) []*storage.QueryRecord {
	var recs []*storage.QueryRecord
	for _, sess := range l.users[user] {
		delete(l.byID, sess.ID)
		for _, q := range sess.Queries {
			delete(l.loc, q.ID)
			recs = append(recs, q)
		}
	}
	delete(l.users, user)
	return recs
}

// resegmentLocked re-runs segmentation over one user's records (any order;
// re-sorted here). The user's sessions get fresh IDs: a structural edit may
// have merged or split windows, so the old identities no longer apply.
// Callers must hold l.mu.
func (l *Live) resegmentLocked(user string, recs []*storage.QueryRecord) {
	l.resegments.Inc()
	sortChrono(recs)
	for _, s := range l.det.segmentUser(user, recs) {
		sess := s
		l.registerLocked(&sess)
	}
}

// onMutation maintains the session windows for one committed mutation. It
// runs under the store's commit lock.
func (l *Live) onMutation(m *storage.Mutation) {
	switch m.Op {
	case storage.OpPut:
		prev, next := m.Prev(), m.Next()
		if next == nil {
			return
		}
		l.mu.Lock()
		if prev != nil {
			// Replay over an existing ID replaced the record; re-segment the
			// affected user stream(s) with the new version in place.
			if prev.User == next.User {
				l.resegmentLocked(next.User, append(l.removeLocked(prev), next))
			} else {
				l.resegmentLocked(prev.User, l.removeLocked(prev))
				l.resegmentLocked(next.User, append(l.dropUserLocked(next.User), next))
			}
			l.mu.Unlock()
			return
		}
		l.appendLocked(next)
		l.mu.Unlock()
	case storage.OpDelete:
		prev := m.Prev()
		if prev == nil {
			return
		}
		l.mu.Lock()
		if _, tracked := l.loc[prev.ID]; tracked {
			l.resegmentLocked(prev.User, l.removeLocked(prev))
		}
		l.mu.Unlock()
	case storage.OpReplaceText:
		prev, next := m.Prev(), m.Next()
		if prev == nil || next == nil {
			return
		}
		// The repaired text changes the feature set, so similarity-based
		// boundaries and edge diffs may move anywhere in the user's stream.
		l.mu.Lock()
		if _, tracked := l.loc[prev.ID]; tracked {
			recs := append(l.removeLocked(prev), next)
			l.resegmentLocked(next.User, recs)
		}
		l.mu.Unlock()
	default:
		// Field updates (visibility, annotations, session assignment from a
		// mining pass, maintenance flags, runtime stats, ...) never move
		// session boundaries; swap in the new record version so visibility
		// filtering on reads stays current.
		next := m.Next()
		if next == nil {
			return
		}
		l.mu.Lock()
		// A replayed session assignment may carry an ID issued by a previous
		// process life; keep the counter beyond it so a later re-segmentation
		// cannot reissue an ID the feature relation already names.
		if m.Op == storage.OpAssignSession && m.SessionID > l.nextID {
			l.nextID = m.SessionID
		}
		if sess := l.loc[next.ID]; sess != nil {
			for i, q := range sess.Queries {
				if q.ID == next.ID {
					sess.Queries[i] = next
					break
				}
			}
		}
		l.mu.Unlock()
	}
}

// removeLocked drops one record's user stream from the indexes and returns
// that stream without the record. Callers must hold l.mu.
func (l *Live) removeLocked(rec *storage.QueryRecord) []*storage.QueryRecord {
	recs := l.dropUserLocked(rec.User)
	kept := recs[:0]
	for _, q := range recs {
		if q.ID != rec.ID {
			kept = append(kept, q)
		}
	}
	return kept
}

// appendLocked ingests a fresh record. When it lands at the chronological
// tail of its user's stream — the overwhelmingly common case for live
// submissions and in-order WAL replay — the last window is extended or a new
// one opened in O(1); anything out of order re-segments the user. Callers
// must hold l.mu.
func (l *Live) appendLocked(rec *storage.QueryRecord) {
	sessions := l.users[rec.User]
	if len(sessions) == 0 {
		l.registerLocked(&Session{
			User: rec.User, Start: rec.IssuedAt, End: rec.IssuedAt,
			Queries: []*storage.QueryRecord{rec},
		})
		return
	}
	last := sessions[len(sessions)-1]
	tail := last.Queries[len(last.Queries)-1]
	if chronoLess(rec, tail) {
		recs := append(l.dropUserLocked(rec.User), rec)
		l.resegmentLocked(rec.User, recs)
		return
	}
	if l.det.boundary(tail, rec) {
		l.registerLocked(&Session{
			User: rec.User, Start: rec.IssuedAt, End: rec.IssuedAt,
			Queries: []*storage.QueryRecord{rec},
		})
		return
	}
	last.Edges = append(last.Edges, edgeBetween(tail, rec))
	last.Queries = append(last.Queries, rec)
	last.End = rec.IssuedAt
	l.loc[rec.ID] = last
}

// ---------------------------------------------------------------------------
// Read API
// ---------------------------------------------------------------------------

// copySessionLocked returns a caller-owned shallow copy of a session (fresh
// slices over the shared immutable records). Callers must hold l.mu.
func copySessionLocked(sess *Session) Session {
	out := *sess
	out.Queries = append([]*storage.QueryRecord(nil), sess.Queries...)
	out.Edges = append([]storage.SessionEdge(nil), sess.Edges...)
	return out
}

// visibleLocked reports whether every query of the session is visible to the
// principal. Callers must hold l.mu.
func visibleLocked(sess *Session, p storage.Principal) bool {
	for _, q := range sess.Queries {
		if !q.VisibleTo(p) {
			return false
		}
	}
	return true
}

// Count returns how many sessions the detector currently tracks.
func (l *Live) Count() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.byID)
}

// Summaries returns at most limit summaries (limit <= 0 means unbounded) of
// the sessions fully visible to the principal with ID strictly greater than
// after, in ascending ID order.
func (l *Live) Summaries(p storage.Principal, after int64, limit int) []Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids := make([]int64, 0, len(l.byID))
	for id := range l.byID {
		if id > after {
			ids = append(ids, id)
		}
	}
	sortInt64s(ids)
	var out []Summary
	for _, id := range ids {
		sess := l.byID[id]
		if !visibleLocked(sess, p) {
			continue
		}
		out = append(out, Summarize(sess))
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Get returns a caller-owned copy of one session, whether it exists, and
// whether it is fully visible to the principal.
func (l *Live) Get(p storage.Principal, id int64) (sess Session, ok, visible bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := l.byID[id]
	if s == nil {
		return Session{}, false, false
	}
	if !visibleLocked(s, p) {
		return Session{}, true, false
	}
	return copySessionLocked(s), true, true
}

// Export returns caller-owned copies of every tracked session, in ascending
// ID order. Callers use it to persist session assignments back into the
// store — which must happen outside this call, since store mutations re-enter
// the detector through the bus.
func (l *Live) Export() []Session {
	l.mu.RLock()
	defer l.mu.RUnlock()
	ids := make([]int64, 0, len(l.byID))
	for id := range l.byID {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	out := make([]Session, 0, len(ids))
	for _, id := range ids {
		out = append(out, copySessionLocked(l.byID[id]))
	}
	return out
}

func sortInt64s(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// ---------------------------------------------------------------------------
// Checkpoint / Restore
// ---------------------------------------------------------------------------

// LiveCheckpointVersion is the serialization version of the live detector's
// WAL snapshot sidecar.
const LiveCheckpointVersion = 1

// liveSessionState references a session's records by ID — the records
// themselves live in the snapshot's primary store state — and carries the
// edges verbatim so restore does not recompute structural diffs.
type liveSessionState struct {
	ID      int64                 `json:"id"`
	User    string                `json:"user"`
	Queries []storage.QueryID     `json:"queries"`
	Edges   []storage.SessionEdge `json:"edges,omitempty"`
}

type liveCheckpoint struct {
	NextID   int64              `json:"nextId"`
	Sessions []liveSessionState `json:"sessions,omitempty"`
}

func (l *Live) checkpoint() (int, []byte, error) {
	l.mu.RLock()
	cp := liveCheckpoint{NextID: l.nextID}
	ids := make([]int64, 0, len(l.byID))
	for id := range l.byID {
		ids = append(ids, id)
	}
	sortInt64s(ids)
	for _, id := range ids {
		sess := l.byID[id]
		st := liveSessionState{ID: sess.ID, User: sess.User, Edges: sess.Edges}
		for _, q := range sess.Queries {
			st.Queries = append(st.Queries, q.ID)
		}
		cp.Sessions = append(cp.Sessions, st)
	}
	// Marshal before releasing the lock: the session states alias the live
	// Edges slices, which appendLocked extends in place.
	data, err := json.Marshal(cp)
	l.mu.RUnlock()
	if err != nil {
		return 0, nil, fmt.Errorf("session: encoding checkpoint: %w", err)
	}
	return LiveCheckpointVersion, data, nil
}

func (l *Live) restore(version int, data []byte) error {
	if version != LiveCheckpointVersion {
		return fmt.Errorf("session: unknown checkpoint version %d", version)
	}
	var cp liveCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("session: decoding checkpoint: %w", err)
	}
	// Resolve the referenced records against the just-restored store; any
	// dangling reference means the checkpoint does not match the snapshot it
	// rode in, and the caller falls back to re-segmentation.
	view := l.store.Snapshot()
	admin := storage.Principal{Admin: true}
	users := make(map[string][]*Session)
	byID := make(map[int64]*Session, len(cp.Sessions))
	loc := make(map[storage.QueryID]*Session)
	for _, st := range cp.Sessions {
		sess := &Session{ID: st.ID, User: st.User, Edges: st.Edges}
		for _, qid := range st.Queries {
			rec, err := view.Get(qid, admin)
			if err != nil {
				return fmt.Errorf("session: checkpoint references query %d: %w", qid, err)
			}
			sess.Queries = append(sess.Queries, rec)
		}
		if len(sess.Queries) == 0 {
			return fmt.Errorf("session: checkpoint session %d is empty", st.ID)
		}
		sess.Start = sess.Queries[0].IssuedAt
		sess.End = sess.Queries[len(sess.Queries)-1].IssuedAt
		users[sess.User] = append(users[sess.User], sess)
		byID[sess.ID] = sess
		for _, q := range sess.Queries {
			loc[q.ID] = sess
		}
	}
	l.mu.Lock()
	l.users, l.byID, l.loc, l.nextID = users, byID, loc, cp.NextID
	l.mu.Unlock()
	return nil
}

// EnableMetrics registers the live detector's instruments: a session count
// gauge and the re-segmentation fallback counter. A nil registry is a no-op.
func (l *Live) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cqms_sessions_live",
		"Sessions the live detector currently tracks.",
		func() float64 { return float64(l.Count()) })
	c := reg.Counter("cqms_sessions_resegments_total",
		"Per-user re-segmentation fallbacks (out-of-order insert, delete or text repair).")
	l.mu.Lock()
	l.resegments = c
	l.mu.Unlock()
}
