package session

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/wal"
)

// canonSession is a session reduced to its segmentation-relevant identity:
// the ordered query IDs, the labelled edges and the window bounds. Session
// IDs are deliberately excluded — the live detector reissues IDs when a user
// stream is edited, while batch detection renumbers from scratch every run.
type canonSession struct {
	User    string
	Queries []storage.QueryID
	Edges   []storage.SessionEdge
	Start   time.Time
	End     time.Time
}

func canonicalize(sessions []Session) []canonSession {
	out := make([]canonSession, 0, len(sessions))
	for _, s := range sessions {
		cs := canonSession{User: s.User, Edges: s.Edges, Start: s.Start, End: s.End}
		if len(cs.Edges) == 0 {
			cs.Edges = nil
		}
		for _, q := range s.Queries {
			cs.Queries = append(cs.Queries, q.ID)
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Queries[0] < out[j].Queries[0]
	})
	return out
}

// assertMatchesBatch asserts the live detector's segmentation is identical
// to re-running the batch segmenter over the store's current contents.
func assertMatchesBatch(t *testing.T, live *Live, store *storage.Store, cfg Config) {
	t.Helper()
	batch := NewDetector(cfg).Detect(store.Snapshot().Records(admin), 0)
	got := canonicalize(live.Export())
	want := canonicalize(batch)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("live segmentation diverges from batch\n got: %+v\nwant: %+v", got, want)
	}
}

// sessionSQL is a vocabulary whose pairwise feature similarity straddles the
// detector's MinSimilarity, so soft-gap decisions go both ways.
func sessionSQL(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT temp FROM WaterTemp WHERE temp < %d", rng.Intn(5))
	case 1:
		return "SELECT lake, temp FROM WaterTemp"
	case 2:
		return fmt.Sprintf("SELECT salinity FROM WaterSalinity WHERE salinity > %d", rng.Intn(5))
	default:
		return "SELECT city FROM CityLocations"
	}
}

// mutateSessionStream drives n random mutations whose timestamps mix
// in-order appends (the fast path), soft/hard gaps, and out-of-order
// inserts, plus deletions, text repairs and visibility flips.
func mutateSessionStream(t *testing.T, rng *rand.Rand, store *storage.Store, n int) {
	t.Helper()
	users := []string{"alice", "bob", "carol"}
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	clock := base
	var ids []storage.QueryID
	put := func(at time.Time) {
		rec, err := storage.NewRecordFromSQL(sessionSQL(rng))
		if err != nil {
			t.Fatal(err)
		}
		rec.User = users[rng.Intn(len(users))]
		rec.Visibility = storage.Visibility(rng.Intn(3))
		rec.IssuedAt = at
		ids = append(ids, store.Put(rec))
	}
	for i := 0; i < n; i++ {
		op := rng.Intn(10)
		if len(ids) < 3 {
			op = 0
		}
		switch op {
		case 0, 1, 2, 3: // in-order append with a gap drawn across the thresholds
			gaps := []time.Duration{time.Minute, 6 * time.Minute, 40 * time.Minute}
			clock = clock.Add(gaps[rng.Intn(len(gaps))])
			put(clock)
		case 4: // out-of-order insert somewhere in the past
			put(base.Add(time.Duration(rng.Intn(int(clock.Sub(base)/time.Second)+1)) * time.Second))
		case 5: // duplicate timestamp (ID tie-break)
			put(clock)
		case 6:
			id := ids[rng.Intn(len(ids))]
			if err := store.Delete(id, admin); err != nil && store.Count() > 0 {
				// Already deleted earlier; fine.
				_ = err
			}
		case 7:
			id := ids[rng.Intn(len(ids))]
			upd, err := storage.NewRecordFromSQL(sessionSQL(rng))
			if err != nil {
				t.Fatal(err)
			}
			_ = store.ReplaceText(id, upd)
		case 8:
			id := ids[rng.Intn(len(ids))]
			_ = store.SetVisibility(id, admin, storage.Visibility(rng.Intn(3)))
		default:
			id := ids[rng.Intn(len(ids))]
			_ = store.Annotate(id, admin, storage.Annotation{Author: "admin", Text: "note"})
		}
	}
}

// TestLiveRandomizedEquivalence is the core correctness property of the
// incremental detector: after an arbitrary mutation history — in-order and
// out-of-order inserts, deletions, text repairs, visibility changes — the
// live windows equal a from-scratch batch re-segmentation.
func TestLiveRandomizedEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := storage.NewStore()
			live := AttachLive(store, cfg)
			for round := 0; round < 4; round++ {
				mutateSessionStream(t, rng, store, 60)
				assertMatchesBatch(t, live, store, cfg)
			}
		})
	}
}

// TestLiveFastPathMatchesFigure2 pins the O(1) append path against the
// canonical Figure 2 trace: one session, investigation/modification edges
// identical to the batch detector's.
func TestLiveFastPathMatchesFigure2(t *testing.T) {
	store := storage.NewStore()
	cfg := DefaultConfig()
	live := AttachLive(store, cfg)
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)
	assertMatchesBatch(t, live, store, cfg)
	sums := live.Summaries(admin, 0, 0)
	if len(sums) != 1 || sums[0].QueryCount != 6 {
		t.Fatalf("summaries = %+v, want one 6-query session", sums)
	}
	sess, ok, visible := live.Get(admin, sums[0].ID)
	if !ok || !visible {
		t.Fatalf("Get(%d) = ok=%v visible=%v", sums[0].ID, ok, visible)
	}
	if len(sess.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(sess.Edges))
	}
}

// TestLiveVisibilityTracksUpdates proves a visibility flip propagates into
// session reads: the swapped-in record version governs who sees the window.
func TestLiveVisibilityTracksUpdates(t *testing.T) {
	store := storage.NewStore()
	live := AttachLive(store, DefaultConfig())
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	rec := makeRecord(t, store, "alice", "SELECT temp FROM WaterTemp", base)
	stranger := storage.Principal{User: "eve"}
	if got := live.Summaries(stranger, 0, 0); len(got) != 1 {
		t.Fatalf("stranger sees %d public sessions, want 1", len(got))
	}
	if err := store.SetVisibility(rec.ID, admin, storage.VisibilityPrivate); err != nil {
		t.Fatal(err)
	}
	if got := live.Summaries(stranger, 0, 0); len(got) != 0 {
		t.Fatalf("stranger sees %d private sessions, want 0", len(got))
	}
	if got := live.Summaries(storage.Principal{User: "alice"}, 0, 0); len(got) != 1 {
		t.Fatalf("owner sees %d sessions, want 1", len(got))
	}
}

// TestLiveCheckpointRoundTrip proves the checkpoint is lossless, including
// session IDs and edge labels, when restored against the same store.
func TestLiveCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(17))
	store := storage.NewStore()
	live := AttachLive(store, cfg)
	mutateSessionStream(t, rng, store, 120)

	version, data, err := live.checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored := &Live{
		det:   NewDetector(cfg),
		store: store,
		users: make(map[string][]*Session),
		byID:  make(map[int64]*Session),
		loc:   make(map[storage.QueryID]*Session),
	}
	if err := restored.restore(version, data); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got, want := restored.Export(), live.Export()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored sessions diverge\n got: %+v\nwant: %+v", got, want)
	}
	if err := restored.restore(version+1, data); err == nil {
		t.Fatal("restore accepted an unknown version")
	}
}

// TestLiveEquivalenceAfterWALRecovery proves the detector survives a crash,
// with and without a checkpoint sidecar: either way the recovered windows
// equal a batch re-segmentation of the recovered store.
func TestLiveEquivalenceAfterWALRecovery(t *testing.T) {
	cfg := DefaultConfig()
	for _, snapshot := range []bool{true, false} {
		t.Run(fmt.Sprintf("sidecar=%v", snapshot), func(t *testing.T) {
			dir := t.TempDir()
			rng := rand.New(rand.NewSource(23))
			store1 := storage.NewStore()
			AttachLive(store1, cfg)
			wcfg := wal.DefaultConfig(dir)
			wcfg.SyncPolicy = "off"
			mgr1, _, err := wal.Open(store1, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			mutateSessionStream(t, rng, store1, 150)
			if snapshot {
				if _, _, err := mgr1.Snapshot(); err != nil {
					t.Fatal(err)
				}
				mutateSessionStream(t, rng, store1, 60)
			}
			if err := mgr1.Close(); err != nil {
				t.Fatal(err)
			}

			store2 := storage.NewStore()
			live2 := AttachLive(store2, cfg)
			mgr2, info, err := wal.Open(store2, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			defer mgr2.Close()
			if snapshot {
				restored := false
				for _, name := range info.CheckpointRestored {
					restored = restored || name == "sessions"
				}
				if !restored {
					t.Fatalf("sessions not restored from checkpoint: %+v", info)
				}
			}
			assertMatchesBatch(t, live2, store2, cfg)
		})
	}
}

// TestRebuildNeverReusesPersistedIDs proves a rebuild reissues session IDs
// strictly beyond every ID already persisted on the records (by a mining
// pass), so the live listing and the Queries.sessionId feature relation can
// never name different partitions with the same ID.
func TestRebuildNeverReusesPersistedIDs(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	r1 := makeRecord(t, store, "alice", "SELECT temp FROM WaterTemp", base)
	r2 := makeRecord(t, store, "bob", "SELECT city FROM CityLocations", base.Add(time.Minute))
	// Persisted assignments from an earlier process life.
	if err := store.AssignSession(r1.ID, 41); err != nil {
		t.Fatal(err)
	}
	if err := store.AssignSession(r2.ID, 42); err != nil {
		t.Fatal(err)
	}
	live := AttachLive(store, DefaultConfig()) // Init rebuild sees the persisted IDs
	for _, s := range live.Summaries(admin, 0, 0) {
		if s.ID <= 42 {
			t.Errorf("rebuilt session reused ID %d (persisted max 42)", s.ID)
		}
	}
	// A replayed assignment with a higher ID raises the ceiling too.
	if err := store.AssignSession(r1.ID, 99); err != nil {
		t.Fatal(err)
	}
	r3 := makeRecord(t, store, "carol", "SELECT lake FROM WaterSalinity", base.Add(2*time.Minute))
	sess := live.byID[live.loc[r3.ID].ID]
	if sess.ID <= 99 {
		t.Errorf("new session ID %d not beyond replayed assignment 99", sess.ID)
	}
}

// TestLiveEquivalenceAfterRestoreState proves the Reset fallback re-segments
// wholesale-replaced contents.
func TestLiveEquivalenceAfterRestoreState(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(29))
	store1 := storage.NewStore()
	AttachLive(store1, cfg)
	mutateSessionStream(t, rng, store1, 100)
	st := store1.State()

	store2 := storage.NewStore()
	live2 := AttachLive(store2, cfg)
	mutateSessionStream(t, rng, store2, 30)
	store2.RestoreState(st)
	assertMatchesBatch(t, live2, store2, cfg)
}
