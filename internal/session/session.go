// Package session implements the CQMS query-session model (§2.2, §4.1 of the
// paper): it segments a user's query stream into sessions — series of similar
// queries issued with the same information goal — computes the structural
// diff between consecutive queries, and renders the session window
// visualisation of Figure 2 where nodes are queries and edges are labelled
// with the difference between consecutive queries.
package session

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sql"
	"repro/internal/storage"
)

// Config controls session segmentation.
type Config struct {
	// MaxGap is the idle time after which a new query always starts a new
	// session.
	MaxGap time.Duration
	// SoftGap is the idle time after which a new query starts a new session
	// unless it is similar to the previous query (the user paused to look at
	// results but is still pursuing the same goal).
	SoftGap time.Duration
	// MinSimilarity is the feature-set Jaccard similarity at or above which
	// two consecutive queries are considered part of the same exploration.
	MinSimilarity float64
}

// DefaultConfig returns segmentation parameters tuned for interactive
// exploratory sessions.
func DefaultConfig() Config {
	return Config{
		MaxGap:        30 * time.Minute,
		SoftGap:       5 * time.Minute,
		MinSimilarity: 0.2,
	}
}

// Session is one detected query session.
type Session struct {
	ID      int64
	User    string
	Queries []*storage.QueryRecord
	Edges   []storage.SessionEdge
	Start   time.Time
	End     time.Time
}

// Len returns the number of queries in the session.
func (s *Session) Len() int { return len(s.Queries) }

// Duration returns the wall-clock span of the session.
func (s *Session) Duration() time.Duration { return s.End.Sub(s.Start) }

// Detector segments query streams into sessions.
type Detector struct {
	cfg Config
}

// NewDetector returns a detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg}
}

// Detect segments the given records (any order, any mix of users) into
// sessions. Queries of different users never share a session. Session IDs
// are assigned sequentially starting at startID+1.
func (d *Detector) Detect(records []*storage.QueryRecord, startID int64) []Session {
	byUser := make(map[string][]*storage.QueryRecord)
	var users []string
	for _, r := range records {
		if _, ok := byUser[r.User]; !ok {
			users = append(users, r.User)
		}
		byUser[r.User] = append(byUser[r.User], r)
	}
	sort.Strings(users)

	var sessions []Session
	nextID := startID
	for _, user := range users {
		recs := byUser[user]
		sortChrono(recs)
		for _, s := range d.segmentUser(user, recs) {
			nextID++
			s.ID = nextID
			sessions = append(sessions, s)
		}
	}
	return sessions
}

// sortChrono orders records chronologically, breaking IssuedAt ties by ID so
// segmentation is deterministic — batch detection and the live detector must
// walk identical orders or their session boundaries could diverge on queries
// sharing a timestamp.
func sortChrono(recs []*storage.QueryRecord) {
	sort.Slice(recs, func(i, j int) bool { return chronoLess(recs[i], recs[j]) })
}

// chronoLess is the (IssuedAt, ID) record order sortChrono sorts by.
func chronoLess(a, b *storage.QueryRecord) bool {
	if !a.IssuedAt.Equal(b.IssuedAt) {
		return a.IssuedAt.Before(b.IssuedAt)
	}
	return a.ID < b.ID
}

// boundary reports whether rec starts a new session after prev: a hard idle
// gap, or a soft gap without enough feature similarity to read as the same
// exploration.
func (d *Detector) boundary(prev, rec *storage.QueryRecord) bool {
	gap := rec.IssuedAt.Sub(prev.IssuedAt)
	if gap > d.cfg.MaxGap {
		return true
	}
	return gap > d.cfg.SoftGap && FeatureSimilarity(prev, rec) < d.cfg.MinSimilarity
}

// segmentUser segments one user's chronologically sorted records into
// sessions with unassigned (zero) IDs. It is the single implementation of
// the segmentation rules, shared by batch Detect and the live bus-driven
// detector so the two can never diverge.
func (d *Detector) segmentUser(user string, recs []*storage.QueryRecord) []Session {
	var sessions []Session
	var cur *Session
	var prev *storage.QueryRecord
	flush := func() {
		if cur != nil && len(cur.Queries) > 0 {
			sessions = append(sessions, *cur)
		}
		cur = nil
	}
	for _, rec := range recs {
		newSession := cur == nil || d.boundary(prev, rec)
		if newSession {
			flush()
			cur = &Session{User: user, Start: rec.IssuedAt}
		}
		if prev != nil && !newSession {
			cur.Edges = append(cur.Edges, edgeBetween(prev, rec))
		}
		cur.Queries = append(cur.Queries, rec)
		cur.End = rec.IssuedAt
		prev = rec
	}
	flush()
	return sessions
}

// Apply runs detection over every query in the store (admin view), writes the
// assigned session IDs and edges back into the store and returns the detected
// sessions. It is invoked by the Query Miner's background pass.
func (d *Detector) Apply(store *storage.Store) ([]Session, error) {
	records := store.Snapshot().Records(storage.Principal{Admin: true})
	sessions := d.Detect(records, 0)
	for _, sess := range sessions {
		for _, q := range sess.Queries {
			if err := store.AssignSession(q.ID, sess.ID); err != nil {
				return nil, fmt.Errorf("session: assigning query %d: %w", q.ID, err)
			}
		}
		for _, e := range sess.Edges {
			if err := store.AddEdge(e); err != nil {
				return nil, fmt.Errorf("session: adding edge %d->%d: %w", e.From, e.To, err)
			}
		}
	}
	return sessions, nil
}

// edgeBetween builds the session edge between two consecutive queries,
// classifying it and labelling it with the structural diff.
func edgeBetween(prev, next *storage.QueryRecord) storage.SessionEdge {
	diff := sql.ComputeDiff(prev.Analysis(), next.Analysis())
	etype := storage.EdgeModification
	if diff.Empty() {
		etype = storage.EdgeTemporal
	} else if isInvestigation(diff) {
		etype = storage.EdgeInvestigation
	}
	return storage.SessionEdge{From: prev.ID, To: next.ID, Type: etype, Diff: diff.String()}
}

// isInvestigation reports whether the diff looks like the user drilling into
// why certain tuples appear: predicates only added, projection narrowed, no
// new tables.
func isInvestigation(d *sql.Diff) bool {
	addedPred, removedCol := false, false
	for _, e := range d.Entries {
		switch e.Kind {
		case sql.DiffAddTable, sql.DiffRemoveTable, sql.DiffAddColumn:
			return false
		case sql.DiffAddPredicate:
			addedPred = true
		case sql.DiffRemoveColumn:
			removedCol = true
		}
	}
	return addedPred && removedCol
}

// FeatureSimilarity is the Jaccard similarity of two queries' feature sets,
// the measure used both for session segmentation and as one of the miner's
// similarity measures.
func FeatureSimilarity(a, b *storage.QueryRecord) float64 {
	return jaccard(a.Features, b.Features)
}

func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	inter := 0
	union := len(set)
	for _, y := range b {
		if set[y] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// ---------------------------------------------------------------------------
// Figure 2 rendering
// ---------------------------------------------------------------------------

// Render produces the ASCII session-window visualisation of Figure 2: one
// node per query in temporal order, with edges labelled by the diff between
// consecutive queries, followed by the full text of the final query.
func Render(s *Session) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Session %d — user %s — %d queries — %s\n",
		s.ID, s.User, len(s.Queries), s.Duration().Round(time.Second))
	if len(s.Queries) == 0 {
		return sb.String()
	}
	for i, q := range s.Queries {
		label := firstTableOrText(q)
		ts := q.IssuedAt.Format("15:04")
		if i == 0 {
			fmt.Fprintf(&sb, "  [%s] (q%d) %s\n", ts, q.ID, label)
			continue
		}
		diff := "(same)"
		if i-1 < len(s.Edges) {
			diff = s.Edges[i-1].Diff
		}
		fmt.Fprintf(&sb, "     |  %s\n", diff)
		fmt.Fprintf(&sb, "     v\n")
		fmt.Fprintf(&sb, "  [%s] (q%d) %s\n", ts, q.ID, label)
	}
	final := s.Queries[len(s.Queries)-1]
	fmt.Fprintf(&sb, "  final query: %s\n", final.Canonical)
	return sb.String()
}

// firstTableOrText returns a compact node label: the list of referenced
// tables, falling back to a prefix of the query text.
func firstTableOrText(q *storage.QueryRecord) string {
	if len(q.Tables) > 0 {
		return strings.Join(q.Tables, ", ")
	}
	text := q.Canonical
	if len(text) > 40 {
		text = text[:37] + "..."
	}
	return text
}

// Summary is the compact per-session description used by the browse mode and
// by cmd/cqmsctl when listing sessions.
type Summary struct {
	ID         int64
	User       string
	QueryCount int
	Start      time.Time
	End        time.Time
	Tables     []string
}

// Summarize builds a Summary for the session.
func Summarize(s *Session) Summary {
	tables := make(map[string]bool)
	for _, q := range s.Queries {
		for _, t := range q.Tables {
			tables[t] = true
		}
	}
	names := make([]string, 0, len(tables))
	for t := range tables {
		names = append(names, t)
	}
	sort.Strings(names)
	return Summary{
		ID: s.ID, User: s.User, QueryCount: len(s.Queries),
		Start: s.Start, End: s.End, Tables: names,
	}
}
