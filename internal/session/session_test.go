package session

import (
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

var admin = storage.Principal{Admin: true}

// makeRecord builds a stored record at a given offset from a base time.
func makeRecord(t testing.TB, store *storage.Store, user, text string, at time.Time) *storage.QueryRecord {
	t.Helper()
	rec, err := storage.NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
	}
	rec.User = user
	rec.Visibility = storage.VisibilityPublic
	rec.IssuedAt = at
	store.Put(rec)
	return rec
}

// figure2Trace reproduces the query session of Figure 2: the user starts from
// WaterTemp, adds WaterSalinity, tries several constants on temp, settles on
// temp < 18 and finally adds two location join predicates.
func figure2Trace(t testing.TB, store *storage.Store, user string, base time.Time) []*storage.QueryRecord {
	t.Helper()
	queries := []string{
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE temp < 10",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE temp < 18",
		"SELECT * FROM WaterTemp T, WaterSalinity S, CityLocations L WHERE T.temp < 18 AND S.loc_x = T.loc_x",
		"SELECT * FROM WaterTemp T, WaterSalinity S, CityLocations L WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y",
	}
	var out []*storage.QueryRecord
	for i, q := range queries {
		out = append(out, makeRecord(t, store, user, q, base.Add(time.Duration(i)*time.Minute)))
	}
	return out
}

func TestDetectSingleSession(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)

	d := NewDetector(DefaultConfig())
	sessions := d.Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	s := sessions[0]
	if s.Len() != 6 {
		t.Errorf("session length = %d, want 6", s.Len())
	}
	if len(s.Edges) != 5 {
		t.Errorf("edges = %d, want 5", len(s.Edges))
	}
	if s.Duration() != 5*time.Minute {
		t.Errorf("duration = %v, want 5m", s.Duration())
	}
}

func TestDetectSplitsOnLongGap(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 18", base)
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 15", base.Add(2*time.Minute))
	// A 2-hour break, then a new analysis.
	makeRecord(t, store, "alice", "SELECT city FROM CityLocations WHERE state = 'WA'", base.Add(2*time.Hour))
	makeRecord(t, store, "alice", "SELECT city FROM CityLocations WHERE pop > 10000", base.Add(2*time.Hour+time.Minute))

	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	if sessions[0].Len() != 2 || sessions[1].Len() != 2 {
		t.Errorf("session sizes = %d and %d, want 2 and 2", sessions[0].Len(), sessions[1].Len())
	}
}

func TestDetectSplitsOnTopicChangeAfterSoftGap(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 18", base)
	// 10 minutes later (beyond the 5-minute soft gap) with a completely
	// different topic: new session.
	makeRecord(t, store, "alice", "SELECT ra, dec FROM Stars WHERE magnitude < 6", base.Add(10*time.Minute))

	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
}

func TestDetectKeepsSimilarQueryAcrossSoftGap(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 18", base)
	// 10 minutes later but clearly the same exploration: stays in session.
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 16", base.Add(10*time.Minute))

	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
}

func TestDetectSeparatesUsers(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 9, 0, 0, 0, time.UTC)
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 18", base)
	makeRecord(t, store, "bob", "SELECT * FROM WaterTemp WHERE temp < 17", base.Add(time.Minute))
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp WHERE temp < 16", base.Add(2*time.Minute))

	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2 (one per user)", len(sessions))
	}
	for _, s := range sessions {
		for _, q := range s.Queries {
			if q.User != s.User {
				t.Errorf("session %d mixes users", s.ID)
			}
		}
	}
}

func TestEdgeLabelsMatchFigure2(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)
	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	edges := sessions[0].Edges
	// Edge 1: WaterSalinity added.
	if !strings.Contains(edges[0].Diff, "+table WaterSalinity") {
		t.Errorf("edge 0 diff = %q, want +table WaterSalinity", edges[0].Diff)
	}
	// Edges 2 and 3: constant changes on temp.
	for _, i := range []int{1, 2} {
		if !strings.Contains(edges[i].Diff, "~const") {
			t.Errorf("edge %d diff = %q, want a constant change", i, edges[i].Diff)
		}
	}
	// Edge 4: CityLocations table plus first location predicate added.
	if !strings.Contains(edges[3].Diff, "+table CityLocations") || !strings.Contains(edges[3].Diff, "+pred") {
		t.Errorf("edge 3 diff = %q", edges[3].Diff)
	}
	// Edge 5: second location predicate added.
	if !strings.Contains(edges[4].Diff, "loc_y") {
		t.Errorf("edge 4 diff = %q, want loc_y predicate", edges[4].Diff)
	}
	// All modification edges.
	for i, e := range edges {
		if e.Type != storage.EdgeModification {
			t.Errorf("edge %d type = %v, want modification", i, e.Type)
		}
	}
}

func TestApplyWritesBackToStore(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)
	makeRecord(t, store, "magda", "SELECT city FROM CityLocations", base.Add(3*time.Hour))

	sessions, err := NewDetector(DefaultConfig()).Apply(store)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	ids := store.SessionIDs()
	if len(ids) != 2 {
		t.Errorf("store session IDs = %v, want 2", ids)
	}
	if got := store.BySession(sessions[0].ID, admin); len(got) != sessions[0].Len() {
		t.Errorf("store session %d has %d queries, want %d", sessions[0].ID, len(got), sessions[0].Len())
	}
	if len(store.Edges()) != 5 {
		t.Errorf("store edges = %d, want 5", len(store.Edges()))
	}
}

func TestRenderFigure2(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)
	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	out := Render(&sessions[0])
	for _, want := range []string{
		"Session 1", "nodira", "6 queries",
		"+table WaterSalinity", "~const", "WaterTemp",
		"final query:", "loc_y",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	// One node line per query.
	if n := strings.Count(out, "(q"); n != 6 {
		t.Errorf("rendered nodes = %d, want 6", n)
	}
}

func TestRenderEmptySession(t *testing.T) {
	out := Render(&Session{ID: 3, User: "x"})
	if !strings.Contains(out, "Session 3") {
		t.Errorf("empty session rendering = %q", out)
	}
}

func TestSummarize(t *testing.T) {
	store := storage.NewStore()
	base := time.Date(2009, 1, 5, 14, 30, 0, 0, time.UTC)
	figure2Trace(t, store, "nodira", base)
	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 0)
	sum := Summarize(&sessions[0])
	if sum.QueryCount != 6 || sum.User != "nodira" {
		t.Errorf("summary = %+v", sum)
	}
	want := []string{"CityLocations", "WaterSalinity", "WaterTemp"}
	if strings.Join(sum.Tables, ",") != strings.Join(want, ",") {
		t.Errorf("summary tables = %v, want %v", sum.Tables, want)
	}
}

func TestFeatureSimilarity(t *testing.T) {
	store := storage.NewStore()
	base := time.Now()
	a := makeRecord(t, store, "u", "SELECT * FROM WaterTemp WHERE temp < 18", base)
	b := makeRecord(t, store, "u", "SELECT * FROM WaterTemp WHERE temp < 22", base)
	c := makeRecord(t, store, "u", "SELECT ra FROM Stars", base)
	if sim := FeatureSimilarity(a, b); sim != 1.0 {
		t.Errorf("similarity of template-equal queries = %v, want 1.0", sim)
	}
	if sim := FeatureSimilarity(a, c); sim != 0.0 {
		t.Errorf("similarity of unrelated queries = %v, want 0.0", sim)
	}
	empty := &storage.QueryRecord{}
	if sim := FeatureSimilarity(empty, empty); sim != 1.0 {
		t.Errorf("similarity of two empty feature sets = %v, want 1.0", sim)
	}
	if sim := FeatureSimilarity(empty, a); sim != 0.0 {
		t.Errorf("similarity of empty vs non-empty = %v, want 0.0", sim)
	}
}

func TestDetectStartIDOffset(t *testing.T) {
	store := storage.NewStore()
	makeRecord(t, store, "alice", "SELECT * FROM WaterTemp", time.Now())
	sessions := NewDetector(DefaultConfig()).Detect(store.Snapshot().Records(admin), 100)
	if len(sessions) != 1 || sessions[0].ID != 101 {
		t.Errorf("session ID = %d, want 101", sessions[0].ID)
	}
}
