package sql

import (
	"sort"
	"strings"
)

// Analysis is the set of syntactic query features extracted from a SELECT
// statement. It corresponds to the feature relations of Figure 1 in the
// paper (DataSources, Attributes, Predicates) plus the additional structural
// features that the miner and recommender use (joins, aggregates, grouping,
// nesting depth).
type Analysis struct {
	// Tables are the base relations referenced in FROM clauses (including
	// nested sub-queries), original spelling preserved, duplicates removed.
	Tables []string
	// Aliases maps alias -> table name for every aliased base relation.
	Aliases map[string]string
	// Columns are all column references, resolved against aliases where
	// possible, as "Table.column" or bare "column" if unresolvable.
	Columns []ColumnUse
	// Predicates are the atomic comparison predicates found in WHERE/HAVING
	// and join ON conditions.
	Predicates []PredicateFeature
	// Joins are the join edges implied by ON conditions and WHERE equality
	// predicates between columns of two different relations.
	Joins []JoinFeature
	// Aggregates are the aggregate function names used (upper-case).
	Aggregates []string
	// GroupByColumns are the column names appearing in GROUP BY.
	GroupByColumns []string
	// OrderByColumns are the column names appearing in ORDER BY.
	OrderByColumns []string
	// SelectStar is true if the outer query projects *.
	SelectStar bool
	// Distinct is true if the outer query is SELECT DISTINCT.
	Distinct bool
	// SubqueryCount is the number of nested SELECTs.
	SubqueryCount int
	// HasLimit is true if the outer query has a LIMIT clause.
	HasLimit bool

	// outputAliases holds the lower-cased SELECT-list aliases of the outer
	// query, so that references to them (ORDER BY avg_temp) are not reported
	// as base-column uses.
	outputAliases map[string]bool
}

// ColumnUse records a single column reference and the clause it appears in.
type ColumnUse struct {
	Table  string // resolved base-table name when possible, otherwise the raw qualifier (possibly empty)
	Column string
	Clause string // SELECT, WHERE, GROUPBY, HAVING, ORDERBY, JOIN
}

// PredicateFeature is an atomic predicate "column op constant" or
// "column op column" found in the query.
type PredicateFeature struct {
	Table    string
	Column   string
	Op       string // =, <>, <, <=, >, >=, LIKE, IN, BETWEEN, ISNULL
	Value    string // rendered constant, or "" for column-column predicates
	IsJoin   bool   // true when both sides are column references
	RightTab string // for join predicates, the other side's table
	RightCol string // for join predicates, the other side's column
}

// JoinFeature is a join edge between two relations.
type JoinFeature struct {
	LeftTable   string
	LeftColumn  string
	RightTable  string
	RightColumn string
	Type        JoinType
}

// Key returns a canonical key for the predicate feature, used by the miner
// when counting feature co-occurrence.
func (p PredicateFeature) Key() string {
	if p.IsJoin {
		a := p.Table + "." + p.Column
		b := p.RightTab + "." + p.RightCol
		if a > b {
			a, b = b, a
		}
		return "join:" + a + "=" + b
	}
	return "pred:" + p.Table + "." + p.Column + " " + p.Op + " " + p.Value
}

// TemplateKey returns the predicate key with the constant removed, so that
// "temp < 18" and "temp < 22" share a key. Used for edit-pattern mining.
func (p PredicateFeature) TemplateKey() string {
	if p.IsJoin {
		return p.Key()
	}
	return "pred:" + p.Table + "." + p.Column + " " + p.Op + " ?"
}

// Analyze extracts syntactic features from a SELECT statement. The statement
// is not modified.
func Analyze(s *SelectStmt) *Analysis {
	a := &Analysis{Aliases: make(map[string]string), outputAliases: make(map[string]bool)}
	if s == nil {
		return a
	}
	for _, item := range s.Columns {
		if item.Alias != "" {
			a.outputAliases[strings.ToLower(item.Alias)] = true
		}
	}
	a.collectTables(s)
	a.collectOuterShape(s)
	a.collectColumns(s)
	a.collectPredicates(s)
	a.SubqueryCount = len(Subqueries(s))
	sort.Strings(a.Tables)
	sort.Strings(a.Aggregates)
	return a
}

// isOutputAlias reports whether an unqualified column reference actually
// names a SELECT-list alias (e.g. ORDER BY avg_temp) rather than a base
// column. Such references are not stored as attribute features, which keeps
// the maintenance validator from mistaking them for dropped columns.
func (a *Analysis) isOutputAlias(c *ColumnRef) bool {
	return c.Table == "" && a.outputAliases[strings.ToLower(c.Name)]
}

// AnalyzeQuery parses the query text and analyzes it; non-SELECT statements
// produce an empty analysis without error so that the profiler can log DML
// uniformly.
func AnalyzeQuery(text string) (*Analysis, error) {
	stmt, err := Parse(text)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*SelectStmt); ok {
		return Analyze(sel), nil
	}
	return &Analysis{Aliases: map[string]string{}}, nil
}

func (a *Analysis) collectTables(s *SelectStmt) {
	seen := make(map[string]bool)
	var visit func(sel *SelectStmt)
	visit = func(sel *SelectStmt) {
		WalkTableRefs(sel, func(t TableRef) bool {
			if tn, ok := t.(*TableName); ok {
				if !seen[tn.Name] {
					seen[tn.Name] = true
					a.Tables = append(a.Tables, tn.Name)
				}
				if tn.Alias != "" {
					a.Aliases[tn.Alias] = tn.Name
				}
			}
			return true
		})
		for _, sub := range Subqueries(sel) {
			_ = sub // sub-query tables are already reached by WalkTableRefs only for FROM subqueries
		}
	}
	visit(s)
	// WalkTableRefs does not descend into sub-queries in expression position;
	// handle those here.
	for _, sub := range Subqueries(s) {
		WalkTableRefs(sub, func(t TableRef) bool {
			if tn, ok := t.(*TableName); ok {
				if !seen[tn.Name] {
					seen[tn.Name] = true
					a.Tables = append(a.Tables, tn.Name)
				}
				if tn.Alias != "" {
					a.Aliases[tn.Alias] = tn.Name
				}
			}
			return true
		})
	}
}

func (a *Analysis) collectOuterShape(s *SelectStmt) {
	a.Distinct = s.Distinct
	a.HasLimit = s.Limit != nil
	for _, item := range s.Columns {
		if item.Star {
			a.SelectStar = true
		}
	}
	for _, g := range s.GroupBy {
		if c, ok := g.(*ColumnRef); ok && !a.isOutputAlias(c) {
			a.GroupByColumns = append(a.GroupByColumns, a.resolveColumn(c))
		}
	}
	for _, o := range s.OrderBy {
		if c, ok := o.Expr.(*ColumnRef); ok && !a.isOutputAlias(c) {
			a.OrderByColumns = append(a.OrderByColumns, a.resolveColumn(c))
		}
	}
}

// resolveTable maps an alias or table qualifier to a base-table name.
func (a *Analysis) resolveTable(qualifier string) string {
	if qualifier == "" {
		if len(a.Tables) == 1 {
			return a.Tables[0]
		}
		return ""
	}
	if base, ok := a.Aliases[qualifier]; ok {
		return base
	}
	return qualifier
}

func (a *Analysis) resolveColumn(c *ColumnRef) string {
	t := a.resolveTable(c.Table)
	if t == "" {
		return c.Name
	}
	return t + "." + c.Name
}

func (a *Analysis) addColumnUse(c *ColumnRef, clause string) {
	if a.isOutputAlias(c) && clause != "SELECT" {
		return
	}
	a.Columns = append(a.Columns, ColumnUse{
		Table:  a.resolveTable(c.Table),
		Column: c.Name,
		Clause: clause,
	})
}

func (a *Analysis) collectColumns(s *SelectStmt) {
	for _, item := range s.Columns {
		if item.Expr == nil {
			continue
		}
		WalkExpr(item.Expr, func(e Expr) bool {
			switch n := e.(type) {
			case *ColumnRef:
				a.addColumnUse(n, "SELECT")
			case *FuncCall:
				if n.IsAggregate() {
					a.Aggregates = appendUnique(a.Aggregates, strings.ToUpper(n.Name))
				}
			}
			return true
		})
	}
	WalkExpr(s.Where, func(e Expr) bool {
		if c, ok := e.(*ColumnRef); ok {
			a.addColumnUse(c, "WHERE")
		}
		return true
	})
	for _, g := range s.GroupBy {
		WalkExpr(g, func(e Expr) bool {
			if c, ok := e.(*ColumnRef); ok {
				a.addColumnUse(c, "GROUPBY")
			}
			return true
		})
	}
	WalkExpr(s.Having, func(e Expr) bool {
		switch n := e.(type) {
		case *ColumnRef:
			a.addColumnUse(n, "HAVING")
		case *FuncCall:
			if n.IsAggregate() {
				a.Aggregates = appendUnique(a.Aggregates, strings.ToUpper(n.Name))
			}
		}
		return true
	})
	for _, o := range s.OrderBy {
		WalkExpr(o.Expr, func(e Expr) bool {
			if c, ok := e.(*ColumnRef); ok {
				a.addColumnUse(c, "ORDERBY")
			}
			return true
		})
	}
	// Join ON conditions.
	for _, t := range s.From {
		walkTableRefExprs(t, func(e Expr) bool {
			if c, ok := e.(*ColumnRef); ok {
				a.addColumnUse(c, "JOIN")
			}
			return true
		})
	}
}

// collectPredicates walks WHERE, HAVING and ON clauses collecting atomic
// predicates and join edges.
func (a *Analysis) collectPredicates(s *SelectStmt) {
	collect := func(e Expr, joinType JoinType, fromOn bool) {
		a.collectPredicateTree(e, joinType, fromOn)
	}
	collect(s.Where, JoinInner, false)
	collect(s.Having, JoinInner, false)
	for _, t := range s.From {
		a.collectJoinOn(t)
	}
	// Implicit cross-product join in FROM list with WHERE equality already
	// handled by collectPredicateTree (IsJoin flag); derive join features.
	for _, p := range a.Predicates {
		if p.IsJoin {
			a.Joins = append(a.Joins, JoinFeature{
				LeftTable: p.Table, LeftColumn: p.Column,
				RightTable: p.RightTab, RightColumn: p.RightCol,
				Type: JoinInner,
			})
		}
	}
}

func (a *Analysis) collectJoinOn(t TableRef) {
	switch ref := t.(type) {
	case *JoinExpr:
		a.collectJoinOn(ref.Left)
		a.collectJoinOn(ref.Right)
		if ref.On != nil {
			a.collectPredicateTree(ref.On, ref.Type, true)
		}
	case *SubqueryRef:
		// predicates inside derived tables are features of the derived table
		// itself; count them too so that meta-queries over nested queries work.
		if ref.Select != nil {
			a.collectPredicateTree(ref.Select.Where, JoinInner, false)
		}
	}
}

// collectPredicateTree splits a boolean expression on AND/OR and records each
// atomic comparison.
func (a *Analysis) collectPredicateTree(e Expr, joinType JoinType, fromOn bool) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		if n.Op == "AND" || n.Op == "OR" {
			a.collectPredicateTree(n.Left, joinType, fromOn)
			a.collectPredicateTree(n.Right, joinType, fromOn)
			return
		}
		a.addComparison(n, joinType)
	case *UnaryExpr:
		if n.Op == "NOT" {
			a.collectPredicateTree(n.Expr, joinType, fromOn)
		}
	case *InExpr:
		if c, ok := n.Expr.(*ColumnRef); ok {
			val := ""
			if n.Select == nil {
				parts := make([]string, len(n.List))
				for i, item := range n.List {
					parts[i] = item.SQL()
				}
				val = "(" + strings.Join(parts, ", ") + ")"
			} else {
				val = "(subquery)"
			}
			a.Predicates = append(a.Predicates, PredicateFeature{
				Table: a.resolveTable(c.Table), Column: c.Name, Op: "IN", Value: val,
			})
		}
	case *BetweenExpr:
		if c, ok := n.Expr.(*ColumnRef); ok {
			a.Predicates = append(a.Predicates, PredicateFeature{
				Table: a.resolveTable(c.Table), Column: c.Name, Op: "BETWEEN",
				Value: n.Low.SQL() + " AND " + n.High.SQL(),
			})
		}
	case *LikeExpr:
		if c, ok := n.Expr.(*ColumnRef); ok {
			a.Predicates = append(a.Predicates, PredicateFeature{
				Table: a.resolveTable(c.Table), Column: c.Name, Op: "LIKE", Value: n.Pattern.SQL(),
			})
		}
	case *IsNullExpr:
		if c, ok := n.Expr.(*ColumnRef); ok {
			op := "ISNULL"
			if n.Not {
				op = "ISNOTNULL"
			}
			a.Predicates = append(a.Predicates, PredicateFeature{
				Table: a.resolveTable(c.Table), Column: c.Name, Op: op,
			})
		}
	}
}

func (a *Analysis) addComparison(b *BinaryExpr, joinType JoinType) {
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return
	}
	lc, lok := b.Left.(*ColumnRef)
	rc, rok := b.Right.(*ColumnRef)
	switch {
	case lok && rok:
		a.Predicates = append(a.Predicates, PredicateFeature{
			Table: a.resolveTable(lc.Table), Column: lc.Name, Op: b.Op,
			IsJoin:   true,
			RightTab: a.resolveTable(rc.Table), RightCol: rc.Name,
		})
	case lok:
		a.Predicates = append(a.Predicates, PredicateFeature{
			Table: a.resolveTable(lc.Table), Column: lc.Name, Op: b.Op, Value: b.Right.SQL(),
		})
	case rok:
		// Normalise "18 > temp" to "temp < 18".
		a.Predicates = append(a.Predicates, PredicateFeature{
			Table: a.resolveTable(rc.Table), Column: rc.Name, Op: flipOp(b.Op), Value: b.Left.SQL(),
		})
	}
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// FeatureSet returns the analysis as a flat set of feature strings, the
// representation used by the miner (association rules, Jaccard similarity)
// and the recommender. Feature strings are prefixed by their kind:
//
//	table:WaterSalinity
//	col:WaterTemp.temp
//	pred:WaterTemp.temp < ?
//	join:WaterSalinity.loc_x=WaterTemp.loc_x
//	agg:AVG
//	groupby:CityLocations.city
func (a *Analysis) FeatureSet() []string {
	set := make(map[string]bool)
	for _, t := range a.Tables {
		set["table:"+t] = true
	}
	for _, c := range a.Columns {
		name := c.Column
		if c.Table != "" {
			name = c.Table + "." + c.Column
		}
		set["col:"+name] = true
	}
	for _, p := range a.Predicates {
		set[p.TemplateKey()] = true
	}
	for _, agg := range a.Aggregates {
		set["agg:"+agg] = true
	}
	for _, g := range a.GroupByColumns {
		set["groupby:"+g] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
