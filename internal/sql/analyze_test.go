package sql

import (
	"reflect"
	"sort"
	"testing"
)

func TestAnalyzePaperExample(t *testing.T) {
	// The Figure 2/3 running example: correlate salinity with temperature.
	q := `SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L
	      WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y`
	a, err := AnalyzeQuery(q)
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	wantTables := []string{"CityLocations", "WaterSalinity", "WaterTemp"}
	if !reflect.DeepEqual(a.Tables, wantTables) {
		t.Errorf("tables = %v, want %v", a.Tables, wantTables)
	}
	if a.Aliases["S"] != "WaterSalinity" || a.Aliases["T"] != "WaterTemp" {
		t.Errorf("aliases = %v", a.Aliases)
	}
	if !a.SelectStar {
		t.Errorf("expected SelectStar")
	}
	// One selection predicate and two join predicates.
	var sel, join int
	for _, p := range a.Predicates {
		if p.IsJoin {
			join++
		} else {
			sel++
		}
	}
	if sel != 1 || join != 2 {
		t.Errorf("selection preds = %d join preds = %d, want 1 and 2", sel, join)
	}
	if len(a.Joins) != 2 {
		t.Errorf("joins = %d, want 2", len(a.Joins))
	}
	// The selection predicate should be resolved to WaterTemp.temp.
	found := false
	for _, p := range a.Predicates {
		if !p.IsJoin && p.Table == "WaterTemp" && p.Column == "temp" && p.Op == "<" && p.Value == "18" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected predicate WaterTemp.temp < 18, got %#v", a.Predicates)
	}
}

func TestAnalyzeResolvesAliases(t *testing.T) {
	a, err := AnalyzeQuery("SELECT s.salinity FROM WaterSalinity s WHERE s.depth > 5")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	var selCols []string
	for _, c := range a.Columns {
		if c.Clause == "SELECT" {
			selCols = append(selCols, c.Table+"."+c.Column)
		}
	}
	if len(selCols) != 1 || selCols[0] != "WaterSalinity.salinity" {
		t.Errorf("select columns = %v", selCols)
	}
}

func TestAnalyzeUnqualifiedSingleTable(t *testing.T) {
	a, err := AnalyzeQuery("SELECT temp FROM WaterTemp WHERE temp < 18")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	if len(a.Predicates) != 1 {
		t.Fatalf("predicates = %d, want 1", len(a.Predicates))
	}
	if a.Predicates[0].Table != "WaterTemp" {
		t.Errorf("predicate table = %q, want WaterTemp (resolved from single FROM table)", a.Predicates[0].Table)
	}
}

func TestAnalyzeAggregatesAndGroupBy(t *testing.T) {
	a, err := AnalyzeQuery("SELECT lake, AVG(temp), COUNT(*) FROM WaterTemp GROUP BY lake HAVING MAX(temp) > 30 ORDER BY lake")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	wantAggs := []string{"AVG", "COUNT", "MAX"}
	if !reflect.DeepEqual(a.Aggregates, wantAggs) {
		t.Errorf("aggregates = %v, want %v", a.Aggregates, wantAggs)
	}
	if len(a.GroupByColumns) != 1 || a.GroupByColumns[0] != "WaterTemp.lake" {
		t.Errorf("group by = %v", a.GroupByColumns)
	}
	if len(a.OrderByColumns) != 1 {
		t.Errorf("order by = %v", a.OrderByColumns)
	}
}

func TestAnalyzeNormalizesFlippedComparison(t *testing.T) {
	a, err := AnalyzeQuery("SELECT * FROM WaterTemp WHERE 18 > temp")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	if len(a.Predicates) != 1 {
		t.Fatalf("predicates = %d, want 1", len(a.Predicates))
	}
	p := a.Predicates[0]
	if p.Column != "temp" || p.Op != "<" || p.Value != "18" {
		t.Errorf("predicate = %#v, want temp < 18", p)
	}
}

func TestAnalyzeSubqueriesCountedAndTablesCollected(t *testing.T) {
	q := `SELECT city FROM CityLocations WHERE city IN (SELECT city FROM Cities WHERE state = 'WA')
	      AND EXISTS (SELECT 1 FROM Lakes WHERE Lakes.city = CityLocations.city)`
	a, err := AnalyzeQuery(q)
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	if a.SubqueryCount != 2 {
		t.Errorf("SubqueryCount = %d, want 2", a.SubqueryCount)
	}
	wantTables := []string{"Cities", "CityLocations", "Lakes"}
	if !reflect.DeepEqual(a.Tables, wantTables) {
		t.Errorf("tables = %v, want %v", a.Tables, wantTables)
	}
}

func TestAnalyzePredicateKinds(t *testing.T) {
	q := `SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 0 AND 5 AND name LIKE 'Lake%' AND c IS NULL AND d IS NOT NULL`
	a, err := AnalyzeQuery(q)
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	ops := make(map[string]bool)
	for _, p := range a.Predicates {
		ops[p.Op] = true
	}
	for _, want := range []string{"IN", "BETWEEN", "LIKE", "ISNULL", "ISNOTNULL"} {
		if !ops[want] {
			t.Errorf("missing predicate op %s in %v", want, a.Predicates)
		}
	}
}

func TestAnalyzeJoinOnPredicates(t *testing.T) {
	a, err := AnalyzeQuery("SELECT * FROM WaterSalinity s JOIN WaterTemp w ON s.loc_x = w.loc_x WHERE w.temp < 18")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	if len(a.Joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(a.Joins))
	}
	j := a.Joins[0]
	pair := []string{j.LeftTable, j.RightTable}
	sort.Strings(pair)
	if pair[0] != "WaterSalinity" || pair[1] != "WaterTemp" {
		t.Errorf("join tables = %v", pair)
	}
}

func TestAnalyzeOutputAliasNotTreatedAsColumn(t *testing.T) {
	// ORDER BY / GROUP BY references to a SELECT-list alias must not be
	// reported as base-column uses; otherwise the maintenance validator would
	// flag them as dropped columns.
	a, err := AnalyzeQuery("SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake ORDER BY avg_temp DESC")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	for _, c := range a.Columns {
		if c.Column == "avg_temp" {
			t.Errorf("alias avg_temp reported as column use: %+v", c)
		}
	}
	if len(a.OrderByColumns) != 0 {
		t.Errorf("OrderByColumns = %v, want empty (alias only)", a.OrderByColumns)
	}
	// A real column in ORDER BY is still reported.
	a, err = AnalyzeQuery("SELECT lake FROM WaterTemp ORDER BY temp")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.OrderByColumns) != 1 {
		t.Errorf("OrderByColumns = %v, want temp", a.OrderByColumns)
	}
}

func TestAnalyzeNonSelectEmpty(t *testing.T) {
	a, err := AnalyzeQuery("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	if len(a.Tables) != 0 || len(a.Predicates) != 0 {
		t.Errorf("expected empty analysis for DML, got %#v", a)
	}
}

func TestAnalyzeInvalidSQL(t *testing.T) {
	if _, err := AnalyzeQuery("SELECT FROM WHERE"); err == nil {
		t.Error("expected error for invalid SQL")
	}
}

func TestFeatureSet(t *testing.T) {
	a, err := AnalyzeQuery("SELECT AVG(temp) FROM WaterTemp GROUP BY lake HAVING AVG(temp) > 10")
	if err != nil {
		t.Fatalf("AnalyzeQuery: %v", err)
	}
	fs := a.FeatureSet()
	want := map[string]bool{
		"table:WaterTemp":              true,
		"agg:AVG":                      true,
		"groupby:WaterTemp.lake":       true,
		"col:WaterTemp.temp":           true,
		"col:WaterTemp.lake":           true,
		"pred:WaterTemp.temp(AVG) > ?": false, // HAVING on aggregate is not an atomic column predicate
	}
	got := make(map[string]bool)
	for _, f := range fs {
		got[f] = true
	}
	for f, required := range want {
		if required && !got[f] {
			t.Errorf("FeatureSet missing %q: %v", f, fs)
		}
	}
	// FeatureSet must be sorted and free of duplicates.
	if !sort.StringsAreSorted(fs) {
		t.Errorf("FeatureSet not sorted: %v", fs)
	}
	seen := map[string]bool{}
	for _, f := range fs {
		if seen[f] {
			t.Errorf("duplicate feature %q", f)
		}
		seen[f] = true
	}
}

func TestPredicateKeys(t *testing.T) {
	p := PredicateFeature{Table: "WaterTemp", Column: "temp", Op: "<", Value: "18"}
	if p.Key() != "pred:WaterTemp.temp < 18" {
		t.Errorf("Key = %q", p.Key())
	}
	if p.TemplateKey() != "pred:WaterTemp.temp < ?" {
		t.Errorf("TemplateKey = %q", p.TemplateKey())
	}
	j := PredicateFeature{Table: "B", Column: "x", Op: "=", IsJoin: true, RightTab: "A", RightCol: "y"}
	// Join keys are order-normalised.
	j2 := PredicateFeature{Table: "A", Column: "y", Op: "=", IsJoin: true, RightTab: "B", RightCol: "x"}
	if j.Key() != j2.Key() {
		t.Errorf("join keys differ: %q vs %q", j.Key(), j2.Key())
	}
}

func TestAnalyzeNilSelect(t *testing.T) {
	a := Analyze(nil)
	if a == nil || len(a.Tables) != 0 {
		t.Errorf("Analyze(nil) = %#v", a)
	}
}
