package sql

import "strings"

// Statement is implemented by all top-level SQL statements.
type Statement interface {
	// SQL renders the statement back into SQL text.
	SQL() string
	statementNode()
}

// Expr is implemented by all expression nodes.
type Expr interface {
	// SQL renders the expression as SQL text.
	SQL() string
	exprNode()
}

// TableRef is a relation appearing in a FROM clause: a base table, a derived
// table (sub-query) or a join of two table references.
type TableRef interface {
	SQL() string
	tableRefNode()
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// SelectStmt is a SELECT query, possibly with set operations chained via
// Compound.
type SelectStmt struct {
	Distinct bool
	Columns  []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *LimitClause
	// Compound, if non-nil, chains a set operation (UNION/EXCEPT/INTERSECT)
	// with another SELECT.
	Compound *CompoundClause
}

// CompoundClause chains a set operation onto a SelectStmt.
type CompoundClause struct {
	Op    string // UNION, EXCEPT, INTERSECT
	All   bool
	Right *SelectStmt
}

// SelectItem is one element of the SELECT list.
type SelectItem struct {
	// Star is true for a bare `*`. TableStar holds the table name for
	// `t.*`. Otherwise Expr holds the projected expression and Alias an
	// optional output name.
	Star      bool
	TableStar string
	Expr      Expr
	Alias     string
}

// OrderItem is one element of the ORDER BY clause.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// LimitClause holds LIMIT/OFFSET values.
type LimitClause struct {
	Count  int64
	Offset int64
	// HasOffset distinguishes "OFFSET 0" from no offset at all.
	HasOffset bool
}

// InsertStmt is an INSERT ... VALUES statement. Either Rows or Select is set.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Select  *SelectStmt
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one column = expr pair in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is a DELETE statement.
type DeleteStmt struct {
	Table string
	Where Expr
}

// ColumnDef is a column definition in CREATE TABLE or ALTER TABLE ADD COLUMN.
type ColumnDef struct {
	Name       string
	Type       string // normalised upper-case type name, e.g. INT, FLOAT, TEXT
	PrimaryKey bool
	NotNull    bool
	Unique     bool
}

// CreateTableStmt is a CREATE TABLE statement.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTableStmt is a DROP TABLE statement.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// AlterAction enumerates supported ALTER TABLE actions.
type AlterAction int

// Supported ALTER TABLE actions.
const (
	AlterAddColumn AlterAction = iota
	AlterDropColumn
	AlterRenameColumn
	AlterRenameTable
)

// AlterTableStmt is an ALTER TABLE statement supporting the actions that the
// maintenance component's schema-evolution scenarios need.
type AlterTableStmt struct {
	Table   string
	Action  AlterAction
	Column  ColumnDef // for ADD COLUMN
	OldName string    // for DROP COLUMN / RENAME COLUMN
	NewName string    // for RENAME COLUMN / RENAME TABLE
}

func (*SelectStmt) statementNode()      {}
func (*InsertStmt) statementNode()      {}
func (*UpdateStmt) statementNode()      {}
func (*DeleteStmt) statementNode()      {}
func (*CreateTableStmt) statementNode() {}
func (*DropTableStmt) statementNode()   {}
func (*AlterTableStmt) statementNode()  {}

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

// TableName references a base relation, optionally aliased.
type TableName struct {
	Name  string
	Alias string
}

// JoinType enumerates join flavours.
type JoinType int

// Join flavours.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinRight
	JoinFull
	JoinCross
)

// String returns the SQL keyword spelling of the join type.
func (j JoinType) String() string {
	switch j {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinRight:
		return "RIGHT JOIN"
	case JoinFull:
		return "FULL JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// JoinExpr is an explicit join between two table references.
type JoinExpr struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr
	Using []string
}

// SubqueryRef is a derived table: a parenthesised SELECT with an alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*TableName) tableRefNode()   {}
func (*JoinExpr) tableRefNode()    {}
func (*SubqueryRef) tableRefNode() {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef references a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table string
	Name  string
}

// LiteralKind identifies the type of a literal.
type LiteralKind int

// Literal kinds.
const (
	LiteralNumber LiteralKind = iota
	LiteralString
	LiteralBool
	LiteralNull
)

// Literal is a constant value in the query text.
type Literal struct {
	Kind LiteralKind
	// Text is the literal as written (numbers keep their original spelling;
	// strings exclude quotes; booleans are "TRUE"/"FALSE"; null is "NULL").
	Text string
}

// BinaryExpr is a binary operation: comparisons, arithmetic, AND/OR and
// string concatenation.
type BinaryExpr struct {
	Op    string // normalised: =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, ||
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT expr or -expr / +expr.
type UnaryExpr struct {
	Op   string // NOT, -, +
	Expr Expr
}

// FuncCall is a function invocation such as COUNT(*), SUM(x), LOWER(s).
type FuncCall struct {
	Name     string // normalised upper-case
	Star     bool   // COUNT(*)
	Distinct bool
	Args     []Expr
}

// InExpr is expr [NOT] IN (list) or expr [NOT] IN (subquery).
type InExpr struct {
	Not    bool
	Expr   Expr
	List   []Expr
	Select *SelectStmt
}

// BetweenExpr is expr [NOT] BETWEEN low AND high.
type BetweenExpr struct {
	Not  bool
	Expr Expr
	Low  Expr
	High Expr
}

// LikeExpr is expr [NOT] LIKE pattern.
type LikeExpr struct {
	Not     bool
	Expr    Expr
	Pattern Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Not  bool
	Expr Expr
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not    bool
	Select *SelectStmt
}

// SubqueryExpr is a scalar sub-query used as an expression.
type SubqueryExpr struct {
	Select *SelectStmt
}

// CaseExpr is a searched or simple CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr
}

// CaseWhen is one WHEN ... THEN ... arm of a CASE expression.
type CaseWhen struct {
	When Expr
	Then Expr
}

// ParamExpr is a positional parameter placeholder (? or $n).
type ParamExpr struct {
	Text string
}

func (*ColumnRef) exprNode()    {}
func (*Literal) exprNode()      {}
func (*BinaryExpr) exprNode()   {}
func (*UnaryExpr) exprNode()    {}
func (*FuncCall) exprNode()     {}
func (*InExpr) exprNode()       {}
func (*BetweenExpr) exprNode()  {}
func (*LikeExpr) exprNode()     {}
func (*IsNullExpr) exprNode()   {}
func (*ExistsExpr) exprNode()   {}
func (*SubqueryExpr) exprNode() {}
func (*CaseExpr) exprNode()     {}
func (*ParamExpr) exprNode()    {}

// QualifiedName returns "table.name" or just "name" when unqualified.
func (c *ColumnRef) QualifiedName() string {
	if c.Table == "" {
		return c.Name
	}
	return c.Table + "." + c.Name
}

// IsAggregate reports whether the function name is one of the aggregate
// functions understood by the execution engine.
func (f *FuncCall) IsAggregate() bool {
	switch strings.ToUpper(f.Name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	default:
		return false
	}
}
