package sql

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Canonical returns the normalised SQL text for a query string: keywords
// upper-cased, whitespace collapsed, comments stripped. Two queries that
// differ only in formatting have equal canonical forms. Parsing errors are
// returned so callers can fall back to raw text.
func Canonical(text string) (string, error) {
	stmt, err := Parse(text)
	if err != nil {
		return "", err
	}
	return stmt.SQL(), nil
}

// Template returns the canonical form of the query with every literal
// constant replaced by '?'. Queries in the same session that differ only in
// constants ("temp < 18" vs "temp < 22") share a template, which is what the
// session detector and the edit-pattern miner compare.
func Template(stmt Statement) string {
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return maskConstants(stmt.SQL())
	}
	clone := CloneSelect(sel)
	maskSelectConstants(clone)
	return clone.SQL()
}

// TemplateText parses text and returns its template, falling back to a
// token-level constant mask if parsing fails.
func TemplateText(text string) string {
	stmt, err := Parse(text)
	if err != nil {
		return maskConstants(text)
	}
	return Template(stmt)
}

// Fingerprint returns a stable 64-bit hash of the query template. Queries
// that are structurally identical up to constants share a fingerprint.
func Fingerprint(text string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(strings.ToUpper(TemplateText(text))))
	return h.Sum64()
}

// ExactFingerprint returns a stable 64-bit hash of the canonical form
// (constants included). Used for exact-duplicate detection in the storage
// layer.
func ExactFingerprint(text string) uint64 {
	canon, err := Canonical(text)
	if err != nil {
		canon = strings.ToUpper(strings.Join(strings.Fields(text), " "))
	}
	h := fnv.New64a()
	h.Write([]byte(canon))
	return h.Sum64()
}

// maskConstants is the parse-free fallback: it rewrites string and numeric
// literals in the token stream to '?'.
func maskConstants(text string) string {
	toks, err := Tokenize(text)
	if err != nil {
		return strings.ToUpper(strings.Join(strings.Fields(text), " "))
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case TokenEOF:
		case TokenNumber, TokenString:
			parts = append(parts, "?")
		case TokenKeyword:
			parts = append(parts, t.Text)
		default:
			parts = append(parts, t.Text)
		}
	}
	return strings.Join(parts, " ")
}

func maskSelectConstants(s *SelectStmt) {
	if s == nil {
		return
	}
	mask := func(e Expr) Expr {
		return maskExprConstants(e)
	}
	for i := range s.Columns {
		if s.Columns[i].Expr != nil {
			s.Columns[i].Expr = mask(s.Columns[i].Expr)
		}
	}
	for i := range s.From {
		maskTableRefConstants(s.From[i])
	}
	s.Where = mask(s.Where)
	for i := range s.GroupBy {
		s.GroupBy[i] = mask(s.GroupBy[i])
	}
	s.Having = mask(s.Having)
	for i := range s.OrderBy {
		s.OrderBy[i].Expr = mask(s.OrderBy[i].Expr)
	}
	if s.Compound != nil {
		maskSelectConstants(s.Compound.Right)
	}
}

func maskTableRefConstants(t TableRef) {
	switch ref := t.(type) {
	case *JoinExpr:
		maskTableRefConstants(ref.Left)
		maskTableRefConstants(ref.Right)
		ref.On = maskExprConstants(ref.On)
	case *SubqueryRef:
		maskSelectConstants(ref.Select)
	}
}

func maskExprConstants(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *Literal:
		return &ParamExpr{Text: "?"}
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, Left: maskExprConstants(n.Left), Right: maskExprConstants(n.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, Expr: maskExprConstants(n.Expr)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = maskExprConstants(a)
		}
		return &FuncCall{Name: n.Name, Star: n.Star, Distinct: n.Distinct, Args: args}
	case *InExpr:
		out := &InExpr{Not: n.Not, Expr: maskExprConstants(n.Expr)}
		if n.Select != nil {
			out.Select = CloneSelect(n.Select)
			maskSelectConstants(out.Select)
		} else {
			// Collapse the whole IN list to a single placeholder so that
			// IN (1,2) and IN (1,2,3) share a template.
			out.List = []Expr{&ParamExpr{Text: "?"}}
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{Not: n.Not, Expr: maskExprConstants(n.Expr),
			Low: maskExprConstants(n.Low), High: maskExprConstants(n.High)}
	case *LikeExpr:
		return &LikeExpr{Not: n.Not, Expr: maskExprConstants(n.Expr), Pattern: maskExprConstants(n.Pattern)}
	case *IsNullExpr:
		return &IsNullExpr{Not: n.Not, Expr: maskExprConstants(n.Expr)}
	case *ExistsExpr:
		sel := CloneSelect(n.Select)
		maskSelectConstants(sel)
		return &ExistsExpr{Not: n.Not, Select: sel}
	case *SubqueryExpr:
		sel := CloneSelect(n.Select)
		maskSelectConstants(sel)
		return &SubqueryExpr{Select: sel}
	case *CaseExpr:
		out := &CaseExpr{Operand: maskExprConstants(n.Operand), Else: maskExprConstants(n.Else)}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, CaseWhen{When: maskExprConstants(w.When), Then: maskExprConstants(w.Then)})
		}
		return out
	default:
		return e
	}
}

// CloneSelect returns a deep copy of the SELECT statement. The clone shares
// no mutable state with the original, so callers may rewrite it freely.
func CloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{Distinct: s.Distinct}
	for _, c := range s.Columns {
		out.Columns = append(out.Columns, SelectItem{
			Star: c.Star, TableStar: c.TableStar, Alias: c.Alias, Expr: CloneExpr(c.Expr),
		})
	}
	for _, t := range s.From {
		out.From = append(out.From, cloneTableRef(t))
	}
	out.Where = CloneExpr(s.Where)
	for _, g := range s.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	out.Having = CloneExpr(s.Having)
	for _, o := range s.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	if s.Limit != nil {
		l := *s.Limit
		out.Limit = &l
	}
	if s.Compound != nil {
		out.Compound = &CompoundClause{Op: s.Compound.Op, All: s.Compound.All, Right: CloneSelect(s.Compound.Right)}
	}
	return out
}

func cloneTableRef(t TableRef) TableRef {
	switch ref := t.(type) {
	case *TableName:
		c := *ref
		return &c
	case *JoinExpr:
		return &JoinExpr{
			Type:  ref.Type,
			Left:  cloneTableRef(ref.Left),
			Right: cloneTableRef(ref.Right),
			On:    CloneExpr(ref.On),
			Using: append([]string(nil), ref.Using...),
		}
	case *SubqueryRef:
		return &SubqueryRef{Select: CloneSelect(ref.Select), Alias: ref.Alias}
	default:
		return t
	}
}

// CloneExpr returns a deep copy of an expression tree.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch n := e.(type) {
	case *ColumnRef:
		c := *n
		return &c
	case *Literal:
		c := *n
		return &c
	case *ParamExpr:
		c := *n
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: n.Op, Left: CloneExpr(n.Left), Right: CloneExpr(n.Right)}
	case *UnaryExpr:
		return &UnaryExpr{Op: n.Op, Expr: CloneExpr(n.Expr)}
	case *FuncCall:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: n.Name, Star: n.Star, Distinct: n.Distinct, Args: args}
	case *InExpr:
		out := &InExpr{Not: n.Not, Expr: CloneExpr(n.Expr), Select: CloneSelect(n.Select)}
		for _, item := range n.List {
			out.List = append(out.List, CloneExpr(item))
		}
		return out
	case *BetweenExpr:
		return &BetweenExpr{Not: n.Not, Expr: CloneExpr(n.Expr), Low: CloneExpr(n.Low), High: CloneExpr(n.High)}
	case *LikeExpr:
		return &LikeExpr{Not: n.Not, Expr: CloneExpr(n.Expr), Pattern: CloneExpr(n.Pattern)}
	case *IsNullExpr:
		return &IsNullExpr{Not: n.Not, Expr: CloneExpr(n.Expr)}
	case *ExistsExpr:
		return &ExistsExpr{Not: n.Not, Select: CloneSelect(n.Select)}
	case *SubqueryExpr:
		return &SubqueryExpr{Select: CloneSelect(n.Select)}
	case *CaseExpr:
		out := &CaseExpr{Operand: CloneExpr(n.Operand), Else: CloneExpr(n.Else)}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, CaseWhen{When: CloneExpr(w.When), Then: CloneExpr(w.Then)})
		}
		return out
	default:
		panic(fmt.Sprintf("sql: CloneExpr: unhandled node type %T", e))
	}
}
