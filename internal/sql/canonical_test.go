package sql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTemplateMasksConstants(t *testing.T) {
	cases := []struct {
		a, b string
	}{
		{
			"SELECT * FROM WaterTemp WHERE temp < 18",
			"SELECT * FROM WaterTemp WHERE temp < 22",
		},
		{
			"SELECT * FROM t WHERE name = 'Lake Washington'",
			"SELECT * FROM t WHERE name = 'Lake Union'",
		},
		{
			"SELECT * FROM t WHERE a IN (1, 2)",
			"SELECT * FROM t WHERE a IN (3, 4, 5)",
		},
		{
			"SELECT * FROM t WHERE a BETWEEN 1 AND 5",
			"SELECT * FROM t WHERE a BETWEEN 10 AND 50",
		},
	}
	for _, c := range cases {
		ta := TemplateText(c.a)
		tb := TemplateText(c.b)
		if ta != tb {
			t.Errorf("templates differ:\n  %q -> %q\n  %q -> %q", c.a, ta, c.b, tb)
		}
		if strings.Contains(ta, "18") || strings.Contains(ta, "Lake") {
			t.Errorf("template %q still contains constants", ta)
		}
	}
}

func TestTemplateDistinguishesStructure(t *testing.T) {
	a := TemplateText("SELECT * FROM WaterTemp WHERE temp < 18")
	b := TemplateText("SELECT * FROM WaterTemp WHERE temp > 18")
	if a == b {
		t.Errorf("different operators should give different templates: %q", a)
	}
	c := TemplateText("SELECT * FROM WaterSalinity WHERE temp < 18")
	if a == c {
		t.Errorf("different tables should give different templates: %q", a)
	}
}

func TestFingerprintStableAcrossFormatting(t *testing.T) {
	a := Fingerprint("SELECT  *  FROM WaterTemp  WHERE temp < 18")
	b := Fingerprint("select * from WaterTemp where temp < 25")
	if a != b {
		t.Errorf("fingerprints differ for same template: %d vs %d", a, b)
	}
	c := Fingerprint("SELECT * FROM WaterSalinity WHERE temp < 18")
	if a == c {
		t.Errorf("fingerprints should differ across tables")
	}
}

func TestExactFingerprint(t *testing.T) {
	a := ExactFingerprint("SELECT * FROM t WHERE x = 1")
	b := ExactFingerprint("select *   from t where x = 1")
	if a != b {
		t.Errorf("formatting should not change exact fingerprint")
	}
	c := ExactFingerprint("SELECT * FROM t WHERE x = 2")
	if a == c {
		t.Errorf("different constants must change exact fingerprint")
	}
}

func TestTemplateFallbackOnUnparsableText(t *testing.T) {
	// Partial queries (as typed in the assisted mode) do not parse; the
	// token-level fallback should still mask constants.
	tmpl := TemplateText("SELECT * FROM WaterTemp WHERE temp < 18 AND")
	if strings.Contains(tmpl, "18") {
		t.Errorf("fallback template still contains constant: %q", tmpl)
	}
	if !strings.Contains(tmpl, "WaterTemp") {
		t.Errorf("fallback template lost table name: %q", tmpl)
	}
}

func TestCloneSelectIsDeep(t *testing.T) {
	orig := mustParseSelect(t, "SELECT a FROM t WHERE x = 1 AND y IN (SELECT y FROM u)")
	clone := CloneSelect(orig)
	// Mutate the clone and verify the original is untouched.
	clone.Columns[0].Alias = "changed"
	clone.Where.(*BinaryExpr).Op = "OR"
	if orig.Columns[0].Alias == "changed" {
		t.Errorf("clone shares Columns with original")
	}
	if orig.Where.(*BinaryExpr).Op != "AND" {
		t.Errorf("clone shares Where with original")
	}
	if orig.SQL() == clone.SQL() {
		t.Errorf("mutated clone should print differently")
	}
}

func TestCloneNil(t *testing.T) {
	if CloneSelect(nil) != nil {
		t.Error("CloneSelect(nil) should be nil")
	}
	if CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) should be nil")
	}
}

// ---------------------------------------------------------------------------
// Property-based tests: generate random queries from a small grammar and
// check invariants of the parser, printer, canonicalizer and analyzer.
// ---------------------------------------------------------------------------

// genQuery builds a random but always-valid SELECT statement.
func genQuery(r *rand.Rand) string {
	tables := []string{"WaterSalinity", "WaterTemp", "CityLocations", "Lakes", "Sensors"}
	cols := []string{"temp", "salinity", "depth", "loc_x", "loc_y", "city", "lake", "state"}
	ops := []string{"=", "<", ">", "<=", ">=", "<>"}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	if r.Intn(4) == 0 {
		sb.WriteString("DISTINCT ")
	}
	ncols := 1 + r.Intn(3)
	if r.Intn(5) == 0 {
		sb.WriteString("*")
	} else {
		for i := 0; i < ncols; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			if r.Intn(4) == 0 {
				sb.WriteString("AVG(" + cols[r.Intn(len(cols))] + ")")
			} else {
				sb.WriteString(cols[r.Intn(len(cols))])
			}
		}
	}
	sb.WriteString(" FROM ")
	ntab := 1 + r.Intn(3)
	used := make([]string, 0, ntab)
	for i := 0; i < ntab; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		tb := tables[r.Intn(len(tables))]
		used = append(used, tb)
		sb.WriteString(tb)
	}
	if r.Intn(2) == 0 {
		sb.WriteString(" WHERE ")
		npred := 1 + r.Intn(3)
		for i := 0; i < npred; i++ {
			if i > 0 {
				if r.Intn(3) == 0 {
					sb.WriteString(" OR ")
				} else {
					sb.WriteString(" AND ")
				}
			}
			col := cols[r.Intn(len(cols))]
			switch r.Intn(4) {
			case 0:
				sb.WriteString(col + " " + ops[r.Intn(len(ops))] + " " + itoa(r.Intn(100)))
			case 1:
				sb.WriteString(col + " LIKE 'Lake%'")
			case 2:
				sb.WriteString(col + " IN (" + itoa(r.Intn(10)) + ", " + itoa(r.Intn(10)) + ")")
			default:
				sb.WriteString(col + " BETWEEN " + itoa(r.Intn(10)) + " AND " + itoa(10+r.Intn(10)))
			}
		}
	}
	if r.Intn(4) == 0 {
		sb.WriteString(" GROUP BY " + cols[r.Intn(len(cols))])
	}
	if r.Intn(4) == 0 {
		sb.WriteString(" ORDER BY " + cols[r.Intn(len(cols))])
		if r.Intn(2) == 0 {
			sb.WriteString(" DESC")
		}
	}
	if r.Intn(4) == 0 {
		sb.WriteString(" LIMIT " + itoa(1+r.Intn(100)))
	}
	_ = used
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := []byte{}
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestPropertyParsePrintFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		stmt, err := Parse(q)
		if err != nil {
			t.Logf("generated query failed to parse: %q: %v", q, err)
			return false
		}
		text1 := stmt.SQL()
		stmt2, err := Parse(text1)
		if err != nil {
			t.Logf("printed query failed to re-parse: %q: %v", text1, err)
			return false
		}
		return stmt2.SQL() == text1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTemplateIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		tmpl := TemplateText(q)
		// Applying the template transformation twice must be stable.
		return TemplateText(tmpl) == tmpl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFingerprintIgnoresConstantsOnly(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		// Masking constants by hand: fingerprint of q equals fingerprint of
		// its own template.
		return Fingerprint(q) == Fingerprint(TemplateText(q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAnalysisTablesSubsetOfFrom(t *testing.T) {
	known := map[string]bool{
		"WaterSalinity": true, "WaterTemp": true, "CityLocations": true,
		"Lakes": true, "Sensors": true,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		a, err := AnalyzeQuery(q)
		if err != nil {
			return false
		}
		if len(a.Tables) == 0 {
			return false
		}
		for _, tb := range a.Tables {
			if !known[tb] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiffSelfIsEmpty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := genQuery(r)
		d, err := DiffQueries(q, q)
		if err != nil {
			return false
		}
		return d.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
