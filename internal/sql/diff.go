package sql

import (
	"fmt"
	"sort"
	"strings"
)

// DiffKind classifies one entry of a query diff.
type DiffKind int

// Diff entry kinds.
const (
	DiffAddTable DiffKind = iota
	DiffRemoveTable
	DiffAddColumn
	DiffRemoveColumn
	DiffAddPredicate
	DiffRemovePredicate
	DiffChangeConstant
	DiffAddAggregate
	DiffRemoveAggregate
	DiffAddGroupBy
	DiffRemoveGroupBy
)

// String returns a short human-readable label for the diff kind.
func (k DiffKind) String() string {
	switch k {
	case DiffAddTable:
		return "+table"
	case DiffRemoveTable:
		return "-table"
	case DiffAddColumn:
		return "+col"
	case DiffRemoveColumn:
		return "-col"
	case DiffAddPredicate:
		return "+pred"
	case DiffRemovePredicate:
		return "-pred"
	case DiffChangeConstant:
		return "~const"
	case DiffAddAggregate:
		return "+agg"
	case DiffRemoveAggregate:
		return "-agg"
	case DiffAddGroupBy:
		return "+groupby"
	case DiffRemoveGroupBy:
		return "-groupby"
	default:
		return "?"
	}
}

// DiffEntry is a single structural difference between two queries.
type DiffEntry struct {
	Kind   DiffKind
	Detail string
}

// String renders the entry as in Figure 2's edge labels, e.g. "+pred temp < 18".
func (d DiffEntry) String() string {
	return d.Kind.String() + " " + d.Detail
}

// Diff summarises the structural difference between two queries. It is used
// both for the session-graph edge labels (Figure 2) and for the "Diff"
// column of the similar-queries pane (Figure 3).
type Diff struct {
	Entries []DiffEntry
}

// Empty reports whether the two queries are structurally identical.
func (d *Diff) Empty() bool { return len(d.Entries) == 0 }

// Size returns the number of differences.
func (d *Diff) Size() int { return len(d.Entries) }

// String renders the diff as a comma-separated summary ("+table WaterSalinity, ~const temp").
// An empty diff renders as "none", matching Figure 3.
func (d *Diff) String() string {
	if d.Empty() {
		return "none"
	}
	parts := make([]string, len(d.Entries))
	for i, e := range d.Entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Summary returns the compact count form used in Figure 3's Diff column,
// e.g. "-1 col, -1 pred" or "none".
func (d *Diff) Summary() string {
	if d.Empty() {
		return "none"
	}
	counts := make(map[string]int)
	order := []string{}
	for _, e := range d.Entries {
		var key string
		switch e.Kind {
		case DiffAddTable:
			key = "+%d table"
		case DiffRemoveTable:
			key = "-%d table"
		case DiffAddColumn:
			key = "+%d col"
		case DiffRemoveColumn:
			key = "-%d col"
		case DiffAddPredicate:
			key = "+%d pred"
		case DiffRemovePredicate:
			key = "-%d pred"
		case DiffChangeConstant:
			key = "~%d const"
		case DiffAddAggregate:
			key = "+%d agg"
		case DiffRemoveAggregate:
			key = "-%d agg"
		case DiffAddGroupBy:
			key = "+%d groupby"
		case DiffRemoveGroupBy:
			key = "-%d groupby"
		}
		if _, seen := counts[key]; !seen {
			order = append(order, key)
		}
		counts[key]++
	}
	parts := make([]string, 0, len(order))
	for _, key := range order {
		parts = append(parts, fmt.Sprintf(key, counts[key]))
	}
	return strings.Join(parts, ", ")
}

// ComputeDiff computes the structural difference from query a to query b
// (what must be added to / removed from a to obtain b). Both arguments are
// analyses so that callers who already extracted features do not pay for a
// second parse.
func ComputeDiff(a, b *Analysis) *Diff {
	d := &Diff{}
	if a == nil {
		a = &Analysis{}
	}
	if b == nil {
		b = &Analysis{}
	}

	// Tables.
	addRemove(setOf(a.Tables), setOf(b.Tables), func(name string, added bool) {
		if added {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffAddTable, Detail: name})
		} else {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffRemoveTable, Detail: name})
		}
	})

	// Projected columns (SELECT clause only).
	addRemove(selectColumnSet(a), selectColumnSet(b), func(name string, added bool) {
		if added {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffAddColumn, Detail: name})
		} else {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffRemoveColumn, Detail: name})
		}
	})

	// Predicates: compare templates first; predicates with the same template
	// but different constants are reported as constant changes.
	aPreds := predicateMaps(a)
	bPreds := predicateMaps(b)
	keys := unionKeys(aPreds, bPreds)
	for _, tmpl := range keys {
		av, aok := aPreds[tmpl]
		bv, bok := bPreds[tmpl]
		switch {
		case aok && bok:
			if av != bv {
				d.Entries = append(d.Entries, DiffEntry{Kind: DiffChangeConstant, Detail: bv})
			}
		case bok:
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffAddPredicate, Detail: bv})
		default:
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffRemovePredicate, Detail: av})
		}
	}

	// Aggregates.
	addRemove(setOf(a.Aggregates), setOf(b.Aggregates), func(name string, added bool) {
		if added {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffAddAggregate, Detail: name})
		} else {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffRemoveAggregate, Detail: name})
		}
	})

	// Group-by columns.
	addRemove(setOf(a.GroupByColumns), setOf(b.GroupByColumns), func(name string, added bool) {
		if added {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffAddGroupBy, Detail: name})
		} else {
			d.Entries = append(d.Entries, DiffEntry{Kind: DiffRemoveGroupBy, Detail: name})
		}
	})
	return d
}

// DiffQueries parses both query strings and computes their diff.
func DiffQueries(a, b string) (*Diff, error) {
	aa, err := AnalyzeQuery(a)
	if err != nil {
		return nil, fmt.Errorf("analyzing first query: %w", err)
	}
	bb, err := AnalyzeQuery(b)
	if err != nil {
		return nil, fmt.Errorf("analyzing second query: %w", err)
	}
	return ComputeDiff(aa, bb), nil
}

func setOf(items []string) map[string]bool {
	m := make(map[string]bool, len(items))
	for _, s := range items {
		m[s] = true
	}
	return m
}

func selectColumnSet(a *Analysis) map[string]bool {
	m := make(map[string]bool)
	for _, c := range a.Columns {
		if c.Clause != "SELECT" {
			continue
		}
		name := c.Column
		if c.Table != "" {
			name = c.Table + "." + c.Column
		}
		m[name] = true
	}
	return m
}

// predicateMaps maps predicate template -> rendered predicate text.
func predicateMaps(a *Analysis) map[string]string {
	m := make(map[string]string)
	for _, p := range a.Predicates {
		col := p.Column
		if p.Table != "" {
			col = p.Table + "." + p.Column
		}
		var rendered string
		if p.IsJoin {
			rendered = col + " " + p.Op + " " + p.RightTab + "." + p.RightCol
		} else {
			rendered = col + " " + p.Op + " " + p.Value
		}
		m[p.TemplateKey()] = rendered
	}
	return m
}

func unionKeys(a, b map[string]string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func addRemove(a, b map[string]bool, emit func(name string, added bool)) {
	var names []string
	for k := range a {
		names = append(names, k)
	}
	for k := range b {
		if !a[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		inA, inB := a[name], b[name]
		switch {
		case inA && !inB:
			emit(name, false)
		case !inA && inB:
			emit(name, true)
		}
	}
}
