package sql

import (
	"strings"
	"testing"
)

func mustDiff(t *testing.T, a, b string) *Diff {
	t.Helper()
	d, err := DiffQueries(a, b)
	if err != nil {
		t.Fatalf("DiffQueries(%q, %q): %v", a, b, err)
	}
	return d
}

func TestDiffIdenticalQueries(t *testing.T) {
	d := mustDiff(t,
		"SELECT * FROM WaterTemp WHERE temp < 18",
		"select *  from WaterTemp where temp < 18")
	if !d.Empty() {
		t.Errorf("diff = %v, want empty", d)
	}
	if d.String() != "none" {
		t.Errorf("String() = %q, want none", d.String())
	}
	if d.Summary() != "none" {
		t.Errorf("Summary() = %q, want none", d.Summary())
	}
}

func TestDiffAddTable(t *testing.T) {
	// The first edge in Figure 2: adding the WaterSalinity relation.
	d := mustDiff(t,
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp, WaterSalinity WHERE temp < 22")
	found := false
	for _, e := range d.Entries {
		if e.Kind == DiffAddTable && e.Detail == "WaterSalinity" {
			found = true
		}
	}
	if !found {
		t.Errorf("diff = %v, want +table WaterSalinity", d)
	}
}

func TestDiffConstantChange(t *testing.T) {
	// The middle edges of Figure 2: trying different conditions on temp.
	d := mustDiff(t,
		"SELECT * FROM WaterTemp WHERE temp < 22",
		"SELECT * FROM WaterTemp WHERE temp < 18")
	if len(d.Entries) != 1 {
		t.Fatalf("diff = %v, want exactly one entry", d)
	}
	if d.Entries[0].Kind != DiffChangeConstant {
		t.Errorf("kind = %v, want ~const", d.Entries[0].Kind)
	}
	if !strings.Contains(d.Entries[0].Detail, "18") {
		t.Errorf("detail = %q, want new constant 18", d.Entries[0].Detail)
	}
}

func TestDiffAddPredicates(t *testing.T) {
	// The last edges of Figure 2: adding the two join predicates.
	d := mustDiff(t,
		"SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L WHERE T.temp < 18",
		"SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L WHERE T.temp < 18 AND S.loc_x = T.loc_x AND S.loc_y = T.loc_y")
	adds := 0
	for _, e := range d.Entries {
		if e.Kind == DiffAddPredicate {
			adds++
		}
	}
	if adds != 2 {
		t.Errorf("added predicates = %d, want 2 (%v)", adds, d)
	}
}

func TestDiffRemoveColumnAndPredicate(t *testing.T) {
	// The Figure 3 similar-queries pane shows "-1 col, -1 pred".
	d := mustDiff(t,
		"SELECT temp, salinity FROM WaterTemp WHERE temp < 18 AND salinity > 2",
		"SELECT temp FROM WaterTemp WHERE temp < 18")
	summary := d.Summary()
	if !strings.Contains(summary, "-1 col") || !strings.Contains(summary, "-1 pred") {
		t.Errorf("Summary = %q, want it to mention -1 col and -1 pred", summary)
	}
}

func TestDiffAggregateAndGroupBy(t *testing.T) {
	d := mustDiff(t,
		"SELECT temp FROM WaterTemp",
		"SELECT AVG(temp) FROM WaterTemp GROUP BY lake")
	var kinds []DiffKind
	for _, e := range d.Entries {
		kinds = append(kinds, e.Kind)
	}
	has := func(k DiffKind) bool {
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	if !has(DiffAddAggregate) {
		t.Errorf("diff %v should contain +agg", d)
	}
	if !has(DiffAddGroupBy) {
		t.Errorf("diff %v should contain +groupby", d)
	}
}

func TestDiffSizeAndSymmetryOfCounts(t *testing.T) {
	a := "SELECT temp FROM WaterTemp WHERE temp < 18"
	b := "SELECT temp, salinity FROM WaterTemp, WaterSalinity WHERE temp < 18 AND salinity > 2"
	ab := mustDiff(t, a, b)
	ba := mustDiff(t, b, a)
	if ab.Size() != ba.Size() {
		t.Errorf("diff sizes asymmetric: %d vs %d", ab.Size(), ba.Size())
	}
	// Every addition in one direction is a removal in the other.
	addsAB := 0
	for _, e := range ab.Entries {
		if e.Kind == DiffAddTable || e.Kind == DiffAddColumn || e.Kind == DiffAddPredicate {
			addsAB++
		}
	}
	removesBA := 0
	for _, e := range ba.Entries {
		if e.Kind == DiffRemoveTable || e.Kind == DiffRemoveColumn || e.Kind == DiffRemovePredicate {
			removesBA++
		}
	}
	if addsAB != removesBA {
		t.Errorf("adds(a→b) = %d, removes(b→a) = %d, want equal", addsAB, removesBA)
	}
}

func TestDiffInvalidQuery(t *testing.T) {
	if _, err := DiffQueries("SELECT * FROM t", "not sql at all"); err == nil {
		t.Error("expected error for invalid second query")
	}
	if _, err := DiffQueries("not sql", "SELECT * FROM t"); err == nil {
		t.Error("expected error for invalid first query")
	}
}

func TestDiffEntryString(t *testing.T) {
	e := DiffEntry{Kind: DiffAddPredicate, Detail: "temp < 18"}
	if e.String() != "+pred temp < 18" {
		t.Errorf("String = %q", e.String())
	}
}

func TestDiffKindString(t *testing.T) {
	if DiffKind(999).String() != "?" {
		t.Errorf("unknown kind should render as ?")
	}
	if DiffRemoveGroupBy.String() != "-groupby" {
		t.Errorf("-groupby rendering wrong")
	}
}

func TestComputeDiffNilAnalyses(t *testing.T) {
	d := ComputeDiff(nil, nil)
	if !d.Empty() {
		t.Errorf("nil/nil diff should be empty")
	}
	a, _ := AnalyzeQuery("SELECT * FROM t")
	d = ComputeDiff(nil, a)
	if d.Empty() {
		t.Errorf("nil→query diff should not be empty")
	}
}
