package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// LexError describes a lexical error with its position in the input.
type LexError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

// Error implements the error interface.
func (e *LexError) Error() string {
	return fmt.Sprintf("lex error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Lexer splits a SQL string into tokens. The zero value is not usable; use
// NewLexer.
type Lexer struct {
	input string
	pos   int
	line  int
	col   int
}

// NewLexer returns a lexer over input.
func NewLexer(input string) *Lexer {
	return &Lexer{input: input, line: 1, col: 1}
}

// Tokenize scans the whole input and returns all tokens including the
// terminating EOF token.
func Tokenize(input string) ([]Token, error) {
	lx := NewLexer(input)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokenEOF {
			return toks, nil
		}
	}
}

func (l *Lexer) errorf(format string, args ...interface{}) error {
	return &LexError{Pos: l.pos, Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.input) {
		return 0
	}
	return l.input[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.input) {
		return 0
	}
	return l.input[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.input[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.input) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '-' && l.peekAt(1) == '-':
			for l.pos < len(l.input) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.input) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token in the input, or an error for malformed input.
// After the end of input it returns a TokenEOF token indefinitely.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	startPos, startLine, startCol := l.pos, l.line, l.col
	mk := func(kind TokenKind, text string) Token {
		return Token{Kind: kind, Text: text, Pos: startPos, Line: startLine, Col: startCol}
	}
	if l.pos >= len(l.input) {
		return mk(TokenEOF, ""), nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		return l.lexWord(mk)
	case c >= '0' && c <= '9':
		return l.lexNumber(mk)
	case c == '.':
		// A dot followed by a digit starts a number (e.g. ".5"); otherwise
		// it is the qualification separator.
		if d := l.peekAt(1); d >= '0' && d <= '9' {
			return l.lexNumber(mk)
		}
		l.advance()
		return mk(TokenDot, "."), nil
	case c == '\'':
		return l.lexString(mk)
	case c == '"':
		return l.lexQuotedIdent(mk)
	case c == ',':
		l.advance()
		return mk(TokenComma, ","), nil
	case c == '(':
		l.advance()
		return mk(TokenLParen, "("), nil
	case c == ')':
		l.advance()
		return mk(TokenRParen, ")"), nil
	case c == ';':
		l.advance()
		return mk(TokenSemicolon, ";"), nil
	case c == '*':
		l.advance()
		return mk(TokenStar, "*"), nil
	case c == '?':
		l.advance()
		return mk(TokenParam, "?"), nil
	case c == '$':
		l.advance()
		var sb strings.Builder
		sb.WriteByte('$')
		for l.pos < len(l.input) && l.peek() >= '0' && l.peek() <= '9' {
			sb.WriteByte(l.advance())
		}
		if sb.Len() == 1 {
			return Token{}, l.errorf("expected digits after '$'")
		}
		return mk(TokenParam, sb.String()), nil
	default:
		return l.lexOperator(mk)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *Lexer) lexWord(mk func(TokenKind, string) Token) (Token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.peek()) {
		l.advance()
	}
	word := l.input[start:l.pos]
	upper := strings.ToUpper(word)
	if IsKeyword(upper) {
		return mk(TokenKeyword, upper), nil
	}
	return mk(TokenIdent, word), nil
}

func (l *Lexer) lexNumber(mk func(TokenKind, string) Token) (Token, error) {
	start := l.pos
	seenDot := false
	seenExp := false
	for l.pos < len(l.input) {
		c := l.peek()
		switch {
		case c >= '0' && c <= '9':
			l.advance()
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance()
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.advance()
			if s := l.peek(); s == '+' || s == '-' {
				l.advance()
			}
		default:
			goto done
		}
	}
done:
	text := l.input[start:l.pos]
	if text == "." {
		return Token{}, l.errorf("malformed number")
	}
	return mk(TokenNumber, text), nil
}

func (l *Lexer) lexString(mk func(TokenKind, string) Token) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.advance()
		if c == '\'' {
			// Doubled quote is an escaped quote.
			if l.peek() == '\'' {
				l.advance()
				sb.WriteByte('\'')
				continue
			}
			return mk(TokenString, sb.String()), nil
		}
		sb.WriteByte(c)
	}
	return Token{}, l.errorf("unterminated string literal")
}

func (l *Lexer) lexQuotedIdent(mk func(TokenKind, string) Token) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		c := l.advance()
		if c == '"' {
			if l.peek() == '"' {
				l.advance()
				sb.WriteByte('"')
				continue
			}
			if sb.Len() == 0 {
				return Token{}, l.errorf("empty quoted identifier")
			}
			return mk(TokenQuotedIdent, sb.String()), nil
		}
		sb.WriteByte(c)
	}
	return Token{}, l.errorf("unterminated quoted identifier")
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

var oneCharOps = map[byte]bool{
	'=': true, '<': true, '>': true, '+': true, '-': true, '/': true, '%': true,
}

func (l *Lexer) lexOperator(mk func(TokenKind, string) Token) (Token, error) {
	if l.pos+1 < len(l.input) {
		two := l.input[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.advance()
			l.advance()
			return mk(TokenOperator, two), nil
		}
	}
	c := l.peek()
	if oneCharOps[c] {
		l.advance()
		return mk(TokenOperator, string(c)), nil
	}
	if !unicode.IsPrint(rune(c)) {
		return Token{}, l.errorf("unexpected byte 0x%02x", c)
	}
	return Token{}, l.errorf("unexpected character %q", string(c))
}
