package sql

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeSimpleSelect(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE a = 1")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	want := []TokenKind{
		TokenKeyword, TokenIdent, TokenComma, TokenIdent, TokenKeyword,
		TokenIdent, TokenKeyword, TokenIdent, TokenOperator, TokenNumber, TokenEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d (%v)", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d kind = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeKeywordsUppercased(t *testing.T) {
	toks, err := Tokenize("select * from WaterSalinity")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokenKeyword {
		t.Errorf("first token = %v, want keyword SELECT", toks[0])
	}
	if toks[3].Text != "WaterSalinity" || toks[3].Kind != TokenIdent {
		t.Errorf("identifier should preserve case, got %v", toks[3])
	}
}

func TestTokenizeStringLiterals(t *testing.T) {
	toks, err := Tokenize("SELECT 'Lake Washington', 'it''s'")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokenString || toks[1].Text != "Lake Washington" {
		t.Errorf("string token = %v", toks[1])
	}
	if toks[3].Kind != TokenString || toks[3].Text != "it's" {
		t.Errorf("escaped quote token = %v", toks[3])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"42", "42"},
		{"3.14", "3.14"},
		{".5", ".5"},
		{"1e10", "1e10"},
		{"2.5E-3", "2.5E-3"},
	}
	for _, c := range cases {
		toks, err := Tokenize(c.in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", c.in, err)
			continue
		}
		if toks[0].Kind != TokenNumber || toks[0].Text != c.want {
			t.Errorf("Tokenize(%q) = %v, want number %q", c.in, toks[0], c.want)
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("a <= b >= c <> d != e || f")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var ops []string
	for _, tok := range toks {
		if tok.Kind == TokenOperator {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!=", "||"}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("operators = %v, want %v", ops, want)
	}
}

func TestTokenizeComments(t *testing.T) {
	input := `SELECT a -- trailing comment
FROM /* block
comment */ t`
	toks, err := Tokenize(input)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokenEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"SELECT", "a", "FROM", "t"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestTokenizeQuotedIdentifier(t *testing.T) {
	toks, err := Tokenize(`SELECT "my column" FROM "My Table"`)
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[1].Kind != TokenQuotedIdent || toks[1].Text != "my column" {
		t.Errorf("quoted ident = %v", toks[1])
	}
	if toks[3].Kind != TokenQuotedIdent || toks[3].Text != "My Table" {
		t.Errorf("quoted ident = %v", toks[3])
	}
}

func TestTokenizeParams(t *testing.T) {
	toks, err := Tokenize("WHERE a = ? AND b = $2")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	var params []string
	for _, tok := range toks {
		if tok.Kind == TokenParam {
			params = append(params, tok.Text)
		}
	}
	if len(params) != 2 || params[0] != "?" || params[1] != "$2" {
		t.Errorf("params = %v", params)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		"SELECT 'unterminated",
		`SELECT "unterminated`,
		"SELECT a /* unterminated",
		"SELECT $",
		"SELECT #",
	}
	for _, in := range cases {
		if _, err := Tokenize(in); err == nil {
			t.Errorf("Tokenize(%q) succeeded, want error", in)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("SELECT a\nFROM t")
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	// "FROM" is the third token and starts on line 2, column 1.
	from := toks[2]
	if from.Text != "FROM" {
		t.Fatalf("unexpected token order: %v", toks)
	}
	if from.Line != 2 || from.Col != 1 {
		t.Errorf("FROM position = line %d col %d, want line 2 col 1", from.Line, from.Col)
	}
}

func TestTokenizeLongInputTerminates(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("col")
	}
	toks, err := Tokenize(sb.String())
	if err != nil {
		t.Fatalf("Tokenize: %v", err)
	}
	if toks[len(toks)-1].Kind != TokenEOF {
		t.Errorf("last token should be EOF")
	}
}
