package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with the offending token position.
type ParseError struct {
	Msg  string
	Tok  Token
	Near string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Near != "" {
		return fmt.Sprintf("parse error at line %d col %d near %q: %s", e.Tok.Line, e.Tok.Col, e.Near, e.Msg)
	}
	return fmt.Sprintf("parse error at line %d col %d: %s", e.Tok.Line, e.Tok.Col, e.Msg)
}

// Parser parses a token stream into statements. Use Parse or ParseStatements
// rather than constructing a Parser directly.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement. Trailing semicolons are permitted.
// It returns an error if the input contains more than one statement.
func Parse(input string) (Statement, error) {
	stmts, err := ParseStatements(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("sql: empty statement")
	}
	if len(stmts) > 1 {
		return nil, fmt.Errorf("sql: expected a single statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseSelect parses a single statement and requires it to be a SELECT.
func ParseSelect(input string) (*SelectStmt, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected SELECT statement, got %T", stmt)
	}
	return sel, nil
}

// ParseStatements parses a semicolon-separated list of statements.
func ParseStatements(input string) ([]Statement, error) {
	toks, err := Tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var stmts []Statement
	for {
		for p.peek().Kind == TokenSemicolon {
			p.next()
		}
		if p.peek().Kind == TokenEOF {
			return stmts, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		switch p.peek().Kind {
		case TokenSemicolon, TokenEOF:
			// loop handles both
		default:
			return nil, p.errorf("expected ';' or end of input")
		}
	}
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Msg: fmt.Sprintf(format, args...), Tok: p.peek(), Near: p.peek().Text}
}

// isKeyword reports whether the current token is the given keyword.
func (p *Parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokenKeyword && t.Text == kw
}

// acceptKeyword consumes the keyword if present and reports whether it did.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.next()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or returns an error.
func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *Parser) expect(kind TokenKind) (Token, error) {
	if p.peek().Kind != kind {
		return Token{}, p.errorf("expected %s", kind)
	}
	return p.next(), nil
}

// parseIdent accepts a plain or quoted identifier, and also tolerates
// non-reserved keywords used as identifiers (e.g. a column named "date").
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	switch t.Kind {
	case TokenIdent, TokenQuotedIdent:
		p.next()
		return t.Text, nil
	case TokenKeyword:
		// Allow type-name keywords as identifiers; they are common column names.
		switch t.Text {
		case "DATE", "TIMESTAMP", "TEXT", "KEY", "COLUMN":
			p.next()
			return strings.ToLower(t.Text), nil
		}
	}
	return "", p.errorf("expected identifier")
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokenKeyword {
		return nil, p.errorf("expected statement keyword")
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "ALTER":
		return p.parseAlterTable()
	default:
		return nil, p.errorf("unsupported statement %s", t.Text)
	}
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	// SELECT list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Columns = append(sel.Columns, item)
		if p.peek().Kind == TokenComma {
			p.next()
			continue
		}
		break
	}
	// FROM clause.
	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
	}
	// WHERE clause.
	if p.acceptKeyword("WHERE") {
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = expr
	}
	// GROUP BY.
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
	}
	// HAVING.
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	// ORDER BY.
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
	}
	// LIMIT / OFFSET.
	if p.acceptKeyword("LIMIT") {
		tok, err := p.expect(TokenNumber)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid LIMIT count %q", tok.Text)
		}
		sel.Limit = &LimitClause{Count: n}
		if p.acceptKeyword("OFFSET") {
			tok, err := p.expect(TokenNumber)
			if err != nil {
				return nil, err
			}
			off, err := strconv.ParseInt(tok.Text, 10, 64)
			if err != nil {
				return nil, p.errorf("invalid OFFSET %q", tok.Text)
			}
			sel.Limit.Offset = off
			sel.Limit.HasOffset = true
		}
	}
	// Set operations.
	if p.isKeyword("UNION") || p.isKeyword("EXCEPT") || p.isKeyword("INTERSECT") {
		op := p.next().Text
		all := p.acceptKeyword("ALL")
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Compound = &CompoundClause{Op: op, All: all, Right: right}
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Kind == TokenStar {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// t.* form: identifier DOT STAR.
	if (p.peek().Kind == TokenIdent || p.peek().Kind == TokenQuotedIdent) &&
		p.peekAt(1).Kind == TokenDot && p.peekAt(2).Kind == TokenStar {
		table := p.next().Text
		p.next() // dot
		p.next() // star
		return SelectItem{TableStar: table}, nil
	}
	expr, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: expr}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokenIdent || p.peek().Kind == TokenQuotedIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// ---------------------------------------------------------------------------
// Table references and joins
// ---------------------------------------------------------------------------

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parsePrimaryTableRef()
	if err != nil {
		return nil, err
	}
	for {
		jt, isJoin := p.peekJoin()
		if !isJoin {
			return left, nil
		}
		right, err := p.parsePrimaryTableRef()
		if err != nil {
			return nil, err
		}
		join := &JoinExpr{Type: jt, Left: left, Right: right}
		if jt != JoinCross {
			if p.acceptKeyword("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = on
			} else if p.acceptKeyword("USING") {
				if _, err := p.expect(TokenLParen); err != nil {
					return nil, err
				}
				for {
					col, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					join.Using = append(join.Using, col)
					if p.peek().Kind == TokenComma {
						p.next()
						continue
					}
					break
				}
				if _, err := p.expect(TokenRParen); err != nil {
					return nil, err
				}
			}
		}
		left = join
	}
}

// peekJoin consumes a join introducer ("JOIN", "LEFT [OUTER] JOIN", ...) if
// present and returns its type.
func (p *Parser) peekJoin() (JoinType, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true
	case p.isKeyword("INNER"):
		p.next()
		p.acceptKeyword("JOIN")
		return JoinInner, true
	case p.isKeyword("LEFT"):
		p.next()
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinLeft, true
	case p.isKeyword("RIGHT"):
		p.next()
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinRight, true
	case p.isKeyword("FULL"):
		p.next()
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinFull, true
	case p.isKeyword("CROSS"):
		p.next()
		p.acceptKeyword("JOIN")
		return JoinCross, true
	default:
		return JoinInner, false
	}
}

func (p *Parser) parsePrimaryTableRef() (TableRef, error) {
	if p.peek().Kind == TokenLParen {
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		ref := &SubqueryRef{Select: sel}
		p.acceptKeyword("AS")
		if p.peek().Kind == TokenIdent || p.peek().Kind == TokenQuotedIdent {
			ref.Alias = p.next().Text
		}
		return ref, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = alias
	} else if p.peek().Kind == TokenIdent || p.peek().Kind == TokenQuotedIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses a full boolean expression (lowest precedence: OR).
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: inner}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparison-level predicates including IN, BETWEEN,
// LIKE and IS NULL suffixes.
func (p *Parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Optional NOT before IN/BETWEEN/LIKE.
	negated := false
	if p.isKeyword("NOT") &&
		(p.peekAt(1).Kind == TokenKeyword &&
			(p.peekAt(1).Text == "IN" || p.peekAt(1).Text == "BETWEEN" || p.peekAt(1).Text == "LIKE")) {
		p.next()
		negated = true
	}
	switch {
	case p.isKeyword("IN"):
		p.next()
		return p.parseInSuffix(left, negated)
	case p.isKeyword("BETWEEN"):
		p.next()
		low, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{Not: negated, Expr: left, Low: low, High: high}, nil
	case p.isKeyword("LIKE"):
		p.next()
		pattern, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{Not: negated, Expr: left, Pattern: pattern}, nil
	case p.isKeyword("IS"):
		p.next()
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Not: not, Expr: left}, nil
	}
	if negated {
		return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
	}
	// Comparison operators.
	if p.peek().Kind == TokenOperator {
		op := p.peek().Text
		switch op {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseInSuffix(left Expr, negated bool) (Expr, error) {
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	in := &InExpr{Not: negated, Expr: left}
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Select = sel
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOperator && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		isMul := t.Kind == TokenStar ||
			(t.Kind == TokenOperator && (t.Text == "/" || t.Text == "%"))
		if !isMul {
			return left, nil
		}
		op := t.Text
		if t.Kind == TokenStar {
			op = "*"
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokenOperator && (t.Text == "-" || t.Text == "+") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a unary minus into a numeric literal so that constants keep a
		// single canonical representation.
		if lit, ok := inner.(*Literal); ok && lit.Kind == LiteralNumber && t.Text == "-" {
			return &Literal{Kind: LiteralNumber, Text: "-" + lit.Text}, nil
		}
		if t.Text == "+" {
			return inner, nil
		}
		return &UnaryExpr{Op: t.Text, Expr: inner}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenNumber:
		p.next()
		return &Literal{Kind: LiteralNumber, Text: t.Text}, nil
	case TokenString:
		p.next()
		return &Literal{Kind: LiteralString, Text: t.Text}, nil
	case TokenParam:
		p.next()
		return &ParamExpr{Text: t.Text}, nil
	case TokenLParen:
		p.next()
		if p.isKeyword("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Select: sel}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokenKeyword:
		switch t.Text {
		case "TRUE", "FALSE":
			p.next()
			return &Literal{Kind: LiteralBool, Text: t.Text}, nil
		case "NULL":
			p.next()
			return &Literal{Kind: LiteralNull, Text: "NULL"}, nil
		case "EXISTS":
			p.next()
			if _, err := p.expect(TokenLParen); err != nil {
				return nil, err
			}
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
			return &ExistsExpr{Select: sel}, nil
		case "CASE":
			return p.parseCase()
		case "DATE", "TIMESTAMP", "TEXT", "KEY", "COLUMN":
			// Non-reserved keywords used as column names.
			return p.parseNameExpr()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TokenIdent, TokenQuotedIdent:
		return p.parseNameExpr()
	default:
		return nil, p.errorf("unexpected token in expression")
	}
}

// parseNameExpr parses a column reference, qualified column reference or a
// function call starting at an identifier.
func (p *Parser) parseNameExpr() (Expr, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	// Function call.
	if p.peek().Kind == TokenLParen {
		p.next()
		call := &FuncCall{Name: strings.ToUpper(name)}
		if p.peek().Kind == TokenStar {
			p.next()
			call.Star = true
			if _, err := p.expect(TokenRParen); err != nil {
				return nil, err
			}
			return call, nil
		}
		if p.peek().Kind == TokenRParen {
			p.next()
			return call, nil
		}
		if p.acceptKeyword("DISTINCT") {
			call.Distinct = true
		}
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		return call, nil
	}
	// Qualified column: table.column
	if p.peek().Kind == TokenDot {
		p.next()
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Name: col}, nil
	}
	return &ColumnRef{Name: name}, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// DML / DDL
// ---------------------------------------------------------------------------

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.peek().Kind == TokenLParen {
		p.next()
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(TokenLParen); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.peek().Kind == TokenComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.peek().Kind == TokenComma {
			p.next()
			continue
		}
		break
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if p.peek().Kind != TokenOperator || p.peek().Text != "=" {
			return nil, p.errorf("expected '=' in SET clause")
		}
		p.next()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if p.peek().Kind == TokenComma {
			p.next()
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = w
	}
	return upd, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// normalizeTypeName maps dialect type spellings onto the engine's canonical
// type names.
func normalizeTypeName(t string) string {
	switch strings.ToUpper(t) {
	case "INT", "INTEGER", "BIGINT":
		return "INT"
	case "FLOAT", "DOUBLE", "REAL":
		return "FLOAT"
	case "TEXT", "VARCHAR", "CHAR":
		return "TEXT"
	case "BOOL", "BOOLEAN":
		return "BOOL"
	case "TIMESTAMP", "DATE":
		return "TIMESTAMP"
	default:
		return strings.ToUpper(t)
	}
}

func (p *Parser) parseTypeName() (string, error) {
	t := p.peek()
	if t.Kind != TokenKeyword && t.Kind != TokenIdent {
		return "", p.errorf("expected type name")
	}
	p.next()
	name := normalizeTypeName(t.Text)
	// Optional length argument, e.g. VARCHAR(255).
	if p.peek().Kind == TokenLParen {
		p.next()
		if _, err := p.expect(TokenNumber); err != nil {
			return "", err
		}
		if _, err := p.expect(TokenRParen); err != nil {
			return "", err
		}
	}
	return name, nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if _, err := p.expect(TokenLParen); err != nil {
		return nil, err
	}
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: colName, Type: typ}
		for {
			switch {
			case p.isKeyword("PRIMARY"):
				p.next()
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				def.PrimaryKey = true
			case p.isKeyword("NOT"):
				p.next()
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				def.NotNull = true
			case p.isKeyword("UNIQUE"):
				p.next()
				def.Unique = true
			default:
				goto colDone
			}
		}
	colDone:
		stmt.Columns = append(stmt.Columns, def)
		if p.peek().Kind == TokenComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokenRParen); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseDropTable() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	stmt := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	return stmt, nil
}

func (p *Parser) parseAlterTable() (Statement, error) {
	if err := p.expectKeyword("ALTER"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &AlterTableStmt{Table: table}
	switch {
	case p.acceptKeyword("ADD"):
		p.acceptKeyword("COLUMN")
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		stmt.Action = AlterAddColumn
		stmt.Column = ColumnDef{Name: name, Type: typ}
	case p.acceptKeyword("DROP"):
		p.acceptKeyword("COLUMN")
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		stmt.Action = AlterDropColumn
		stmt.OldName = name
	case p.acceptKeyword("RENAME"):
		if p.acceptKeyword("COLUMN") {
			old, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			nw, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Action = AlterRenameColumn
			stmt.OldName = old
			stmt.NewName = nw
		} else {
			if err := p.expectKeyword("TO"); err != nil {
				return nil, err
			}
			nw, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Action = AlterRenameTable
			stmt.NewName = nw
		}
	default:
		return nil, p.errorf("expected ADD, DROP or RENAME after ALTER TABLE")
	}
	return stmt, nil
}
